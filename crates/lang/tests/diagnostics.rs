//! Diagnostics catalog: every class of front-end error produces a
//! message that names the problem and points at the right line.
//!
//! ASPs are written by application developers and verified in routers;
//! actionable rejections are part of the system's usability story.

use planp_lang::{compile_front, parse_program};

/// Asserts the error message contains `needle` and points at `line`.
fn expect_error(src: &str, needle: &str, line: u32) {
    let err = parse_program(src)
        .and_then(|ast| planp_lang::typecheck(&ast).map(|_| ()))
        .expect_err(&format!("expected an error for:\n{src}"));
    assert!(
        err.message.contains(needle),
        "message {:?} missing {:?}",
        err.message,
        needle
    );
    let rendered = err.render(src);
    let at = planp_lang::span::line_col(src, err.span.start);
    assert_eq!(at.line, line, "wrong line in: {rendered}");
}

#[test]
fn lexer_errors_are_located() {
    expect_error("val x : int = 1 ?", "unexpected character `?`", 1);
    expect_error("val s : string = \"unterminated", "unterminated string", 1);
    expect_error("val h : host = 10.20.30", "malformed host literal", 1);
    expect_error("val h : host = 10.20.300.4", "octets in 0..=255", 1);
    expect_error("(* never closed", "unterminated block comment", 1);
    expect_error("val c : char = #\"ab\"", "exactly one character", 1);
}

#[test]
fn parser_errors_name_the_expected_token() {
    expect_error("val x int = 1", "expected `:`", 1);
    expect_error("channel c(ps : int) is (ps, ())", "expected `,`", 1);
    expect_error("val x : int = (1 + ", "expected expression", 1);
    expect_error("fun f(x : int) = x", "expected `:`", 1);
    expect_error("val t : (int, int) = 1", "hash_table", 1);
    expect_error("val x : frob = 1", "unknown type name `frob`", 1);
}

#[test]
fn type_errors_show_both_types() {
    expect_error(
        "val one : int = 1\nval x : int = true\nchannel c(a : unit, b : unit, p : ip*udp*blob) is (a, b)",
        "expected int, found bool",
        2,
    );
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is\n(print(1 + \"x\"); (a, b))",
        "expected int, found string",
        2,
    );
}

#[test]
fn scoping_errors_name_the_identifier() {
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is (print(zorp); (a, b))",
        "unbound variable `zorp`",
        1,
    );
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is (frob(1); (a, b))",
        "unknown function or primitive `frob`",
        1,
    );
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is (OnRemote(nochan, p); (a, b))",
        "unknown channel `nochan`",
        1,
    );
}

#[test]
fn arity_and_argument_errors() {
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is (print(ipSrc(#1 p, 2)); (a, b))",
        "`ipSrc` takes 1 argument(s), 2 given",
        1,
    );
    expect_error(
        "fun f(x : int) : int = x\nchannel c(a : unit, b : unit, p : ip*udp*blob) is (print(f()); (a, b))",
        "`f` takes 1 argument(s), 0 given",
        2,
    );
    expect_error(
        "channel c(a : unit, b : unit, p : ip*udp*blob) is (print(ipSrc(42)); (a, b))",
        "argument 1 of `ipSrc` has type int, expected ip",
        1,
    );
}

#[test]
fn channel_shape_errors() {
    expect_error(
        "channel c(a : unit, b : unit, p : blob) is (a, b)",
        "invalid packet type",
        1,
    );
    expect_error(
        "channel c(a : int, b : unit, p : ip*udp*blob) is (a, b)\n\
         channel d(a : bool, b : unit, p : ip*tcp*blob) is (a, b)",
        "protocol state is shared by all channels",
        2,
    );
    expect_error(
        "channel c(a : unit, b : ip, p : ip*udp*blob) is (a, b)",
        "needs `initstate`",
        1,
    );
}

#[test]
fn recursion_is_explained_as_unknown_name() {
    // Self-reference fails because the name is not yet in scope — the
    // mechanism that guarantees local termination.
    expect_error(
        "fun f(x : int) : int = f(x)\nchannel c(a : unit, b : unit, p : ip*udp*blob) is (a, b)",
        "unknown function or primitive `f`",
        1,
    );
}

#[test]
fn good_programs_have_no_diagnostics() {
    // A sanity complement: the diagnostics harness itself must not
    // reject valid programs.
    for src in [
        "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))",
        "val limit : int = 10 * 1024\n\
         channel network(ps : int, ss : unit, p : ip*tcp*blob) is\n\
         (if blobLen(#3 p) > limit then deliver(p) else OnRemote(network, p); (ps, ss))",
    ] {
        compile_front(src).unwrap_or_else(|e| panic!("{}", e.render(src)));
    }
}

#[test]
fn render_includes_phase_line_and_column() {
    let src = "val x : int =\n  true\nchannel c(a : unit, b : unit, p : ip*udp*blob) is (a, b)";
    let err = compile_front(src).unwrap_err();
    let rendered = err.render(src);
    assert!(rendered.starts_with("type error at 2:3:"), "{rendered}");
}
