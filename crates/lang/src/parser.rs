//! Recursive-descent parser for PLAN-P.
//!
//! The grammar follows the paper's fragments (figures 2 and 4):
//!
//! ```text
//! program   := decl*
//! decl      := "val" ID ":" type "=" expr
//!            | "fun" ID "(" params? ")" ":" type "=" expr
//!            | "exception" ID
//!            | "proto" expr
//!            | "channel" ID "(" ID ":" type "," ID ":" type "," ID ":" type ")"
//!              ("initstate" expr)? "is" expr
//! type      := posttype ("*" posttype)*
//! posttype  := atomtype ("list" | "hash_table")*
//! atomtype  := "int" | "bool" | … | "(" type ("," type)? ")"
//! expr      := "if" expr "then" expr "else" expr
//!            | "let" ("val" ID ":" type "=" expr)+ "in" expr "end"
//!            | "raise" ID
//!            | infix
//!            -- any expr may be followed by "handle" pat "=>" expr
//! ```
//!
//! Operator precedence, loosest to tightest: `handle`, `orelse`, `andalso`,
//! comparisons (non-associative), `+ - ^`, `* div mod`, unary `not`/`-`,
//! projection `#n`, atoms.

use crate::ast::*;
use crate::error::LangError;
use crate::lexer::lex;
use crate::span::Span;
use crate::token::{Token, TokenKind};
use crate::types::Type;

/// Parses a complete PLAN-P program.
///
/// # Errors
///
/// Returns the first lexical or syntactic error encountered.
pub fn parse_program(src: &str) -> Result<Program, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let mut decls = Vec::new();
    while !p.at(&TokenKind::Eof) {
        decls.push(p.decl()?);
    }
    Ok(Program { decls })
}

/// Parses a single expression (useful for tests and tooling).
///
/// # Errors
///
/// Returns an error if the input is not exactly one expression.
pub fn parse_expr(src: &str) -> Result<Expr, LangError> {
    let tokens = lex(src)?;
    let mut p = Parser { tokens, pos: 0 };
    let e = p.expr()?;
    p.expect(TokenKind::Eof)?;
    Ok(e)
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Token {
        &self.tokens[self.pos.min(self.tokens.len() - 1)]
    }

    fn at(&self, kind: &TokenKind) -> bool {
        &self.peek().kind == kind
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos.min(self.tokens.len() - 1)].clone();
        if self.pos < self.tokens.len() - 1 {
            self.pos += 1;
        }
        t
    }

    fn eat(&mut self, kind: &TokenKind) -> bool {
        if self.at(kind) {
            self.bump();
            true
        } else {
            false
        }
    }

    fn expect(&mut self, kind: TokenKind) -> Result<Token, LangError> {
        if self.at(&kind) {
            Ok(self.bump())
        } else {
            Err(self.unexpected(&format!("expected {}", kind.describe())))
        }
    }

    fn unexpected(&self, what: &str) -> LangError {
        let t = self.peek();
        LangError::parse(format!("{what}, found {}", t.kind.describe()), t.span)
    }

    fn ident(&mut self) -> Result<(String, Span), LangError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let t = self.bump();
                let TokenKind::Ident(name) = t.kind else {
                    unreachable!()
                };
                Ok((name, t.span))
            }
            _ => Err(self.unexpected("expected identifier")),
        }
    }

    // ---- declarations -------------------------------------------------

    fn decl(&mut self) -> Result<Decl, LangError> {
        let start = self.peek().span;
        match self.peek().kind {
            TokenKind::Val => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::Colon)?;
                let ty = self.ty()?;
                self.expect(TokenKind::Eq)?;
                let init = self.expr()?;
                let span = start.merge(init.span);
                Ok(Decl::Val(ValDecl {
                    name,
                    ty,
                    init,
                    span,
                }))
            }
            TokenKind::Fun => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let mut params = Vec::new();
                if !self.at(&TokenKind::RParen) {
                    loop {
                        let (pname, _) = self.ident()?;
                        self.expect(TokenKind::Colon)?;
                        let pty = self.ty()?;
                        params.push((pname, pty));
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                self.expect(TokenKind::RParen)?;
                self.expect(TokenKind::Colon)?;
                let ret = self.ty()?;
                self.expect(TokenKind::Eq)?;
                let body = self.expr()?;
                let span = start.merge(body.span);
                Ok(Decl::Fun(FunDecl {
                    name,
                    params,
                    ret,
                    body,
                    span,
                }))
            }
            TokenKind::Exception => {
                self.bump();
                let (name, nspan) = self.ident()?;
                Ok(Decl::Exception(ExnDecl {
                    name,
                    span: start.merge(nspan),
                }))
            }
            TokenKind::Proto => {
                self.bump();
                let init = self.expr()?;
                let span = start.merge(init.span);
                Ok(Decl::Proto(ProtoDecl { init, span }))
            }
            TokenKind::Channel => {
                self.bump();
                let (name, _) = self.ident()?;
                self.expect(TokenKind::LParen)?;
                let ps = self.typed_param()?;
                self.expect(TokenKind::Comma)?;
                let ss = self.typed_param()?;
                self.expect(TokenKind::Comma)?;
                let pkt = self.typed_param()?;
                self.expect(TokenKind::RParen)?;
                let initstate = if self.eat(&TokenKind::Initstate) {
                    Some(self.expr()?)
                } else {
                    None
                };
                self.expect(TokenKind::Is)?;
                let body = self.expr()?;
                let span = start.merge(body.span);
                Ok(Decl::Channel(ChannelDecl {
                    name,
                    ps,
                    ss,
                    pkt,
                    initstate,
                    body,
                    span,
                }))
            }
            _ => Err(self.unexpected(
                "expected declaration (`val`, `fun`, `exception`, `proto`, or `channel`)",
            )),
        }
    }

    fn typed_param(&mut self) -> Result<(String, Type), LangError> {
        let (name, _) = self.ident()?;
        self.expect(TokenKind::Colon)?;
        let ty = self.ty()?;
        Ok((name, ty))
    }

    // ---- types ---------------------------------------------------------

    fn ty(&mut self) -> Result<Type, LangError> {
        let mut parts = vec![self.post_ty()?];
        while self.eat(&TokenKind::Star) {
            parts.push(self.post_ty()?);
        }
        Ok(Type::tuple(parts))
    }

    /// A type atom followed by `list` / `hash_table` postfixes.
    fn post_ty(&mut self) -> Result<Type, LangError> {
        let span = self.peek().span;
        let mut base = self.atom_ty()?;
        loop {
            match &self.peek().kind {
                TokenKind::Ident(w) if w == "list" => {
                    self.bump();
                    base = TyAtom::Single(Type::List(Box::new(base.into_single(span)?)));
                }
                TokenKind::Ident(w) if w == "hash_table" => {
                    self.bump();
                    base = TyAtom::Single(make_table(base, span)?);
                }
                _ => break,
            }
        }
        base.into_single(span)
    }

    fn atom_ty(&mut self) -> Result<TyAtom, LangError> {
        match &self.peek().kind {
            TokenKind::Ident(_) => {
                let (name, span) = self.ident()?;
                let t = match name.as_str() {
                    "int" => Type::Int,
                    "bool" => Type::Bool,
                    "string" => Type::Str,
                    "char" => Type::Char,
                    "unit" => Type::Unit,
                    "host" => Type::Host,
                    "blob" => Type::Blob,
                    "ip" => Type::Ip,
                    "tcp" => Type::Tcp,
                    "udp" => Type::Udp,
                    other => {
                        return Err(LangError::parse(
                            format!("unknown type name `{other}`"),
                            span,
                        ))
                    }
                };
                Ok(TyAtom::Single(t))
            }
            TokenKind::LParen => {
                self.bump();
                let first = self.ty()?;
                if self.eat(&TokenKind::Comma) {
                    let second = self.ty()?;
                    self.expect(TokenKind::RParen)?;
                    Ok(TyAtom::Pair(first, second))
                } else {
                    self.expect(TokenKind::RParen)?;
                    Ok(TyAtom::Single(first))
                }
            }
            _ => Err(self.unexpected("expected type")),
        }
    }

    // ---- expressions ---------------------------------------------------

    fn expr(&mut self) -> Result<Expr, LangError> {
        let head = match self.peek().kind {
            TokenKind::If => self.if_expr()?,
            TokenKind::Let => self.let_expr()?,
            TokenKind::Raise => self.raise_expr()?,
            _ => self.or_expr()?,
        };
        self.handle_suffix(head)
    }

    fn handle_suffix(&mut self, mut e: Expr) -> Result<Expr, LangError> {
        while self.at(&TokenKind::Handle) {
            self.bump();
            let pat = match &self.peek().kind {
                TokenKind::Underscore => {
                    self.bump();
                    ExnPat::Wild
                }
                TokenKind::Ident(_) => {
                    let (name, _) = self.ident()?;
                    ExnPat::Name(name)
                }
                _ => return Err(self.unexpected("expected exception name or `_`")),
            };
            self.expect(TokenKind::DArrow)?;
            let handler = self.expr()?;
            let span = e.span.merge(handler.span);
            e = Expr::new(ExprKind::Handle(Box::new(e), pat, Box::new(handler)), span);
        }
        Ok(e)
    }

    fn if_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.expect(TokenKind::If)?.span;
        let cond = self.expr()?;
        self.expect(TokenKind::Then)?;
        let then = self.expr()?;
        self.expect(TokenKind::Else)?;
        let els = self.expr()?;
        let span = start.merge(els.span);
        Ok(Expr::new(
            ExprKind::If(Box::new(cond), Box::new(then), Box::new(els)),
            span,
        ))
    }

    fn let_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.expect(TokenKind::Let)?.span;
        let mut binds = Vec::new();
        while self.at(&TokenKind::Val) {
            let bstart = self.bump().span;
            let (name, _) = self.ident()?;
            self.expect(TokenKind::Colon)?;
            let ty = self.ty()?;
            self.expect(TokenKind::Eq)?;
            let init = self.expr()?;
            let span = bstart.merge(init.span);
            binds.push(LetBind {
                name,
                ty,
                init,
                span,
            });
        }
        if binds.is_empty() {
            return Err(self.unexpected("expected at least one `val` binding in `let`"));
        }
        self.expect(TokenKind::In)?;
        let body = self.expr()?;
        let end = self.expect(TokenKind::End)?.span;
        Ok(Expr::new(
            ExprKind::Let(binds, Box::new(body)),
            start.merge(end),
        ))
    }

    fn raise_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.expect(TokenKind::Raise)?.span;
        let (name, nspan) = self.ident()?;
        Ok(Expr::new(ExprKind::Raise(name), start.merge(nspan)))
    }

    fn or_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.and_expr()?;
        while self.at(&TokenKind::Orelse) {
            self.bump();
            let rhs = self.and_expr()?;
            let span = e.span.merge(rhs.span);
            e = Expr::new(ExprKind::Binop(BinOp::Or, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.cmp_expr()?;
        while self.at(&TokenKind::Andalso) {
            self.bump();
            let rhs = self.cmp_expr()?;
            let span = e.span.merge(rhs.span);
            e = Expr::new(
                ExprKind::Binop(BinOp::And, Box::new(e), Box::new(rhs)),
                span,
            );
        }
        Ok(e)
    }

    fn cmp_expr(&mut self) -> Result<Expr, LangError> {
        let lhs = self.add_expr()?;
        let op = match self.peek().kind {
            TokenKind::Eq => BinOp::Eq,
            TokenKind::Ne => BinOp::Ne,
            TokenKind::Lt => BinOp::Lt,
            TokenKind::Le => BinOp::Le,
            TokenKind::Gt => BinOp::Gt,
            TokenKind::Ge => BinOp::Ge,
            _ => return Ok(lhs),
        };
        self.bump();
        let rhs = self.add_expr()?;
        let span = lhs.span.merge(rhs.span);
        Ok(Expr::new(
            ExprKind::Binop(op, Box::new(lhs), Box::new(rhs)),
            span,
        ))
    }

    fn add_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.mul_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Plus => BinOp::Add,
                TokenKind::Minus => BinOp::Sub,
                TokenKind::Caret => BinOp::Concat,
                _ => break,
            };
            self.bump();
            let rhs = self.mul_expr()?;
            let span = e.span.merge(rhs.span);
            e = Expr::new(ExprKind::Binop(op, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn mul_expr(&mut self) -> Result<Expr, LangError> {
        let mut e = self.unary_expr()?;
        loop {
            let op = match self.peek().kind {
                TokenKind::Star => BinOp::Mul,
                TokenKind::Div => BinOp::Div,
                TokenKind::Mod => BinOp::Mod,
                _ => break,
            };
            self.bump();
            let rhs = self.unary_expr()?;
            let span = e.span.merge(rhs.span);
            e = Expr::new(ExprKind::Binop(op, Box::new(e), Box::new(rhs)), span);
        }
        Ok(e)
    }

    fn unary_expr(&mut self) -> Result<Expr, LangError> {
        match self.peek().kind {
            TokenKind::Not => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Unop(UnOp::Not, Box::new(e)), span))
            }
            TokenKind::Minus => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Unop(UnOp::Neg, Box::new(e)), span))
            }
            TokenKind::Proj(n) => {
                let start = self.bump().span;
                let e = self.unary_expr()?;
                let span = start.merge(e.span);
                Ok(Expr::new(ExprKind::Proj(n, Box::new(e)), span))
            }
            _ => self.atom_expr(),
        }
    }

    fn atom_expr(&mut self) -> Result<Expr, LangError> {
        let t = self.peek().clone();
        match t.kind {
            TokenKind::Int(n) => {
                self.bump();
                Ok(Expr::new(ExprKind::Int(n), t.span))
            }
            TokenKind::Str(ref s) => {
                let s = s.clone();
                self.bump();
                Ok(Expr::new(ExprKind::Str(s), t.span))
            }
            TokenKind::Char(c) => {
                self.bump();
                Ok(Expr::new(ExprKind::Char(c), t.span))
            }
            TokenKind::Host(a) => {
                self.bump();
                Ok(Expr::new(ExprKind::Host(a), t.span))
            }
            TokenKind::True => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(true), t.span))
            }
            TokenKind::False => {
                self.bump();
                Ok(Expr::new(ExprKind::Bool(false), t.span))
            }
            TokenKind::If => self.if_expr(),
            TokenKind::Let => self.let_expr(),
            TokenKind::Raise => self.raise_expr(),
            TokenKind::Ident(_) => {
                let (name, span) = self.ident()?;
                if self.at(&TokenKind::LParen) {
                    self.call_expr(name, span)
                } else {
                    Ok(Expr::new(ExprKind::Var(name), span))
                }
            }
            TokenKind::LParen => self.paren_expr(),
            TokenKind::LBracket => {
                let start = self.bump().span;
                let mut items = Vec::new();
                if !self.at(&TokenKind::RBracket) {
                    loop {
                        items.push(self.expr()?);
                        if !self.eat(&TokenKind::Comma) {
                            break;
                        }
                    }
                }
                let end = self.expect(TokenKind::RBracket)?.span;
                Ok(Expr::new(ExprKind::List(items), start.merge(end)))
            }
            _ => Err(self.unexpected("expected expression")),
        }
    }

    fn call_expr(&mut self, name: String, nspan: Span) -> Result<Expr, LangError> {
        self.expect(TokenKind::LParen)?;
        // `OnRemote` and `OnNeighbor` take a channel *name* as their first
        // argument; it is not an expression.
        if name == "OnRemote" || name == "OnNeighbor" {
            let (chan, _) = self.ident()?;
            self.expect(TokenKind::Comma)?;
            if name == "OnRemote" {
                let pkt = self.expr()?;
                let end = self.expect(TokenKind::RParen)?.span;
                return Ok(Expr::new(
                    ExprKind::OnRemote(chan, Box::new(pkt)),
                    nspan.merge(end),
                ));
            }
            let host = self.expr()?;
            self.expect(TokenKind::Comma)?;
            let pkt = self.expr()?;
            let end = self.expect(TokenKind::RParen)?.span;
            return Ok(Expr::new(
                ExprKind::OnNeighbor(chan, Box::new(host), Box::new(pkt)),
                nspan.merge(end),
            ));
        }
        let mut args = Vec::new();
        if !self.at(&TokenKind::RParen) {
            loop {
                args.push(self.expr()?);
                if !self.eat(&TokenKind::Comma) {
                    break;
                }
            }
        }
        let end = self.expect(TokenKind::RParen)?.span;
        Ok(Expr::new(ExprKind::Call(name, args), nspan.merge(end)))
    }

    /// Disambiguates `()`, `(e)`, `(e, e, …)`, and `(e; e; …)`.
    fn paren_expr(&mut self) -> Result<Expr, LangError> {
        let start = self.expect(TokenKind::LParen)?.span;
        if self.at(&TokenKind::RParen) {
            let end = self.bump().span;
            return Ok(Expr::new(ExprKind::Unit, start.merge(end)));
        }
        let first = self.expr()?;
        if self.at(&TokenKind::Comma) {
            let mut items = vec![first];
            while self.eat(&TokenKind::Comma) {
                items.push(self.expr()?);
            }
            let end = self.expect(TokenKind::RParen)?.span;
            Ok(Expr::new(ExprKind::Tuple(items), start.merge(end)))
        } else if self.at(&TokenKind::Semi) {
            let mut items = vec![first];
            while self.eat(&TokenKind::Semi) {
                items.push(self.expr()?);
            }
            let end = self.expect(TokenKind::RParen)?.span;
            Ok(Expr::new(ExprKind::Seq(items), start.merge(end)))
        } else {
            let end = self.expect(TokenKind::RParen)?.span;
            // Keep the inner expression but widen its span to the parens so
            // diagnostics include them.
            Ok(Expr::new(first.kind, start.merge(end)))
        }
    }
}

/// Intermediate result of parsing a type atom: `(k, v)` pairs are only
/// meaningful immediately before `hash_table`.
enum TyAtom {
    Single(Type),
    Pair(Type, Type),
}

impl TyAtom {
    fn into_single(self, span: Span) -> Result<Type, LangError> {
        match self {
            TyAtom::Single(t) => Ok(t),
            TyAtom::Pair(..) => Err(LangError::parse(
                "`(k, v)` type pair is only valid immediately before `hash_table`",
                span,
            )),
        }
    }
}

fn make_table(atom: TyAtom, span: Span) -> Result<Type, LangError> {
    match atom {
        TyAtom::Pair(k, v) => Ok(Type::Table(Box::new(k), Box::new(v))),
        // Paper sugar: `(v * k1 * … * kn) hash_table` stores `v` values
        // keyed by `(k1, …, kn)`.
        TyAtom::Single(Type::Tuple(parts)) if parts.len() >= 2 => {
            let mut it = parts.into_iter();
            let value = it.next().expect("len >= 2");
            let key = Type::tuple(it.collect());
            Ok(Type::Table(Box::new(key), Box::new(value)))
        }
        TyAtom::Single(_) => Err(LangError::parse(
            "hash_table needs `(key, value) hash_table` or the product sugar `(v*k…) hash_table`",
            span,
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn expr(src: &str) -> Expr {
        parse_expr(src).unwrap_or_else(|e| panic!("parse failed for {src:?}: {e}"))
    }

    #[test]
    fn parses_arithmetic_with_precedence() {
        let e = expr("1 + 2 * 3");
        let ExprKind::Binop(BinOp::Add, _, rhs) = e.kind else {
            panic!("expected Add at top: {e:?}")
        };
        assert!(matches!(rhs.kind, ExprKind::Binop(BinOp::Mul, _, _)));
    }

    #[test]
    fn comparison_is_non_associative() {
        assert!(parse_expr("1 < 2 < 3").is_err());
    }

    #[test]
    fn andalso_orelse_precedence() {
        let e = expr("a orelse b andalso c");
        let ExprKind::Binop(BinOp::Or, _, rhs) = e.kind else {
            panic!()
        };
        assert!(matches!(rhs.kind, ExprKind::Binop(BinOp::And, _, _)));
    }

    #[test]
    fn unit_tuple_seq_disambiguation() {
        assert!(matches!(expr("()").kind, ExprKind::Unit));
        assert!(matches!(expr("(1, 2)").kind, ExprKind::Tuple(v) if v.len() == 2));
        assert!(matches!(expr("(1; 2; 3)").kind, ExprKind::Seq(v) if v.len() == 3));
        assert!(matches!(expr("(1)").kind, ExprKind::Int(1)));
    }

    #[test]
    fn projection_binds_tight() {
        // #1 p = 2  parses as  (#1 p) = 2
        let e = expr("#1 p = 2");
        let ExprKind::Binop(BinOp::Eq, lhs, _) = e.kind else {
            panic!()
        };
        assert!(matches!(lhs.kind, ExprKind::Proj(1, _)));
    }

    #[test]
    fn call_and_var() {
        assert!(matches!(expr("f(1, 2)").kind, ExprKind::Call(n, a) if n == "f" && a.len() == 2));
        assert!(
            matches!(expr("thisHost()").kind, ExprKind::Call(n, a) if n == "thisHost" && a.is_empty())
        );
        assert!(matches!(expr("x").kind, ExprKind::Var(n) if n == "x"));
    }

    #[test]
    fn on_remote_takes_channel_name() {
        let e = expr("OnRemote(network, (iph, tcp, body))");
        let ExprKind::OnRemote(chan, pkt) = e.kind else {
            panic!("{e:?}")
        };
        assert_eq!(chan, "network");
        assert!(matches!(pkt.kind, ExprKind::Tuple(_)));
    }

    #[test]
    fn on_neighbor_takes_host_expr() {
        let e = expr("OnNeighbor(audio, 10.0.0.1, p)");
        let ExprKind::OnNeighbor(chan, host, _) = e.kind else {
            panic!()
        };
        assert_eq!(chan, "audio");
        assert!(matches!(host.kind, ExprKind::Host(_)));
    }

    #[test]
    fn let_with_multiple_bindings() {
        let e = expr("let val x : int = 1 val y : int = 2 in x + y end");
        let ExprKind::Let(binds, _) = e.kind else {
            panic!()
        };
        assert_eq!(binds.len(), 2);
        assert_eq!(binds[0].name, "x");
        assert_eq!(binds[1].ty, Type::Int);
    }

    #[test]
    fn let_requires_bindings() {
        assert!(parse_expr("let in 1 end").is_err());
    }

    #[test]
    fn handle_attaches_to_expression() {
        let e = expr("f(x) handle NotFound => 0");
        let ExprKind::Handle(_, pat, _) = e.kind else {
            panic!()
        };
        assert_eq!(pat, ExnPat::Name("NotFound".into()));
        let e = expr("f(x) handle _ => 0");
        let ExprKind::Handle(_, pat, _) = e.kind else {
            panic!()
        };
        assert_eq!(pat, ExnPat::Wild);
    }

    #[test]
    fn chained_handles() {
        // As in SML, a handler body extends as far right as possible, so
        // the second `handle` guards the first handler's body.
        let e = expr("f(x) handle A => 1 handle B => 2");
        let ExprKind::Handle(_, pat, handler) = e.kind else {
            panic!()
        };
        assert_eq!(pat, ExnPat::Name("A".into()));
        assert!(matches!(handler.kind, ExprKind::Handle(..)));
    }

    #[test]
    fn if_as_operand_requires_parens_but_works_nested() {
        let e = expr("if a then 1 else if b then 2 else 3");
        let ExprKind::If(_, _, els) = e.kind else {
            panic!()
        };
        assert!(matches!(els.kind, ExprKind::If(..)));
    }

    #[test]
    fn raise_parses() {
        assert!(matches!(expr("raise NotFound").kind, ExprKind::Raise(n) if n == "NotFound"));
    }

    #[test]
    fn list_literals() {
        assert!(matches!(expr("[]").kind, ExprKind::List(v) if v.is_empty()));
        assert!(matches!(expr("[1, 2, 3]").kind, ExprKind::List(v) if v.len() == 3));
    }

    #[test]
    fn type_product_and_table_sugar() {
        let src = "channel network(ps : int, ss : (int*host*host) hash_table, p : ip*tcp*blob) is (ps, ss)";
        let prog = parse_program(src).unwrap();
        let Decl::Channel(ch) = &prog.decls[0] else {
            panic!()
        };
        assert_eq!(
            ch.ss.1,
            Type::Table(
                Box::new(Type::Tuple(vec![Type::Host, Type::Host])),
                Box::new(Type::Int)
            )
        );
        assert_eq!(ch.pkt.1, Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Blob]));
    }

    #[test]
    fn type_pair_table_form() {
        let src = "val t : (host, int) hash_table = mkTable(16)";
        let prog = parse_program(src).unwrap();
        let Decl::Val(v) = &prog.decls[0] else {
            panic!()
        };
        assert_eq!(v.ty, Type::Table(Box::new(Type::Host), Box::new(Type::Int)));
    }

    #[test]
    fn type_pair_requires_hash_table() {
        assert!(parse_program("val t : (host, int) = x").is_err());
    }

    #[test]
    fn scalar_hash_table_rejected() {
        assert!(parse_program("val t : int hash_table = x").is_err());
    }

    #[test]
    fn list_type_postfix() {
        let prog = parse_program("val l : int list = []").unwrap();
        let Decl::Val(v) = &prog.decls[0] else {
            panic!()
        };
        assert_eq!(v.ty, Type::List(Box::new(Type::Int)));
    }

    #[test]
    fn fun_decl_parses() {
        let src = "fun add(a : int, b : int) : int = a + b";
        let prog = parse_program(src).unwrap();
        let Decl::Fun(f) = &prog.decls[0] else {
            panic!()
        };
        assert_eq!(f.name, "add");
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.ret, Type::Int);
    }

    #[test]
    fn exception_and_proto_decls() {
        let prog = parse_program("exception Busy proto 0").unwrap();
        assert!(matches!(prog.decls[0], Decl::Exception(_)));
        assert!(matches!(prog.decls[1], Decl::Proto(_)));
    }

    #[test]
    fn channel_with_initstate() {
        let src = "channel c(ps : unit, ss : int, p : ip*udp*blob) initstate 5 is (ps, ss + 1)";
        let prog = parse_program(src).unwrap();
        let Decl::Channel(ch) = &prog.decls[0] else {
            panic!()
        };
        assert!(ch.initstate.is_some());
    }

    #[test]
    fn figure2_fragment_parses() {
        let src = r#"
fun getSetS(src : host, dst : host, ss : (int*host*host) hash_table, ps : int) : int =
  tblGet(ss, (src, dst)) handle NotFound => ps mod 2

channel network(ps : int, ss : (int*host*host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcp : tcp = #2 p
    val body : blob = #3 p
  in
    if (tcpDst(tcp) = 80) then
      -- incoming HTTP requests
      let
        val con : int = getSetS(ipSrc(iph), ipDst(iph), ss, ps)
      in
        if (con = 0) then
          (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcp, body));
           (con, ss))
        else
          (OnRemote(network, (ipDestSet(iph, 131.254.60.109), tcp, body));
           (con, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.decls.len(), 2);
        assert_eq!(prog.channels().count(), 1);
    }

    #[test]
    fn figure4_overloaded_channels_parse() {
        let src = r#"
val CmdA : int = 1
val CmdB : int = 2

channel network(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); (ps, ss))
  else
    (ps, ss)

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool) is
  if charPos(#3 p) = CmdB then
    (print("CmdB: "); println(#4 p); (ps, ss))
  else
    (ps, ss)
"#;
        let prog = parse_program(src).unwrap();
        assert_eq!(prog.channels().count(), 2);
    }

    #[test]
    fn error_mentions_found_token() {
        let err = parse_program("val x int = 3").unwrap_err();
        assert!(err.message.contains("expected `:`"), "{}", err.message);
    }

    #[test]
    fn trailing_garbage_is_error() {
        assert!(parse_expr("1 + 2 )").is_err());
    }

    #[test]
    fn negative_literal_via_unary_minus() {
        let e = expr("-5");
        assert!(matches!(e.kind, ExprKind::Unop(UnOp::Neg, _)));
    }

    #[test]
    fn nested_parens_keep_kind() {
        assert!(matches!(expr("((1))").kind, ExprKind::Int(1)));
    }
}
