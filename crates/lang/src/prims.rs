//! The PLAN-P primitive library — *signatures only*.
//!
//! This module is the single source of truth for the primitive interface:
//! names, type rules, effect classes, and which exceptions each primitive
//! may raise. The type checker, the safety analyses, the portable
//! interpreter, and the JIT all consult this table, which is what lets the
//! JIT be "generated from" the interpreter: both are driven by one
//! declarative description (the evaluation functions live in `planp-vm`
//! and are keyed by [`PrimId`], with a conformance test ensuring every
//! signature has exactly one implementation).
//!
//! The set extends the original PLAN-P routing primitives with the
//! ASP-oriented additions described in section 2.3 of the paper
//! (packet-payload manipulation, audio degradation, table management,
//! link monitoring).

use crate::types::Type;
use std::collections::HashMap;
use std::sync::OnceLock;

/// Identifies a primitive; an index into [`table()`]'s primitive list.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimId(pub u32);

/// Effect classification, used to restrict where a primitive may appear.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimClass {
    /// Pure computation — allowed anywhere, including `val` initializers.
    Pure,
    /// Allocates mutable state (`mkTable`) — allowed in `proto` and
    /// `initstate` initializers and in bodies, but not in `val`.
    Alloc,
    /// Mutates channel/protocol state (`tblSet`, `tblDel`).
    StateWrite,
    /// Reads the node environment (`thisHost`, `timeMs`, `linkLoad`, …).
    Env,
    /// Performs I/O (`print`, `deliver`).
    Io,
}

impl PrimClass {
    /// True if a call of this class may appear in a `val` initializer.
    pub fn allowed_in_val(self) -> bool {
        matches!(self, PrimClass::Pure)
    }

    /// True if a call of this class may appear in `proto`/`initstate`.
    pub fn allowed_in_state_init(self) -> bool {
        matches!(self, PrimClass::Pure | PrimClass::Alloc)
    }
}

/// The type rule of a primitive.
#[derive(Debug, Clone)]
enum Sig {
    /// Fixed argument and result types.
    Fixed(Vec<Type>, Type),
    /// Context-sensitive rule, dispatched by name in [`PrimSig::check`].
    Special,
}

/// A primitive's full signature.
#[derive(Debug, Clone)]
pub struct PrimSig {
    /// Surface name.
    pub name: &'static str,
    /// Effect class.
    pub class: PrimClass,
    /// Names of exceptions the primitive may raise.
    pub raises: &'static [&'static str],
    /// Number of arguments.
    pub arity: usize,
    sig: Sig,
}

impl PrimSig {
    /// Type-checks a call of this primitive.
    ///
    /// `args` are the synthesized argument types (already checked to match
    /// `arity`); `expected` is the type the context demands, when known —
    /// this is how `mkTable` and the empty list get their types.
    ///
    /// # Errors
    ///
    /// Returns a message describing the mismatch.
    pub fn check(&self, args: &[Type], expected: Option<&Type>) -> Result<Type, String> {
        match &self.sig {
            Sig::Fixed(params, ret) => {
                for (i, (got, want)) in args.iter().zip(params.iter()).enumerate() {
                    if got != want {
                        return Err(format!(
                            "argument {} of `{}` has type {}, expected {}",
                            i + 1,
                            self.name,
                            got,
                            want
                        ));
                    }
                }
                Ok(ret.clone())
            }
            Sig::Special => self.check_special(args, expected),
        }
    }

    fn check_special(&self, args: &[Type], expected: Option<&Type>) -> Result<Type, String> {
        match self.name {
            "mkTable" => {
                if args[0] != Type::Int {
                    return Err("`mkTable` takes an int size hint".into());
                }
                match expected {
                    Some(t @ Type::Table(k, _)) => {
                        if !k.is_equality() {
                            return Err(format!(
                                "hash_table key type {k} does not support equality"
                            ));
                        }
                        Ok(t.clone())
                    }
                    Some(other) => Err(format!(
                        "`mkTable` used where a {other} is expected (need a hash_table type)"
                    )),
                    None => Err(
                        "cannot infer the table type of `mkTable` here; add a type annotation"
                            .into(),
                    ),
                }
            }
            "tblGet" | "tblHas" | "tblDel" => {
                let Type::Table(k, v) = &args[0] else {
                    return Err(format!("`{}` takes a hash_table first", self.name));
                };
                if &args[1] != k.as_ref() {
                    return Err(format!("table key has type {}, expected {}", args[1], k));
                }
                Ok(match self.name {
                    "tblGet" => v.as_ref().clone(),
                    "tblHas" => Type::Bool,
                    _ => Type::Unit,
                })
            }
            "tblSet" => {
                let Type::Table(k, v) = &args[0] else {
                    return Err("`tblSet` takes a hash_table first".into());
                };
                if &args[1] != k.as_ref() {
                    return Err(format!("table key has type {}, expected {}", args[1], k));
                }
                if &args[2] != v.as_ref() {
                    return Err(format!("table value has type {}, expected {}", args[2], v));
                }
                Ok(Type::Unit)
            }
            "tblSize" | "tblClear" => {
                if !matches!(args[0], Type::Table(..)) {
                    return Err(format!("`{}` takes a hash_table", self.name));
                }
                Ok(if self.name == "tblSize" {
                    Type::Int
                } else {
                    Type::Unit
                })
            }
            "listLen" | "listRev" => {
                let Type::List(t) = &args[0] else {
                    return Err(format!("`{}` takes a list", self.name));
                };
                Ok(if self.name == "listLen" {
                    Type::Int
                } else {
                    Type::List(t.clone())
                })
            }
            "listGet" => {
                let Type::List(t) = &args[0] else {
                    return Err("`listGet` takes a list first".into());
                };
                if args[1] != Type::Int {
                    return Err("`listGet` index must be int".into());
                }
                Ok(t.as_ref().clone())
            }
            "cons" => {
                let Type::List(t) = &args[1] else {
                    return Err("`cons` takes a list second".into());
                };
                if &args[0] != t.as_ref() {
                    return Err(format!("cannot cons a {} onto a {} list", args[0], t));
                }
                Ok(Type::List(t.clone()))
            }
            "append" => {
                let (Type::List(a), Type::List(b)) = (&args[0], &args[1]) else {
                    return Err("`append` takes two lists".into());
                };
                if a != b {
                    return Err(format!("cannot append {} list to {} list", b, a));
                }
                Ok(Type::List(a.clone()))
            }
            "print" | "println" => {
                if !args[0].is_printable() {
                    return Err(format!("values of type {} cannot be printed", args[0]));
                }
                Ok(Type::Unit)
            }
            "deliver" => {
                if args[0].packet_shape().is_none() {
                    return Err(format!(
                        "`deliver` takes a packet (ip*…) value, found {}",
                        args[0]
                    ));
                }
                Ok(Type::Unit)
            }
            other => unreachable!("special rule for unknown primitive {other}"),
        }
    }
}

/// The complete primitive table, with name lookup.
#[derive(Debug)]
pub struct PrimTable {
    prims: Vec<PrimSig>,
    by_name: HashMap<&'static str, PrimId>,
}

impl PrimTable {
    /// Looks a primitive up by name.
    pub fn lookup(&self, name: &str) -> Option<(PrimId, &PrimSig)> {
        let id = *self.by_name.get(name)?;
        Some((id, &self.prims[id.0 as usize]))
    }

    /// Returns the signature for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` did not come from this table.
    pub fn sig(&self, id: PrimId) -> &PrimSig {
        &self.prims[id.0 as usize]
    }

    /// Number of primitives (implementations are indexed `0..len`).
    pub fn len(&self) -> usize {
        self.prims.len()
    }

    /// True if the table is empty (it never is; satisfies clippy's
    /// `len_without_is_empty`).
    pub fn is_empty(&self) -> bool {
        self.prims.is_empty()
    }

    /// Iterates over `(PrimId, &PrimSig)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (PrimId, &PrimSig)> {
        self.prims
            .iter()
            .enumerate()
            .map(|(i, s)| (PrimId(i as u32), s))
    }
}

/// Exceptions predeclared in every program, in [`ExnId`](crate::tast::ExnId)
/// order. User `exception` declarations follow these.
pub const PREDECLARED_EXNS: &[&str] = &["NotFound", "OutOfRange", "Format", "Div", "Empty"];

/// Returns the global primitive table.
pub fn table() -> &'static PrimTable {
    static TABLE: OnceLock<PrimTable> = OnceLock::new();
    TABLE.get_or_init(build_table)
}

fn build_table() -> PrimTable {
    use PrimClass::*;
    use Type::*;
    let fixed = |name, class, raises, params: Vec<Type>, ret: Type| PrimSig {
        name,
        class,
        raises,
        arity: params.len(),
        sig: Sig::Fixed(params, ret),
    };
    let special = |name, class, raises: &'static [&'static str], arity| PrimSig {
        name,
        class,
        raises,
        arity,
        sig: Sig::Special,
    };
    const NONE: &[&str] = &[];
    const OOR: &[&str] = &["OutOfRange"];

    let prims = vec![
        // --- IP header -------------------------------------------------
        fixed("ipSrc", Pure, NONE, vec![Ip], Host),
        fixed("ipDst", Pure, NONE, vec![Ip], Host),
        fixed("ipSrcSet", Pure, NONE, vec![Ip, Host], Ip),
        fixed("ipDestSet", Pure, NONE, vec![Ip, Host], Ip),
        fixed("ipTtl", Pure, NONE, vec![Ip], Int),
        fixed("ipProto", Pure, NONE, vec![Ip], Int),
        // --- TCP header ------------------------------------------------
        fixed("tcpSrc", Pure, NONE, vec![Tcp], Int),
        fixed("tcpDst", Pure, NONE, vec![Tcp], Int),
        fixed("tcpSrcSet", Pure, NONE, vec![Tcp, Int], Tcp),
        fixed("tcpDstSet", Pure, NONE, vec![Tcp, Int], Tcp),
        fixed("tcpSeq", Pure, NONE, vec![Tcp], Int),
        fixed("tcpAck", Pure, NONE, vec![Tcp], Int),
        fixed("tcpIsSyn", Pure, NONE, vec![Tcp], Bool),
        fixed("tcpIsFin", Pure, NONE, vec![Tcp], Bool),
        fixed("tcpIsAck", Pure, NONE, vec![Tcp], Bool),
        fixed("tcpIsRst", Pure, NONE, vec![Tcp], Bool),
        // --- UDP header ------------------------------------------------
        fixed("udpSrc", Pure, NONE, vec![Udp], Int),
        fixed("udpDst", Pure, NONE, vec![Udp], Int),
        fixed("udpSrcSet", Pure, NONE, vec![Udp, Int], Udp),
        fixed("udpDstSet", Pure, NONE, vec![Udp, Int], Udp),
        // --- blobs -----------------------------------------------------
        fixed("blobLen", Pure, NONE, vec![Blob], Int),
        fixed("blobSub", Pure, OOR, vec![Blob, Int, Int], Blob),
        fixed("blobCat", Pure, NONE, vec![Blob, Blob], Blob),
        fixed("blobByte", Pure, OOR, vec![Blob, Int], Int),
        fixed("blobSetByte", Pure, OOR, vec![Blob, Int, Int], Blob),
        fixed("blobInt", Pure, OOR, vec![Blob, Int], Int),
        fixed("blobSetInt", Pure, OOR, vec![Blob, Int, Int], Blob),
        fixed("mkBlob", Pure, OOR, vec![Int, Int], Blob),
        fixed("blobFromString", Pure, NONE, vec![Str], Blob),
        fixed("blobToString", Pure, NONE, vec![Blob], Str),
        // --- strings / chars --------------------------------------------
        fixed("strLen", Pure, NONE, vec![Str], Int),
        fixed("strSub", Pure, OOR, vec![Str, Int, Int], Str),
        fixed("strChar", Pure, OOR, vec![Str, Int], Char),
        fixed("strFind", Pure, NONE, vec![Str, Str], Int),
        fixed("intToString", Pure, NONE, vec![Int], Str),
        fixed("strToInt", Pure, &["Format"], vec![Str], Int),
        fixed("charPos", Pure, NONE, vec![Char], Int),
        fixed("chr", Pure, OOR, vec![Int], Char),
        // --- hosts -------------------------------------------------------
        fixed("isMulticast", Pure, NONE, vec![Host], Bool),
        fixed("thisHost", Env, NONE, vec![], Host),
        // --- environment -------------------------------------------------
        fixed("timeMs", Env, NONE, vec![], Int),
        fixed("linkLoad", Env, NONE, vec![Host], Int),
        fixed("linkCapacity", Env, NONE, vec![Host], Int),
        fixed("queueLen", Env, NONE, vec![Host], Int),
        fixed("randInt", Env, NONE, vec![Int], Int),
        // `setTimer(delay_ms, key)`: asks the node to re-dispatch a
        // synthetic packet on the `timer` channel after `delay_ms`
        // milliseconds, carrying `key` in its payload. Classed Io so it
        // cannot appear in `val`/state initializers.
        fixed("setTimer", Io, NONE, vec![Int, Int], Unit),
        // --- audio (section 3.1: 16-bit stereo → 8-bit monaural) ---------
        fixed("audio16to8", Pure, NONE, vec![Blob], Blob),
        fixed("audio8to16", Pure, NONE, vec![Blob], Blob),
        fixed("audioStereoToMono", Pure, NONE, vec![Blob], Blob),
        fixed("audioMonoToStereo", Pure, NONE, vec![Blob], Blob),
        // --- tables ------------------------------------------------------
        special("mkTable", Alloc, NONE, 1),
        special("tblGet", Pure, &["NotFound"], 2),
        special("tblSet", StateWrite, NONE, 3),
        special("tblHas", Pure, NONE, 2),
        special("tblDel", StateWrite, NONE, 2),
        special("tblClear", StateWrite, NONE, 1),
        special("tblSize", Pure, NONE, 1),
        // --- lists ---------------------------------------------------------
        special("listLen", Pure, NONE, 1),
        special("listGet", Pure, OOR, 2),
        special("cons", Pure, NONE, 2),
        special("append", Pure, NONE, 2),
        special("listRev", Pure, NONE, 1),
        // --- I/O -----------------------------------------------------------
        special("print", Io, NONE, 1),
        special("println", Io, NONE, 1),
        special("deliver", Io, NONE, 1),
    ];

    let by_name = prims
        .iter()
        .enumerate()
        .map(|(i, p)| (p.name, PrimId(i as u32)))
        .collect();
    PrimTable { prims, by_name }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::Type::*;

    #[test]
    fn lookup_finds_known_primitives() {
        for name in ["ipSrc", "tcpDst", "mkTable", "audio16to8", "deliver"] {
            assert!(table().lookup(name).is_some(), "missing {name}");
        }
        assert!(table().lookup("nonsense").is_none());
    }

    #[test]
    fn names_are_unique() {
        let t = table();
        let mut seen = std::collections::HashSet::new();
        for (_, sig) in t.iter() {
            assert!(seen.insert(sig.name), "duplicate primitive {}", sig.name);
        }
    }

    #[test]
    fn fixed_rule_checks_arguments() {
        let (_, sig) = table().lookup("ipDestSet").unwrap();
        assert_eq!(sig.check(&[Ip, Host], None).unwrap(), Ip);
        assert!(sig.check(&[Ip, Int], None).is_err());
    }

    #[test]
    fn mktable_requires_expected_type() {
        let (_, sig) = table().lookup("mkTable").unwrap();
        assert!(sig.check(&[Int], None).is_err());
        let want = Table(Box::new(Host), Box::new(Int));
        assert_eq!(sig.check(&[Int], Some(&want)).unwrap(), want);
        // Non-equality key type rejected.
        let bad = Table(Box::new(Ip), Box::new(Int));
        assert!(sig.check(&[Int], Some(&bad)).is_err());
    }

    #[test]
    fn table_ops_type_rules() {
        let tbl = Table(Box::new(Host), Box::new(Int));
        let (_, get) = table().lookup("tblGet").unwrap();
        assert_eq!(get.check(&[tbl.clone(), Host], None).unwrap(), Int);
        assert!(get.check(&[tbl.clone(), Int], None).is_err());
        let (_, set) = table().lookup("tblSet").unwrap();
        assert_eq!(set.check(&[tbl.clone(), Host, Int], None).unwrap(), Unit);
        assert!(set.check(&[tbl.clone(), Host, Bool], None).is_err());
        let (_, has) = table().lookup("tblHas").unwrap();
        assert_eq!(has.check(&[tbl, Host], None).unwrap(), Bool);
    }

    #[test]
    fn list_ops_type_rules() {
        let l = List(Box::new(Int));
        let (_, consp) = table().lookup("cons").unwrap();
        assert_eq!(consp.check(&[Int, l.clone()], None).unwrap(), l);
        assert!(consp.check(&[Bool, l.clone()], None).is_err());
        let (_, get) = table().lookup("listGet").unwrap();
        assert_eq!(get.check(&[l.clone(), Int], None).unwrap(), Int);
        let (_, app) = table().lookup("append").unwrap();
        assert_eq!(app.check(&[l.clone(), l.clone()], None).unwrap(), l);
    }

    #[test]
    fn print_rejects_tables() {
        let (_, p) = table().lookup("print").unwrap();
        assert!(p
            .check(&[Table(Box::new(Int), Box::new(Int))], None)
            .is_err());
        assert_eq!(p.check(&[Str], None).unwrap(), Unit);
    }

    #[test]
    fn deliver_requires_packet_type() {
        let (_, d) = table().lookup("deliver").unwrap();
        let pkt = Tuple(vec![Ip, Tcp, Blob]);
        assert_eq!(d.check(&[pkt], None).unwrap(), Unit);
        assert!(d.check(&[Int], None).is_err());
    }

    #[test]
    fn raises_metadata() {
        let (_, get) = table().lookup("tblGet").unwrap();
        assert_eq!(get.raises, &["NotFound"]);
        let (_, sub) = table().lookup("blobSub").unwrap();
        assert_eq!(sub.raises, &["OutOfRange"]);
    }

    #[test]
    fn classes_restrict_contexts() {
        assert!(PrimClass::Pure.allowed_in_val());
        assert!(!PrimClass::Alloc.allowed_in_val());
        assert!(PrimClass::Alloc.allowed_in_state_init());
        assert!(!PrimClass::Io.allowed_in_state_init());
    }
}
