//! The PLAN-P type language.
//!
//! PLAN-P is monomorphic. Base types cover the network domain (`host`,
//! `blob`, and the protocol-header types `ip`, `tcp`, `udp`); compound types
//! are products, homogeneous lists, and hash tables.

use std::fmt;

/// A PLAN-P type.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Type {
    /// 64-bit signed integer (`int`).
    Int,
    /// Boolean (`bool`).
    Bool,
    /// Immutable string (`string`).
    Str,
    /// Character (`char`).
    Char,
    /// The unit type (`unit`), with sole value `()`.
    Unit,
    /// An IPv4 host address (`host`).
    Host,
    /// An uninterpreted byte payload (`blob`).
    Blob,
    /// An IP header (`ip`).
    Ip,
    /// A TCP header (`tcp`).
    Tcp,
    /// A UDP header (`udp`).
    Udp,
    /// A product type `t1 * t2 * …` (at least two components).
    Tuple(Vec<Type>),
    /// A homogeneous list `t list`.
    List(Box<Type>),
    /// A hash table from keys of the first type to values of the second,
    /// written `(k, v) hash_table`.
    ///
    /// The paper's figure 2 writes `(int*host*host) hash_table`; we accept
    /// that product form as sugar for `((host*host), int) hash_table` —
    /// the *first* component is the stored value and the remaining
    /// components form the key, matching how `getSetS` uses the table.
    Table(Box<Type>, Box<Type>),
}

impl Type {
    /// Builds a product type, collapsing the degenerate cases.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty.
    pub fn tuple(mut parts: Vec<Type>) -> Type {
        assert!(!parts.is_empty(), "tuple type needs at least one component");
        if parts.len() == 1 {
            parts.pop().expect("len checked")
        } else {
            Type::Tuple(parts)
        }
    }

    /// True for types that support `=`/`<>` comparison and may be used as
    /// hash-table keys: everything except tables, headers, and functions
    /// (there are no function values).
    pub fn is_equality(&self) -> bool {
        match self {
            Type::Int
            | Type::Bool
            | Type::Str
            | Type::Char
            | Type::Unit
            | Type::Host
            | Type::Blob => true,
            Type::Tuple(parts) => parts.iter().all(Type::is_equality),
            Type::List(t) => t.is_equality(),
            Type::Ip | Type::Tcp | Type::Udp | Type::Table(..) => false,
        }
    }

    /// True for types with a total order (`<`, `<=`, …): `int`, `char`,
    /// `string`.
    pub fn is_ordered(&self) -> bool {
        matches!(self, Type::Int | Type::Char | Type::Str)
    }

    /// True for types that `print` can display.
    pub fn is_printable(&self) -> bool {
        match self {
            Type::Table(..) => false,
            Type::Tuple(parts) => parts.iter().all(Type::is_printable),
            Type::List(t) => t.is_printable(),
            _ => true,
        }
    }

    /// True if the type has a canonical default value, used to initialize
    /// protocol state when no `proto` declaration is given.
    pub fn is_defaultable(&self) -> bool {
        match self {
            Type::Int
            | Type::Bool
            | Type::Str
            | Type::Char
            | Type::Unit
            | Type::Host
            | Type::Blob => true,
            Type::Tuple(parts) => parts.iter().all(Type::is_defaultable),
            Type::List(_) | Type::Table(..) => true,
            Type::Ip | Type::Tcp | Type::Udp => false,
        }
    }

    /// Decomposes a channel packet type into (network layer, transport
    /// layer, payload component types).
    ///
    /// A valid packet type is a product `ip * tcp * rest…`, `ip * udp *
    /// rest…`, or `ip * rest…` where `rest` is either a single `blob` or a
    /// non-empty sequence of decodable scalar components (`int`, `bool`,
    /// `char`, `host`, `string`) optionally ending in a `blob`.
    pub fn packet_shape(&self) -> Option<PacketShape> {
        let Type::Tuple(parts) = self else {
            return None;
        };
        if parts.first() != Some(&Type::Ip) {
            return None;
        }
        let (transport, payload) = match parts.get(1) {
            Some(Type::Tcp) => (TransportKind::Tcp, &parts[2..]),
            Some(Type::Udp) => (TransportKind::Udp, &parts[2..]),
            Some(_) => (TransportKind::None, &parts[1..]),
            None => (TransportKind::None, &parts[1..]),
        };
        if payload.is_empty() {
            return None;
        }
        // Every payload component except the last must be a decodable
        // scalar; the last may also be a blob (the uninterpreted rest).
        for (i, t) in payload.iter().enumerate() {
            let last = i + 1 == payload.len();
            let ok = matches!(
                t,
                Type::Int | Type::Bool | Type::Char | Type::Host | Type::Str
            ) || (last && *t == Type::Blob);
            if !ok {
                return None;
            }
        }
        Some(PacketShape {
            transport,
            payload: payload.to_vec(),
        })
    }
}

/// The transport layer named by a packet type.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TransportKind {
    /// `ip*tcp*…`
    Tcp,
    /// `ip*udp*…`
    Udp,
    /// `ip*…` — raw IP, no transport header component.
    None,
}

/// The decomposition of a channel packet type; see [`Type::packet_shape`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PacketShape {
    /// Which transport header the channel matches.
    pub transport: TransportKind,
    /// The payload component types (scalars, optionally ending in `blob`).
    pub payload: Vec<Type>,
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Type::Int => f.write_str("int"),
            Type::Bool => f.write_str("bool"),
            Type::Str => f.write_str("string"),
            Type::Char => f.write_str("char"),
            Type::Unit => f.write_str("unit"),
            Type::Host => f.write_str("host"),
            Type::Blob => f.write_str("blob"),
            Type::Ip => f.write_str("ip"),
            Type::Tcp => f.write_str("tcp"),
            Type::Udp => f.write_str("udp"),
            Type::Tuple(parts) => {
                for (i, p) in parts.iter().enumerate() {
                    if i > 0 {
                        f.write_str("*")?;
                    }
                    if matches!(p, Type::Tuple(_)) {
                        write!(f, "({p})")?;
                    } else {
                        write!(f, "{p}")?;
                    }
                }
                Ok(())
            }
            Type::List(t) => {
                if matches!(**t, Type::Tuple(_)) {
                    write!(f, "({t}) list")
                } else {
                    write!(f, "{t} list")
                }
            }
            Type::Table(k, v) => write!(f, "({k}, {v}) hash_table"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_round_trips_common_types() {
        let t = Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Blob]);
        assert_eq!(t.to_string(), "ip*tcp*blob");
        let tbl = Type::Table(
            Box::new(Type::Tuple(vec![Type::Host, Type::Host])),
            Box::new(Type::Int),
        );
        assert_eq!(tbl.to_string(), "(host*host, int) hash_table");
    }

    #[test]
    fn nested_tuple_display_parenthesizes() {
        let t = Type::Tuple(vec![Type::Int, Type::Tuple(vec![Type::Bool, Type::Char])]);
        assert_eq!(t.to_string(), "int*(bool*char)");
    }

    #[test]
    fn equality_types() {
        assert!(Type::Int.is_equality());
        assert!(Type::Tuple(vec![Type::Host, Type::Int]).is_equality());
        assert!(!Type::Ip.is_equality());
        assert!(!Type::Table(Box::new(Type::Int), Box::new(Type::Int)).is_equality());
        assert!(!Type::Tuple(vec![Type::Int, Type::Tcp]).is_equality());
    }

    #[test]
    fn packet_shape_tcp_blob() {
        let t = Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Blob]);
        let s = t.packet_shape().unwrap();
        assert_eq!(s.transport, TransportKind::Tcp);
        assert_eq!(s.payload, vec![Type::Blob]);
    }

    #[test]
    fn packet_shape_typed_payload() {
        let t = Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Char, Type::Int]);
        let s = t.packet_shape().unwrap();
        assert_eq!(s.transport, TransportKind::Tcp);
        assert_eq!(s.payload, vec![Type::Char, Type::Int]);
    }

    #[test]
    fn packet_shape_rejects_non_packets() {
        assert!(Type::Int.packet_shape().is_none());
        assert!(Type::Tuple(vec![Type::Tcp, Type::Blob])
            .packet_shape()
            .is_none());
        // blob must come last
        let t = Type::Tuple(vec![Type::Ip, Type::Udp, Type::Blob, Type::Int]);
        assert!(t.packet_shape().is_none());
        // header types cannot appear in the payload
        let t = Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Ip]);
        assert!(t.packet_shape().is_none());
    }

    #[test]
    fn packet_shape_raw_ip() {
        let t = Type::Tuple(vec![Type::Ip, Type::Blob]);
        let s = t.packet_shape().unwrap();
        assert_eq!(s.transport, TransportKind::None);
    }

    #[test]
    fn tuple_constructor_collapses_singleton() {
        assert_eq!(Type::tuple(vec![Type::Int]), Type::Int);
        assert_eq!(
            Type::tuple(vec![Type::Int, Type::Bool]),
            Type::Tuple(vec![Type::Int, Type::Bool])
        );
    }

    #[test]
    fn defaultable_types() {
        assert!(Type::Int.is_defaultable());
        assert!(Type::Table(Box::new(Type::Int), Box::new(Type::Int)).is_defaultable());
        assert!(!Type::Ip.is_defaultable());
    }
}
