//! Bidirectional type checker for PLAN-P.
//!
//! Besides ordinary type checking, this pass enforces the language
//! restrictions the paper's safety story depends on:
//!
//! * **no recursion** — `val`/`fun` names are visible only to *later*
//!   declarations, so call graphs are acyclic by construction (local
//!   termination, section 2.1);
//! * **pure initializers** — `val` initializers may use only pure
//!   primitives; `proto`/`initstate` may additionally allocate tables;
//! * **consistent protocol state** — every channel must declare the same
//!   protocol-state type;
//! * **valid packet types** — a channel's packet parameter must be
//!   `ip [* tcp|udp] * payload…` (see [`Type::packet_shape`]);
//! * **resolved sends** — `OnRemote`/`OnNeighbor` must name a channel with
//!   an overload matching the packet expression's type.
//!
//! Checking is *bidirectional*: `check(e, expected)` pushes the context
//! type into `e`, which is how `mkTable(256)` and `[]` receive their
//! types without general inference.

use crate::ast::*;
use crate::error::LangError;
use crate::prims::{self, PrimTable, PREDECLARED_EXNS};
use crate::span::Span;
use crate::tast::*;
use crate::types::Type;
use std::collections::HashMap;

/// Type-checks `prog`, producing the typed program.
///
/// # Errors
///
/// Returns the first type error found.
pub fn typecheck(prog: &Program) -> Result<TProgram, LangError> {
    Checker::new(prog)?.run()
}

/// Signature of one channel overload, collected before bodies are checked
/// so that channels may reference each other (network recursion is the
/// business of the global-termination analysis, not the checker).
#[derive(Debug, Clone)]
struct ChanSig {
    pkt_ty: Type,
    span: Span,
}

/// Where an expression appears; restricts allowed effects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Ctx {
    /// `val` initializer — pure primitives only.
    ValInit,
    /// `proto` / `initstate` initializer — pure + allocation.
    StateInit,
    /// Function or channel body — anything goes.
    Body,
}

struct Checker<'a> {
    prog: &'a Program,
    prims: &'static PrimTable,
    exns: Vec<String>,
    chan_sigs: HashMap<String, Vec<ChanSig>>,
    globals: Vec<TGlobal>,
    global_map: HashMap<String, u32>,
    funs: Vec<TFun>,
    fun_map: HashMap<String, u32>,
}

struct Scope {
    /// `(name, type, slot)` — innermost binding last.
    locals: Vec<(String, Type, u32)>,
    next: u32,
    max: u32,
    ctx: Ctx,
}

impl Scope {
    fn new(ctx: Ctx) -> Self {
        Scope {
            locals: Vec::new(),
            next: 0,
            max: 0,
            ctx,
        }
    }

    fn push(&mut self, name: &str, ty: Type) -> u32 {
        let slot = self.next;
        self.next += 1;
        self.max = self.max.max(self.next);
        self.locals.push((name.to_string(), ty, slot));
        slot
    }

    fn pop(&mut self) {
        self.locals.pop();
        self.next -= 1;
    }

    fn lookup(&self, name: &str) -> Option<(Type, u32)> {
        self.locals
            .iter()
            .rev()
            .find(|(n, _, _)| n == name)
            .map(|(_, t, s)| (t.clone(), *s))
    }
}

impl<'a> Checker<'a> {
    fn new(prog: &'a Program) -> Result<Self, LangError> {
        let prims = prims::table();

        // Pass 1a: exceptions.
        let mut exns: Vec<String> = PREDECLARED_EXNS.iter().map(|s| s.to_string()).collect();
        for d in &prog.decls {
            if let Decl::Exception(e) = d {
                if exns.iter().any(|n| n == &e.name) {
                    return Err(LangError::ty(
                        format!("exception `{}` is already declared", e.name),
                        e.span,
                    ));
                }
                exns.push(e.name.clone());
            }
        }

        // Pass 1b: channel signatures (visible program-wide).
        let mut chan_sigs: HashMap<String, Vec<ChanSig>> = HashMap::new();
        let mut proto_ty: Option<(Type, Span)> = None;
        for ch in prog.channels() {
            if ch.pkt.1.packet_shape().is_none() {
                return Err(LangError::ty(
                    format!(
                        "channel `{}` has invalid packet type {} (expected ip [* tcp|udp] * payload…)",
                        ch.name, ch.pkt.1
                    ),
                    ch.span,
                ));
            }
            match &proto_ty {
                None => proto_ty = Some((ch.ps.1.clone(), ch.span)),
                Some((t, _)) if *t != ch.ps.1 => {
                    return Err(LangError::ty(
                        format!(
                            "channel `{}` declares protocol state {}, but an earlier channel declared {} (protocol state is shared by all channels)",
                            ch.name, ch.ps.1, t
                        ),
                        ch.span,
                    ));
                }
                Some(_) => {}
            }
            let group = chan_sigs.entry(ch.name.clone()).or_default();
            if group.iter().any(|s| s.pkt_ty == ch.pkt.1) {
                return Err(LangError::ty(
                    format!(
                        "channel `{}` already has an overload for packet type {} (dispatch would be ambiguous)",
                        ch.name, ch.pkt.1
                    ),
                    ch.span,
                ));
            }
            group.push(ChanSig {
                pkt_ty: ch.pkt.1.clone(),
                span: ch.span,
            });
        }

        Ok(Checker {
            prog,
            prims,
            exns,
            chan_sigs,
            globals: Vec::new(),
            global_map: HashMap::new(),
            funs: Vec::new(),
            fun_map: HashMap::new(),
        })
    }

    fn run(mut self) -> Result<TProgram, LangError> {
        let mut channels: Vec<TChannel> = Vec::new();
        let mut chan_groups: HashMap<String, Vec<usize>> = HashMap::new();
        let mut proto_init: Option<TExpr> = None;
        let mut proto_span: Option<Span> = None;

        // Determine the shared protocol-state type up front.
        let first_chan = self.prog.channels().next().ok_or_else(|| {
            LangError::ty(
                "a PLAN-P program must define at least one channel",
                Span::dummy(),
            )
        })?;
        let proto_ty = first_chan.ps.1.clone();

        for d in &self.prog.decls {
            match d {
                Decl::Exception(_) => {} // handled in pass 1
                Decl::Val(v) => {
                    self.check_fresh_global(&v.name, v.span)?;
                    let mut scope = Scope::new(Ctx::ValInit);
                    let init = self.check(&v.init, &v.ty, &mut scope)?;
                    self.global_map
                        .insert(v.name.clone(), self.globals.len() as u32);
                    self.globals.push(TGlobal {
                        name: v.name.clone(),
                        ty: v.ty.clone(),
                        init,
                        span: v.span,
                    });
                }
                Decl::Fun(f) => {
                    self.check_fresh_global(&f.name, f.span)?;
                    let mut scope = Scope::new(Ctx::Body);
                    let mut seen = Vec::new();
                    for (pname, pty) in &f.params {
                        if seen.contains(&pname) {
                            return Err(LangError::ty(
                                format!("duplicate parameter `{pname}`"),
                                f.span,
                            ));
                        }
                        seen.push(pname);
                        scope.push(pname, pty.clone());
                    }
                    let body = self.check(&f.body, &f.ret, &mut scope)?;
                    self.fun_map.insert(f.name.clone(), self.funs.len() as u32);
                    self.funs.push(TFun {
                        name: f.name.clone(),
                        params: f.params.clone(),
                        ret: f.ret.clone(),
                        body,
                        nlocals: scope.max,
                        span: f.span,
                    });
                }
                Decl::Proto(p) => {
                    if proto_span.is_some() {
                        return Err(LangError::ty("duplicate `proto` declaration", p.span));
                    }
                    let mut scope = Scope::new(Ctx::StateInit);
                    proto_init = Some(self.check(&p.init, &proto_ty, &mut scope)?);
                    proto_span = Some(p.span);
                }
                Decl::Channel(ch) => {
                    let group = &self.chan_sigs[&ch.name];
                    let overload = group
                        .iter()
                        .position(|s| s.span == ch.span)
                        .expect("channel collected in pass 1")
                        as u32;

                    let initstate = match &ch.initstate {
                        Some(e) => {
                            let mut scope = Scope::new(Ctx::StateInit);
                            Some(self.check(e, &ch.ss.1, &mut scope)?)
                        }
                        None => {
                            if !ch.ss.1.is_defaultable() {
                                return Err(LangError::ty(
                                    format!(
                                        "channel `{}` needs `initstate`: state type {} has no default value",
                                        ch.name, ch.ss.1
                                    ),
                                    ch.span,
                                ));
                            }
                            None
                        }
                    };

                    let mut scope = Scope::new(Ctx::Body);
                    scope.push(&ch.ps.0, ch.ps.1.clone());
                    scope.push(&ch.ss.0, ch.ss.1.clone());
                    scope.push(&ch.pkt.0, ch.pkt.1.clone());
                    let want = Type::Tuple(vec![ch.ps.1.clone(), ch.ss.1.clone()]);
                    let body = self.check(&ch.body, &want, &mut scope)?;

                    let index = channels.len();
                    chan_groups.entry(ch.name.clone()).or_default().push(index);
                    channels.push(TChannel {
                        name: ch.name.clone(),
                        overload,
                        ps_name: ch.ps.0.clone(),
                        ss_name: ch.ss.0.clone(),
                        pkt_name: ch.pkt.0.clone(),
                        ss_ty: ch.ss.1.clone(),
                        pkt_ty: ch.pkt.1.clone(),
                        shape: ch.pkt.1.packet_shape().expect("validated in pass 1"),
                        initstate,
                        body,
                        nlocals: scope.max,
                        span: ch.span,
                    });
                }
            }
        }

        if proto_init.is_none() && !proto_ty.is_defaultable() {
            return Err(LangError::ty(
                format!(
                    "protocol state type {proto_ty} has no default value; add a `proto` declaration"
                ),
                first_chan.span,
            ));
        }

        Ok(TProgram {
            globals: self.globals,
            funs: self.funs,
            exns: self.exns,
            proto_ty,
            proto_init,
            channels,
            chan_groups,
        })
    }

    fn check_fresh_global(&self, name: &str, span: Span) -> Result<(), LangError> {
        if self.global_map.contains_key(name) || self.fun_map.contains_key(name) {
            return Err(LangError::ty(format!("`{name}` is already declared"), span));
        }
        if self.prims.lookup(name).is_some() {
            return Err(LangError::ty(
                format!("`{name}` is a primitive and cannot be redeclared"),
                span,
            ));
        }
        Ok(())
    }

    fn exn_id(&self, name: &str, span: Span) -> Result<ExnId, LangError> {
        self.exns
            .iter()
            .position(|n| n == name)
            .map(|i| ExnId(i as u32))
            .ok_or_else(|| LangError::ty(format!("unknown exception `{name}`"), span))
    }

    // ---- bidirectional checking ----------------------------------------

    /// Checks `e` against the expected type `want`.
    fn check(&self, e: &Expr, want: &Type, scope: &mut Scope) -> Result<TExpr, LangError> {
        match &e.kind {
            ExprKind::If(c, t, f) => {
                let c = self.check(c, &Type::Bool, scope)?;
                let t = self.check(t, want, scope)?;
                let f = self.check(f, want, scope)?;
                Ok(TExpr {
                    kind: TExprKind::If(Box::new(c), Box::new(t), Box::new(f)),
                    ty: want.clone(),
                    span: e.span,
                })
            }
            ExprKind::Let(binds, body) => self.check_let(binds, body, Some(want), e.span, scope),
            ExprKind::Seq(items) => {
                let (last, init) = items.split_last().expect("parser ensures >= 2");
                let mut out = Vec::with_capacity(items.len());
                for item in init {
                    out.push(self.synth(item, scope)?);
                }
                out.push(self.check(last, want, scope)?);
                Ok(TExpr {
                    kind: TExprKind::Seq(out),
                    ty: want.clone(),
                    span: e.span,
                })
            }
            ExprKind::Handle(body, pat, handler) => {
                let body = self.check(body, want, scope)?;
                let exn = match pat {
                    ExnPat::Wild => None,
                    ExnPat::Name(n) => Some(self.exn_id(n, e.span)?),
                };
                let handler = self.check(handler, want, scope)?;
                Ok(TExpr {
                    kind: TExprKind::Handle(Box::new(body), exn, Box::new(handler)),
                    ty: want.clone(),
                    span: e.span,
                })
            }
            ExprKind::Raise(name) => {
                if scope.ctx != Ctx::Body {
                    return Err(LangError::ty(
                        "`raise` is not allowed in initializers",
                        e.span,
                    ));
                }
                let id = self.exn_id(name, e.span)?;
                Ok(TExpr {
                    kind: TExprKind::Raise(id),
                    ty: want.clone(),
                    span: e.span,
                })
            }
            ExprKind::Tuple(items) => {
                if let Type::Tuple(parts) = want {
                    if parts.len() == items.len() {
                        let out = items
                            .iter()
                            .zip(parts)
                            .map(|(i, p)| self.check(i, p, scope))
                            .collect::<Result<Vec<_>, _>>()?;
                        return Ok(TExpr {
                            kind: TExprKind::Tuple(out),
                            ty: want.clone(),
                            span: e.span,
                        });
                    }
                }
                self.check_via_synth(e, want, scope)
            }
            ExprKind::List(items) => {
                if let Type::List(elem) = want {
                    let out = items
                        .iter()
                        .map(|i| self.check(i, elem, scope))
                        .collect::<Result<Vec<_>, _>>()?;
                    return Ok(TExpr {
                        kind: TExprKind::List(out),
                        ty: want.clone(),
                        span: e.span,
                    });
                }
                self.check_via_synth(e, want, scope)
            }
            ExprKind::Call(name, args) => {
                // Pass the expectation down so `mkTable` can be typed.
                let t = self.check_call(name, args, Some(want), e.span, scope)?;
                if &t.ty != want {
                    return Err(LangError::ty(
                        format!("expected {}, found {}", want, t.ty),
                        e.span,
                    ));
                }
                Ok(t)
            }
            _ => self.check_via_synth(e, want, scope),
        }
    }

    fn check_via_synth(
        &self,
        e: &Expr,
        want: &Type,
        scope: &mut Scope,
    ) -> Result<TExpr, LangError> {
        let t = self.synth(e, scope)?;
        if &t.ty != want {
            return Err(LangError::ty(
                format!("expected {}, found {}", want, t.ty),
                e.span,
            ));
        }
        Ok(t)
    }

    /// Synthesizes the type of `e`.
    fn synth(&self, e: &Expr, scope: &mut Scope) -> Result<TExpr, LangError> {
        let span = e.span;
        match &e.kind {
            ExprKind::Int(n) => Ok(TExpr { kind: TExprKind::Int(*n), ty: Type::Int, span }),
            ExprKind::Bool(b) => Ok(TExpr { kind: TExprKind::Bool(*b), ty: Type::Bool, span }),
            ExprKind::Str(s) => Ok(TExpr {
                kind: TExprKind::Str(s.clone()),
                ty: Type::Str,
                span,
            }),
            ExprKind::Char(c) => Ok(TExpr { kind: TExprKind::Char(*c), ty: Type::Char, span }),
            ExprKind::Unit => Ok(TExpr { kind: TExprKind::Unit, ty: Type::Unit, span }),
            ExprKind::Host(h) => Ok(TExpr { kind: TExprKind::Host(*h), ty: Type::Host, span }),
            ExprKind::Var(name) => {
                if let Some((ty, slot)) = scope.lookup(name) {
                    return Ok(TExpr {
                        kind: TExprKind::Local { name: name.clone(), slot },
                        ty,
                        span,
                    });
                }
                if let Some(&index) = self.global_map.get(name) {
                    let g = &self.globals[index as usize];
                    return Ok(TExpr {
                        kind: TExprKind::Global { name: name.clone(), index },
                        ty: g.ty.clone(),
                        span,
                    });
                }
                if self.fun_map.contains_key(name) {
                    return Err(LangError::ty(
                        format!("`{name}` is a function; functions are not values in PLAN-P"),
                        span,
                    ));
                }
                if self.prims.lookup(name).is_some() {
                    return Err(LangError::ty(
                        format!("`{name}` is a primitive; primitives are not values in PLAN-P"),
                        span,
                    ));
                }
                Err(LangError::ty(format!("unbound variable `{name}`"), span))
            }
            ExprKind::Tuple(items) => {
                let out = items
                    .iter()
                    .map(|i| self.synth(i, scope))
                    .collect::<Result<Vec<_>, _>>()?;
                let ty = Type::Tuple(out.iter().map(|t| t.ty.clone()).collect());
                Ok(TExpr { kind: TExprKind::Tuple(out), ty, span })
            }
            ExprKind::Proj(n, inner) => {
                let inner = self.synth(inner, scope)?;
                let Type::Tuple(parts) = &inner.ty else {
                    return Err(LangError::ty(
                        format!("`#{n}` applied to non-tuple type {}", inner.ty),
                        span,
                    ));
                };
                let idx = *n as usize;
                if idx == 0 || idx > parts.len() {
                    return Err(LangError::ty(
                        format!(
                            "`#{n}` out of range for tuple with {} components",
                            parts.len()
                        ),
                        span,
                    ));
                }
                let ty = parts[idx - 1].clone();
                Ok(TExpr {
                    kind: TExprKind::Proj(n - 1, Box::new(inner)),
                    ty,
                    span,
                })
            }
            ExprKind::Call(name, args) => self.check_call(name, args, None, span, scope),
            ExprKind::If(c, t, f) => {
                let c = self.check(c, &Type::Bool, scope)?;
                let t = self.synth(t, scope)?;
                let f = self.check(f, &t.ty.clone(), scope)?;
                let ty = t.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::If(Box::new(c), Box::new(t), Box::new(f)),
                    ty,
                    span,
                })
            }
            ExprKind::Let(binds, body) => self.check_let(binds, body, None, span, scope),
            ExprKind::Seq(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.synth(item, scope)?);
                }
                let ty = out.last().expect("non-empty").ty.clone();
                Ok(TExpr { kind: TExprKind::Seq(out), ty, span })
            }
            ExprKind::Binop(op, a, b) => self.synth_binop(*op, a, b, span, scope),
            ExprKind::Unop(op, a) => {
                let want = match op {
                    UnOp::Not => Type::Bool,
                    UnOp::Neg => Type::Int,
                };
                let a = self.check(a, &want, scope)?;
                Ok(TExpr {
                    kind: TExprKind::Unop(*op, Box::new(a)),
                    ty: want,
                    span,
                })
            }
            ExprKind::Raise(_) => Err(LangError::ty(
                "cannot determine the type of `raise` here; use it where a type is expected (e.g. an `if` branch or `handle`)",
                span,
            )),
            ExprKind::Handle(body, pat, handler) => {
                let body = self.synth(body, scope)?;
                let exn = match pat {
                    ExnPat::Wild => None,
                    ExnPat::Name(n) => Some(self.exn_id(n, span)?),
                };
                let handler = self.check(handler, &body.ty.clone(), scope)?;
                let ty = body.ty.clone();
                Ok(TExpr {
                    kind: TExprKind::Handle(Box::new(body), exn, Box::new(handler)),
                    ty,
                    span,
                })
            }
            ExprKind::List(items) => {
                let Some(first) = items.first() else {
                    return Err(LangError::ty(
                        "cannot infer the element type of `[]` here; add a type annotation",
                        span,
                    ));
                };
                let first = self.synth(first, scope)?;
                let elem = first.ty.clone();
                let mut out = vec![first];
                for item in &items[1..] {
                    out.push(self.check(item, &elem, scope)?);
                }
                Ok(TExpr {
                    kind: TExprKind::List(out),
                    ty: Type::List(Box::new(elem)),
                    span,
                })
            }
            ExprKind::OnRemote(chan, pkt) => {
                self.require_body_ctx(scope, "OnRemote", span)?;
                let pkt = self.synth(pkt, scope)?;
                let overload = self.resolve_send(chan, &pkt.ty, span)?;
                Ok(TExpr {
                    kind: TExprKind::OnRemote {
                        chan: chan.clone(),
                        overload,
                        pkt: Box::new(pkt),
                    },
                    ty: Type::Unit,
                    span,
                })
            }
            ExprKind::OnNeighbor(chan, host, pkt) => {
                self.require_body_ctx(scope, "OnNeighbor", span)?;
                let host = self.check(host, &Type::Host, scope)?;
                let pkt = self.synth(pkt, scope)?;
                let overload = self.resolve_send(chan, &pkt.ty, span)?;
                Ok(TExpr {
                    kind: TExprKind::OnNeighbor {
                        chan: chan.clone(),
                        overload,
                        host: Box::new(host),
                        pkt: Box::new(pkt),
                    },
                    ty: Type::Unit,
                    span,
                })
            }
        }
    }

    fn require_body_ctx(&self, scope: &Scope, what: &str, span: Span) -> Result<(), LangError> {
        if scope.ctx != Ctx::Body {
            return Err(LangError::ty(
                format!("`{what}` is not allowed in initializers"),
                span,
            ));
        }
        Ok(())
    }

    fn resolve_send(&self, chan: &str, pkt_ty: &Type, span: Span) -> Result<u32, LangError> {
        let Some(group) = self.chan_sigs.get(chan) else {
            return Err(LangError::ty(format!("unknown channel `{chan}`"), span));
        };
        if pkt_ty.packet_shape().is_none() {
            return Err(LangError::ty(
                format!("sent value has type {pkt_ty}, which is not a packet type"),
                span,
            ));
        }
        group
            .iter()
            .position(|s| &s.pkt_ty == pkt_ty)
            .map(|i| i as u32)
            .ok_or_else(|| {
                LangError::ty(
                    format!("channel `{chan}` has no overload for packet type {pkt_ty}"),
                    span,
                )
            })
    }

    fn check_let(
        &self,
        binds: &[LetBind],
        body: &Expr,
        want: Option<&Type>,
        span: Span,
        scope: &mut Scope,
    ) -> Result<TExpr, LangError> {
        let Some((first, rest)) = binds.split_first() else {
            // No bindings left: check the body.
            return match want {
                Some(w) => self.check(body, w, scope),
                None => self.synth(body, scope),
            };
        };
        let init = self.check(&first.init, &first.ty, scope)?;
        let slot = scope.push(&first.name, first.ty.clone());
        let inner = self.check_let(rest, body, want, span, scope);
        scope.pop();
        let inner = inner?;
        let ty = inner.ty.clone();
        Ok(TExpr {
            kind: TExprKind::Let {
                name: first.name.clone(),
                slot,
                init: Box::new(init),
                body: Box::new(inner),
            },
            ty,
            span,
        })
    }

    fn check_call(
        &self,
        name: &str,
        args: &[Expr],
        expected: Option<&Type>,
        span: Span,
        scope: &mut Scope,
    ) -> Result<TExpr, LangError> {
        // Shadowing check: a local with this name is not callable.
        if scope.lookup(name).is_some() {
            return Err(LangError::ty(
                format!("`{name}` is a variable here, not a function"),
                span,
            ));
        }
        if let Some(&index) = self.fun_map.get(name) {
            if scope.ctx != Ctx::Body {
                return Err(LangError::ty(
                    "user functions may not be called in initializers",
                    span,
                ));
            }
            let f = &self.funs[index as usize];
            if f.params.len() != args.len() {
                return Err(LangError::ty(
                    format!(
                        "`{name}` takes {} argument(s), {} given",
                        f.params.len(),
                        args.len()
                    ),
                    span,
                ));
            }
            let params: Vec<Type> = f.params.iter().map(|(_, t)| t.clone()).collect();
            let ret = f.ret.clone();
            let targs = args
                .iter()
                .zip(&params)
                .map(|(a, p)| self.check(a, p, scope))
                .collect::<Result<Vec<_>, _>>()?;
            return Ok(TExpr {
                kind: TExprKind::CallFun { index, args: targs },
                ty: ret,
                span,
            });
        }
        if let Some((id, sig)) = self.prims.lookup(name) {
            match scope.ctx {
                Ctx::ValInit if !sig.class.allowed_in_val() => {
                    return Err(LangError::ty(
                        format!("`{name}` is not allowed in `val` initializers"),
                        span,
                    ));
                }
                Ctx::StateInit if !sig.class.allowed_in_state_init() => {
                    return Err(LangError::ty(
                        format!("`{name}` is not allowed in state initializers"),
                        span,
                    ));
                }
                _ => {}
            }
            if sig.arity != args.len() {
                return Err(LangError::ty(
                    format!(
                        "`{name}` takes {} argument(s), {} given",
                        sig.arity,
                        args.len()
                    ),
                    span,
                ));
            }
            let targs = args
                .iter()
                .map(|a| self.synth(a, scope))
                .collect::<Result<Vec<_>, _>>()?;
            let arg_tys: Vec<Type> = targs.iter().map(|t| t.ty.clone()).collect();
            let ty = sig
                .check(&arg_tys, expected)
                .map_err(|msg| LangError::ty(msg, span))?;
            return Ok(TExpr {
                kind: TExprKind::CallPrim {
                    prim: id,
                    args: targs,
                },
                ty,
                span,
            });
        }
        Err(LangError::ty(
            format!("unknown function or primitive `{name}`"),
            span,
        ))
    }

    fn synth_binop(
        &self,
        op: BinOp,
        a: &Expr,
        b: &Expr,
        span: Span,
        scope: &mut Scope,
    ) -> Result<TExpr, LangError> {
        use BinOp::*;
        let (ta, tb, ty) = match op {
            Add | Sub | Mul | Div | Mod => {
                let a = self.check(a, &Type::Int, scope)?;
                let b = self.check(b, &Type::Int, scope)?;
                (a, b, Type::Int)
            }
            Concat => {
                let a = self.check(a, &Type::Str, scope)?;
                let b = self.check(b, &Type::Str, scope)?;
                (a, b, Type::Str)
            }
            And | Or => {
                let a = self.check(a, &Type::Bool, scope)?;
                let b = self.check(b, &Type::Bool, scope)?;
                (a, b, Type::Bool)
            }
            Eq | Ne => {
                let a = self.synth(a, scope)?;
                let b = self.check(b, &a.ty.clone(), scope)?;
                if !a.ty.is_equality() {
                    return Err(LangError::ty(
                        format!("type {} does not support equality", a.ty),
                        span,
                    ));
                }
                (a, b, Type::Bool)
            }
            Lt | Le | Gt | Ge => {
                let a = self.synth(a, scope)?;
                let b = self.check(b, &a.ty.clone(), scope)?;
                if !a.ty.is_ordered() {
                    return Err(LangError::ty(
                        format!("type {} does not support ordering", a.ty),
                        span,
                    ));
                }
                (a, b, Type::Bool)
            }
        };
        Ok(TExpr {
            kind: TExprKind::Binop(op, Box::new(ta), Box::new(tb)),
            ty,
            span,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_program;

    fn check_ok(src: &str) -> TProgram {
        let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
        typecheck(&prog).unwrap_or_else(|e| panic!("typecheck failed: {}\nsource: {src}", e))
    }

    fn check_err(src: &str) -> LangError {
        let prog = parse_program(src).unwrap_or_else(|e| panic!("parse: {e}"));
        typecheck(&prog).expect_err("expected a type error")
    }

    const TRIVIAL_CH: &str = "channel network(ps : int, ss : int, p : ip*udp*blob) is (ps, ss)";

    #[test]
    fn trivial_channel_checks() {
        let tp = check_ok(TRIVIAL_CH);
        assert_eq!(tp.channels.len(), 1);
        assert_eq!(tp.proto_ty, Type::Int);
        assert_eq!(tp.channels[0].nlocals, 3);
    }

    #[test]
    fn program_needs_a_channel() {
        let err = check_err("val x : int = 1");
        assert!(err.message.contains("at least one channel"));
    }

    #[test]
    fn val_and_arith() {
        let tp = check_ok(&format!("val two : int = 1 + 1\n{TRIVIAL_CH}"));
        assert_eq!(tp.globals.len(), 1);
        assert_eq!(tp.globals[0].ty, Type::Int);
    }

    #[test]
    fn val_type_mismatch() {
        let err = check_err(&format!("val x : int = true\n{TRIVIAL_CH}"));
        assert!(err.message.contains("expected int, found bool"));
    }

    #[test]
    fn use_before_declaration_rejected() {
        // `y` references `z` declared later: no recursion, no forward refs.
        let err = check_err(&format!("val y : int = z\nval z : int = 1\n{TRIVIAL_CH}"));
        assert!(err.message.contains("unbound variable `z`"));
    }

    #[test]
    fn fun_cannot_call_itself() {
        let err = check_err(&format!("fun f(x : int) : int = f(x - 1)\n{TRIVIAL_CH}"));
        assert!(err.message.contains("unknown function"));
    }

    #[test]
    fn fun_calls_earlier_fun() {
        check_ok(&format!(
            "fun inc(x : int) : int = x + 1\nfun inc2(x : int) : int = inc(inc(x))\n{TRIVIAL_CH}"
        ));
    }

    #[test]
    fn channel_state_types_must_agree() {
        let err = check_err(
            "channel a(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
             channel b(ps : bool, ss : unit, p : ip*tcp*blob) is (ps, ss)",
        );
        assert!(err.message.contains("protocol state"));
    }

    #[test]
    fn ambiguous_overload_rejected() {
        let err = check_err(
            "channel a(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)\n\
             channel a(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)",
        );
        assert!(err.message.contains("ambiguous"));
    }

    #[test]
    fn invalid_packet_type_rejected() {
        let err = check_err("channel a(ps : int, ss : unit, p : int) is (ps, ss)");
        assert!(err.message.contains("invalid packet type"));
    }

    #[test]
    fn body_must_return_state_pair() {
        let err = check_err("channel a(ps : int, ss : int, p : ip*udp*blob) is ps");
        assert!(err.message.contains("expected int*int"));
    }

    #[test]
    fn mktable_typed_from_initstate() {
        let tp = check_ok(
            "channel a(ps : unit, ss : (host, int) hash_table, p : ip*udp*blob)\n\
             initstate mkTable(64) is (ps, ss)",
        );
        assert_eq!(
            tp.channels[0].ss_ty,
            Type::Table(Box::new(Type::Host), Box::new(Type::Int))
        );
    }

    #[test]
    fn mktable_without_context_rejected() {
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is (print(mkTable(4)); (ps, ss))",
        );
        assert!(err.message.contains("cannot infer"));
    }

    #[test]
    fn table_without_initstate_defaults() {
        // hash_table is defaultable (empty table).
        check_ok("channel a(ps : unit, ss : (host, int) hash_table, p : ip*udp*blob) is (ps, ss)");
    }

    #[test]
    fn on_remote_resolves_overload() {
        let tp = check_ok(
            "channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps, ss))",
        );
        let body = &tp.channels[0].body;
        let mut found = false;
        body.walk(&mut |e| {
            if let TExprKind::OnRemote { chan, overload, .. } = &e.kind {
                assert_eq!(chan, "network");
                assert_eq!(*overload, 0);
                found = true;
            }
        });
        assert!(found);
    }

    #[test]
    fn on_remote_unknown_channel() {
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is (OnRemote(b, p); (ps, ss))",
        );
        assert!(err.message.contains("unknown channel `b`"));
    }

    #[test]
    fn on_remote_no_matching_overload() {
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(a, (#1 p, #2 p)); (ps, ss))",
        );
        assert!(
            err.message.contains("not a packet type") || err.message.contains("no overload"),
            "{}",
            err.message
        );
    }

    #[test]
    fn forward_channel_reference_allowed() {
        check_ok(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is (OnRemote(b, p); (ps, ss))\n\
             channel b(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)",
        );
    }

    #[test]
    fn raise_and_handle() {
        check_ok(
            "exception Busy\n\
             channel a(ps : int, ss : int, p : ip*udp*blob) is\n\
             ((if ps > 10 then raise Busy else ps, ss) handle Busy => (0, ss))",
        );
    }

    #[test]
    fn unknown_exception_rejected() {
        let err = check_err(
            "channel a(ps : int, ss : int, p : ip*udp*blob) is\n\
             ((ps, ss) handle Zorp => (0, ss))",
        );
        assert!(err.message.contains("unknown exception `Zorp`"));
    }

    #[test]
    fn duplicate_exception_rejected() {
        let err = check_err(&format!("exception NotFound\n{TRIVIAL_CH}"));
        assert!(err.message.contains("already declared"));
    }

    #[test]
    fn raise_in_initializer_rejected() {
        let err = check_err(
            "channel a(ps : int, ss : int, p : ip*udp*blob) initstate raise NotFound is (ps, ss)",
        );
        assert!(err.message.contains("not allowed in initializers"));
    }

    #[test]
    fn io_primitive_in_val_rejected() {
        let err = check_err(&format!("val t : int = timeMs()\n{TRIVIAL_CH}"));
        assert!(err.message.contains("not allowed in `val`"));
    }

    #[test]
    fn proj_type_and_bounds() {
        check_ok(
            "channel a(ps : unit, ss : unit, p : ip*tcp*blob) is (print(blobLen(#3 p)); (ps, ss))",
        );
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*tcp*blob) is (print(#4 p); (ps, ss))",
        );
        assert!(err.message.contains("out of range"));
    }

    #[test]
    fn equality_restrictions() {
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             (if #1 p = #1 p then (ps, ss) else (ps, ss))",
        );
        assert!(err.message.contains("does not support equality"));
    }

    #[test]
    fn ordering_restrictions() {
        let err = check_err(
            "channel a(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             (if true < false then (ps, ss) else (ps, ss))",
        );
        assert!(err.message.contains("does not support ordering"));
    }

    #[test]
    fn figure2_like_program_checks() {
        let src = r#"
val server0 : host = 131.254.60.81
val server1 : host = 131.254.60.109

fun pick(ps : int) : int = ps mod 2

channel network(ps : int, ss : ((host*int), int) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 then
      let
        val con : int =
          tblGet(ss, (ipSrc(iph), tcpSrc(tcph)))
          handle NotFound =>
            let val c : int = pick(ps) in
              (tblSet(ss, (ipSrc(iph), tcpSrc(tcph)), c); c)
            end
      in
        if con = 0 then
          (OnRemote(network, (ipDestSet(iph, server0), tcph, body)); (ps + 1, ss))
        else
          (OnRemote(network, (ipDestSet(iph, server1), tcph, body)); (ps + 1, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
"#;
        let tp = check_ok(src);
        assert_eq!(tp.globals.len(), 2);
        assert_eq!(tp.funs.len(), 1);
        assert_eq!(tp.channels.len(), 1);
    }

    #[test]
    fn figure4_overloads_check() {
        let src = r#"
val CmdA : int = 1
val CmdB : int = 2

channel network(ps : unit, ss : unit, p : ip*tcp*char*int) is
  if charPos(#3 p) = CmdA then
    (print("CmdA: "); println(#4 p); (ps, ss))
  else
    (ps, ss)

channel network(ps : unit, ss : unit, p : ip*tcp*char*bool) is
  if charPos(#3 p) = CmdB then
    (print("CmdB: "); println(#4 p); (ps, ss))
  else
    (ps, ss)
"#;
        let tp = check_ok(src);
        assert_eq!(tp.channels.len(), 2);
        assert_eq!(tp.chan_groups["network"], vec![0, 1]);
        assert_eq!(tp.channels[1].overload, 1);
    }

    #[test]
    fn locals_shadow_globals() {
        check_ok(
            "val x : int = 1\n\
             channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             let val x : bool = true in (if x then (ps, ss) else (ps, ss)) end\n",
        );
    }

    #[test]
    fn redeclaring_primitive_rejected() {
        let err = check_err(&format!("val ipSrc : int = 1\n{TRIVIAL_CH}"));
        assert!(err.message.contains("primitive"));
    }

    #[test]
    fn nlocals_counts_peak_let_depth() {
        let tp = check_ok(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             let val x : int = 1 in\n\
               let val y : int = x + 1 in (print(y); (ps, ss)) end\n\
             end",
        );
        // 3 params + 2 nested lets
        assert_eq!(tp.channels[0].nlocals, 5);
    }

    #[test]
    fn sequential_lets_reuse_slots() {
        let tp = check_ok(
            "channel a(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (print(let val x : int = 1 in x end);\n\
              print(let val y : int = 2 in y end);\n\
              (ps, ss))",
        );
        // 3 params + 1 reused slot
        assert_eq!(tp.channels[0].nlocals, 4);
    }

    #[test]
    fn proto_declaration_typed_against_channel_state() {
        let tp = check_ok(&format!("proto 42\n{TRIVIAL_CH}"));
        assert!(tp.proto_init.is_some());
        let err = check_err(&format!("proto true\n{TRIVIAL_CH}"));
        assert!(err.message.contains("expected int"));
    }

    #[test]
    fn duplicate_proto_rejected() {
        let err = check_err(&format!("proto 1 proto 2\n{TRIVIAL_CH}"));
        assert!(err.message.contains("duplicate `proto`"));
    }

    #[test]
    fn empty_list_needs_annotation() {
        let err =
            check_err("channel a(ps : unit, ss : unit, p : ip*udp*blob) is (print([]); (ps, ss))");
        assert!(err.message.contains("cannot infer"));
        check_ok("channel a(ps : unit, ss : int list, p : ip*udp*blob) initstate [] is (ps, ss)");
    }

    #[test]
    fn deliver_accepts_packet() {
        check_ok("channel a(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))");
    }
}
