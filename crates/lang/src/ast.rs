//! Untyped abstract syntax produced by the parser.

use crate::span::Span;
use crate::types::Type;

/// A parsed PLAN-P program: an ordered sequence of top-level declarations.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// Declarations in source order. Order matters: `val` and `fun` names
    /// are only visible to later declarations (this is what rules out
    /// recursion), while `channel` names are visible program-wide.
    pub decls: Vec<Decl>,
}

impl Program {
    /// Iterates over the channel declarations in source order.
    pub fn channels(&self) -> impl Iterator<Item = &ChannelDecl> {
        self.decls.iter().filter_map(|d| match d {
            Decl::Channel(c) => Some(c),
            _ => None,
        })
    }
}

/// A top-level declaration.
#[derive(Debug, Clone, PartialEq)]
pub enum Decl {
    /// `val name : ty = expr`
    Val(ValDecl),
    /// `fun name(params) : ret = body`
    Fun(FunDecl),
    /// `exception Name`
    Exception(ExnDecl),
    /// `proto expr` — initial protocol state (our documented extension; when
    /// absent the protocol state is default-initialized from its type).
    Proto(ProtoDecl),
    /// `channel name(ps, ss, p) [initstate e] is body`
    Channel(ChannelDecl),
}

impl Decl {
    /// The span of the whole declaration.
    pub fn span(&self) -> Span {
        match self {
            Decl::Val(d) => d.span,
            Decl::Fun(d) => d.span,
            Decl::Exception(d) => d.span,
            Decl::Proto(d) => d.span,
            Decl::Channel(d) => d.span,
        }
    }
}

/// `val name : ty = init`
#[derive(Debug, Clone, PartialEq)]
pub struct ValDecl {
    /// Bound name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initializer (must be evaluable at load time; checked by the type
    /// checker to be effect-free).
    pub init: Expr,
    /// Whole-declaration span.
    pub span: Span,
}

/// `fun name(x1 : t1, …) : ret = body`
#[derive(Debug, Clone, PartialEq)]
pub struct FunDecl {
    /// Function name.
    pub name: String,
    /// Parameters with declared types.
    pub params: Vec<(String, Type)>,
    /// Declared return type.
    pub ret: Type,
    /// Function body.
    pub body: Expr,
    /// Whole-declaration span.
    pub span: Span,
}

/// `exception Name`
#[derive(Debug, Clone, PartialEq)]
pub struct ExnDecl {
    /// Exception name.
    pub name: String,
    /// Whole-declaration span.
    pub span: Span,
}

/// `proto expr`
#[derive(Debug, Clone, PartialEq)]
pub struct ProtoDecl {
    /// Initial protocol-state expression.
    pub init: Expr,
    /// Whole-declaration span.
    pub span: Span,
}

/// A channel definition.
///
/// Channels sharing one name are *overloaded* (section 2.3 of the paper):
/// dispatch tries each overload in declaration order and runs the first
/// whose packet type matches the arriving packet.
#[derive(Debug, Clone, PartialEq)]
pub struct ChannelDecl {
    /// Channel name; `network` is distinguished (matches untagged traffic).
    pub name: String,
    /// Protocol-state parameter `(name, type)` — shared across channels.
    pub ps: (String, Type),
    /// Channel-state parameter `(name, type)` — local to this overload.
    pub ss: (String, Type),
    /// Packet parameter `(name, type)`; the type selects which packets the
    /// channel applies to.
    pub pkt: (String, Type),
    /// Optional initial channel state (`initstate e`); required unless the
    /// state type is defaultable.
    pub initstate: Option<Expr>,
    /// The channel body; must evaluate to `(ps', ss')`.
    pub body: Expr,
    /// Whole-declaration span.
    pub span: Span,
}

/// An expression with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Expr {
    /// The expression form.
    pub kind: ExprKind,
    /// Source location.
    pub span: Span,
}

impl Expr {
    /// Convenience constructor.
    pub fn new(kind: ExprKind, span: Span) -> Self {
        Expr { kind, span }
    }
}

/// Expression forms.
#[derive(Debug, Clone, PartialEq)]
pub enum ExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(char),
    /// Unit literal `()`.
    Unit,
    /// Host literal `a.b.c.d`.
    Host(u32),
    /// Variable reference.
    Var(String),
    /// Tuple construction `(e1, e2, …)` (at least two components).
    Tuple(Vec<Expr>),
    /// Tuple projection `#n e` (1-based).
    Proj(u32, Box<Expr>),
    /// Call of a user function or primitive: `f(args)`.
    Call(String, Vec<Expr>),
    /// `if c then t else e`
    If(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `let val x : t = e … in body end`
    Let(Vec<LetBind>, Box<Expr>),
    /// Sequencing `(e1; e2; …)` — value of the last expression.
    Seq(Vec<Expr>),
    /// Binary operator application.
    Binop(BinOp, Box<Expr>, Box<Expr>),
    /// Unary operator application.
    Unop(UnOp, Box<Expr>),
    /// `raise Exn`
    Raise(String),
    /// `e handle pat => h`
    Handle(Box<Expr>, ExnPat, Box<Expr>),
    /// List literal `[e1, e2, …]`.
    List(Vec<Expr>),
    /// `OnRemote(chan, pkt)` — re-send `pkt` into the network toward its IP
    /// destination, to be processed by channel `chan` at the next PLAN-P
    /// node (and delivered on arrival).
    OnRemote(String, Box<Expr>),
    /// `OnNeighbor(chan, host, pkt)` — send `pkt` directly to a neighboring
    /// `host` for processing by channel `chan` there.
    OnNeighbor(String, Box<Expr>, Box<Expr>),
}

/// One `val x : t = e` binding inside a `let`.
#[derive(Debug, Clone, PartialEq)]
pub struct LetBind {
    /// Bound name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Initializer.
    pub init: Expr,
    /// Span of the binding.
    pub span: Span,
}

/// The pattern of a `handle` clause.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExnPat {
    /// `handle Name => …` — catches exactly that exception.
    Name(String),
    /// `handle _ => …` — catches every exception.
    Wild,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `div` (truncating; raises `Div` on zero)
    Div,
    /// `mod` (raises `Div` on zero)
    Mod,
    /// `^` string concatenation
    Concat,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `andalso` (short-circuit)
    And,
    /// `orelse` (short-circuit)
    Or,
}

impl BinOp {
    /// The surface spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "div",
            BinOp::Mod => "mod",
            BinOp::Concat => "^",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "andalso",
            BinOp::Or => "orelse",
        }
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum UnOp {
    /// `not`
    Not,
    /// Unary minus.
    Neg,
}

impl UnOp {
    /// The surface spelling of the operator.
    pub fn symbol(self) -> &'static str {
        match self {
            UnOp::Not => "not",
            UnOp::Neg => "-",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn program_channels_filters() {
        let ch = ChannelDecl {
            name: "network".into(),
            ps: ("ps".into(), Type::Unit),
            ss: ("ss".into(), Type::Unit),
            pkt: (
                "p".into(),
                Type::Tuple(vec![Type::Ip, Type::Tcp, Type::Blob]),
            ),
            initstate: None,
            body: Expr::new(ExprKind::Unit, Span::dummy()),
            span: Span::dummy(),
        };
        let prog = Program {
            decls: vec![
                Decl::Exception(ExnDecl {
                    name: "E".into(),
                    span: Span::dummy(),
                }),
                Decl::Channel(ch.clone()),
            ],
        };
        assert_eq!(prog.channels().count(), 1);
        assert_eq!(prog.channels().next().unwrap().name, "network");
    }

    #[test]
    fn operator_symbols() {
        assert_eq!(BinOp::Ne.symbol(), "<>");
        assert_eq!(UnOp::Not.symbol(), "not");
    }
}
