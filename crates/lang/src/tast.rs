//! Typed abstract syntax — the output of the type checker and the input to
//! the safety analyses, the portable interpreter, and the JIT specializer.
//!
//! Compared with the untyped AST, every expression carries its [`Type`],
//! variable references are resolved to local slots or global indices,
//! calls are resolved to user functions or [`PrimId`]s, multi-binding
//! `let`s are desugared into nested single bindings, and `OnRemote`
//! targets are resolved to a specific channel overload.

use crate::ast::{BinOp, UnOp};
use crate::prims::PrimId;
use crate::span::Span;
use crate::types::{PacketShape, Type};
use std::collections::HashMap;

/// Identifies an exception: an index into [`TProgram::exns`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ExnId(pub u32);

/// A fully type-checked program.
#[derive(Debug, Clone)]
pub struct TProgram {
    /// `val` globals in declaration order.
    pub globals: Vec<TGlobal>,
    /// `fun` definitions in declaration order (bodies may call only earlier
    /// functions, which is what guarantees local termination).
    pub funs: Vec<TFun>,
    /// Exception names; predeclared exceptions first, then user
    /// declarations. Index = [`ExnId`].
    pub exns: Vec<String>,
    /// The protocol-state type shared by all channels.
    pub proto_ty: Type,
    /// Initial protocol state; `None` means default-initialize from
    /// `proto_ty`.
    pub proto_init: Option<TExpr>,
    /// Channel overload instances in declaration order.
    pub channels: Vec<TChannel>,
    /// Channel name → indices into `channels`, in declaration order.
    pub chan_groups: HashMap<String, Vec<usize>>,
}

impl TProgram {
    /// Returns the channel at `index`.
    pub fn channel(&self, index: usize) -> &TChannel {
        &self.channels[index]
    }

    /// Resolves an exception name to its id.
    pub fn exn_id(&self, name: &str) -> Option<ExnId> {
        self.exns
            .iter()
            .position(|n| n == name)
            .map(|i| ExnId(i as u32))
    }
}

/// A `val` global.
#[derive(Debug, Clone)]
pub struct TGlobal {
    /// Name.
    pub name: String,
    /// Declared type.
    pub ty: Type,
    /// Load-time initializer (pure).
    pub init: TExpr,
    /// Source span of the declaration.
    pub span: Span,
}

/// A `fun` definition.
#[derive(Debug, Clone)]
pub struct TFun {
    /// Name.
    pub name: String,
    /// Parameter names and types; parameters occupy local slots `0..n`.
    pub params: Vec<(String, Type)>,
    /// Declared return type.
    pub ret: Type,
    /// Body.
    pub body: TExpr,
    /// Total number of local slots the body needs (params + lets).
    pub nlocals: u32,
    /// Source span of the declaration.
    pub span: Span,
}

/// One channel overload instance.
#[derive(Debug, Clone)]
pub struct TChannel {
    /// Channel name (`network` matches untagged traffic).
    pub name: String,
    /// Index of this overload within its name group (declaration order).
    pub overload: u32,
    /// Protocol-state parameter name (slot 0).
    pub ps_name: String,
    /// Channel-state parameter name (slot 1).
    pub ss_name: String,
    /// Packet parameter name (slot 2).
    pub pkt_name: String,
    /// Channel-state type.
    pub ss_ty: Type,
    /// Packet type this overload matches.
    pub pkt_ty: Type,
    /// Decomposition of `pkt_ty` (validated by the checker).
    pub shape: PacketShape,
    /// Initial channel state; `None` means default-initialize from `ss_ty`.
    pub initstate: Option<TExpr>,
    /// Body; evaluates to `(ps', ss')`.
    pub body: TExpr,
    /// Total number of local slots the body needs (3 params + lets).
    pub nlocals: u32,
    /// Source span of the declaration.
    pub span: Span,
}

/// A typed expression.
#[derive(Debug, Clone)]
pub struct TExpr {
    /// The expression form.
    pub kind: TExprKind,
    /// The expression's type.
    pub ty: Type,
    /// Source location.
    pub span: Span,
}

/// Typed expression forms.
#[derive(Debug, Clone)]
pub enum TExprKind {
    /// Integer literal.
    Int(i64),
    /// Boolean literal.
    Bool(bool),
    /// String literal.
    Str(String),
    /// Character literal.
    Char(char),
    /// Unit literal.
    Unit,
    /// Host literal.
    Host(u32),
    /// Local variable (parameter or `let` binding).
    Local {
        /// Surface name (used by the portable interpreter's named lookup).
        name: String,
        /// Pre-resolved frame slot (used by the JIT).
        slot: u32,
    },
    /// `val` global.
    Global {
        /// Surface name.
        name: String,
        /// Index into [`TProgram::globals`].
        index: u32,
    },
    /// Tuple construction.
    Tuple(Vec<TExpr>),
    /// Tuple projection; `index` is 0-based here (surface syntax is 1-based).
    Proj(u32, Box<TExpr>),
    /// Call of a user function.
    CallFun {
        /// Index into [`TProgram::funs`].
        index: u32,
        /// Arguments.
        args: Vec<TExpr>,
    },
    /// Call of a primitive.
    CallPrim {
        /// Which primitive.
        prim: PrimId,
        /// Arguments.
        args: Vec<TExpr>,
    },
    /// Conditional.
    If(Box<TExpr>, Box<TExpr>, Box<TExpr>),
    /// Single `let` binding (multi-binding lets are desugared to nesting).
    Let {
        /// Bound name.
        name: String,
        /// Frame slot.
        slot: u32,
        /// Initializer.
        init: Box<TExpr>,
        /// Body.
        body: Box<TExpr>,
    },
    /// Sequencing; value of the last expression.
    Seq(Vec<TExpr>),
    /// Binary operation.
    Binop(BinOp, Box<TExpr>, Box<TExpr>),
    /// Unary operation.
    Unop(UnOp, Box<TExpr>),
    /// `raise`.
    Raise(ExnId),
    /// `handle`; `None` pattern catches everything.
    Handle(Box<TExpr>, Option<ExnId>, Box<TExpr>),
    /// List literal.
    List(Vec<TExpr>),
    /// `OnRemote(chan, pkt)` resolved to a channel overload.
    OnRemote {
        /// Target channel name.
        chan: String,
        /// Resolved overload index within the name group.
        overload: u32,
        /// Packet expression.
        pkt: Box<TExpr>,
    },
    /// `OnNeighbor(chan, host, pkt)` resolved to a channel overload.
    OnNeighbor {
        /// Target channel name.
        chan: String,
        /// Resolved overload index within the name group.
        overload: u32,
        /// Destination neighbor.
        host: Box<TExpr>,
        /// Packet expression.
        pkt: Box<TExpr>,
    },
}

impl TExpr {
    /// Visits this expression and all sub-expressions, pre-order.
    pub fn walk<'a>(&'a self, f: &mut impl FnMut(&'a TExpr)) {
        f(self);
        match &self.kind {
            TExprKind::Int(_)
            | TExprKind::Bool(_)
            | TExprKind::Str(_)
            | TExprKind::Char(_)
            | TExprKind::Unit
            | TExprKind::Host(_)
            | TExprKind::Local { .. }
            | TExprKind::Global { .. }
            | TExprKind::Raise(_) => {}
            TExprKind::Tuple(items) | TExprKind::Seq(items) | TExprKind::List(items) => {
                for e in items {
                    e.walk(f);
                }
            }
            TExprKind::Proj(_, e) | TExprKind::Unop(_, e) => e.walk(f),
            TExprKind::CallFun { args, .. } | TExprKind::CallPrim { args, .. } => {
                for a in args {
                    a.walk(f);
                }
            }
            TExprKind::If(c, t, e) => {
                c.walk(f);
                t.walk(f);
                e.walk(f);
            }
            TExprKind::Let { init, body, .. } => {
                init.walk(f);
                body.walk(f);
            }
            TExprKind::Binop(_, a, b) => {
                a.walk(f);
                b.walk(f);
            }
            TExprKind::Handle(e, _, h) => {
                e.walk(f);
                h.walk(f);
            }
            TExprKind::OnRemote { pkt, .. } => pkt.walk(f),
            TExprKind::OnNeighbor { host, pkt, .. } => {
                host.walk(f);
                pkt.walk(f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn leaf(kind: TExprKind, ty: Type) -> TExpr {
        TExpr {
            kind,
            ty,
            span: Span::dummy(),
        }
    }

    #[test]
    fn walk_visits_all_nodes() {
        let e = TExpr {
            kind: TExprKind::If(
                Box::new(leaf(TExprKind::Bool(true), Type::Bool)),
                Box::new(leaf(TExprKind::Int(1), Type::Int)),
                Box::new(TExpr {
                    kind: TExprKind::Tuple(vec![
                        leaf(TExprKind::Int(2), Type::Int),
                        leaf(TExprKind::Int(3), Type::Int),
                    ]),
                    ty: Type::Tuple(vec![Type::Int, Type::Int]),
                    span: Span::dummy(),
                }),
            ),
            ty: Type::Int,
            span: Span::dummy(),
        };
        let mut n = 0;
        e.walk(&mut |_| n += 1);
        assert_eq!(n, 6);
    }
}
