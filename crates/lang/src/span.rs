//! Byte-offset source spans and human-readable source positions.

use std::fmt;

/// A half-open byte range `[start, end)` into the source text.
///
/// Spans are attached to every token, expression, and declaration so that
/// errors from any phase (lexing through safety analysis) can point back at
/// the offending source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Span {
    /// Byte offset of the first character.
    pub start: u32,
    /// Byte offset one past the last character.
    pub end: u32,
}

impl Span {
    /// Creates a span covering `[start, end)`.
    pub fn new(start: u32, end: u32) -> Self {
        Span { start, end }
    }

    /// A zero-width placeholder span (used for synthesized nodes).
    pub fn dummy() -> Self {
        Span { start: 0, end: 0 }
    }

    /// The smallest span covering both `self` and `other`.
    pub fn merge(self, other: Span) -> Span {
        Span {
            start: self.start.min(other.start),
            end: self.end.max(other.end),
        }
    }

    /// Extracts the spanned slice of `src`.
    ///
    /// Returns an empty string if the span is out of bounds (e.g. a dummy
    /// span against unrelated source).
    pub fn slice<'s>(&self, src: &'s str) -> &'s str {
        src.get(self.start as usize..self.end as usize)
            .unwrap_or("")
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}..{}", self.start, self.end)
    }
}

/// A 1-based line/column position, computed on demand from a span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineCol {
    /// 1-based line number.
    pub line: u32,
    /// 1-based column (in bytes).
    pub col: u32,
}

impl fmt::Display for LineCol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.line, self.col)
    }
}

/// Computes the [`LineCol`] of byte `offset` within `src`.
pub fn line_col(src: &str, offset: u32) -> LineCol {
    let offset = (offset as usize).min(src.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for (i, b) in src.bytes().enumerate() {
        if i >= offset {
            break;
        }
        if b == b'\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    LineCol { line, col }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_covers_both() {
        let a = Span::new(3, 7);
        let b = Span::new(5, 12);
        assert_eq!(a.merge(b), Span::new(3, 12));
        assert_eq!(b.merge(a), Span::new(3, 12));
    }

    #[test]
    fn slice_extracts_text() {
        let src = "val x : int = 42";
        assert_eq!(Span::new(4, 5).slice(src), "x");
    }

    #[test]
    fn slice_out_of_bounds_is_empty() {
        assert_eq!(Span::new(10, 20).slice("short"), "");
    }

    #[test]
    fn line_col_first_line() {
        assert_eq!(line_col("abc", 1), LineCol { line: 1, col: 2 });
    }

    #[test]
    fn line_col_after_newlines() {
        let src = "ab\ncd\nef";
        assert_eq!(line_col(src, 3), LineCol { line: 2, col: 1 });
        assert_eq!(line_col(src, 7), LineCol { line: 3, col: 2 });
    }

    #[test]
    fn line_col_clamps_past_end() {
        let src = "ab";
        assert_eq!(line_col(src, 100), LineCol { line: 1, col: 3 });
    }
}
