//! Lexer for PLAN-P source text.
//!
//! Notable lexical features, all visible in the paper's program fragments:
//!
//! * `--` line comments (figure 2) and nested `(* … *)` block comments (SML);
//! * IPv4 host literals written directly in source: `131.254.60.81`;
//! * SML-style character literals `#"c"` and tuple projections `#1`;
//! * multi-character operators `<>`, `<=`, `>=`, `=>`.

use crate::error::LangError;
use crate::span::Span;
use crate::token::{Token, TokenKind};

/// Lexes `src` into a token stream terminated by a single [`TokenKind::Eof`].
///
/// # Errors
///
/// Returns a [`LangError`] on malformed input: unterminated strings or block
/// comments, bad escapes, bad host literals, stray characters, or integer
/// literals that overflow `i64`.
pub fn lex(src: &str) -> Result<Vec<Token>, LangError> {
    Lexer::new(src).run()
}

struct Lexer<'s> {
    src: &'s str,
    bytes: &'s [u8],
    pos: usize,
    tokens: Vec<Token>,
}

impl<'s> Lexer<'s> {
    fn new(src: &'s str) -> Self {
        Lexer {
            src,
            bytes: src.as_bytes(),
            pos: 0,
            tokens: Vec::new(),
        }
    }

    fn run(mut self) -> Result<Vec<Token>, LangError> {
        while self.pos < self.bytes.len() {
            self.skip_trivia()?;
            if self.pos >= self.bytes.len() {
                break;
            }
            let start = self.pos;
            let c = self.bytes[self.pos];
            match c {
                b'0'..=b'9' => self.number(start)?,
                b'"' => self.string(start)?,
                b'#' => self.hash(start)?,
                b'(' => self.punct(start, 1, TokenKind::LParen),
                b')' => self.punct(start, 1, TokenKind::RParen),
                b'[' => self.punct(start, 1, TokenKind::LBracket),
                b']' => self.punct(start, 1, TokenKind::RBracket),
                b',' => self.punct(start, 1, TokenKind::Comma),
                b';' => self.punct(start, 1, TokenKind::Semi),
                b':' => self.punct(start, 1, TokenKind::Colon),
                b'*' => self.punct(start, 1, TokenKind::Star),
                b'+' => self.punct(start, 1, TokenKind::Plus),
                b'-' => self.punct(start, 1, TokenKind::Minus),
                b'^' => self.punct(start, 1, TokenKind::Caret),
                b'=' => {
                    if self.peek_at(1) == Some(b'>') {
                        self.punct(start, 2, TokenKind::DArrow);
                    } else {
                        self.punct(start, 1, TokenKind::Eq);
                    }
                }
                b'<' => match self.peek_at(1) {
                    Some(b'>') => self.punct(start, 2, TokenKind::Ne),
                    Some(b'=') => self.punct(start, 2, TokenKind::Le),
                    _ => self.punct(start, 1, TokenKind::Lt),
                },
                b'>' => {
                    if self.peek_at(1) == Some(b'=') {
                        self.punct(start, 2, TokenKind::Ge);
                    } else {
                        self.punct(start, 1, TokenKind::Gt);
                    }
                }
                b'_' => {
                    // `_` alone is the wildcard; `_x` is an identifier.
                    if self
                        .peek_at(1)
                        .is_some_and(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'\'')
                    {
                        self.ident(start);
                    } else {
                        self.punct(start, 1, TokenKind::Underscore);
                    }
                }
                c if c.is_ascii_alphabetic() => self.ident(start),
                other => {
                    return Err(LangError::lex(
                        format!("unexpected character `{}`", other as char),
                        Span::new(start as u32, start as u32 + 1),
                    ))
                }
            }
        }
        let end = self.src.len() as u32;
        self.tokens.push(Token {
            kind: TokenKind::Eof,
            span: Span::new(end, end),
        });
        Ok(self.tokens)
    }

    fn peek_at(&self, off: usize) -> Option<u8> {
        self.bytes.get(self.pos + off).copied()
    }

    fn push(&mut self, kind: TokenKind, start: usize, end: usize) {
        self.tokens.push(Token {
            kind,
            span: Span::new(start as u32, end as u32),
        });
    }

    fn punct(&mut self, start: usize, len: usize, kind: TokenKind) {
        self.pos = start + len;
        self.push(kind, start, start + len);
    }

    /// Skips whitespace, `--` line comments, and nested `(* *)` comments.
    fn skip_trivia(&mut self) -> Result<(), LangError> {
        loop {
            while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            if self.pos + 1 < self.bytes.len()
                && self.bytes[self.pos] == b'-'
                && self.bytes[self.pos + 1] == b'-'
            {
                while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\n' {
                    self.pos += 1;
                }
                continue;
            }
            if self.pos + 1 < self.bytes.len()
                && self.bytes[self.pos] == b'('
                && self.bytes[self.pos + 1] == b'*'
            {
                let start = self.pos;
                self.pos += 2;
                let mut depth = 1usize;
                while depth > 0 {
                    if self.pos + 1 >= self.bytes.len() {
                        return Err(LangError::lex(
                            "unterminated block comment",
                            Span::new(start as u32, self.src.len() as u32),
                        ));
                    }
                    match (self.bytes[self.pos], self.bytes[self.pos + 1]) {
                        (b'(', b'*') => {
                            depth += 1;
                            self.pos += 2;
                        }
                        (b'*', b')') => {
                            depth -= 1;
                            self.pos += 2;
                        }
                        _ => self.pos += 1,
                    }
                }
                continue;
            }
            return Ok(());
        }
    }

    fn read_int(&mut self) -> Result<i64, LangError> {
        let start = self.pos;
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_digit() {
            self.pos += 1;
        }
        self.src[start..self.pos].parse::<i64>().map_err(|_| {
            LangError::lex(
                "integer literal overflows 64 bits",
                Span::new(start as u32, self.pos as u32),
            )
        })
    }

    /// Lexes an integer literal or, when followed by three more dotted
    /// octets, an IPv4 host literal.
    fn number(&mut self, start: usize) -> Result<(), LangError> {
        let first = self.read_int()?;
        // Host literal: `a.b.c.d` where each part is an octet. The grammar
        // has no floating point, so a digit after `.` is unambiguous.
        if self.peek_at(0) == Some(b'.') && self.peek_at(1).is_some_and(|b| b.is_ascii_digit()) {
            let mut octets = vec![first];
            while octets.len() < 4 {
                if self.peek_at(0) == Some(b'.')
                    && self.peek_at(1).is_some_and(|b| b.is_ascii_digit())
                {
                    self.pos += 1; // consume `.`
                    octets.push(self.read_int()?);
                } else {
                    break;
                }
            }
            let span = Span::new(start as u32, self.pos as u32);
            if octets.len() != 4 || octets.iter().any(|&o| !(0..=255).contains(&o)) {
                return Err(LangError::lex(
                    "malformed host literal (expected four octets in 0..=255)",
                    span,
                ));
            }
            let addr = ((octets[0] as u32) << 24)
                | ((octets[1] as u32) << 16)
                | ((octets[2] as u32) << 8)
                | octets[3] as u32;
            self.push(TokenKind::Host(addr), start, self.pos);
        } else {
            self.push(TokenKind::Int(first), start, self.pos);
        }
        Ok(())
    }

    fn string(&mut self, start: usize) -> Result<(), LangError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek_at(0) {
                None | Some(b'\n') => {
                    return Err(LangError::lex(
                        "unterminated string literal",
                        Span::new(start as u32, self.pos as u32),
                    ))
                }
                Some(b'"') => {
                    self.pos += 1;
                    break;
                }
                Some(b'\\') => {
                    let esc = self.peek_at(1);
                    let ch = match esc {
                        Some(b'n') => '\n',
                        Some(b't') => '\t',
                        Some(b'\\') => '\\',
                        Some(b'"') => '"',
                        _ => {
                            return Err(LangError::lex(
                                "unknown escape in string literal",
                                Span::new(self.pos as u32, self.pos as u32 + 2),
                            ))
                        }
                    };
                    out.push(ch);
                    self.pos += 2;
                }
                Some(_) => {
                    // Consume one full UTF-8 character.
                    let rest = &self.src[self.pos..];
                    let ch = rest.chars().next().expect("non-empty");
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
        self.push(TokenKind::Str(out), start, self.pos);
        Ok(())
    }

    /// Lexes the `#` forms: `#"c"` (char literal) and `#1` (projection).
    fn hash(&mut self, start: usize) -> Result<(), LangError> {
        match self.peek_at(1) {
            Some(b'"') => {
                // #"c" — a single character, possibly escaped.
                self.pos += 2;
                let ch = match self.peek_at(0) {
                    Some(b'\\') => {
                        let c = match self.peek_at(1) {
                            Some(b'n') => '\n',
                            Some(b't') => '\t',
                            Some(b'\\') => '\\',
                            Some(b'"') => '"',
                            _ => {
                                return Err(LangError::lex(
                                    "unknown escape in character literal",
                                    Span::new(start as u32, self.pos as u32 + 2),
                                ))
                            }
                        };
                        self.pos += 2;
                        c
                    }
                    Some(b) if b != b'"' => {
                        let rest = &self.src[self.pos..];
                        let ch = rest.chars().next().expect("non-empty");
                        self.pos += ch.len_utf8();
                        ch
                    }
                    _ => {
                        return Err(LangError::lex(
                            "empty character literal",
                            Span::new(start as u32, self.pos as u32 + 1),
                        ))
                    }
                };
                if self.peek_at(0) != Some(b'"') {
                    return Err(LangError::lex(
                        "character literal must contain exactly one character",
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
                self.pos += 1;
                self.push(TokenKind::Char(ch), start, self.pos);
                Ok(())
            }
            Some(b) if b.is_ascii_digit() => {
                self.pos += 1;
                let n = self.read_int()?;
                if n < 1 || n > u32::MAX as i64 {
                    return Err(LangError::lex(
                        "projection index must be at least 1",
                        Span::new(start as u32, self.pos as u32),
                    ));
                }
                self.push(TokenKind::Proj(n as u32), start, self.pos);
                Ok(())
            }
            _ => Err(LangError::lex(
                "expected `#\"c\"` or `#N` after `#`",
                Span::new(start as u32, start as u32 + 1),
            )),
        }
    }

    fn ident(&mut self, start: usize) {
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_alphanumeric() || b == b'_' || b == b'\'' {
                self.pos += 1;
            } else {
                break;
            }
        }
        let word = &self.src[start..self.pos];
        let kind = TokenKind::keyword(word).unwrap_or_else(|| TokenKind::Ident(word.to_string()));
        self.push(kind, start, self.pos);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kinds(src: &str) -> Vec<TokenKind> {
        lex(src).unwrap().into_iter().map(|t| t.kind).collect()
    }

    #[test]
    fn lexes_val_declaration() {
        use TokenKind::*;
        assert_eq!(
            kinds("val CmdA : int = 1"),
            vec![
                Val,
                Ident("CmdA".into()),
                Colon,
                Ident("int".into()),
                Eq,
                Int(1),
                Eof
            ]
        );
    }

    #[test]
    fn lexes_host_literal() {
        let a = (131u32 << 24) | (254 << 16) | (60 << 8) | 81;
        assert_eq!(
            kinds("131.254.60.81"),
            vec![TokenKind::Host(a), TokenKind::Eof]
        );
    }

    #[test]
    fn rejects_bad_host_literal() {
        assert!(lex("10.20.30").is_err());
        assert!(lex("10.20.300.4").is_err());
    }

    #[test]
    fn lexes_projection_and_char() {
        use TokenKind::*;
        assert_eq!(
            kinds("charPos(#3 p) = #\"A\""),
            vec![
                Ident("charPos".into()),
                LParen,
                Proj(3),
                Ident("p".into()),
                RParen,
                Eq,
                Char('A'),
                Eof
            ]
        );
    }

    #[test]
    fn line_comment_runs_to_eol() {
        use TokenKind::*;
        assert_eq!(
            kinds("1 -- incoming HTTP requests\n2"),
            vec![Int(1), Int(2), Eof]
        );
    }

    #[test]
    fn block_comments_nest() {
        assert_eq!(
            kinds("(* a (* b *) c *) 7"),
            vec![TokenKind::Int(7), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_block_comment_is_error() {
        assert!(lex("(* oops").is_err());
    }

    #[test]
    fn string_escapes() {
        assert_eq!(
            kinds(r#""CmdA: \n""#),
            vec![TokenKind::Str("CmdA: \n".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn unterminated_string_is_error() {
        assert!(lex("\"abc").is_err());
        assert!(lex("\"abc\ndef\"").is_err());
    }

    #[test]
    fn multichar_operators() {
        use TokenKind::*;
        assert_eq!(
            kinds("<> <= >= => < > ="),
            vec![Ne, Le, Ge, DArrow, Lt, Gt, Eq, Eof]
        );
    }

    #[test]
    fn wildcard_vs_identifier() {
        use TokenKind::*;
        assert_eq!(kinds("_ _x"), vec![Underscore, Ident("_x".into()), Eof]);
    }

    #[test]
    fn keywords_not_identifiers() {
        use TokenKind::*;
        assert_eq!(kinds("if then else"), vec![If, Then, Else, Eof]);
        // Prefixes of keywords remain identifiers.
        assert_eq!(kinds("iff"), vec![Ident("iff".into()), Eof]);
    }

    #[test]
    fn primed_identifiers() {
        assert_eq!(
            kinds("ss'"),
            vec![TokenKind::Ident("ss'".into()), TokenKind::Eof]
        );
    }

    #[test]
    fn figure2_fragment_lexes() {
        let src = r#"
channel network(ps : int, ss : (int*host*host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
  in
    if (tcpDst(tcp) = 80) then
      (OnRemote(network, (ipDestSet(iph, 131.254.60.81), tcp, body)); (1,ss))
    else (0, ss)
  end
"#;
        let toks = lex(src).unwrap();
        assert!(toks.len() > 40);
        assert_eq!(toks.last().unwrap().kind, TokenKind::Eof);
    }

    #[test]
    fn spans_point_at_source() {
        let src = "val answer : int = 42";
        let toks = lex(src).unwrap();
        let answer = &toks[1];
        assert_eq!(answer.span.slice(src), "answer");
    }

    #[test]
    fn integer_overflow_is_error() {
        assert!(lex("99999999999999999999999").is_err());
    }

    #[test]
    fn empty_input_gives_only_eof() {
        assert_eq!(kinds(""), vec![TokenKind::Eof]);
        assert_eq!(kinds("   \n\t "), vec![TokenKind::Eof]);
    }
}
