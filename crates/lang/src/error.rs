//! Diagnostic type shared by all front-end phases.

use crate::span::{line_col, Span};
use std::fmt;

/// Which phase produced a diagnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Lexical analysis.
    Lex,
    /// Parsing.
    Parse,
    /// Type checking.
    Type,
    /// Static safety verification.
    Verify,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Lex => "lex",
            Phase::Parse => "parse",
            Phase::Type => "type",
            Phase::Verify => "verify",
        })
    }
}

/// An error pointing at a span of PLAN-P source.
///
/// All front-end phases (lexer, parser, type checker, verifier) report this
/// type so that tooling can render uniform diagnostics.
#[derive(Debug, Clone, PartialEq)]
pub struct LangError {
    /// The phase that rejected the program.
    pub phase: Phase,
    /// Human-readable description (lowercase, no trailing period).
    pub message: String,
    /// Location of the problem.
    pub span: Span,
}

impl LangError {
    /// Creates a lexing error.
    pub fn lex(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Lex,
            message: message.into(),
            span,
        }
    }

    /// Creates a parse error.
    pub fn parse(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Parse,
            message: message.into(),
            span,
        }
    }

    /// Creates a type error.
    pub fn ty(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Type,
            message: message.into(),
            span,
        }
    }

    /// Creates a verification error.
    pub fn verify(message: impl Into<String>, span: Span) -> Self {
        LangError {
            phase: Phase::Verify,
            message: message.into(),
            span,
        }
    }

    /// Renders the error with a line:column position resolved against `src`.
    pub fn render(&self, src: &str) -> String {
        let lc = line_col(src, self.span.start);
        format!("{} error at {}: {}", self.phase, lc, self.message)
    }
}

impl fmt::Display for LangError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} error at {}: {}", self.phase, self.span, self.message)
    }
}

impl std::error::Error for LangError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_line_and_column() {
        let src = "val x : int = true";
        let err = LangError::ty("expected int, found bool", Span::new(14, 18));
        assert_eq!(
            err.render(src),
            "type error at 1:15: expected int, found bool"
        );
    }

    #[test]
    fn display_includes_phase() {
        let err = LangError::parse("expected `)`", Span::new(2, 3));
        assert!(err.to_string().starts_with("parse error"));
    }
}
