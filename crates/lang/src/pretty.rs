//! Pretty-printer producing re-parseable PLAN-P source.
//!
//! The printer fully parenthesizes compound expressions, so its output is
//! unambiguous regardless of operator precedence. The round-trip property
//! `pretty(parse(pretty(e))) == pretty(e)` is checked by property tests.

use crate::ast::*;
use crate::types::Type;
use std::fmt::Write;

/// Renders a whole program.
pub fn program(p: &Program) -> String {
    let mut out = String::new();
    for d in &p.decls {
        decl_into(d, &mut out);
        out.push('\n');
    }
    out
}

/// Renders one declaration.
pub fn decl(d: &Decl) -> String {
    let mut out = String::new();
    decl_into(d, &mut out);
    out
}

/// Renders one expression (fully parenthesized).
pub fn expr(e: &Expr) -> String {
    let mut out = String::new();
    expr_into(e, &mut out);
    out
}

fn decl_into(d: &Decl, out: &mut String) {
    match d {
        Decl::Val(v) => {
            let _ = write!(out, "val {} : {} = ", v.name, v.ty);
            expr_into(&v.init, out);
        }
        Decl::Fun(f) => {
            let _ = write!(out, "fun {}(", f.name);
            for (i, (n, t)) in f.params.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                let _ = write!(out, "{n} : {t}");
            }
            let _ = write!(out, ") : {} = ", f.ret);
            expr_into(&f.body, out);
        }
        Decl::Exception(e) => {
            let _ = write!(out, "exception {}", e.name);
        }
        Decl::Proto(p) => {
            out.push_str("proto ");
            expr_into(&p.init, out);
        }
        Decl::Channel(c) => {
            let _ = write!(
                out,
                "channel {}({} : {}, {} : {}, {} : {})",
                c.name, c.ps.0, c.ps.1, c.ss.0, c.ss.1, c.pkt.0, c.pkt.1
            );
            if let Some(init) = &c.initstate {
                out.push_str("\ninitstate ");
                expr_into(init, out);
            }
            out.push_str(" is\n  ");
            expr_into(&c.body, out);
        }
    }
}

fn host_str(a: u32) -> String {
    format!(
        "{}.{}.{}.{}",
        (a >> 24) & 0xff,
        (a >> 16) & 0xff,
        (a >> 8) & 0xff,
        a & 0xff
    )
}

fn escape_str(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn expr_into(e: &Expr, out: &mut String) {
    match &e.kind {
        ExprKind::Int(n) => {
            if *n < 0 {
                let _ = write!(out, "(-{})", n.unsigned_abs());
            } else {
                let _ = write!(out, "{n}");
            }
        }
        ExprKind::Bool(b) => {
            let _ = write!(out, "{b}");
        }
        ExprKind::Str(s) => escape_str(s, out),
        ExprKind::Char(c) => match c {
            '\n' => out.push_str("#\"\\n\""),
            '\t' => out.push_str("#\"\\t\""),
            '\\' => out.push_str("#\"\\\\\""),
            '"' => out.push_str("#\"\\\"\""),
            c => {
                let _ = write!(out, "#\"{c}\"");
            }
        },
        ExprKind::Unit => out.push_str("()"),
        ExprKind::Host(a) => out.push_str(&host_str(*a)),
        ExprKind::Var(n) => out.push_str(n),
        ExprKind::Tuple(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(item, out);
            }
            out.push(')');
        }
        ExprKind::Proj(n, inner) => {
            let _ = write!(out, "(#{n} ");
            expr_into(inner, out);
            out.push(')');
        }
        ExprKind::Call(name, args) => {
            out.push_str(name);
            out.push('(');
            for (i, a) in args.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(a, out);
            }
            out.push(')');
        }
        ExprKind::If(c, t, f) => {
            out.push_str("(if ");
            expr_into(c, out);
            out.push_str(" then ");
            expr_into(t, out);
            out.push_str(" else ");
            expr_into(f, out);
            out.push(')');
        }
        ExprKind::Let(binds, body) => {
            out.push_str("(let");
            for b in binds {
                let _ = write!(out, " val {} : {} = ", b.name, b.ty);
                expr_into(&b.init, out);
            }
            out.push_str(" in ");
            expr_into(body, out);
            out.push_str(" end)");
        }
        ExprKind::Seq(items) => {
            out.push('(');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str("; ");
                }
                expr_into(item, out);
            }
            out.push(')');
        }
        ExprKind::Binop(op, a, b) => {
            out.push('(');
            expr_into(a, out);
            let _ = write!(out, " {} ", op.symbol());
            expr_into(b, out);
            out.push(')');
        }
        ExprKind::Unop(op, a) => {
            out.push('(');
            out.push_str(op.symbol());
            out.push(' ');
            expr_into(a, out);
            out.push(')');
        }
        ExprKind::Raise(n) => {
            out.push_str("(raise ");
            out.push_str(n);
            out.push(')');
        }
        ExprKind::Handle(body, pat, handler) => {
            out.push('(');
            expr_into(body, out);
            out.push_str(" handle ");
            match pat {
                ExnPat::Name(n) => out.push_str(n),
                ExnPat::Wild => out.push('_'),
            }
            out.push_str(" => ");
            expr_into(handler, out);
            out.push(')');
        }
        ExprKind::List(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                expr_into(item, out);
            }
            out.push(']');
        }
        ExprKind::OnRemote(chan, pkt) => {
            let _ = write!(out, "OnRemote({chan}, ");
            expr_into(pkt, out);
            out.push(')');
        }
        ExprKind::OnNeighbor(chan, host, pkt) => {
            let _ = write!(out, "OnNeighbor({chan}, ");
            expr_into(host, out);
            out.push_str(", ");
            expr_into(pkt, out);
            out.push(')');
        }
    }
}

/// Renders a type (used by diagnostics and the printer itself via
/// [`Type`]'s `Display`). Exposed for symmetry.
pub fn ty(t: &Type) -> String {
    t.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::{parse_expr, parse_program};

    fn round_trip_expr(src: &str) {
        let e1 = parse_expr(src).unwrap();
        let p1 = expr(&e1);
        let e2 = parse_expr(&p1).unwrap_or_else(|err| panic!("reparse of {p1:?}: {err}"));
        let p2 = expr(&e2);
        assert_eq!(p1, p2, "printer not a fixed point for {src:?}");
    }

    #[test]
    fn round_trips_expressions() {
        for src in [
            "1 + 2 * 3",
            "(1, 2, (3; 4))",
            "#1 p",
            "f(a, b) handle NotFound => 0",
            "let val x : int = 1 in x end",
            "if a then raise E else g()",
            "[1, 2, 3]",
            "OnRemote(network, (ipDestSet(iph, 10.0.0.1), tcph, body))",
            "OnNeighbor(c, 10.0.0.2, p)",
            "-5",
            "not (a andalso b orelse c)",
            "\"quote \\\" and newline \\n\"",
            "#\"x\" = #\"\\n\"",
        ] {
            round_trip_expr(src);
        }
    }

    #[test]
    fn round_trips_programs() {
        let src = r#"
val s0 : host = 10.0.0.1
exception Busy
fun inc(x : int) : int = x + 1
proto 0
channel network(ps : int, ss : (host, int) hash_table, p : ip*tcp*blob)
initstate mkTable(8) is
  (OnRemote(network, p); (inc(ps), ss))
"#;
        let p1 = program(&parse_program(src).unwrap());
        let p2 = program(&parse_program(&p1).unwrap());
        assert_eq!(p1, p2);
    }

    #[test]
    fn negative_int_prints_parenthesized() {
        let e = parse_expr("0 - 5").unwrap();
        assert_eq!(expr(&e), "(0 - 5)");
    }
}
