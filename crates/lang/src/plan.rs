//! The deployment-plan surface syntax.
//!
//! A *plan* is the network-wide counterpart of a single PLAN-P program:
//! it names a topology, declares the traffic classes the network
//! carries, and maps each class to an ASP deployed over a topology
//! *slice* (a named group of nodes, e.g. `relays` or `gateway`). The
//! plan layer in `planp-analysis` verifies the resulting *composition*
//! before anything installs; this module only owns the text format.
//!
//! The syntax is line-based, with the same `--` comments as PLAN-P:
//!
//! ```text
//! -- forward the relay chain's datagrams through the fragile relay
//! plan relay_chain_fragile
//! topology relay_chain
//! policy strict
//! budget steps 4096
//!
//! class data port 9000
//! deploy fragile_relay for data on relays
//! ```
//!
//! Directives:
//!
//! * `plan <name>` / `topology <name>` — required, once each;
//! * `policy <name>` — optional plan-level policy (`strict` |
//!   `authenticated`);
//! * `budget steps <n>` — optional network-wide per-packet step budget
//!   composed along every plan path;
//! * `budget state <n>` — optional per-node state budget: on every
//!   node, the co-resident ASPs' composed table-entry bounds must fit
//!   within `<n>` entries;
//! * `class <name> [port <n>] [app <slice>]` — a traffic class; `app`
//!   names a slice whose local applications consume the class's
//!   traffic (so sends to unhandled channels toward it are expected);
//! * `deploy <asp> for <class> on <slice>` — install `<asp>` on every
//!   node of `<slice>`; `on one(<slice>)` lets the placement pass pick
//!   a single install point, and a trailing `policy <name>` overrides
//!   the per-node download policy for this deploy.

use crate::error::LangError;
use crate::span::Span;

/// How a deploy maps onto its slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SliceMode {
    /// Install on every node of the slice.
    All,
    /// Install on one slice node chosen by the placement pass.
    One,
}

/// One `class` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClassDecl {
    /// Class name.
    pub name: String,
    /// UDP/TCP destination port selecting the class (None = wildcard).
    pub port: Option<u16>,
    /// Slice whose node-local applications consume this class's
    /// traffic.
    pub app: Option<String>,
    /// Source location of the declaration line.
    pub span: Span,
}

/// One `deploy` declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct DeployDecl {
    /// ASP name, resolved against the deployment's program library.
    pub asp: String,
    /// Traffic class the ASP serves.
    pub class: String,
    /// Target slice name.
    pub slice: String,
    /// Whole slice or one chosen node.
    pub mode: SliceMode,
    /// Per-deploy download-policy override (`strict`, `no_delivery`,
    /// `authenticated`).
    pub policy: Option<String>,
    /// Source location of the declaration line.
    pub span: Span,
}

/// A parsed deployment plan.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanAst {
    /// Plan name.
    pub name: String,
    /// Named topology the plan deploys over.
    pub topology: String,
    /// Plan-level verification policy (None = strict).
    pub policy: Option<String>,
    /// Network-wide per-packet step budget (None = unlimited).
    pub budget_steps: Option<u64>,
    /// Per-node state-entry budget (None = unlimited).
    pub budget_state: Option<u64>,
    /// Traffic classes, in declaration order.
    pub classes: Vec<ClassDecl>,
    /// Deploys, in declaration order.
    pub deploys: Vec<DeployDecl>,
}

/// Parses plan source text.
///
/// # Errors
///
/// Returns a parse-phase [`LangError`] pointing at the offending line
/// for unknown directives, malformed fields, duplicate headers, or a
/// deploy referencing an undeclared class.
pub fn parse_plan(src: &str) -> Result<PlanAst, LangError> {
    let mut name: Option<String> = None;
    let mut topology: Option<String> = None;
    let mut policy: Option<String> = None;
    let mut budget_steps: Option<u64> = None;
    let mut budget_state: Option<u64> = None;
    let mut classes: Vec<ClassDecl> = Vec::new();
    let mut deploys: Vec<DeployDecl> = Vec::new();

    let mut offset = 0usize;
    for raw in src.split_inclusive('\n') {
        let line_start = offset;
        offset += raw.len();
        let line = raw.trim_end_matches('\n').trim_end_matches('\r');
        // Strip `--` comments (PLAN-P style).
        let code = match line.find("--") {
            Some(i) => &line[..i],
            None => line,
        };
        let trimmed = code.trim();
        if trimmed.is_empty() {
            continue;
        }
        let start = line_start + code.len() - code.trim_start().len();
        let span = Span::new(start as u32, (start + trimmed.len()) as u32);
        let words: Vec<&str> = trimmed.split_whitespace().collect();
        match words[0] {
            "plan" => set_once(&mut name, one_name(&words, span)?, "plan", span)?,
            "topology" => set_once(&mut topology, one_name(&words, span)?, "topology", span)?,
            "policy" => set_once(&mut policy, one_name(&words, span)?, "policy", span)?,
            "budget" => {
                if words.len() != 3 || (words[1] != "steps" && words[1] != "state") {
                    return Err(LangError::parse(
                        "expected `budget steps <n>` or `budget state <n>`",
                        span,
                    ));
                }
                let n: u64 = words[2]
                    .parse()
                    .map_err(|_| LangError::parse("budget is not a number", span))?;
                if words[1] == "steps" {
                    set_once(&mut budget_steps, n, "budget steps", span)?;
                } else {
                    set_once(&mut budget_state, n, "budget state", span)?;
                }
            }
            "class" => classes.push(parse_class(&words, span, &classes)?),
            "deploy" => deploys.push(parse_deploy(&words, span)?),
            other => {
                return Err(LangError::parse(
                    format!("unknown plan directive `{other}`"),
                    span,
                ))
            }
        }
    }

    let name = name.ok_or_else(|| LangError::parse("plan has no `plan <name>` line", end(src)))?;
    let topology =
        topology.ok_or_else(|| LangError::parse("plan has no `topology <name>` line", end(src)))?;
    for d in &deploys {
        if !classes.iter().any(|c| c.name == d.class) {
            return Err(LangError::parse(
                format!("deploy references undeclared class `{}`", d.class),
                d.span,
            ));
        }
    }
    if deploys.is_empty() {
        return Err(LangError::parse("plan deploys nothing", end(src)));
    }
    Ok(PlanAst {
        name,
        topology,
        policy,
        budget_steps,
        budget_state,
        classes,
        deploys,
    })
}

fn end(src: &str) -> Span {
    Span::new(src.len() as u32, src.len() as u32)
}

fn one_name(words: &[&str], span: Span) -> Result<String, LangError> {
    if words.len() != 2 {
        return Err(LangError::parse(
            format!("expected `{} <name>`", words[0]),
            span,
        ));
    }
    Ok(words[1].to_string())
}

fn set_once<T>(slot: &mut Option<T>, value: T, what: &str, span: Span) -> Result<(), LangError> {
    if slot.is_some() {
        return Err(LangError::parse(format!("duplicate `{what}` line"), span));
    }
    *slot = Some(value);
    Ok(())
}

fn parse_class(words: &[&str], span: Span, seen: &[ClassDecl]) -> Result<ClassDecl, LangError> {
    if words.len() < 2 {
        return Err(LangError::parse("expected `class <name> ...`", span));
    }
    let name = words[1].to_string();
    if seen.iter().any(|c| c.name == name) {
        return Err(LangError::parse(format!("duplicate class `{name}`"), span));
    }
    let mut port = None;
    let mut app = None;
    let mut i = 2;
    while i < words.len() {
        match words[i] {
            "port" if i + 1 < words.len() => {
                port = Some(
                    words[i + 1]
                        .parse::<u16>()
                        .map_err(|_| LangError::parse("port is not a number", span))?,
                );
                i += 2;
            }
            "app" if i + 1 < words.len() => {
                app = Some(words[i + 1].to_string());
                i += 2;
            }
            other => {
                return Err(LangError::parse(
                    format!("unexpected `{other}` in class declaration"),
                    span,
                ))
            }
        }
    }
    Ok(ClassDecl {
        name,
        port,
        app,
        span,
    })
}

fn parse_deploy(words: &[&str], span: Span) -> Result<DeployDecl, LangError> {
    // deploy <asp> for <class> on <slice>|one(<slice>) [policy <name>]
    if words.len() < 6 || words[2] != "for" || words[4] != "on" {
        return Err(LangError::parse(
            "expected `deploy <asp> for <class> on <slice>`",
            span,
        ));
    }
    let (slice, mode) = match words[5].strip_prefix("one(") {
        Some(rest) => {
            let inner = rest
                .strip_suffix(')')
                .ok_or_else(|| LangError::parse("expected `one(<slice>)` to end with `)`", span))?;
            (inner.to_string(), SliceMode::One)
        }
        None => (words[5].to_string(), SliceMode::All),
    };
    let policy = match words.len() {
        6 => None,
        8 if words[6] == "policy" => Some(words[7].to_string()),
        _ => {
            return Err(LangError::parse(
                "expected `policy <name>` after the slice",
                span,
            ))
        }
    };
    if slice.is_empty() {
        return Err(LangError::parse("empty slice name", span));
    }
    Ok(DeployDecl {
        asp: words[1].to_string(),
        class: words[3].to_string(),
        slice,
        mode,
        policy,
        span,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const FULL: &str = "-- a test plan\n\
                        plan demo\n\
                        topology relay_chain\n\
                        policy authenticated\n\
                        budget steps 4096\n\
                        budget state 2048\n\
                        \n\
                        class data port 9000\n\
                        class web port 80 app servers\n\
                        deploy fragile_relay for data on relays\n\
                        deploy http_gateway for web on one(gateway) policy strict\n";

    #[test]
    fn full_plan_parses() {
        let p = parse_plan(FULL).unwrap();
        assert_eq!(p.name, "demo");
        assert_eq!(p.topology, "relay_chain");
        assert_eq!(p.policy.as_deref(), Some("authenticated"));
        assert_eq!(p.budget_steps, Some(4096));
        assert_eq!(p.budget_state, Some(2048));
        assert_eq!(p.classes.len(), 2);
        assert_eq!(p.classes[0].port, Some(9000));
        assert_eq!(p.classes[1].app.as_deref(), Some("servers"));
        assert_eq!(p.deploys.len(), 2);
        assert_eq!(p.deploys[0].mode, SliceMode::All);
        assert_eq!(p.deploys[1].mode, SliceMode::One);
        assert_eq!(p.deploys[1].slice, "gateway");
        assert_eq!(p.deploys[1].policy.as_deref(), Some("strict"));
    }

    #[test]
    fn spans_point_at_lines() {
        let p = parse_plan(FULL).unwrap();
        assert_eq!(
            p.deploys[0].span.slice(FULL),
            "deploy fragile_relay for data on relays"
        );
        assert_eq!(p.classes[0].span.slice(FULL), "class data port 9000");
    }

    #[test]
    fn missing_header_rejected() {
        let err = parse_plan("topology t\nclass c\ndeploy a for c on s\n").unwrap_err();
        assert!(err.message.contains("no `plan"), "{err}");
        let err = parse_plan("plan p\nclass c\ndeploy a for c on s\n").unwrap_err();
        assert!(err.message.contains("no `topology"), "{err}");
    }

    #[test]
    fn unknown_directive_rejected() {
        let err = parse_plan("plan p\ntopology t\ninstall x\n").unwrap_err();
        assert!(err.message.contains("unknown plan directive"), "{err}");
        assert_eq!(
            err.span.slice("plan p\ntopology t\ninstall x\n"),
            "install x"
        );
    }

    #[test]
    fn undeclared_class_rejected() {
        let err = parse_plan("plan p\ntopology t\ndeploy a for ghost on s\n").unwrap_err();
        assert!(err.message.contains("undeclared class `ghost`"), "{err}");
    }

    #[test]
    fn duplicates_rejected() {
        let err = parse_plan("plan p\nplan q\n").unwrap_err();
        assert!(err.message.contains("duplicate `plan`"), "{err}");
        let err =
            parse_plan("plan p\ntopology t\nclass c\nclass c\ndeploy a for c on s\n").unwrap_err();
        assert!(err.message.contains("duplicate class"), "{err}");
    }

    #[test]
    fn empty_plan_rejected() {
        let err = parse_plan("plan p\ntopology t\nclass c\n").unwrap_err();
        assert!(err.message.contains("deploys nothing"), "{err}");
    }

    #[test]
    fn comments_and_budget_errors() {
        assert!(parse_plan("-- only comments\n").is_err());
        let err = parse_plan("plan p\ntopology t\nbudget steps many\n").unwrap_err();
        assert!(err.message.contains("not a number"), "{err}");
        let err = parse_plan("plan p\ntopology t\nbudget 12\n").unwrap_err();
        assert!(err.message.contains("budget steps"), "{err}");
        assert!(err.message.contains("budget state"), "{err}");
        let err = parse_plan("plan p\ntopology t\nbudget state 1\nbudget state 2\n").unwrap_err();
        assert!(err.message.contains("duplicate `budget state`"), "{err}");
        let p = parse_plan("plan p\ntopology t\nbudget state 64\nclass c\ndeploy a for c on s\n")
            .unwrap();
        assert_eq!(p.budget_state, Some(64));
        assert_eq!(p.budget_steps, None);
    }
}
