//! Tokens of the PLAN-P surface syntax.

use crate::span::Span;
use std::fmt;

/// A lexical token together with its source span.
#[derive(Debug, Clone, PartialEq)]
pub struct Token {
    /// What kind of token this is (and its payload, for literals).
    pub kind: TokenKind,
    /// Where the token appears in the source.
    pub span: Span,
}

/// The kinds of tokens produced by the [lexer](crate::lexer).
///
/// PLAN-P keeps most of the SML-like surface of PLAN: keywords such as
/// `val`, `fun`, `channel`, `let … in … end`, `handle`, and operator
/// spellings like `andalso`, `orelse`, `div`, `mod`, `<>`.
#[derive(Debug, Clone, PartialEq)]
pub enum TokenKind {
    /// Identifier: `network`, `getSetS`, `ipSrc`, …
    Ident(String),
    /// Integer literal.
    Int(i64),
    /// String literal (escapes already processed).
    Str(String),
    /// Character literal, written `#"c"` as in SML.
    Char(char),
    /// IPv4 host literal, written `131.254.60.81`.
    Host(u32),
    /// Tuple projection `#1`, `#2`, … (1-based, as in SML).
    Proj(u32),

    // Keywords.
    /// `val`
    Val,
    /// `fun`
    Fun,
    /// `channel`
    Channel,
    /// `initstate`
    Initstate,
    /// `is`
    Is,
    /// `let`
    Let,
    /// `in`
    In,
    /// `end`
    End,
    /// `if`
    If,
    /// `then`
    Then,
    /// `else`
    Else,
    /// `raise`
    Raise,
    /// `handle`
    Handle,
    /// `exception`
    Exception,
    /// `proto` (initial protocol state — a documented extension of ours)
    Proto,
    /// `true`
    True,
    /// `false`
    False,
    /// `not`
    Not,
    /// `div`
    Div,
    /// `mod`
    Mod,
    /// `andalso`
    Andalso,
    /// `orelse`
    Orelse,

    // Punctuation and operators.
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `*` (multiplication and product types)
    Star,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `^` (string concatenation)
    Caret,
    /// `=` (binding and equality)
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `>`
    Gt,
    /// `<=`
    Le,
    /// `>=`
    Ge,
    /// `=>` (in `handle Exn => e`)
    DArrow,
    /// `_` (wildcard exception pattern)
    Underscore,

    /// End of input.
    Eof,
}

impl TokenKind {
    /// Returns the keyword token for `word`, if `word` is a keyword.
    pub fn keyword(word: &str) -> Option<TokenKind> {
        use TokenKind::*;
        Some(match word {
            "val" => Val,
            "fun" => Fun,
            "channel" => Channel,
            "initstate" => Initstate,
            "is" => Is,
            "let" => Let,
            "in" => In,
            "end" => End,
            "if" => If,
            "then" => Then,
            "else" => Else,
            "raise" => Raise,
            "handle" => Handle,
            "exception" => Exception,
            "proto" => Proto,
            "true" => True,
            "false" => False,
            "not" => Not,
            "div" => Div,
            "mod" => Mod,
            "andalso" => Andalso,
            "orelse" => Orelse,
            _ => return None,
        })
    }

    /// A short human-readable description used in parse errors.
    pub fn describe(&self) -> String {
        use TokenKind::*;
        match self {
            Ident(s) => format!("identifier `{s}`"),
            Int(n) => format!("integer `{n}`"),
            Str(_) => "string literal".to_string(),
            Char(c) => format!("character literal `#\"{c}\"`"),
            Host(a) => format!(
                "host literal `{}.{}.{}.{}`",
                (a >> 24) & 0xff,
                (a >> 16) & 0xff,
                (a >> 8) & 0xff,
                a & 0xff
            ),
            Proj(n) => format!("projection `#{n}`"),
            Val => "`val`".into(),
            Fun => "`fun`".into(),
            Channel => "`channel`".into(),
            Initstate => "`initstate`".into(),
            Is => "`is`".into(),
            Let => "`let`".into(),
            In => "`in`".into(),
            End => "`end`".into(),
            If => "`if`".into(),
            Then => "`then`".into(),
            Else => "`else`".into(),
            Raise => "`raise`".into(),
            Handle => "`handle`".into(),
            Exception => "`exception`".into(),
            Proto => "`proto`".into(),
            True => "`true`".into(),
            False => "`false`".into(),
            Not => "`not`".into(),
            Div => "`div`".into(),
            Mod => "`mod`".into(),
            Andalso => "`andalso`".into(),
            Orelse => "`orelse`".into(),
            LParen => "`(`".into(),
            RParen => "`)`".into(),
            LBracket => "`[`".into(),
            RBracket => "`]`".into(),
            Comma => "`,`".into(),
            Semi => "`;`".into(),
            Colon => "`:`".into(),
            Star => "`*`".into(),
            Plus => "`+`".into(),
            Minus => "`-`".into(),
            Caret => "`^`".into(),
            Eq => "`=`".into(),
            Ne => "`<>`".into(),
            Lt => "`<`".into(),
            Gt => "`>`".into(),
            Le => "`<=`".into(),
            Ge => "`>=`".into(),
            DArrow => "`=>`".into(),
            Underscore => "`_`".into(),
            Eof => "end of input".into(),
        }
    }
}

impl fmt::Display for TokenKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.describe())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keywords_resolve() {
        assert_eq!(TokenKind::keyword("val"), Some(TokenKind::Val));
        assert_eq!(TokenKind::keyword("andalso"), Some(TokenKind::Andalso));
        assert_eq!(TokenKind::keyword("network"), None);
    }

    #[test]
    fn describe_host_literal() {
        let a = (131u32 << 24) | (254 << 16) | (60 << 8) | 81;
        assert_eq!(
            TokenKind::Host(a).describe(),
            "host literal `131.254.60.81`"
        );
    }

    #[test]
    fn describe_is_nonempty_for_all_simple_tokens() {
        for k in [
            TokenKind::Val,
            TokenKind::Eof,
            TokenKind::DArrow,
            TokenKind::Proj(3),
        ] {
            assert!(!k.describe().is_empty());
        }
    }
}
