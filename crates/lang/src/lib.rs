//! # planp-lang — the PLAN-P language front end
//!
//! PLAN-P is the domain-specific language for **Application-Specific
//! Protocols** (ASPs) from *"Adapting Distributed Applications Using
//! Extensible Networks"* (Thibault, Marant, Muller; ICDCS 1999). ASP
//! programs are downloaded into routers and end hosts, where they replace
//! the IP layer's packet processing for selected traffic.
//!
//! This crate contains everything up to (and including) the typed AST:
//!
//! * [`lexer`] / [`parser`] — SML-flavoured surface syntax, including the
//!   paper's `--` comments, host literals (`131.254.60.81`), projections
//!   (`#1 p`), and overloaded `channel` declarations;
//! * [`types`] — the monomorphic type language (`host`, `blob`, `ip`,
//!   `tcp`, `udp`, products, lists, hash tables);
//! * [`prims`] — the declarative primitive table (one source of truth for
//!   the type checker, the interpreter, and the JIT);
//! * [`typeck`] — the bidirectional type checker, which also enforces the
//!   structural restrictions behind the paper's safety guarantees (no
//!   recursion, pure initializers, valid packet types);
//! * [`tast`] — the typed AST consumed by `planp-analysis` and `planp-vm`;
//! * [`pretty`] — a re-parseable pretty-printer.
//!
//! ## Example
//!
//! ```
//! # fn main() -> Result<(), planp_lang::LangError> {
//! let src = "
//!     channel network(ps : int, ss : unit, p : ip*udp*blob) is
//!       (OnRemote(network, p); (ps + 1, ss))
//! ";
//! let ast = planp_lang::parse_program(src)?;
//! let typed = planp_lang::typecheck(&ast)?;
//! assert_eq!(typed.channels.len(), 1);
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub mod ast;
pub mod error;
pub mod lexer;
pub mod parser;
pub mod plan;
pub mod pretty;
pub mod prims;
pub mod span;
pub mod tast;
pub mod token;
pub mod typeck;
pub mod types;

pub use ast::Program;
pub use error::LangError;
pub use parser::{parse_expr, parse_program};
pub use plan::{parse_plan, PlanAst};
pub use span::Span;
pub use tast::TProgram;
pub use typeck::typecheck;
pub use types::Type;

/// Parses and type-checks `src` in one step.
///
/// # Errors
///
/// Returns the first lexical, syntactic, or type error.
pub fn compile_front(src: &str) -> Result<TProgram, LangError> {
    let ast = parse_program(src)?;
    typecheck(&ast)
}

/// Counts the non-blank, non-comment-only source lines of a program —
/// the "Number of lines" metric of the paper's figure 3.
pub fn count_lines(src: &str) -> usize {
    src.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with("--"))
        .count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compile_front_pipeline() {
        let tp =
            compile_front("channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)")
                .unwrap();
        assert_eq!(tp.channels.len(), 1);
    }

    #[test]
    fn count_lines_skips_blanks_and_comments() {
        let src = "\n-- header comment\nval x : int = 1\n\n  -- another\nval y : int = 2\n";
        assert_eq!(count_lines(src), 2);
    }
}
