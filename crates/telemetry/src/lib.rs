//! Deterministic observability for the PLAN-P stack.
//!
//! The paper's evaluation (Figures 6–8) is entirely measurement-driven:
//! bandwidth observed at the IP layer, gap counts, request latency. This
//! crate gives the reproduction a first-class measurement substrate with
//! three pieces:
//!
//! * [`TraceLog`] — a bounded ring buffer of typed [`TraceEvent`]s
//!   (link enqueue/tx/drop, hop-by-hop forwards, deliveries, channel
//!   dispatch outcomes, ASP exceptions, timer fires), each stamped with
//!   simulation time in nanoseconds, a node index, and a monotonically
//!   assigned packet id. Per-[`Category`] enable flags keep the packet
//!   hot path allocation-free when tracing is off: call sites guard with
//!   [`TraceLog::wants`] before constructing an event.
//! * [`MetricsRegistry`] — named counters and power-of-two-bucket
//!   [`Histogram`]s, keyed by `BTreeMap` so every export is
//!   deterministically ordered.
//! * [`ProfileRegistry`] — per-site VM step profiles joined against the
//!   static per-site cost bounds: collapsed-flame, utilization-heatmap,
//!   Chrome-trace, and superinstruction-candidate exports, with `1/N`
//!   sampling and a step budget for graceful degradation at scale.
//! * Exporters — [`MetricsSnapshot::to_json`] / [`TraceLog::to_jsonl`]
//!   produce byte-stable JSON (same seed ⇒ identical bytes, asserted by
//!   the workspace determinism tests), and [`MetricsSnapshot::render_table`]
//!   produces the human `--report` form used by the bench bins.
//!
//! Everything here is simulation-clock based; no wall-clock reads, no
//! hashing with randomized state, no platform-dependent formatting.

pub mod event;
pub mod export;
pub mod flight;
pub mod json;
pub mod metrics;
pub mod monitor;
pub mod overload;
pub mod profile;
pub mod span;

pub use event::{
    BreakerState, Category, DispatchOutcome, DropReason, SpanOrigin, TraceConfig, TraceEvent,
    TraceLog, TraceOverhead,
};
pub use export::{chrome_profile, chrome_trace, prometheus};
pub use flight::{FlightDump, FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{
    CounterId, Histogram, HistogramSummary, MetricsRegistry, MetricsSnapshot, ShardedCounterSet,
};
pub use monitor::{CounterSel, HealthMonitor, HealthSample, SloRule};
pub use overload::{BrownoutConfig, BrownoutController, OverloadState};
pub use profile::{HeatmapRow, PatternMeta, ProfileRegistry, ScopeId, ScopeProfile, SiteMeta};
pub use span::{CriticalHop, Span, TraceForest};

/// The telemetry bundle a simulator instance carries: one event log,
/// one metrics registry, and one flight recorder, all deterministic.
#[derive(Debug, Default)]
pub struct Telemetry {
    /// Structured event ring buffer.
    pub trace: TraceLog,
    /// Named counters and histograms.
    pub metrics: MetricsRegistry,
    /// Always-on per-node post-mortem rings.
    pub flight: FlightRecorder,
    /// Display names by node index, recorded as nodes are added — lets
    /// span-tree renderers and the Chrome exporter name rows without
    /// re-threading the topology.
    pub nodes: Vec<String>,
    /// Per-site execution profiles (the always-on VM profiler).
    pub profile: ProfileRegistry,
    /// Current overload posture: brownout level + breaker states.
    pub overload: OverloadState,
}

impl Telemetry {
    /// A bundle with the given trace configuration.
    pub fn with_trace(cfg: TraceConfig) -> Self {
        let mut t = Telemetry::default();
        t.trace.configure(cfg);
        t
    }
}
