//! Deterministic overload posture: the brownout controller and the
//! shared view of it the rest of the stack reads.
//!
//! The controller is a pure state machine over `HealthMonitor`
//! evaluation windows — no clocks, no randomness — so two runs of the
//! same scenario step through byte-identical degradation levels. A
//! breached window steps the level up immediately; recovery is
//! *hysteretic*: the level steps down only after a configurable run of
//! consecutive clean windows, so a flapping SLO cannot oscillate the
//! cluster between full service and shedding.
//!
//! [`OverloadState`] is the cheap, always-current summary carried by
//! [`Telemetry`](crate::Telemetry): the current brownout level plus the
//! per-backend circuit-breaker states the gateway reports. Admission
//! control reads the level on the packet path; flight dumps stamp the
//! whole summary into post-mortems.

use crate::event::BreakerState;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// The always-current overload posture shared through `Telemetry`.
#[derive(Debug, Default)]
pub struct OverloadState {
    /// Current brownout degradation level (0 = full service). Priority
    /// classes strictly below this level are shed at admission.
    pub brownout_level: u32,
    /// Last-reported circuit-breaker state per backend name.
    breakers: BTreeMap<String, BreakerState>,
}

impl OverloadState {
    /// Records `backend`'s breaker state (the gateway calls this on
    /// every transition).
    pub fn set_breaker(&mut self, backend: &str, state: BreakerState) {
        self.breakers.insert(backend.to_string(), state);
    }

    /// The last-reported breaker state for `backend` (`Closed` when
    /// never reported).
    pub fn breaker(&self, backend: &str) -> BreakerState {
        self.breakers.get(backend).copied().unwrap_or_default()
    }

    /// A byte-stable one-line summary for flight dumps: the brownout
    /// level plus every breaker *not* in the healthy closed state, in
    /// backend-name order.
    pub fn summary(&self) -> String {
        let mut out = format!("brownout={}", self.brownout_level);
        let mut first = true;
        for (name, st) in &self.breakers {
            if *st == BreakerState::Closed {
                continue;
            }
            let _ = if first {
                write!(out, " breakers={name}:{}", st.name())
            } else {
                write!(out, ",{name}:{}", st.name())
            };
            first = false;
        }
        out
    }
}

/// Brownout step/restore policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BrownoutConfig {
    /// Highest degradation level the controller will step to.
    pub max_level: u32,
    /// Consecutive clean evaluation windows required before stepping
    /// one level back down (the hysteresis band).
    pub step_down_windows: u32,
}

impl Default for BrownoutConfig {
    fn default() -> Self {
        BrownoutConfig {
            max_level: 3,
            step_down_windows: 3,
        }
    }
}

/// The deterministic brownout state machine, fed one observation per
/// `HealthMonitor` evaluation window by the simulator.
#[derive(Debug, Default)]
pub struct BrownoutController {
    cfg: BrownoutConfig,
    level: u32,
    clean_streak: u32,
    /// Every transition taken: `(t_ns, from_level, to_level, rule)`.
    transitions: Vec<(u64, u32, u32, String)>,
}

impl BrownoutController {
    /// A controller at level 0 with the given policy.
    pub fn new(cfg: BrownoutConfig) -> Self {
        BrownoutController {
            cfg,
            ..Default::default()
        }
    }

    /// The current degradation level.
    pub fn level(&self) -> u32 {
        self.level
    }

    /// Feeds one evaluation window: `breached` names the first breached
    /// rule, or `None` for a clean window. Returns the transition taken
    /// (`(from, to, rule)`) if the level changed; step-downs carry the
    /// rule label `"recovered"`.
    pub fn observe_window(&mut self, t_ns: u64, breached: Option<&str>) -> Option<(u32, u32, String)> {
        match breached {
            Some(rule) => {
                self.clean_streak = 0;
                if self.level >= self.cfg.max_level {
                    return None;
                }
                let from = self.level;
                self.level += 1;
                self.transitions
                    .push((t_ns, from, self.level, rule.to_string()));
                Some((from, self.level, rule.to_string()))
            }
            None => {
                self.clean_streak += 1;
                if self.level == 0 || self.clean_streak < self.cfg.step_down_windows {
                    return None;
                }
                self.clean_streak = 0;
                let from = self.level;
                self.level -= 1;
                self.transitions
                    .push((t_ns, from, self.level, "recovered".to_string()));
                Some((from, self.level, "recovered".to_string()))
            }
        }
    }

    /// Every transition taken so far, in order.
    pub fn transitions(&self) -> &[(u64, u32, u32, String)] {
        &self.transitions
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_up_on_breach_and_caps_at_max() {
        let mut b = BrownoutController::new(BrownoutConfig {
            max_level: 2,
            step_down_windows: 3,
        });
        assert_eq!(b.observe_window(10, Some("p99")), Some((0, 1, "p99".into())));
        assert_eq!(b.observe_window(20, Some("p99")), Some((1, 2, "p99".into())));
        assert_eq!(b.observe_window(30, Some("p99")), None, "capped at max");
        assert_eq!(b.level(), 2);
        assert_eq!(b.transitions().len(), 2);
    }

    #[test]
    fn restores_hysteretically_after_clean_streak() {
        let mut b = BrownoutController::new(BrownoutConfig {
            max_level: 3,
            step_down_windows: 2,
        });
        b.observe_window(1, Some("err"));
        assert_eq!(b.observe_window(2, None), None, "one clean window is not enough");
        assert_eq!(b.observe_window(3, None), Some((1, 0, "recovered".into())));
        assert_eq!(b.level(), 0);
        assert_eq!(b.observe_window(4, None), None, "already at full service");
    }

    #[test]
    fn breach_resets_the_clean_streak() {
        let mut b = BrownoutController::new(BrownoutConfig {
            max_level: 3,
            step_down_windows: 2,
        });
        b.observe_window(1, Some("err"));
        b.observe_window(2, None);
        b.observe_window(3, Some("err")); // streak back to zero, level 2
        assert_eq!(b.level(), 2);
        assert_eq!(b.observe_window(4, None), None);
        assert_eq!(b.observe_window(5, None), Some((2, 1, "recovered".into())));
    }

    #[test]
    fn summary_lists_only_unhealthy_breakers_in_name_order() {
        let mut s = OverloadState::default();
        assert_eq!(s.summary(), "brownout=0");
        s.set_breaker("b2", BreakerState::Open);
        s.set_breaker("b1", BreakerState::HalfOpen);
        s.set_breaker("b3", BreakerState::Closed);
        s.brownout_level = 2;
        assert_eq!(s.summary(), "brownout=2 breakers=b1:half_open,b2:open");
        assert_eq!(s.breaker("b2"), BreakerState::Open);
        assert_eq!(s.breaker("b9"), BreakerState::Closed);
    }
}
