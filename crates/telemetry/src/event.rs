//! Structured trace events and the bounded, deterministic event log.
//!
//! Events cover every observable action along the packet path. Hot-path
//! discipline: the simulator guards each emission with
//! [`TraceLog::wants`], so when a category is disabled no event value is
//! ever constructed — tracing off costs one branch per site.

use crate::json::{push_key, push_str, Seq};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A set of trace-event categories (bit flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category(pub u16);

impl Category {
    /// No categories.
    pub const NONE: Category = Category(0);
    /// Link-level transmission events (enqueue, tx-complete).
    pub const LINK: Category = Category(1 << 0);
    /// Hop-by-hop forwarding decisions at routers.
    pub const HOP: Category = Category(1 << 1);
    /// Local deliveries to applications.
    pub const DELIVER: Category = Category(1 << 2);
    /// Packet drops, at links or nodes.
    pub const DROP: Category = Category(1 << 3);
    /// PLAN-P channel dispatch outcomes.
    pub const DISPATCH: Category = Category(1 << 4);
    /// Uncaught ASP exceptions (fail-open to IP).
    pub const EXCEPTION: Category = Category(1 << 5);
    /// Application timer fires.
    pub const TIMER: Category = Category(1 << 6);
    /// Causal span starts (packet lineage: trace/parent ids).
    pub const SPAN: Category = Category(1 << 7);
    /// Per-dispatch VM execution (channel name + charged steps).
    pub const VM: Category = Category(1 << 8);
    /// Injected faults (loss, corruption, flaps, partitions, crashes).
    pub const FAULT: Category = Category(1 << 9);
    /// Every category.
    pub const ALL: Category = Category(0x3ff);

    /// Union of two sets.
    pub const fn union(self, other: Category) -> Category {
        Category(self.0 | other.0)
    }

    /// True if `self` includes every bit of `other`.
    pub const fn contains(self, other: Category) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no category is enabled.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The canonical (name, flag) table, used by parsers and help text.
    pub const NAMES: [(&'static str, Category); 10] = [
        ("link", Category::LINK),
        ("hop", Category::HOP),
        ("deliver", Category::DELIVER),
        ("drop", Category::DROP),
        ("dispatch", Category::DISPATCH),
        ("exception", Category::EXCEPTION),
        ("timer", Category::TIMER),
        ("span", Category::SPAN),
        ("vm", Category::VM),
        ("fault", Category::FAULT),
    ];

    /// Parses a single category name.
    pub fn from_name(name: &str) -> Option<Category> {
        match name {
            "all" => return Some(Category::ALL),
            "none" => return Some(Category::NONE),
            _ => {}
        }
        Category::NAMES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    }

    /// Parses a comma-separated list, e.g. `"link,drop,dispatch"`.
    pub fn from_list(list: &str) -> Result<Category, String> {
        let mut cats = Category::NONE;
        for part in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match Category::from_name(part) {
                Some(c) => cats = cats.union(c),
                None => {
                    return Err(format!(
                        "unknown trace category {part:?} (known: all, none, {})",
                        Category::NAMES.map(|(n, _)| n).join(", ")
                    ))
                }
            }
        }
        Ok(cats)
    }
}

/// Why a node (not a link queue) dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The node is administratively down.
    NodeDown,
    /// The per-node CPU queue overflowed.
    CpuOverflow,
    /// TTL reached zero while forwarding.
    TtlExpired,
    /// No route toward the destination.
    NoRoute,
    /// Arrived at a host it was not addressed to (and was not overheard).
    NotAddressed,
    /// Lost to injected Bernoulli link loss (fault plan).
    FaultLoss,
    /// The carrying link was administratively down (fault plan flap).
    LinkFaultDown,
    /// Sender and receiver are in different partition groups.
    Partitioned,
}

impl DropReason {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NodeDown => "node_down",
            DropReason::CpuOverflow => "cpu_overflow",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::NoRoute => "no_route",
            DropReason::NotAddressed => "not_addressed",
            DropReason::FaultLoss => "fault_loss",
            DropReason::LinkFaultDown => "link_fault_down",
            DropReason::Partitioned => "partitioned",
        }
    }
}

/// The outcome of offering a packet to the PLAN-P layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// A channel ran and re-emitted (forward/deliver) the packet.
    Matched,
    /// A channel ran to completion but emitted nothing: the packet was
    /// consumed (counted as a PLAN-P drop).
    Consumed,
    /// A channel raised an uncaught exception; the packet fell back to
    /// plain IP forwarding (fail-open).
    Error,
    /// No channel matched; the packet passed to plain IP.
    NoMatch,
    /// Management traffic bypassed the layer.
    Bypass,
}

impl DispatchOutcome {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchOutcome::Matched => "matched",
            DispatchOutcome::Consumed => "consumed",
            DispatchOutcome::Error => "error",
            DispatchOutcome::NoMatch => "no_match",
            DispatchOutcome::Bypass => "bypass",
        }
    }
}

/// How a packet (= one causal span) came into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanOrigin {
    /// Injected by an application — the root of a trace.
    #[default]
    Ingress,
    /// Re-emitted by an ASP's `OnRemote`.
    Remote,
    /// Re-emitted by an ASP's `OnNeighbor`.
    Neighbor,
    /// Handed to the local application by an ASP's `deliver`.
    Deliver,
}

impl SpanOrigin {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanOrigin::Ingress => "ingress",
            SpanOrigin::Remote => "remote",
            SpanOrigin::Neighbor => "neighbor",
            SpanOrigin::Deliver => "deliver",
        }
    }
}

/// One structured trace event. Times are simulation nanoseconds; `node`
/// and `link` are simulator indices; `pkt` is the monotonically assigned
/// packet id (0 = never entered the simulator's send path).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A packet entered a link queue (`qlen` = depth after enqueue).
    LinkEnqueue {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
        bytes: u32,
        qlen: u32,
    },
    /// A packet finished transmitting on a link.
    LinkTx {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
        bytes: u32,
    },
    /// A link queue overflowed and dropped the packet.
    LinkDrop {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
    },
    /// A node chose an outgoing link for the packet (`ttl` = value after
    /// decrement).
    Forward {
        t_ns: u64,
        node: u32,
        pkt: u64,
        link: u32,
        ttl: u8,
    },
    /// A node delivered the packet to local application `app`.
    Deliver {
        t_ns: u64,
        node: u32,
        pkt: u64,
        app: u32,
    },
    /// A node dropped the packet.
    NodeDrop {
        t_ns: u64,
        node: u32,
        pkt: u64,
        reason: DropReason,
    },
    /// The PLAN-P layer dispatched (or declined) the packet.
    Dispatch {
        t_ns: u64,
        node: u32,
        pkt: u64,
        /// Matched channel name, if any.
        chan: Option<Rc<str>>,
        outcome: DispatchOutcome,
    },
    /// An ASP raised an uncaught exception (fail-open path).
    Exception {
        t_ns: u64,
        node: u32,
        pkt: u64,
        chan: Rc<str>,
        exn: Rc<str>,
    },
    /// An application timer fired.
    TimerFire {
        t_ns: u64,
        node: u32,
        app: u32,
        key: u64,
    },
    /// A packet identity entered the send path for the first time: the
    /// start of span `pkt` inside trace `trace` (`parent` = 0 for the
    /// root span; `chan` = channel the creating ASP sent it on).
    SpanStart {
        t_ns: u64,
        node: u32,
        pkt: u64,
        trace: u64,
        parent: u64,
        origin: SpanOrigin,
        chan: Option<Rc<str>>,
    },
    /// A channel body ran for the packet, charging `steps` VM steps
    /// (per-span VM cost attribution).
    VmRun {
        t_ns: u64,
        node: u32,
        pkt: u64,
        chan: Rc<str>,
        steps: u64,
    },
    /// A scheduled fault fired (loss, corruption, duplication, jitter,
    /// flap, partition, crash, restart). `node`/`link` identify the
    /// afflicted element when the fault targets one; `pkt` is the
    /// affected packet for per-packet faults (0 for plan-level events).
    Fault {
        t_ns: u64,
        kind: Rc<str>,
        node: Option<u32>,
        link: Option<u32>,
        pkt: u64,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::LinkEnqueue { .. } | TraceEvent::LinkTx { .. } => Category::LINK,
            TraceEvent::LinkDrop { .. } | TraceEvent::NodeDrop { .. } => Category::DROP,
            TraceEvent::Forward { .. } => Category::HOP,
            TraceEvent::Deliver { .. } => Category::DELIVER,
            TraceEvent::Dispatch { .. } => Category::DISPATCH,
            TraceEvent::Exception { .. } => Category::EXCEPTION,
            TraceEvent::TimerFire { .. } => Category::TIMER,
            TraceEvent::SpanStart { .. } => Category::SPAN,
            TraceEvent::VmRun { .. } => Category::VM,
            TraceEvent::Fault { .. } => Category::FAULT,
        }
    }

    /// Simulation time of the event, in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match self {
            TraceEvent::LinkEnqueue { t_ns, .. }
            | TraceEvent::LinkTx { t_ns, .. }
            | TraceEvent::LinkDrop { t_ns, .. }
            | TraceEvent::Forward { t_ns, .. }
            | TraceEvent::Deliver { t_ns, .. }
            | TraceEvent::NodeDrop { t_ns, .. }
            | TraceEvent::Dispatch { t_ns, .. }
            | TraceEvent::Exception { t_ns, .. }
            | TraceEvent::TimerFire { t_ns, .. }
            | TraceEvent::SpanStart { t_ns, .. }
            | TraceEvent::VmRun { t_ns, .. }
            | TraceEvent::Fault { t_ns, .. } => *t_ns,
        }
    }

    /// The packet id, if the event concerns a packet.
    pub fn pkt(&self) -> Option<u64> {
        match self {
            TraceEvent::LinkEnqueue { pkt, .. }
            | TraceEvent::LinkTx { pkt, .. }
            | TraceEvent::LinkDrop { pkt, .. }
            | TraceEvent::Forward { pkt, .. }
            | TraceEvent::Deliver { pkt, .. }
            | TraceEvent::NodeDrop { pkt, .. }
            | TraceEvent::Dispatch { pkt, .. }
            | TraceEvent::Exception { pkt, .. }
            | TraceEvent::SpanStart { pkt, .. }
            | TraceEvent::VmRun { pkt, .. } => Some(*pkt),
            TraceEvent::Fault { pkt, .. } => (*pkt != 0).then_some(*pkt),
            TraceEvent::TimerFire { .. } => None,
        }
    }

    /// Serializes the event as one JSON object, appended to `out`.
    pub fn write_json(&self, out: &mut String) {
        let mut seq = Seq::new();
        out.push('{');
        let field = |out: &mut String, seq: &mut Seq, k: &str, v: u64| {
            seq.sep(out);
            push_key(out, k);
            out.push_str(&v.to_string());
        };
        let tag = |out: &mut String, seq: &mut Seq, ty: &str| {
            seq.sep(out);
            push_key(out, "type");
            push_str(out, ty);
        };
        match self {
            TraceEvent::LinkEnqueue {
                t_ns,
                link,
                from,
                pkt,
                bytes,
                qlen,
            } => {
                tag(out, &mut seq, "link_enqueue");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "bytes", u64::from(*bytes));
                field(out, &mut seq, "qlen", u64::from(*qlen));
            }
            TraceEvent::LinkTx {
                t_ns,
                link,
                from,
                pkt,
                bytes,
            } => {
                tag(out, &mut seq, "link_tx");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "bytes", u64::from(*bytes));
            }
            TraceEvent::LinkDrop {
                t_ns,
                link,
                from,
                pkt,
            } => {
                tag(out, &mut seq, "link_drop");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
            }
            TraceEvent::Forward {
                t_ns,
                node,
                pkt,
                link,
                ttl,
            } => {
                tag(out, &mut seq, "forward");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "ttl", u64::from(*ttl));
            }
            TraceEvent::Deliver {
                t_ns,
                node,
                pkt,
                app,
            } => {
                tag(out, &mut seq, "deliver");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "app", u64::from(*app));
            }
            TraceEvent::NodeDrop {
                t_ns,
                node,
                pkt,
                reason,
            } => {
                tag(out, &mut seq, "node_drop");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "reason");
                push_str(out, reason.name());
            }
            TraceEvent::Dispatch {
                t_ns,
                node,
                pkt,
                chan,
                outcome,
            } => {
                tag(out, &mut seq, "dispatch");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                match chan {
                    Some(c) => push_str(out, c),
                    None => out.push_str("null"),
                }
                seq.sep(out);
                push_key(out, "outcome");
                push_str(out, outcome.name());
            }
            TraceEvent::Exception {
                t_ns,
                node,
                pkt,
                chan,
                exn,
            } => {
                tag(out, &mut seq, "exception");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                push_str(out, chan);
                seq.sep(out);
                push_key(out, "exn");
                push_str(out, exn);
            }
            TraceEvent::TimerFire {
                t_ns,
                node,
                app,
                key,
            } => {
                tag(out, &mut seq, "timer_fire");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "app", u64::from(*app));
                field(out, &mut seq, "key", *key);
            }
            TraceEvent::SpanStart {
                t_ns,
                node,
                pkt,
                trace,
                parent,
                origin,
                chan,
            } => {
                tag(out, &mut seq, "span_start");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "trace", *trace);
                field(out, &mut seq, "parent", *parent);
                seq.sep(out);
                push_key(out, "origin");
                push_str(out, origin.name());
                seq.sep(out);
                push_key(out, "chan");
                match chan {
                    Some(c) => push_str(out, c),
                    None => out.push_str("null"),
                }
            }
            TraceEvent::VmRun {
                t_ns,
                node,
                pkt,
                chan,
                steps,
            } => {
                tag(out, &mut seq, "vm_run");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                push_str(out, chan);
                field(out, &mut seq, "steps", *steps);
            }
            TraceEvent::Fault {
                t_ns,
                kind,
                node,
                link,
                pkt,
            } => {
                tag(out, &mut seq, "fault");
                field(out, &mut seq, "t_ns", *t_ns);
                seq.sep(out);
                push_key(out, "kind");
                push_str(out, kind);
                seq.sep(out);
                push_key(out, "node");
                match node {
                    Some(n) => out.push_str(&n.to_string()),
                    None => out.push_str("null"),
                }
                seq.sep(out);
                push_key(out, "link");
                match link {
                    Some(l) => out.push_str(&l.to_string()),
                    None => out.push_str("null"),
                }
                field(out, &mut seq, "pkt", *pkt);
            }
        }
        out.push('}');
    }
}

impl fmt::Display for TraceEvent {
    /// The human one-line form used by `planp-trace`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.t_ns() as f64 / 1e9;
        match self {
            TraceEvent::LinkEnqueue {
                link,
                from,
                pkt,
                bytes,
                qlen,
                ..
            } => write!(
                f,
                "{t:12.6}  link{link:<3} enqueue  pkt={pkt} from=n{from} {bytes}B qlen={qlen}"
            ),
            TraceEvent::LinkTx {
                link,
                from,
                pkt,
                bytes,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  link{link:<3} tx       pkt={pkt} from=n{from} {bytes}B"
                )
            }
            TraceEvent::LinkDrop {
                link, from, pkt, ..
            } => {
                write!(
                    f,
                    "{t:12.6}  link{link:<3} DROP     pkt={pkt} from=n{from} (queue full)"
                )
            }
            TraceEvent::Forward {
                node,
                pkt,
                link,
                ttl,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} forward  pkt={pkt} via link{link} ttl={ttl}"
                )
            }
            TraceEvent::Deliver { node, pkt, app, .. } => {
                write!(f, "{t:12.6}  n{node:<5} deliver  pkt={pkt} app={app}")
            }
            TraceEvent::NodeDrop {
                node, pkt, reason, ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} DROP     pkt={pkt} ({})",
                    reason.name()
                )
            }
            TraceEvent::Dispatch {
                node,
                pkt,
                chan,
                outcome,
                ..
            } => write!(
                f,
                "{t:12.6}  n{node:<5} dispatch pkt={pkt} chan={} -> {}",
                chan.as_deref().unwrap_or("-"),
                outcome.name()
            ),
            TraceEvent::Exception {
                node,
                pkt,
                chan,
                exn,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} EXN      pkt={pkt} chan={chan} exn={exn}"
                )
            }
            TraceEvent::TimerFire { node, app, key, .. } => {
                write!(f, "{t:12.6}  n{node:<5} timer    app={app} key={key}")
            }
            TraceEvent::SpanStart {
                node,
                pkt,
                trace,
                parent,
                origin,
                chan,
                ..
            } => write!(
                f,
                "{t:12.6}  n{node:<5} span     pkt={pkt} trace={trace} parent={parent} \
                 origin={} chan={}",
                origin.name(),
                chan.as_deref().unwrap_or("-")
            ),
            TraceEvent::VmRun {
                node,
                pkt,
                chan,
                steps,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} vm       pkt={pkt} chan={chan} steps={steps}"
                )
            }
            TraceEvent::Fault {
                kind,
                node,
                link,
                pkt,
                ..
            } => {
                let site = match (node, link) {
                    (Some(n), _) => format!("n{n}"),
                    (None, Some(l)) => format!("link{l}"),
                    (None, None) => "plan".to_string(),
                };
                write!(f, "{t:12.6}  {site:<6} FAULT    kind={kind} pkt={pkt}")
            }
        }
    }
}

/// Configuration for a [`TraceLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Which event categories to record.
    pub categories: Category,
    /// Ring-buffer capacity; once full, the oldest events are evicted
    /// (`TraceLog::evicted` counts them).
    pub capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            categories: Category::NONE,
            capacity: 65_536,
        }
    }
}

impl TraceConfig {
    /// Records every category at the default capacity.
    pub fn all() -> Self {
        TraceConfig {
            categories: Category::ALL,
            ..TraceConfig::default()
        }
    }
}

/// A bounded ring buffer of trace events.
///
/// Determinism contract: with the same configuration and the same
/// deterministic event source, `to_jsonl` produces byte-identical
/// output across runs. Nothing here reads the wall clock.
#[derive(Debug)]
pub struct TraceLog {
    enabled: Category,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    recorded: u64,
    evicted: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(TraceConfig::default())
    }
}

impl TraceLog {
    /// A log with the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceLog {
            enabled: cfg.categories,
            capacity: cfg.capacity.max(1),
            buf: VecDeque::new(),
            recorded: 0,
            evicted: 0,
        }
    }

    /// Replaces the configuration (keeps already-recorded events that
    /// still fit).
    pub fn configure(&mut self, cfg: TraceConfig) {
        self.enabled = cfg.categories;
        self.capacity = cfg.capacity.max(1);
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
    }

    /// The enabled categories.
    pub fn categories(&self) -> Category {
        self.enabled
    }

    /// Hot-path guard: true if events of category `c` are recorded.
    /// Call this *before* constructing an event so disabled tracing
    /// costs one branch and no allocation.
    #[inline]
    pub fn wants(&self, c: Category) -> bool {
        self.enabled.contains(c)
    }

    /// Records an event (if its category is enabled).
    pub fn push(&mut self, ev: TraceEvent) {
        if !self.wants(ev.category()) {
            return;
        }
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded over the log's lifetime (including evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by the ring buffer.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Serializes the held events as JSON Lines (one object per line,
    /// trailing newline when non-empty). Byte-stable for identical logs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::Deliver {
            t_ns: t,
            node: 1,
            pkt: t,
            app: 0,
        }
    }

    #[test]
    fn categories_parse_and_combine() {
        let c = Category::from_list("link, drop").unwrap();
        assert!(c.contains(Category::LINK) && c.contains(Category::DROP));
        assert!(!c.contains(Category::DISPATCH));
        assert_eq!(Category::from_list("all").unwrap(), Category::ALL);
        assert_eq!(Category::from_list("").unwrap(), Category::NONE);
        assert!(Category::from_list("bogus").is_err());
    }

    #[test]
    fn disabled_categories_are_not_recorded() {
        let mut log = TraceLog::new(TraceConfig {
            categories: Category::LINK,
            capacity: 8,
        });
        assert!(!log.wants(Category::DELIVER));
        log.push(ev(1));
        assert_eq!(log.len(), 0);
        log.push(TraceEvent::LinkTx {
            t_ns: 2,
            link: 0,
            from: 0,
            pkt: 1,
            bytes: 64,
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(TraceConfig {
            categories: Category::ALL,
            capacity: 3,
        });
        for t in 0..5 {
            log.push(ev(t));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.evicted(), 2);
        let first = log.events().next().unwrap().t_ns();
        assert_eq!(first, 2);
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(TraceEvent::Exception {
            t_ns: 5,
            node: 2,
            pkt: 9,
            chan: "net\"work".into(),
            exn: "Div".into(),
        });
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"exception\",\"t_ns\":5,\"node\":2,\"pkt\":9,\"chan\":\"net\\\"work\",\"exn\":\"Div\"}\n"
        );
        assert_eq!(line, log.to_jsonl());
    }

    #[test]
    fn display_is_one_line() {
        let e = TraceEvent::Forward {
            t_ns: 1_500_000,
            node: 3,
            pkt: 7,
            link: 2,
            ttl: 63,
        };
        let s = e.to_string();
        assert!(s.contains("forward") && s.contains("pkt=7") && !s.contains('\n'));
    }
}
