//! Structured trace events and the bounded, deterministic event log.
//!
//! Events cover every observable action along the packet path. Hot-path
//! discipline: the simulator guards each emission with
//! [`TraceLog::wants`], so when a category is disabled no event value is
//! ever constructed — tracing off costs one branch per site.

use crate::json::{push_key, push_str, Seq};
use std::collections::VecDeque;
use std::fmt;
use std::rc::Rc;

/// A set of trace-event categories (bit flags).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Category(pub u16);

impl Category {
    /// No categories.
    pub const NONE: Category = Category(0);
    /// Link-level transmission events (enqueue, tx-complete).
    pub const LINK: Category = Category(1 << 0);
    /// Hop-by-hop forwarding decisions at routers.
    pub const HOP: Category = Category(1 << 1);
    /// Local deliveries to applications.
    pub const DELIVER: Category = Category(1 << 2);
    /// Packet drops, at links or nodes.
    pub const DROP: Category = Category(1 << 3);
    /// PLAN-P channel dispatch outcomes.
    pub const DISPATCH: Category = Category(1 << 4);
    /// Uncaught ASP exceptions (fail-open to IP).
    pub const EXCEPTION: Category = Category(1 << 5);
    /// Application timer fires.
    pub const TIMER: Category = Category(1 << 6);
    /// Causal span starts (packet lineage: trace/parent ids).
    pub const SPAN: Category = Category(1 << 7);
    /// Per-dispatch VM execution (channel name + charged steps).
    pub const VM: Category = Category(1 << 8);
    /// Injected faults (loss, corruption, flaps, partitions, crashes).
    pub const FAULT: Category = Category(1 << 9);
    /// SLO health-monitor rule evaluations.
    pub const HEALTH: Category = Category(1 << 10);
    /// Telemetry self-accounting (sampler downgrades).
    pub const META: Category = Category(1 << 11);
    /// Every category.
    pub const ALL: Category = Category(0xfff);

    /// Union of two sets.
    pub const fn union(self, other: Category) -> Category {
        Category(self.0 | other.0)
    }

    /// True if `self` includes every bit of `other`.
    pub const fn contains(self, other: Category) -> bool {
        self.0 & other.0 == other.0
    }

    /// True if no category is enabled.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The canonical (name, flag) table, used by parsers and help text.
    pub const NAMES: [(&'static str, Category); 12] = [
        ("link", Category::LINK),
        ("hop", Category::HOP),
        ("deliver", Category::DELIVER),
        ("drop", Category::DROP),
        ("dispatch", Category::DISPATCH),
        ("exception", Category::EXCEPTION),
        ("timer", Category::TIMER),
        ("span", Category::SPAN),
        ("vm", Category::VM),
        ("fault", Category::FAULT),
        ("health", Category::HEALTH),
        ("meta", Category::META),
    ];

    /// Parses a single category name.
    pub fn from_name(name: &str) -> Option<Category> {
        match name {
            "all" => return Some(Category::ALL),
            "none" => return Some(Category::NONE),
            _ => {}
        }
        Category::NAMES
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, c)| *c)
    }

    /// Parses a comma-separated list, e.g. `"link,drop,dispatch"`.
    pub fn from_list(list: &str) -> Result<Category, String> {
        let mut cats = Category::NONE;
        for part in list.split(',').map(str::trim).filter(|p| !p.is_empty()) {
            match Category::from_name(part) {
                Some(c) => cats = cats.union(c),
                None => {
                    return Err(format!(
                        "unknown trace category {part:?} (known: all, none, {})",
                        Category::NAMES.map(|(n, _)| n).join(", ")
                    ))
                }
            }
        }
        Ok(cats)
    }
}

/// Why a node (not a link queue) dropped a packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The node is administratively down.
    NodeDown,
    /// The per-node CPU queue overflowed.
    CpuOverflow,
    /// TTL reached zero while forwarding.
    TtlExpired,
    /// No route toward the destination.
    NoRoute,
    /// Arrived at a host it was not addressed to (and was not overheard).
    NotAddressed,
    /// Lost to injected Bernoulli link loss (fault plan).
    FaultLoss,
    /// The carrying link was administratively down (fault plan flap).
    LinkFaultDown,
    /// Sender and receiver are in different partition groups.
    Partitioned,
    /// Deliberately shed by admission control, a brownout level, or a
    /// bounded-load gateway — a *decision*, kept separate from the tail
    /// drops that happen when queues silently overflow.
    Shed,
    /// The packet's lineage deadline had already passed at ingress, so
    /// it was dropped before burning further hops or CPU.
    DeadlineExpired,
}

impl DropReason {
    /// All reasons, in [`DropReason::index`] order. New reasons are
    /// appended so existing flight-recorder detail codes stay stable.
    pub const ALL: [DropReason; 10] = [
        DropReason::NodeDown,
        DropReason::CpuOverflow,
        DropReason::TtlExpired,
        DropReason::NoRoute,
        DropReason::NotAddressed,
        DropReason::FaultLoss,
        DropReason::LinkFaultDown,
        DropReason::Partitioned,
        DropReason::Shed,
        DropReason::DeadlineExpired,
    ];

    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            DropReason::NodeDown => "node_down",
            DropReason::CpuOverflow => "cpu_overflow",
            DropReason::TtlExpired => "ttl_expired",
            DropReason::NoRoute => "no_route",
            DropReason::NotAddressed => "not_addressed",
            DropReason::FaultLoss => "fault_loss",
            DropReason::LinkFaultDown => "link_fault_down",
            DropReason::Partitioned => "partitioned",
            DropReason::Shed => "shed",
            DropReason::DeadlineExpired => "deadline_expired",
        }
    }

    /// Stable small integer, used as the flight-recorder detail code.
    pub fn index(self) -> u32 {
        DropReason::ALL.iter().position(|r| *r == self).unwrap() as u32
    }

    /// Inverse of [`DropReason::index`].
    pub fn from_index(i: u32) -> Option<DropReason> {
        DropReason::ALL.get(i as usize).copied()
    }
}

/// A circuit breaker's position in the closed → open → half-open cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BreakerState {
    /// Healthy: traffic flows normally.
    #[default]
    Closed,
    /// Tripped: all traffic is diverted; only the probe schedule may
    /// touch the backend.
    Open,
    /// Probing: a deterministic trickle tests whether the backend
    /// recovered.
    HalfOpen,
}

impl BreakerState {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            BreakerState::Closed => "closed",
            BreakerState::Open => "open",
            BreakerState::HalfOpen => "half_open",
        }
    }
}

/// The outcome of offering a packet to the PLAN-P layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchOutcome {
    /// A channel ran and re-emitted (forward/deliver) the packet.
    Matched,
    /// A channel ran to completion but emitted nothing: the packet was
    /// consumed (counted as a PLAN-P drop).
    Consumed,
    /// A channel raised an uncaught exception; the packet fell back to
    /// plain IP forwarding (fail-open).
    Error,
    /// No channel matched; the packet passed to plain IP.
    NoMatch,
    /// Management traffic bypassed the layer.
    Bypass,
}

impl DispatchOutcome {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            DispatchOutcome::Matched => "matched",
            DispatchOutcome::Consumed => "consumed",
            DispatchOutcome::Error => "error",
            DispatchOutcome::NoMatch => "no_match",
            DispatchOutcome::Bypass => "bypass",
        }
    }
}

/// How a packet (= one causal span) came into existence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SpanOrigin {
    /// Injected by an application — the root of a trace.
    #[default]
    Ingress,
    /// Re-emitted by an ASP's `OnRemote`.
    Remote,
    /// Re-emitted by an ASP's `OnNeighbor`.
    Neighbor,
    /// Handed to the local application by an ASP's `deliver`.
    Deliver,
}

impl SpanOrigin {
    /// Stable lowercase name used in exports.
    pub fn name(self) -> &'static str {
        match self {
            SpanOrigin::Ingress => "ingress",
            SpanOrigin::Remote => "remote",
            SpanOrigin::Neighbor => "neighbor",
            SpanOrigin::Deliver => "deliver",
        }
    }
}

/// One structured trace event. Times are simulation nanoseconds; `node`
/// and `link` are simulator indices; `pkt` is the monotonically assigned
/// packet id (0 = never entered the simulator's send path).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// A packet entered a link queue (`qlen` = depth after enqueue).
    LinkEnqueue {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
        bytes: u32,
        qlen: u32,
    },
    /// A packet finished transmitting on a link.
    LinkTx {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
        bytes: u32,
    },
    /// A link queue overflowed and dropped the packet.
    LinkDrop {
        t_ns: u64,
        link: u32,
        from: u32,
        pkt: u64,
    },
    /// A node chose an outgoing link for the packet (`ttl` = value after
    /// decrement).
    Forward {
        t_ns: u64,
        node: u32,
        pkt: u64,
        link: u32,
        ttl: u8,
    },
    /// A node delivered the packet to local application `app`.
    Deliver {
        t_ns: u64,
        node: u32,
        pkt: u64,
        app: u32,
    },
    /// A node dropped the packet.
    NodeDrop {
        t_ns: u64,
        node: u32,
        pkt: u64,
        reason: DropReason,
    },
    /// The PLAN-P layer dispatched (or declined) the packet.
    Dispatch {
        t_ns: u64,
        node: u32,
        pkt: u64,
        /// Matched channel name, if any.
        chan: Option<Rc<str>>,
        outcome: DispatchOutcome,
    },
    /// An ASP raised an uncaught exception (fail-open path).
    Exception {
        t_ns: u64,
        node: u32,
        pkt: u64,
        chan: Rc<str>,
        exn: Rc<str>,
    },
    /// An application timer fired.
    TimerFire {
        t_ns: u64,
        node: u32,
        app: u32,
        key: u64,
    },
    /// A packet identity entered the send path for the first time: the
    /// start of span `pkt` inside trace `trace` (`parent` = 0 for the
    /// root span; `chan` = channel the creating ASP sent it on).
    SpanStart {
        t_ns: u64,
        node: u32,
        pkt: u64,
        trace: u64,
        parent: u64,
        origin: SpanOrigin,
        chan: Option<Rc<str>>,
    },
    /// A channel body ran for the packet, charging `steps` VM steps
    /// (per-span VM cost attribution).
    VmRun {
        t_ns: u64,
        node: u32,
        pkt: u64,
        chan: Rc<str>,
        steps: u64,
    },
    /// A scheduled fault fired (loss, corruption, duplication, jitter,
    /// flap, partition, crash, restart). `node`/`link` identify the
    /// afflicted element when the fault targets one; `pkt` is the
    /// affected packet for per-packet faults (0 for plan-level events).
    Fault {
        t_ns: u64,
        kind: Rc<str>,
        node: Option<u32>,
        link: Option<u32>,
        pkt: u64,
    },
    /// The sampler stepped its rate down (1/`from_n` → 1/`to_n`)
    /// because the kept-event budget was crossed at `kept` events.
    SampleDowngrade {
        t_ns: u64,
        from_n: u32,
        to_n: u32,
        kept: u64,
    },
    /// A health-monitor rule was evaluated over the window ending at
    /// `t_ns`. `value`/`threshold` share the rule's unit (ppm for
    /// ratios, raw deltas or nanoseconds otherwise).
    Health {
        t_ns: u64,
        rule: Rc<str>,
        ok: bool,
        value: u64,
        threshold: u64,
    },
    /// The brownout controller stepped its degradation level, either up
    /// on a rule breach (`rule` = the breaching rule) or down after the
    /// hysteretic clean streak (`rule` = `"recovered"`).
    Brownout {
        t_ns: u64,
        from_level: u32,
        to_level: u32,
        rule: Rc<str>,
    },
    /// A per-backend circuit breaker at `node` changed state.
    Breaker {
        t_ns: u64,
        node: u32,
        backend: Rc<str>,
        from: BreakerState,
        to: BreakerState,
    },
}

impl TraceEvent {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            TraceEvent::LinkEnqueue { .. } | TraceEvent::LinkTx { .. } => Category::LINK,
            TraceEvent::LinkDrop { .. } | TraceEvent::NodeDrop { .. } => Category::DROP,
            TraceEvent::Forward { .. } => Category::HOP,
            TraceEvent::Deliver { .. } => Category::DELIVER,
            TraceEvent::Dispatch { .. } => Category::DISPATCH,
            TraceEvent::Exception { .. } => Category::EXCEPTION,
            TraceEvent::TimerFire { .. } => Category::TIMER,
            TraceEvent::SpanStart { .. } => Category::SPAN,
            TraceEvent::VmRun { .. } => Category::VM,
            TraceEvent::Fault { .. } => Category::FAULT,
            TraceEvent::SampleDowngrade { .. } => Category::META,
            TraceEvent::Health { .. }
            | TraceEvent::Brownout { .. }
            | TraceEvent::Breaker { .. } => Category::HEALTH,
        }
    }

    /// Simulation time of the event, in nanoseconds.
    pub fn t_ns(&self) -> u64 {
        match self {
            TraceEvent::LinkEnqueue { t_ns, .. }
            | TraceEvent::LinkTx { t_ns, .. }
            | TraceEvent::LinkDrop { t_ns, .. }
            | TraceEvent::Forward { t_ns, .. }
            | TraceEvent::Deliver { t_ns, .. }
            | TraceEvent::NodeDrop { t_ns, .. }
            | TraceEvent::Dispatch { t_ns, .. }
            | TraceEvent::Exception { t_ns, .. }
            | TraceEvent::TimerFire { t_ns, .. }
            | TraceEvent::SpanStart { t_ns, .. }
            | TraceEvent::VmRun { t_ns, .. }
            | TraceEvent::Fault { t_ns, .. }
            | TraceEvent::SampleDowngrade { t_ns, .. }
            | TraceEvent::Health { t_ns, .. }
            | TraceEvent::Brownout { t_ns, .. }
            | TraceEvent::Breaker { t_ns, .. } => *t_ns,
        }
    }

    /// The packet id, if the event concerns a packet.
    pub fn pkt(&self) -> Option<u64> {
        match self {
            TraceEvent::LinkEnqueue { pkt, .. }
            | TraceEvent::LinkTx { pkt, .. }
            | TraceEvent::LinkDrop { pkt, .. }
            | TraceEvent::Forward { pkt, .. }
            | TraceEvent::Deliver { pkt, .. }
            | TraceEvent::NodeDrop { pkt, .. }
            | TraceEvent::Dispatch { pkt, .. }
            | TraceEvent::Exception { pkt, .. }
            | TraceEvent::SpanStart { pkt, .. }
            | TraceEvent::VmRun { pkt, .. } => Some(*pkt),
            TraceEvent::Fault { pkt, .. } => (*pkt != 0).then_some(*pkt),
            TraceEvent::TimerFire { .. }
            | TraceEvent::SampleDowngrade { .. }
            | TraceEvent::Health { .. }
            | TraceEvent::Brownout { .. }
            | TraceEvent::Breaker { .. } => None,
        }
    }

    /// Estimated JSONL size of the event in bytes — the currency of the
    /// telemetry overhead meter. A fixed per-variant cost plus the
    /// lengths of embedded strings; close enough to the real serialized
    /// size to budget against, cheap enough for the hot path.
    pub fn est_bytes(&self) -> u64 {
        let strings = match self {
            TraceEvent::Dispatch { chan, .. } => chan.as_ref().map_or(4, |c| c.len()) as u64,
            TraceEvent::Exception { chan, exn, .. } => (chan.len() + exn.len()) as u64,
            TraceEvent::SpanStart { chan, .. } => chan.as_ref().map_or(4, |c| c.len()) as u64,
            TraceEvent::VmRun { chan, .. } => chan.len() as u64,
            TraceEvent::Fault { kind, .. } => kind.len() as u64,
            TraceEvent::Health { rule, .. } => rule.len() as u64,
            TraceEvent::Brownout { rule, .. } => rule.len() as u64,
            TraceEvent::Breaker { backend, .. } => backend.len() as u64,
            _ => 0,
        };
        let base = match self {
            TraceEvent::LinkEnqueue { .. } => 88,
            TraceEvent::LinkTx { .. } => 72,
            TraceEvent::LinkDrop { .. } => 60,
            TraceEvent::Forward { .. } => 70,
            TraceEvent::Deliver { .. } => 62,
            TraceEvent::NodeDrop { .. } => 76,
            TraceEvent::Dispatch { .. } => 84,
            TraceEvent::Exception { .. } => 76,
            TraceEvent::TimerFire { .. } => 64,
            TraceEvent::SpanStart { .. } => 110,
            TraceEvent::VmRun { .. } => 74,
            TraceEvent::Fault { .. } => 72,
            TraceEvent::SampleDowngrade { .. } => 70,
            TraceEvent::Health { .. } => 78,
            TraceEvent::Brownout { .. } => 80,
            TraceEvent::Breaker { .. } => 92,
        };
        base + strings
    }

    /// Serializes the event as one JSON object, appended to `out`.
    pub fn write_json(&self, out: &mut String) {
        let mut seq = Seq::new();
        out.push('{');
        let field = |out: &mut String, seq: &mut Seq, k: &str, v: u64| {
            seq.sep(out);
            push_key(out, k);
            out.push_str(&v.to_string());
        };
        let tag = |out: &mut String, seq: &mut Seq, ty: &str| {
            seq.sep(out);
            push_key(out, "type");
            push_str(out, ty);
        };
        match self {
            TraceEvent::LinkEnqueue {
                t_ns,
                link,
                from,
                pkt,
                bytes,
                qlen,
            } => {
                tag(out, &mut seq, "link_enqueue");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "bytes", u64::from(*bytes));
                field(out, &mut seq, "qlen", u64::from(*qlen));
            }
            TraceEvent::LinkTx {
                t_ns,
                link,
                from,
                pkt,
                bytes,
            } => {
                tag(out, &mut seq, "link_tx");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "bytes", u64::from(*bytes));
            }
            TraceEvent::LinkDrop {
                t_ns,
                link,
                from,
                pkt,
            } => {
                tag(out, &mut seq, "link_drop");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "from", u64::from(*from));
                field(out, &mut seq, "pkt", *pkt);
            }
            TraceEvent::Forward {
                t_ns,
                node,
                pkt,
                link,
                ttl,
            } => {
                tag(out, &mut seq, "forward");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "link", u64::from(*link));
                field(out, &mut seq, "ttl", u64::from(*ttl));
            }
            TraceEvent::Deliver {
                t_ns,
                node,
                pkt,
                app,
            } => {
                tag(out, &mut seq, "deliver");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "app", u64::from(*app));
            }
            TraceEvent::NodeDrop {
                t_ns,
                node,
                pkt,
                reason,
            } => {
                tag(out, &mut seq, "node_drop");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "reason");
                push_str(out, reason.name());
            }
            TraceEvent::Dispatch {
                t_ns,
                node,
                pkt,
                chan,
                outcome,
            } => {
                tag(out, &mut seq, "dispatch");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                match chan {
                    Some(c) => push_str(out, c),
                    None => out.push_str("null"),
                }
                seq.sep(out);
                push_key(out, "outcome");
                push_str(out, outcome.name());
            }
            TraceEvent::Exception {
                t_ns,
                node,
                pkt,
                chan,
                exn,
            } => {
                tag(out, &mut seq, "exception");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                push_str(out, chan);
                seq.sep(out);
                push_key(out, "exn");
                push_str(out, exn);
            }
            TraceEvent::TimerFire {
                t_ns,
                node,
                app,
                key,
            } => {
                tag(out, &mut seq, "timer_fire");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "app", u64::from(*app));
                field(out, &mut seq, "key", *key);
            }
            TraceEvent::SpanStart {
                t_ns,
                node,
                pkt,
                trace,
                parent,
                origin,
                chan,
            } => {
                tag(out, &mut seq, "span_start");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                field(out, &mut seq, "trace", *trace);
                field(out, &mut seq, "parent", *parent);
                seq.sep(out);
                push_key(out, "origin");
                push_str(out, origin.name());
                seq.sep(out);
                push_key(out, "chan");
                match chan {
                    Some(c) => push_str(out, c),
                    None => out.push_str("null"),
                }
            }
            TraceEvent::VmRun {
                t_ns,
                node,
                pkt,
                chan,
                steps,
            } => {
                tag(out, &mut seq, "vm_run");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                field(out, &mut seq, "pkt", *pkt);
                seq.sep(out);
                push_key(out, "chan");
                push_str(out, chan);
                field(out, &mut seq, "steps", *steps);
            }
            TraceEvent::Fault {
                t_ns,
                kind,
                node,
                link,
                pkt,
            } => {
                tag(out, &mut seq, "fault");
                field(out, &mut seq, "t_ns", *t_ns);
                seq.sep(out);
                push_key(out, "kind");
                push_str(out, kind);
                seq.sep(out);
                push_key(out, "node");
                match node {
                    Some(n) => out.push_str(&n.to_string()),
                    None => out.push_str("null"),
                }
                seq.sep(out);
                push_key(out, "link");
                match link {
                    Some(l) => out.push_str(&l.to_string()),
                    None => out.push_str("null"),
                }
                field(out, &mut seq, "pkt", *pkt);
            }
            TraceEvent::SampleDowngrade {
                t_ns,
                from_n,
                to_n,
                kept,
            } => {
                tag(out, &mut seq, "sample_downgrade");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "from_n", u64::from(*from_n));
                field(out, &mut seq, "to_n", u64::from(*to_n));
                field(out, &mut seq, "kept", *kept);
            }
            TraceEvent::Health {
                t_ns,
                rule,
                ok,
                value,
                threshold,
            } => {
                tag(out, &mut seq, "health");
                field(out, &mut seq, "t_ns", *t_ns);
                seq.sep(out);
                push_key(out, "rule");
                push_str(out, rule);
                seq.sep(out);
                push_key(out, "ok");
                out.push_str(if *ok { "true" } else { "false" });
                field(out, &mut seq, "value", *value);
                field(out, &mut seq, "threshold", *threshold);
            }
            TraceEvent::Brownout {
                t_ns,
                from_level,
                to_level,
                rule,
            } => {
                tag(out, &mut seq, "brownout");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "from_level", u64::from(*from_level));
                field(out, &mut seq, "to_level", u64::from(*to_level));
                seq.sep(out);
                push_key(out, "rule");
                push_str(out, rule);
            }
            TraceEvent::Breaker {
                t_ns,
                node,
                backend,
                from,
                to,
            } => {
                tag(out, &mut seq, "breaker");
                field(out, &mut seq, "t_ns", *t_ns);
                field(out, &mut seq, "node", u64::from(*node));
                seq.sep(out);
                push_key(out, "backend");
                push_str(out, backend);
                seq.sep(out);
                push_key(out, "from");
                push_str(out, from.name());
                seq.sep(out);
                push_key(out, "to");
                push_str(out, to.name());
            }
        }
        out.push('}');
    }
}

impl fmt::Display for TraceEvent {
    /// The human one-line form used by `planp-trace`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let t = self.t_ns() as f64 / 1e9;
        match self {
            TraceEvent::LinkEnqueue {
                link,
                from,
                pkt,
                bytes,
                qlen,
                ..
            } => write!(
                f,
                "{t:12.6}  link{link:<3} enqueue  pkt={pkt} from=n{from} {bytes}B qlen={qlen}"
            ),
            TraceEvent::LinkTx {
                link,
                from,
                pkt,
                bytes,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  link{link:<3} tx       pkt={pkt} from=n{from} {bytes}B"
                )
            }
            TraceEvent::LinkDrop {
                link, from, pkt, ..
            } => {
                write!(
                    f,
                    "{t:12.6}  link{link:<3} DROP     pkt={pkt} from=n{from} (queue full)"
                )
            }
            TraceEvent::Forward {
                node,
                pkt,
                link,
                ttl,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} forward  pkt={pkt} via link{link} ttl={ttl}"
                )
            }
            TraceEvent::Deliver { node, pkt, app, .. } => {
                write!(f, "{t:12.6}  n{node:<5} deliver  pkt={pkt} app={app}")
            }
            TraceEvent::NodeDrop {
                node, pkt, reason, ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} DROP     pkt={pkt} ({})",
                    reason.name()
                )
            }
            TraceEvent::Dispatch {
                node,
                pkt,
                chan,
                outcome,
                ..
            } => write!(
                f,
                "{t:12.6}  n{node:<5} dispatch pkt={pkt} chan={} -> {}",
                chan.as_deref().unwrap_or("-"),
                outcome.name()
            ),
            TraceEvent::Exception {
                node,
                pkt,
                chan,
                exn,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} EXN      pkt={pkt} chan={chan} exn={exn}"
                )
            }
            TraceEvent::TimerFire { node, app, key, .. } => {
                write!(f, "{t:12.6}  n{node:<5} timer    app={app} key={key}")
            }
            TraceEvent::SpanStart {
                node,
                pkt,
                trace,
                parent,
                origin,
                chan,
                ..
            } => write!(
                f,
                "{t:12.6}  n{node:<5} span     pkt={pkt} trace={trace} parent={parent} \
                 origin={} chan={}",
                origin.name(),
                chan.as_deref().unwrap_or("-")
            ),
            TraceEvent::VmRun {
                node,
                pkt,
                chan,
                steps,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} vm       pkt={pkt} chan={chan} steps={steps}"
                )
            }
            TraceEvent::Fault {
                kind,
                node,
                link,
                pkt,
                ..
            } => {
                let site = match (node, link) {
                    (Some(n), _) => format!("n{n}"),
                    (None, Some(l)) => format!("link{l}"),
                    (None, None) => "plan".to_string(),
                };
                write!(f, "{t:12.6}  {site:<6} FAULT    kind={kind} pkt={pkt}")
            }
            TraceEvent::SampleDowngrade {
                from_n, to_n, kept, ..
            } => {
                write!(
                    f,
                    "{t:12.6}  meta   SAMPLE   rate 1/{from_n} -> 1/{to_n} (kept={kept})"
                )
            }
            TraceEvent::Health {
                rule,
                ok,
                value,
                threshold,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  slo    {}   rule={rule} value={value} threshold={threshold}",
                    if *ok { "ok    " } else { "BREACH" }
                )
            }
            TraceEvent::Brownout {
                from_level,
                to_level,
                rule,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  slo    BROWNOUT level {from_level} -> {to_level} rule={rule}"
                )
            }
            TraceEvent::Breaker {
                node,
                backend,
                from,
                to,
                ..
            } => {
                write!(
                    f,
                    "{t:12.6}  n{node:<5} BREAKER  backend={backend} {} -> {}",
                    from.name(),
                    to.name()
                )
            }
        }
    }
}

/// Configuration for a [`TraceLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Which event categories to record.
    pub categories: Category,
    /// Ring-buffer capacity; once full, the oldest events are evicted
    /// (`TraceLog::evicted` counts them).
    pub capacity: usize,
    /// Head-sampling rate: keep 1 of every `sample_n` traces (0 or 1 =
    /// keep all). The decision is made once per trace id, so the kept
    /// traces retain their *complete* span trees — children inherit the
    /// root's verdict, never re-roll.
    pub sample_n: u32,
    /// Seed mixed into the trace-id hash for the keep decision. Two
    /// logs with the same seed and rate keep the same traces.
    pub sample_seed: u64,
    /// Per-category rate limit: at most this many kept events per
    /// category per simulated second (0 = unlimited). Suppressed events
    /// are counted in [`TraceLog::rate_limited`].
    pub category_rate_limit: u64,
    /// Kept-event budget (0 = unlimited): every time the number of kept
    /// events crosses another multiple of the budget, the sampling rate
    /// deterministically doubles (`sample_n *= 2`, capped at 2^20) and
    /// a [`TraceEvent::SampleDowngrade`] is recorded.
    pub budget: u64,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            categories: Category::NONE,
            capacity: 65_536,
            sample_n: 1,
            sample_seed: 0,
            category_rate_limit: 0,
            budget: 0,
        }
    }
}

impl TraceConfig {
    /// Records every category at the default capacity.
    pub fn all() -> Self {
        TraceConfig {
            categories: Category::ALL,
            ..TraceConfig::default()
        }
    }

    /// Records every category, head-sampling 1 of every `n` traces.
    pub fn sampled(n: u32) -> Self {
        TraceConfig {
            sample_n: n.max(1),
            ..TraceConfig::all()
        }
    }

    /// Parses a `--sample` argument: `1/N` or a bare `N` (keep 1 of
    /// every N traces). `1`, `1/1`, and `0` mean "keep everything".
    pub fn parse_sample(s: &str) -> Result<u32, String> {
        let body = s.strip_prefix("1/").unwrap_or(s);
        match body.parse::<u32>() {
            Ok(n) => Ok(n.max(1)),
            Err(_) => Err(format!("bad sample rate {s:?} (expected 1/N or N)")),
        }
    }
}

/// The SplitMix64 finalizer, applied to `seed ^ trace_id` for the keep
/// decision — the same mix the simulator's RNG uses, so the sampler
/// inherits its avalanche quality without depending on the netsim
/// crate.
fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The telemetry overhead meter: what tracing kept, what the sampler
/// and rate limiter suppressed, and what the kept events cost.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOverhead {
    /// Events kept (recorded into the ring, including later-evicted).
    pub kept: u64,
    /// Events suppressed by the trace sampler.
    pub sampled_out: u64,
    /// Events suppressed by the per-category rate limit.
    pub rate_limited: u64,
    /// Kept events later evicted by the ring.
    pub evicted: u64,
    /// Estimated serialized bytes of the kept events.
    pub est_bytes: u64,
    /// Estimated record cost of the kept events, in nanoseconds
    /// (`kept × EST_RECORD_NS` — a fixed per-event estimate, not a
    /// wall-clock measurement, so it is deterministic).
    pub est_cost_ns: u64,
    /// Budget downgrades applied so far.
    pub downgrades: u32,
    /// The current (possibly budget-degraded) sampling denominator.
    pub sample_n: u32,
}

/// A bounded ring buffer of trace events.
///
/// Determinism contract: with the same configuration and the same
/// deterministic event source, `to_jsonl` produces byte-identical
/// output across runs. Nothing here reads the wall clock.
#[derive(Debug)]
pub struct TraceLog {
    enabled: Category,
    capacity: usize,
    buf: VecDeque<TraceEvent>,
    recorded: u64,
    evicted: u64,
    /// Current sampling denominator (doubles on budget downgrades).
    sample_n: u32,
    sample_seed: u64,
    category_rate_limit: u64,
    budget: u64,
    next_budget_mark: u64,
    sampled_out: u64,
    rate_limited: u64,
    est_bytes: u64,
    downgrades: u32,
    /// Kept-event counts per category for the current sim-second
    /// window (rate limiting). Indexed by the category's bit position.
    cat_window: [u64; 16],
    window: u64,
}

impl Default for TraceLog {
    fn default() -> Self {
        TraceLog::new(TraceConfig::default())
    }
}

/// Estimated cost of recording one kept event, in nanoseconds. A fixed
/// constant (construct + ring push + amortized serialization), so the
/// overhead meter stays deterministic.
pub const EST_RECORD_NS: u64 = 120;

impl TraceLog {
    /// A log with the given configuration.
    pub fn new(cfg: TraceConfig) -> Self {
        TraceLog {
            enabled: cfg.categories,
            capacity: cfg.capacity.max(1),
            buf: VecDeque::new(),
            recorded: 0,
            evicted: 0,
            sample_n: cfg.sample_n.max(1),
            sample_seed: cfg.sample_seed,
            category_rate_limit: cfg.category_rate_limit,
            budget: cfg.budget,
            next_budget_mark: cfg.budget,
            sampled_out: 0,
            rate_limited: 0,
            est_bytes: 0,
            downgrades: 0,
            cat_window: [0; 16],
            window: 0,
        }
    }

    /// Replaces the configuration (keeps already-recorded events that
    /// still fit). Resets the sampler to the configured rate.
    pub fn configure(&mut self, cfg: TraceConfig) {
        self.enabled = cfg.categories;
        self.capacity = cfg.capacity.max(1);
        self.sample_n = cfg.sample_n.max(1);
        self.sample_seed = cfg.sample_seed;
        self.category_rate_limit = cfg.category_rate_limit;
        self.budget = cfg.budget;
        self.next_budget_mark = self.recorded + cfg.budget;
        while self.buf.len() > self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
    }

    /// The enabled categories.
    pub fn categories(&self) -> Category {
        self.enabled
    }

    /// Hot-path guard: true if events of category `c` are recorded.
    /// Call this *before* constructing an event so disabled tracing
    /// costs one branch and no allocation.
    #[inline]
    pub fn wants(&self, c: Category) -> bool {
        self.enabled.contains(c)
    }

    /// Hot-path guard for packet-path events: category enabled *and*
    /// the packet's trace was kept by the sampler. When the category is
    /// on but the trace was sampled out, the suppression is counted —
    /// that is the sampler's half of the overhead meter.
    #[inline]
    pub fn wants_pkt(&mut self, c: Category, sampled: bool) -> bool {
        if !self.enabled.contains(c) {
            return false;
        }
        if !sampled {
            self.sampled_out += 1;
            return false;
        }
        true
    }

    /// The whole-lineage head-sampling decision for a new trace root:
    /// keep iff the seeded hash of the trace id lands below
    /// `u64::MAX / sample_n`. Thresholds nest — every trace kept at
    /// 1/2N is also kept at 1/N — so budget downgrades shrink the kept
    /// set without orphaning already-kept lineages' siblings.
    #[inline]
    pub fn keep_trace(&self, trace: u64) -> bool {
        let n = u64::from(self.sample_n.max(1));
        if n <= 1 {
            return true;
        }
        mix64(self.sample_seed ^ trace) <= u64::MAX / n
    }

    /// Records an event (if its category is enabled and the per-category
    /// rate limit has headroom). Sampling decisions happen upstream via
    /// [`TraceLog::keep_trace`] / [`TraceLog::wants_pkt`].
    pub fn push(&mut self, ev: TraceEvent) {
        if !self.wants(ev.category()) {
            return;
        }
        if self.category_rate_limit > 0 {
            let w = ev.t_ns() / 1_000_000_000;
            if w != self.window {
                self.window = w;
                self.cat_window = [0; 16];
            }
            let idx = (ev.category().0.trailing_zeros() as usize).min(15);
            if self.cat_window[idx] >= self.category_rate_limit {
                self.rate_limited += 1;
                return;
            }
            self.cat_window[idx] += 1;
        }
        let t_ns = ev.t_ns();
        self.record(ev);
        // Budget check: each crossing of another `budget` kept events
        // doubles the sampling denominator, recorded as a meta event.
        if self.budget > 0 && self.recorded >= self.next_budget_mark {
            self.next_budget_mark += self.budget;
            let from_n = self.sample_n.max(1);
            if from_n < (1 << 20) {
                let to_n = from_n * 2;
                self.sample_n = to_n;
                self.downgrades += 1;
                if self.wants(Category::META) {
                    self.record(TraceEvent::SampleDowngrade {
                        t_ns,
                        from_n,
                        to_n,
                        kept: self.recorded,
                    });
                }
            }
        }
    }

    /// Unconditional ring insert with accounting.
    fn record(&mut self, ev: TraceEvent) {
        self.est_bytes += ev.est_bytes();
        if self.buf.len() == self.capacity {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back(ev);
        self.recorded += 1;
    }

    /// Events currently held, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &TraceEvent> {
        self.buf.iter()
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True if nothing is held.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events recorded over the log's lifetime (including evicted).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted by the ring buffer.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Events suppressed by the trace sampler.
    pub fn sampled_out(&self) -> u64 {
        self.sampled_out
    }

    /// Events suppressed by the per-category rate limit.
    pub fn rate_limited(&self) -> u64 {
        self.rate_limited
    }

    /// The current sampling denominator (1 = keep everything); grows
    /// when budget downgrades fire.
    pub fn sample_n(&self) -> u32 {
        self.sample_n
    }

    /// Budget downgrades applied so far.
    pub fn downgrades(&self) -> u32 {
        self.downgrades
    }

    /// The telemetry self-accounting meter.
    pub fn overhead(&self) -> TraceOverhead {
        TraceOverhead {
            kept: self.recorded,
            sampled_out: self.sampled_out,
            rate_limited: self.rate_limited,
            evicted: self.evicted,
            est_bytes: self.est_bytes,
            est_cost_ns: self.recorded * EST_RECORD_NS,
            downgrades: self.downgrades,
            sample_n: self.sample_n,
        }
    }

    /// Serializes the held events as JSON Lines (one object per line,
    /// trailing newline when non-empty). Byte-stable for identical logs.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in &self.buf {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64) -> TraceEvent {
        TraceEvent::Deliver {
            t_ns: t,
            node: 1,
            pkt: t,
            app: 0,
        }
    }

    #[test]
    fn categories_parse_and_combine() {
        let c = Category::from_list("link, drop").unwrap();
        assert!(c.contains(Category::LINK) && c.contains(Category::DROP));
        assert!(!c.contains(Category::DISPATCH));
        assert_eq!(Category::from_list("all").unwrap(), Category::ALL);
        assert_eq!(Category::from_list("").unwrap(), Category::NONE);
        assert!(Category::from_list("bogus").is_err());
    }

    #[test]
    fn disabled_categories_are_not_recorded() {
        let mut log = TraceLog::new(TraceConfig {
            categories: Category::LINK,
            capacity: 8,
            ..TraceConfig::default()
        });
        assert!(!log.wants(Category::DELIVER));
        log.push(ev(1));
        assert_eq!(log.len(), 0);
        log.push(TraceEvent::LinkTx {
            t_ns: 2,
            link: 0,
            from: 0,
            pkt: 1,
            bytes: 64,
        });
        assert_eq!(log.len(), 1);
    }

    #[test]
    fn ring_buffer_evicts_oldest() {
        let mut log = TraceLog::new(TraceConfig {
            categories: Category::ALL,
            capacity: 3,
            ..TraceConfig::default()
        });
        for t in 0..5 {
            log.push(ev(t));
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.recorded(), 5);
        assert_eq!(log.evicted(), 2);
        let first = log.events().next().unwrap().t_ns();
        assert_eq!(first, 2);
    }

    #[test]
    fn jsonl_is_stable_and_escaped() {
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(TraceEvent::Exception {
            t_ns: 5,
            node: 2,
            pkt: 9,
            chan: "net\"work".into(),
            exn: "Div".into(),
        });
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"exception\",\"t_ns\":5,\"node\":2,\"pkt\":9,\"chan\":\"net\\\"work\",\"exn\":\"Div\"}\n"
        );
        assert_eq!(line, log.to_jsonl());
    }

    #[test]
    fn keep_trace_is_deterministic_and_nested() {
        // Same seed + rate → same verdicts; every trace kept at 1/2N is
        // kept at 1/N (thresholds nest), so downgrades only shrink the
        // kept set.
        let mk = |n: u32| {
            TraceLog::new(TraceConfig {
                sample_n: n,
                sample_seed: 42,
                ..TraceConfig::all()
            })
        };
        let (l1, l4, l8) = (mk(1), mk(4), mk(8));
        let mut kept4 = 0u64;
        for trace in 1..4000u64 {
            assert!(l1.keep_trace(trace), "1/1 keeps everything");
            assert_eq!(l4.keep_trace(trace), mk(4).keep_trace(trace));
            if l8.keep_trace(trace) {
                assert!(l4.keep_trace(trace), "1/8 set must nest in 1/4 set");
            }
            kept4 += u64::from(l4.keep_trace(trace));
        }
        // ~1/4 of 4k traces, generous tolerance.
        assert!((700..1300).contains(&kept4), "kept4 = {kept4}");
        // A different seed keeps a different set.
        let other = TraceLog::new(TraceConfig {
            sample_n: 4,
            sample_seed: 43,
            ..TraceConfig::all()
        });
        assert!((1..4000u64).any(|t| l4.keep_trace(t) != other.keep_trace(t)));
    }

    #[test]
    fn wants_pkt_counts_sampled_out() {
        let mut log = TraceLog::new(TraceConfig::all());
        assert!(log.wants_pkt(Category::DELIVER, true));
        assert!(!log.wants_pkt(Category::DELIVER, false));
        assert_eq!(log.sampled_out(), 1);
        // Disabled category: suppressed by the filter, not the sampler.
        let mut off = TraceLog::new(TraceConfig::default());
        assert!(!off.wants_pkt(Category::DELIVER, false));
        assert_eq!(off.sampled_out(), 0);
    }

    #[test]
    fn budget_crossing_downgrades_and_emits_meta_event() {
        let mut log = TraceLog::new(TraceConfig {
            budget: 10,
            ..TraceConfig::all()
        });
        for t in 0..25 {
            log.push(ev(t));
        }
        let oh = log.overhead();
        assert_eq!(oh.downgrades, 2, "two budget crossings");
        assert_eq!(oh.sample_n, 4, "1 -> 2 -> 4");
        let downs: Vec<_> = log
            .events()
            .filter_map(|e| match e {
                TraceEvent::SampleDowngrade { from_n, to_n, .. } => Some((*from_n, *to_n)),
                _ => None,
            })
            .collect();
        assert_eq!(downs, vec![(1, 2), (2, 4)]);
        assert!(oh.est_bytes > 0 && oh.est_cost_ns == oh.kept * EST_RECORD_NS);
    }

    #[test]
    fn category_rate_limit_caps_events_per_sim_second() {
        let mut log = TraceLog::new(TraceConfig {
            category_rate_limit: 3,
            ..TraceConfig::all()
        });
        // 5 delivers in second 0: only 3 kept.
        for t in 0..5 {
            log.push(ev(t));
        }
        assert_eq!(log.recorded(), 3);
        assert_eq!(log.rate_limited(), 2);
        // The window resets at the next sim-second.
        log.push(ev(1_000_000_001));
        assert_eq!(log.recorded(), 4);
    }

    #[test]
    fn parse_sample_accepts_fraction_and_bare_n() {
        assert_eq!(TraceConfig::parse_sample("1/16"), Ok(16));
        assert_eq!(TraceConfig::parse_sample("16"), Ok(16));
        assert_eq!(TraceConfig::parse_sample("1"), Ok(1));
        assert_eq!(TraceConfig::parse_sample("0"), Ok(1));
        assert!(TraceConfig::parse_sample("x/y").is_err());
    }

    #[test]
    fn new_events_serialize_and_display() {
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(TraceEvent::Health {
            t_ns: 7,
            rule: "delivery_floor".into(),
            ok: false,
            value: 912_000,
            threshold: 950_000,
        });
        let line = log.to_jsonl();
        assert_eq!(
            line,
            "{\"type\":\"health\",\"t_ns\":7,\"rule\":\"delivery_floor\",\"ok\":false,\
             \"value\":912000,\"threshold\":950000}\n"
        );
        let d = TraceEvent::SampleDowngrade {
            t_ns: 9,
            from_n: 4,
            to_n: 8,
            kept: 100,
        };
        let mut js = String::new();
        d.write_json(&mut js);
        assert_eq!(
            js,
            "{\"type\":\"sample_downgrade\",\"t_ns\":9,\"from_n\":4,\"to_n\":8,\"kept\":100}"
        );
        assert!(d.to_string().contains("1/4 -> 1/8"));
    }

    #[test]
    fn display_is_one_line() {
        let e = TraceEvent::Forward {
            t_ns: 1_500_000,
            node: 3,
            pkt: 7,
            link: 2,
            ttl: 63,
        };
        let s = e.to_string();
        assert!(s.contains("forward") && s.contains("pkt=7") && !s.contains('\n'));
    }
}
