//! Byte-stable exporters: Chrome `trace_event` JSON and
//! Prometheus-style text exposition.
//!
//! Both formats are produced with deterministic iteration (spans by
//! packet id, metrics by name) and integer-derived decimal formatting,
//! so two runs with the same seed emit identical bytes — asserted by
//! the workspace tracing tests and diffed in CI.
//!
//! * [`chrome_trace`] writes one complete (`"ph":"X"`) event per span
//!   plus flow arrows (`"s"`/`"f"`) along parent→child lineage edges.
//!   Load the file in Perfetto or `chrome://tracing`: each trace id is
//!   a process row, each node a thread row, and the flow arrows stitch
//!   the cross-node span tree together.
//! * [`prometheus`] renders a [`MetricsSnapshot`] in the text
//!   exposition format: counters as `counter`, histograms as `summary`
//!   quantiles (p50/p90/p99/p99.9) with `_sum`/`_count`, plus `_min` /
//!   `_max` gauges.

use crate::json::push_str;
use crate::metrics::MetricsSnapshot;
use crate::span::TraceForest;
use std::fmt::Write as _;

/// Nanoseconds rendered as microseconds with three decimals — Chrome's
/// `ts`/`dur` unit — without going through floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn node_name(nodes: &[String], i: u32) -> String {
    nodes
        .get(i as usize)
        .cloned()
        .unwrap_or_else(|| format!("n{i}"))
}

/// Renders a span forest as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`): per-span complete events, lineage flow
/// arrows, and process/thread name metadata. `nodes` supplies thread
/// names by node index.
pub fn chrome_trace(forest: &TraceForest, nodes: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Metadata: one process row per trace, one thread row per node that
    // appears in it.
    let mut meta: Vec<(u64, Vec<u32>)> = Vec::new();
    for s in forest.spans() {
        match meta.iter_mut().find(|(t, _)| *t == s.trace) {
            Some((_, ns)) => {
                if !ns.contains(&s.node) {
                    ns.push(s.node);
                }
            }
            None => meta.push((s.trace, vec![s.node])),
        }
    }
    for (trace, ns) in &mut meta {
        ns.sort_unstable();
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{trace},\"tid\":0,\
             \"args\":{{\"name\":\"trace {trace}\"}}}}"
        );
        for n in ns.iter() {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{trace},\"tid\":{n},\"args\":{{\"name\":"
            ));
            push_str(&mut out, &node_name(nodes, *n));
            out.push_str("}}");
        }
    }

    for s in forest.spans() {
        let dur = s.end_ns.saturating_sub(s.start_ns).max(1);
        sep(&mut out);
        out.push_str("{\"ph\":\"X\",\"name\":");
        match &s.chan {
            Some(c) => push_str(&mut out, &format!("{}:{c}", s.origin.name())),
            None => push_str(&mut out, s.origin.name()),
        }
        let _ = write!(
            out,
            ",\"cat\":\"span\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"span\":{},\"parent\":{},\"vm_steps\":{},\"hops\":{},\
             \"delivered\":{},\"drops\":{}}}}}",
            s.trace,
            s.node,
            micros(s.start_ns),
            micros(dur),
            s.id,
            s.parent,
            s.vm_steps,
            s.hops,
            s.deliveries.len(),
            s.drops
        );
        // Lineage flow arrow from the parent's row to this span's row.
        if s.parent != 0 && forest.span(s.parent).is_some() {
            let parent = forest.span(s.parent).unwrap();
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"s\",\"name\":\"lineage\",\"cat\":\"lineage\",\"id\":{},\
                 \"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.id,
                s.trace,
                parent.node,
                micros(s.start_ns)
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"lineage\",\"cat\":\"lineage\",\
                 \"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.id,
                s.trace,
                s.node,
                micros(s.start_ns)
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Maps a metric name to the Prometheus charset: `[a-zA-Z0-9_:]`, with
/// a `planp_` prefix.
fn prom_name(name: &str) -> String {
    let mut s = String::from("planp_");
    for c in name.chars() {
        if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
            s.push(c);
        } else {
            s.push('_');
        }
    }
    s
}

/// Renders a snapshot in the Prometheus text exposition format.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, v) in &snap.counters {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} counter");
        let _ = writeln!(out, "{n} {v}");
    }
    for (name, h) in &snap.histograms {
        let n = prom_name(name);
        let _ = writeln!(out, "# TYPE {n} summary");
        for (q, v) in [
            ("0.5", h.p50),
            ("0.9", h.p90),
            ("0.99", h.p99),
            ("0.999", h.p999),
        ] {
            let _ = writeln!(out, "{n}{{quantile=\"{q}\"}} {v}");
        }
        let _ = writeln!(out, "{n}_sum {}", h.sum);
        let _ = writeln!(out, "{n}_count {}", h.count);
        let _ = writeln!(out, "# TYPE {n}_min gauge");
        let _ = writeln!(out, "{n}_min {}", h.min);
        let _ = writeln!(out, "# TYPE {n}_max gauge");
        let _ = writeln!(out, "{n}_max {}", h.max);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanOrigin, TraceConfig, TraceEvent, TraceLog};
    use crate::metrics::{Histogram, MetricsSnapshot};

    fn forest() -> TraceForest {
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(TraceEvent::SpanStart {
            t_ns: 1_000,
            node: 0,
            pkt: 1,
            trace: 1,
            parent: 0,
            origin: SpanOrigin::Ingress,
            chan: None,
        });
        log.push(TraceEvent::SpanStart {
            t_ns: 2_500,
            node: 1,
            pkt: 2,
            trace: 1,
            parent: 1,
            origin: SpanOrigin::Remote,
            chan: Some("network".into()),
        });
        log.push(TraceEvent::Deliver {
            t_ns: 4_000,
            node: 2,
            pkt: 2,
            app: 0,
        });
        TraceForest::from_log(&log)
    }

    #[test]
    fn chrome_trace_has_spans_flows_and_metadata() {
        let nodes = vec!["src".into(), "router".into(), "client".into()];
        let j = chrome_trace(&forest(), &nodes);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(j.contains("\"name\":\"process_name\""));
        assert!(j.contains("{\"name\":\"router\"}"));
        // Span X events carry integer-derived µs timestamps.
        assert!(j.contains("\"ts\":1.000"), "{j}");
        assert!(j.contains("\"ts\":2.500"), "{j}");
        assert!(j.contains("\"name\":\"remote:network\""));
        // Lineage flow pair for the child span.
        assert!(j.contains("\"ph\":\"s\"") && j.contains("\"ph\":\"f\""));
        assert_eq!(j, chrome_trace(&forest(), &nodes));
    }

    #[test]
    fn prometheus_renders_counters_and_summaries() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("node.a.delivered", 7);
        snap.set_histogram("lat/ns", &h);
        let p = prometheus(&snap);
        assert!(p.contains("# TYPE planp_node_a_delivered counter\nplanp_node_a_delivered 7\n"));
        assert!(p.contains("# TYPE planp_lat_ns summary"));
        assert!(p.contains("planp_lat_ns{quantile=\"0.999\"} 100"));
        assert!(p.contains("planp_lat_ns_sum 110"));
        assert!(p.contains("planp_lat_ns_count 5"));
        assert!(p.contains("planp_lat_ns_max 100"));
        assert_eq!(p, prometheus(&snap));
    }
}
