//! Byte-stable exporters: Chrome `trace_event` JSON and
//! Prometheus-style text exposition.
//!
//! Both formats are produced with deterministic iteration (spans by
//! packet id, metrics by name) and integer-derived decimal formatting,
//! so two runs with the same seed emit identical bytes — asserted by
//! the workspace tracing tests and diffed in CI.
//!
//! * [`chrome_trace`] writes one complete (`"ph":"X"`) event per span
//!   plus flow arrows (`"s"`/`"f"`) along parent→child lineage edges.
//!   Load the file in Perfetto or `chrome://tracing`: each trace id is
//!   a process row, each node a thread row, and the flow arrows stitch
//!   the cross-node span tree together.
//! * [`prometheus`] renders a [`MetricsSnapshot`] in the text
//!   exposition format: counters as `counter`, histograms as `summary`
//!   quantiles (p50/p90/p99/p99.9) with `_sum`/`_count`, plus `_min` /
//!   `_max` gauges.

use crate::json::push_str;
use crate::metrics::MetricsSnapshot;
use crate::span::TraceForest;
use std::fmt::Write as _;

/// Nanoseconds rendered as microseconds with three decimals — Chrome's
/// `ts`/`dur` unit — without going through floating point.
fn micros(ns: u64) -> String {
    format!("{}.{:03}", ns / 1000, ns % 1000)
}

fn node_name(nodes: &[String], i: u32) -> String {
    nodes
        .get(i as usize)
        .cloned()
        .unwrap_or_else(|| format!("n{i}"))
}

/// Renders a span forest as a Chrome `trace_event` JSON document
/// (`{"traceEvents":[...]}`): per-span complete events, lineage flow
/// arrows, and process/thread name metadata. `nodes` supplies thread
/// names by node index.
pub fn chrome_trace(forest: &TraceForest, nodes: &[String]) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };

    // Metadata: one process row per trace, one thread row per node that
    // appears in it.
    let mut meta: Vec<(u64, Vec<u32>)> = Vec::new();
    for s in forest.spans() {
        match meta.iter_mut().find(|(t, _)| *t == s.trace) {
            Some((_, ns)) => {
                if !ns.contains(&s.node) {
                    ns.push(s.node);
                }
            }
            None => meta.push((s.trace, vec![s.node])),
        }
    }
    for (trace, ns) in &mut meta {
        ns.sort_unstable();
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{trace},\"tid\":0,\
             \"args\":{{\"name\":\"trace {trace}\"}}}}"
        );
        for n in ns.iter() {
            sep(&mut out);
            out.push_str(&format!(
                "{{\"ph\":\"M\",\"name\":\"thread_name\",\"pid\":{trace},\"tid\":{n},\"args\":{{\"name\":"
            ));
            push_str(&mut out, &node_name(nodes, *n));
            out.push_str("}}");
        }
    }

    for s in forest.spans() {
        let dur = s.end_ns.saturating_sub(s.start_ns).max(1);
        sep(&mut out);
        out.push_str("{\"ph\":\"X\",\"name\":");
        match &s.chan {
            Some(c) => push_str(&mut out, &format!("{}:{c}", s.origin.name())),
            None => push_str(&mut out, s.origin.name()),
        }
        let _ = write!(
            out,
            ",\"cat\":\"span\",\"pid\":{},\"tid\":{},\"ts\":{},\"dur\":{},\
             \"args\":{{\"span\":{},\"parent\":{},\"vm_steps\":{},\"hops\":{},\
             \"delivered\":{},\"drops\":{}}}}}",
            s.trace,
            s.node,
            micros(s.start_ns),
            micros(dur),
            s.id,
            s.parent,
            s.vm_steps,
            s.hops,
            s.deliveries.len(),
            s.drops
        );
        // Lineage flow arrow from the parent's row to this span's row.
        if s.parent != 0 && forest.span(s.parent).is_some() {
            let parent = forest.span(s.parent).unwrap();
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"s\",\"name\":\"lineage\",\"cat\":\"lineage\",\"id\":{},\
                 \"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.id,
                s.trace,
                parent.node,
                micros(s.start_ns)
            );
            sep(&mut out);
            let _ = write!(
                out,
                "{{\"ph\":\"f\",\"bp\":\"e\",\"name\":\"lineage\",\"cat\":\"lineage\",\
                 \"id\":{},\"pid\":{},\"tid\":{},\"ts\":{}}}",
                s.id,
                s.trace,
                s.node,
                micros(s.start_ns)
            );
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Renders a [`ProfileRegistry`] as a Chrome `trace_event` JSON
/// document: one process row per profile scope, one complete (`"X"`)
/// event per observed site laid out back-to-back along a synthetic
/// step timeline (`ts`/`dur` are recorded VM steps, not wall time).
/// Deterministic and byte-stable — scopes in key order, sites
/// ascending. Load in Perfetto next to [`chrome_trace`] output to see
/// where each channel's budget goes.
pub fn chrome_profile(reg: &crate::profile::ProfileRegistry) -> String {
    let mut out = String::from("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if !first {
            out.push(',');
        }
        first = false;
    };
    for (pid, s) in reg.scopes().enumerate() {
        sep(&mut out);
        let _ = write!(
            out,
            "{{\"ph\":\"M\",\"name\":\"process_name\",\"pid\":{pid},\"tid\":0,\"args\":{{\"name\":"
        );
        push_str(&mut out, &s.key());
        out.push_str("}}");
        let mut ts = 0u64;
        for (site, steps) in &s.sites {
            let label = s
                .meta
                .get(site)
                .map(|m| m.label.as_str())
                .unwrap_or("unknown");
            sep(&mut out);
            out.push_str("{\"ph\":\"X\",\"name\":");
            push_str(&mut out, label);
            let _ = write!(
                out,
                ",\"cat\":\"profile\",\"pid\":{pid},\"tid\":0,\"ts\":{ts},\"dur\":{},\
                 \"args\":{{\"site\":{site},\"steps\":{}}}}}",
                (*steps).max(1),
                steps
            );
            ts += (*steps).max(1);
        }
    }
    out.push_str("],\"displayTimeUnit\":\"ms\"}");
    out
}

/// Maps a raw segment to the Prometheus metric-name charset
/// `[a-zA-Z0-9_:]` (dots and anything else become underscores).
fn sanitize(name: &str) -> String {
    name.chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '_' || c == ':' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

/// Escapes a label value per the exposition format.
fn escape_label(v: &str) -> String {
    let mut s = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '\\' => s.push_str("\\\\"),
            '"' => s.push_str("\\\""),
            '\n' => s.push_str("\\n"),
            c => s.push(c),
        }
    }
    s
}

/// Splits a registry name into a scrape-valid metric name plus labels:
///
/// * `node.<n>.chan.<c>.<what>` → `planp_chan_<what>{chan="<c>",node="<n>"}`
/// * `node.<n>.<what>`          → `planp_node_<what>{node="<n>"}`
/// * `link<i>.<what>`           → `planp_link_<what>{link="<i>"}`
/// * anything else              → `planp_<sanitized>` (no labels)
///
/// The per-element identity moves into labels so a 100k-node fleet
/// yields a handful of metric families instead of 100k metric names —
/// and dotted tails like `recovery.redeploys` sanitize to underscores,
/// which is what makes the output scrape-valid.
fn prom_series(name: &str) -> (String, Vec<(&'static str, String)>) {
    if let Some(rest) = name.strip_prefix("node.") {
        if let Some((node, what)) = rest.split_once('.') {
            if let Some(chan_rest) = what.strip_prefix("chan.") {
                if let Some((chan, leaf)) = chan_rest.split_once('.') {
                    return (
                        format!("planp_chan_{}", sanitize(leaf)),
                        vec![("chan", chan.to_string()), ("node", node.to_string())],
                    );
                }
            }
            return (
                format!("planp_node_{}", sanitize(what)),
                vec![("node", node.to_string())],
            );
        }
    }
    if let Some(rest) = name.strip_prefix("link") {
        if let Some((idx, what)) = rest.split_once('.') {
            if !idx.is_empty() && idx.bytes().all(|b| b.is_ascii_digit()) {
                return (
                    format!("planp_link_{}", sanitize(what)),
                    vec![("link", idx.to_string())],
                );
            }
        }
    }
    (format!("planp_{}", sanitize(name)), Vec::new())
}

/// The label set of one exported series.
type LabelSet = Vec<(&'static str, String)>;

fn render_labels(labels: &[(&'static str, String)], extra: Option<(&str, &str)>) -> String {
    if labels.is_empty() && extra.is_none() {
        return String::new();
    }
    let mut parts: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    format!("{{{}}}", parts.join(","))
}

/// Renders a snapshot in the Prometheus text exposition format.
///
/// Series are grouped into metric families (one `# TYPE` line per
/// family, series sorted by label set) and every name is mapped through
/// [`prom_series`], so the output is scrape-valid: metric names match
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` and per-node / per-link / per-channel
/// identity lives in labels. Byte-stable for identical snapshots.
pub fn prometheus(snap: &MetricsSnapshot) -> String {
    use std::collections::BTreeMap;
    let mut out = String::new();

    // Counters: family → (label string → value).
    let mut families: BTreeMap<String, BTreeMap<String, u64>> = BTreeMap::new();
    for (name, v) in &snap.counters {
        let (metric, labels) = prom_series(name);
        families
            .entry(metric)
            .or_default()
            .insert(render_labels(&labels, None), *v);
    }
    for (metric, series) in &families {
        let _ = writeln!(out, "# TYPE {metric} counter");
        for (labels, v) in series {
            let _ = writeln!(out, "{metric}{labels} {v}");
        }
    }

    // Histograms: family → (sorted label vec → summary).
    type HistFamily<'a> = Vec<(LabelSet, &'a crate::metrics::HistogramSummary)>;
    let mut hfams: BTreeMap<String, HistFamily<'_>> = BTreeMap::new();
    for (name, h) in &snap.histograms {
        let (metric, labels) = prom_series(name);
        hfams.entry(metric).or_default().push((labels, h));
    }
    for (metric, series) in &mut hfams {
        series.sort_by_key(|(labels, _)| render_labels(labels, None));
        let _ = writeln!(out, "# TYPE {metric} summary");
        for (labels, h) in series.iter() {
            for (q, v) in [
                ("0.5", h.p50),
                ("0.9", h.p90),
                ("0.99", h.p99),
                ("0.999", h.p999),
            ] {
                let l = render_labels(labels, Some(("quantile", q)));
                let _ = writeln!(out, "{metric}{l} {v}");
            }
            let l = render_labels(labels, None);
            let _ = writeln!(out, "{metric}_sum{l} {}", h.sum);
            let _ = writeln!(out, "{metric}_count{l} {}", h.count);
        }
        let _ = writeln!(out, "# TYPE {metric}_min gauge");
        for (labels, h) in series.iter() {
            let l = render_labels(labels, None);
            let _ = writeln!(out, "{metric}_min{l} {}", h.min);
        }
        let _ = writeln!(out, "# TYPE {metric}_max gauge");
        for (labels, h) in series.iter() {
            let l = render_labels(labels, None);
            let _ = writeln!(out, "{metric}_max{l} {}", h.max);
        }
    }
    out
}

/// One parsed exposition sample: metric name, sorted `(key, value)`
/// labels, value.
pub type PromSample = (String, Vec<(String, String)>, u64);

/// Parses exposition-format text back into
/// `(metric, sorted labels, value)` triples — the round-trip half of
/// the exporter contract, used by tests and CI to prove the output is
/// scrape-valid. Rejects names and label keys outside the Prometheus
/// charset and unparsable values.
pub fn parse_prometheus(text: &str) -> Result<Vec<PromSample>, String> {
    let name_ok = |s: &str| {
        !s.is_empty()
            && !s.starts_with(|c: char| c.is_ascii_digit())
            && s.chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_' || c == ':')
    };
    let mut out = Vec::new();
    for (lno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let err = |what: &str| format!("line {}: {what}: {line:?}", lno + 1);
        let (series, value) = line.rsplit_once(' ').ok_or_else(|| err("missing value"))?;
        let value: u64 = value.parse().map_err(|_| err("bad value"))?;
        let (metric, labels) = match series.split_once('{') {
            None => (series.to_string(), Vec::new()),
            Some((m, rest)) => {
                let body = rest
                    .strip_suffix('}')
                    .ok_or_else(|| err("unclosed labels"))?;
                let mut labels = Vec::new();
                for pair in body.split(',').filter(|p| !p.is_empty()) {
                    let (k, v) = pair.split_once('=').ok_or_else(|| err("bad label"))?;
                    if !name_ok(k) {
                        return Err(err("bad label key"));
                    }
                    let v = v
                        .strip_prefix('"')
                        .and_then(|v| v.strip_suffix('"'))
                        .ok_or_else(|| err("unquoted label value"))?;
                    labels.push((k.to_string(), v.replace("\\\"", "\"").replace("\\\\", "\\")));
                }
                labels.sort();
                (m.to_string(), labels)
            }
        };
        if !name_ok(&metric) {
            return Err(err("metric name outside [a-zA-Z0-9_:]"));
        }
        out.push((metric, labels, value));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{SpanOrigin, TraceConfig, TraceEvent, TraceLog};
    use crate::metrics::{Histogram, MetricsSnapshot};

    fn forest() -> TraceForest {
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(TraceEvent::SpanStart {
            t_ns: 1_000,
            node: 0,
            pkt: 1,
            trace: 1,
            parent: 0,
            origin: SpanOrigin::Ingress,
            chan: None,
        });
        log.push(TraceEvent::SpanStart {
            t_ns: 2_500,
            node: 1,
            pkt: 2,
            trace: 1,
            parent: 1,
            origin: SpanOrigin::Remote,
            chan: Some("network".into()),
        });
        log.push(TraceEvent::Deliver {
            t_ns: 4_000,
            node: 2,
            pkt: 2,
            app: 0,
        });
        TraceForest::from_log(&log)
    }

    #[test]
    fn chrome_trace_has_spans_flows_and_metadata() {
        let nodes = vec!["src".into(), "router".into(), "client".into()];
        let j = chrome_trace(&forest(), &nodes);
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.ends_with("],\"displayTimeUnit\":\"ms\"}"));
        assert!(j.contains("\"name\":\"process_name\""));
        assert!(j.contains("{\"name\":\"router\"}"));
        // Span X events carry integer-derived µs timestamps.
        assert!(j.contains("\"ts\":1.000"), "{j}");
        assert!(j.contains("\"ts\":2.500"), "{j}");
        assert!(j.contains("\"name\":\"remote:network\""));
        // Lineage flow pair for the child span.
        assert!(j.contains("\"ph\":\"s\"") && j.contains("\"ph\":\"f\""));
        assert_eq!(j, chrome_trace(&forest(), &nodes));
    }

    #[test]
    fn chrome_profile_lays_sites_on_a_step_timeline() {
        let build = || {
            let mut reg = crate::profile::ProfileRegistry::default();
            let id = reg.declare(
                "gw",
                "network",
                0,
                [
                    (10, "1:1:if".to_string(), 2),
                    (20, "2:3:prim.tcpDst".to_string(), 1),
                ],
                [],
            );
            assert!(reg.should_profile(id));
            reg.record(id, &[(10, 2), (20, 1)], 3);
            reg
        };
        let j = chrome_profile(&build());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"name\":\"node.gw.chan.network#0\""));
        assert!(j.contains("\"name\":\"1:1:if\""));
        // Sites are laid back-to-back: site 10 spans [0,2), site 20 [2,3).
        assert!(j.contains("\"ts\":0,\"dur\":2"), "{j}");
        assert!(j.contains("\"ts\":2,\"dur\":1"), "{j}");
        assert_eq!(j, chrome_profile(&build()), "byte-stable");
    }

    #[test]
    fn prometheus_renders_counters_and_summaries() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 100] {
            h.observe(v);
        }
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("node.a.delivered", 7);
        snap.set_histogram("lat/ns", &h);
        let p = prometheus(&snap);
        assert!(
            p.contains("# TYPE planp_node_delivered counter\nplanp_node_delivered{node=\"a\"} 7\n")
        );
        assert!(p.contains("# TYPE planp_lat_ns summary"));
        assert!(p.contains("planp_lat_ns{quantile=\"0.999\"} 100"));
        assert!(p.contains("planp_lat_ns_sum 110"));
        assert!(p.contains("planp_lat_ns_count 5"));
        assert!(p.contains("planp_lat_ns_max 100"));
        assert_eq!(p, prometheus(&snap));
    }

    #[test]
    fn prometheus_groups_families_and_extracts_labels() {
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("node.a.delivered", 1);
        snap.set_counter("node.b.delivered", 2);
        snap.set_counter("node.r2.recovery.redeploys", 3);
        snap.set_counter("link3.fault_drops", 4);
        snap.set_counter("node.gw.chan.network.dispatch", 5);
        snap.set_counter("sim.packets", 6);
        let p = prometheus(&snap);
        // One TYPE line per family, not per series.
        assert_eq!(p.matches("# TYPE planp_node_delivered counter").count(), 1);
        assert!(p.contains("planp_node_delivered{node=\"a\"} 1"));
        assert!(p.contains("planp_node_delivered{node=\"b\"} 2"));
        // Dotted tails sanitize to underscores.
        assert!(p.contains("planp_node_recovery_redeploys{node=\"r2\"} 3"));
        assert!(p.contains("planp_link_fault_drops{link=\"3\"} 4"));
        assert!(p.contains("planp_chan_dispatch{chan=\"network\",node=\"gw\"} 5"));
        assert!(p.contains("planp_sim_packets 6"));
        assert!(!p.contains("planp_node_a_"), "identity must be a label");
    }

    #[test]
    fn prometheus_round_trips_through_the_parser() {
        // The exposition output must parse back into exactly the series
        // we put in — scrape-valid names, labels carrying the identity.
        let mut h = Histogram::new();
        h.observe(9);
        let mut snap = MetricsSnapshot::default();
        snap.set_counter("node.r2.recovery.redeploys", 3);
        snap.set_counter("link3.fault_drops", 4);
        snap.set_counter("node.gw.chan.network.vm_steps", 11);
        snap.set_counter("sim.link_drops_total", 2);
        snap.set_histogram("link0.queue_depth", &h);
        let text = prometheus(&snap);
        let series = parse_prometheus(&text).expect("output must be scrape-valid");
        let find = |m: &str, ls: &[(&str, &str)]| {
            series
                .iter()
                .find(|(name, labels, _)| {
                    name == m
                        && labels.len() == ls.len()
                        && ls
                            .iter()
                            .all(|(k, v)| labels.iter().any(|(lk, lv)| lk == k && lv == v))
                })
                .map(|(_, _, v)| *v)
        };
        assert_eq!(
            find("planp_node_recovery_redeploys", &[("node", "r2")]),
            Some(3)
        );
        assert_eq!(find("planp_link_fault_drops", &[("link", "3")]), Some(4));
        assert_eq!(
            find(
                "planp_chan_vm_steps",
                &[("chan", "network"), ("node", "gw")]
            ),
            Some(11)
        );
        assert_eq!(find("planp_sim_link_drops_total", &[]), Some(2));
        assert_eq!(
            find("planp_link_queue_depth_count", &[("link", "0")]),
            Some(1)
        );
        assert_eq!(
            find(
                "planp_link_queue_depth",
                &[("link", "0"), ("quantile", "0.99")]
            ),
            Some(9)
        );
    }
}
