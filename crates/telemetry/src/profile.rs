//! Per-site execution profiles: the always-on VM profiler.
//!
//! Both engines attribute every charged VM step to an expression
//! **site** (`NetEnv::charge_site`; a site id is the node's source
//! span start offset). The runtime layer feeds those per-dispatch
//! charge vectors into a [`ProfileRegistry`] scope — one scope per
//! `node × channel overload` — together with the static per-site step
//! bounds and superinstruction candidates computed by
//! `planp-analysis::profile`. Everything downstream is a deterministic
//! join of the two:
//!
//! * [`ProfileRegistry::collapsed_flame`] — flamegraph collapsed-stack
//!   lines (`planp;node;chan#ov;site-label count`);
//! * [`ProfileRegistry::heatmap`] — per-site **utilization** rows,
//!   `observed / (bound × dispatches)` in permille, flagging sites at
//!   ≥ 80% of their bound (`hot`) and sites with ≥ 10× slack
//!   (`slack`);
//! * [`ProfileRegistry::superinstruction_report`] — the static
//!   candidates ranked by observed steps, the input artifact for the
//!   future compilation tier (ROADMAP item 2);
//! * [`ProfileRegistry::to_json`] — the whole registry, byte-stable.
//!
//! Soundness is checked live: [`ProfileRegistry::record`] verifies
//! Σ per-site == aggregate on every recorded dispatch and counts
//! violations in [`ScopeProfile::mismatches`] (asserted zero by the
//! test suite and the `planp_profile` baseline).
//!
//! Scale degradation mirrors the trace sampler (PR 6): a registry-wide
//! `1/N` dispatch sampling rate ([`ProfileRegistry::set_sample`], the
//! same dialect as `TraceConfig::parse_sample`), plus an optional
//! recorded-step budget that deterministically doubles the sampling
//! denominator each time it is crossed
//! ([`ProfileRegistry::set_step_budget`]). Skipped dispatches are
//! counted, never silently dropped.

use crate::json::{push_key, push_str};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Static metadata of one site within a scope.
#[derive(Debug, Clone)]
pub struct SiteMeta {
    /// Human label, `line:col:kind` (flame-frame safe).
    pub label: String,
    /// Static step bound per dispatch.
    pub bound: u64,
}

/// A static superinstruction candidate attached to a scope.
#[derive(Debug, Clone)]
pub struct PatternMeta {
    /// Pattern tag (`hdr_compare_branch`, `table_forward`).
    pub pattern: String,
    /// Participating site ids, ascending.
    pub sites: Vec<u32>,
    /// `line:col` of the anchoring node.
    pub label: String,
}

/// Handle to a declared profile scope (pre-resolved, cheap to copy).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScopeId(usize);

/// The accumulated profile of one `node × channel overload`.
#[derive(Debug, Clone)]
pub struct ScopeProfile {
    /// Node display name.
    pub node: String,
    /// Channel name.
    pub chan: String,
    /// Overload index.
    pub overload: u32,
    /// Dispatches recorded into this profile.
    pub dispatches: u64,
    /// Dispatches skipped by sampling.
    pub skipped: u64,
    /// Aggregate steps over recorded dispatches.
    pub steps: u64,
    /// Observed steps per site (recorded dispatches only).
    pub sites: BTreeMap<u32, u64>,
    /// Static per-site metadata (label + per-dispatch bound).
    pub meta: BTreeMap<u32, SiteMeta>,
    /// Static superinstruction candidates in this scope.
    pub patterns: Vec<PatternMeta>,
    /// Recorded dispatches where Σ per-site ≠ aggregate (soundness
    /// violations; must stay zero).
    pub mismatches: u64,
}

impl ScopeProfile {
    /// The registry key of this scope.
    pub fn key(&self) -> String {
        scope_key(&self.node, &self.chan, self.overload)
    }

    /// Observed sites missing from the static site table (must stay
    /// zero: every site a dispatch can charge is statically known).
    pub fn unknown_sites(&self) -> u64 {
        self.sites
            .keys()
            .filter(|s| !self.meta.contains_key(s))
            .count() as u64
    }
}

fn scope_key(node: &str, chan: &str, overload: u32) -> String {
    format!("node.{node}.chan.{chan}#{overload}")
}

/// One row of the utilization heatmap.
#[derive(Debug, Clone)]
pub struct HeatmapRow {
    /// Scope key (`node.<n>.chan.<c>#<ov>`).
    pub scope: String,
    /// Site id.
    pub site: u32,
    /// Site label.
    pub label: String,
    /// Observed steps (recorded dispatches only).
    pub observed: u64,
    /// Static per-dispatch bound.
    pub bound: u64,
    /// Recorded dispatches of the owning scope.
    pub dispatches: u64,
    /// `observed × 1000 / (bound × dispatches)` (0 when unbounded or
    /// undispatched). Sound profiles never exceed 1000.
    pub permille: u64,
    /// Utilization ≥ 80% of the bound — a tight bound, and a hot site.
    pub hot: bool,
    /// Bound ≥ 10× observed on a dispatched scope — static slack worth
    /// tightening.
    pub slack: bool,
}

/// The per-site profile registry (one per [`crate::Telemetry`]).
#[derive(Debug)]
pub struct ProfileRegistry {
    scopes: Vec<ScopeProfile>,
    index: BTreeMap<String, usize>,
    /// Current sampling denominator (1 = record every dispatch).
    sample_n: u32,
    /// Recorded-step budget (0 = unlimited).
    step_budget: u64,
    next_budget_mark: u64,
    downgrades: u32,
    steps_total: u64,
}

impl Default for ProfileRegistry {
    fn default() -> Self {
        ProfileRegistry {
            scopes: Vec::new(),
            index: BTreeMap::new(),
            sample_n: 1,
            step_budget: 0,
            next_budget_mark: 0,
            downgrades: 0,
            steps_total: 0,
        }
    }
}

impl ProfileRegistry {
    /// Declares (or re-resolves) the scope `node.<node>.chan.<chan>#<ov>`.
    ///
    /// Idempotent by key: a redeploy or crash-restart re-declares the
    /// same scope and keeps the accumulated profile — static metadata
    /// is refreshed from the (identical) analysis.
    pub fn declare(
        &mut self,
        node: &str,
        chan: &str,
        overload: u32,
        sites: impl IntoIterator<Item = (u32, String, u64)>,
        patterns: impl IntoIterator<Item = (String, Vec<u32>, String)>,
    ) -> ScopeId {
        let key = scope_key(node, chan, overload);
        let meta: BTreeMap<u32, SiteMeta> = sites
            .into_iter()
            .map(|(site, label, bound)| (site, SiteMeta { label, bound }))
            .collect();
        let patterns: Vec<PatternMeta> = patterns
            .into_iter()
            .map(|(pattern, sites, label)| PatternMeta {
                pattern,
                sites,
                label,
            })
            .collect();
        if let Some(&i) = self.index.get(&key) {
            self.scopes[i].meta = meta;
            self.scopes[i].patterns = patterns;
            return ScopeId(i);
        }
        let i = self.scopes.len();
        self.scopes.push(ScopeProfile {
            node: node.to_string(),
            chan: chan.to_string(),
            overload,
            dispatches: 0,
            skipped: 0,
            steps: 0,
            sites: BTreeMap::new(),
            meta,
            patterns,
            mismatches: 0,
        });
        self.index.insert(key, i);
        ScopeId(i)
    }

    /// Sets the sampling denominator: record 1 of every `n` dispatches
    /// per scope (0 and 1 both mean every dispatch). Same dialect as
    /// `TraceConfig::parse_sample`.
    pub fn set_sample(&mut self, n: u32) {
        self.sample_n = n.max(1);
    }

    /// Sets a recorded-step budget: each time the total recorded steps
    /// cross another multiple of `budget`, the sampling denominator
    /// deterministically doubles (capped at 2^20), so profiling
    /// degrades gracefully instead of growing without bound. 0 removes
    /// the budget.
    pub fn set_step_budget(&mut self, budget: u64) {
        self.step_budget = budget;
        self.next_budget_mark = budget;
    }

    /// Decides (and counts) whether the next dispatch of `id` is
    /// profiled: deterministic per-scope `1/N` — the first dispatch is
    /// always kept, then every `N`th.
    pub fn should_profile(&mut self, id: ScopeId) -> bool {
        let n = self.sample_n as u64;
        let s = &mut self.scopes[id.0];
        let seq = s.dispatches + s.skipped;
        if n <= 1 || seq.is_multiple_of(n) {
            true
        } else {
            s.skipped += 1;
            false
        }
    }

    /// Records one profiled dispatch: the per-site charge vector and
    /// the `charge_steps` aggregate. Verifies Σ per-site == aggregate
    /// (counting violations in [`ScopeProfile::mismatches`]) and
    /// applies the step-budget downgrade.
    pub fn record(&mut self, id: ScopeId, site_steps: &[(u32, u64)], steps: u64) {
        let s = &mut self.scopes[id.0];
        s.dispatches += 1;
        s.steps += steps;
        let mut sum = 0u64;
        for &(site, n) in site_steps {
            *s.sites.entry(site).or_insert(0) += n;
            sum += n;
        }
        if sum != steps {
            s.mismatches += 1;
        }
        self.steps_total += steps;
        if self.step_budget > 0 {
            while self.steps_total >= self.next_budget_mark {
                self.sample_n = (self.sample_n.saturating_mul(2)).min(1 << 20);
                self.downgrades += 1;
                self.next_budget_mark += self.step_budget;
            }
        }
    }

    /// All scopes, in key order (deterministic).
    pub fn scopes(&self) -> impl Iterator<Item = &ScopeProfile> {
        self.index.values().map(|&i| &self.scopes[i])
    }

    /// The scope behind `id`.
    pub fn scope(&self, id: ScopeId) -> &ScopeProfile {
        &self.scopes[id.0]
    }

    /// Total soundness violations across all scopes (must stay zero).
    pub fn mismatches(&self) -> u64 {
        self.scopes.iter().map(|s| s.mismatches).sum()
    }

    /// `(current sample_n, budget downgrades applied)` — the profiler's
    /// self-accounting.
    pub fn overhead(&self) -> (u32, u32) {
        (self.sample_n, self.downgrades)
    }

    /// Flamegraph collapsed-stack lines, one per observed site:
    /// `planp;<node>;<chan>#<ov>;<site-label> <steps>`. Scopes in key
    /// order, sites ascending — byte-stable. Feed to
    /// `flamegraph.pl` / speedscope / inferno unchanged.
    pub fn collapsed_flame(&self) -> String {
        let mut out = String::new();
        for s in self.scopes() {
            for (site, steps) in &s.sites {
                let label = s
                    .meta
                    .get(site)
                    .map(|m| m.label.as_str())
                    .unwrap_or("unknown");
                let _ = writeln!(
                    out,
                    "planp;{};{}#{};{label} {steps}",
                    s.node, s.chan, s.overload
                );
            }
        }
        out
    }

    /// The utilization heatmap: one row per `scope × observed-or-bound
    /// site`, in (scope key, site) order.
    pub fn heatmap(&self) -> Vec<HeatmapRow> {
        let mut rows = Vec::new();
        for s in self.scopes() {
            // Every statically known site appears, observed or not;
            // observed-but-unknown sites appear with bound 0.
            let mut sites: Vec<u32> = s.meta.keys().copied().collect();
            for site in s.sites.keys() {
                if !s.meta.contains_key(site) {
                    sites.push(*site);
                }
            }
            sites.sort_unstable();
            for site in sites {
                let observed = s.sites.get(&site).copied().unwrap_or(0);
                let (label, bound) = match s.meta.get(&site) {
                    Some(m) => (m.label.clone(), m.bound),
                    None => ("unknown".to_string(), 0),
                };
                let denom = bound.saturating_mul(s.dispatches);
                let permille = observed
                    .saturating_mul(1000)
                    .checked_div(denom)
                    .unwrap_or(0);
                rows.push(HeatmapRow {
                    scope: s.key(),
                    site,
                    label,
                    observed,
                    bound,
                    dispatches: s.dispatches,
                    permille,
                    hot: denom > 0 && permille >= 800,
                    slack: s.dispatches > 0 && denom > 0 && permille <= 100,
                });
            }
        }
        rows
    }

    /// The heatmap as a human table (fixed-width, byte-stable).
    pub fn render_heatmap(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<44} {:>8} {:>10} {:>10} {:>6}  label",
            "scope", "site", "observed", "bound/d", "util"
        );
        for r in self.heatmap() {
            let flags = match (r.hot, r.slack) {
                (true, _) => " HOT",
                (_, true) => " SLACK",
                _ => "",
            };
            let _ = writeln!(
                out,
                "{:<44} {:>8} {:>10} {:>10} {:>4}.{}%  {}{flags}",
                r.scope,
                r.site,
                r.observed,
                r.bound,
                r.permille / 10,
                r.permille % 10,
                r.label
            );
        }
        out
    }

    /// The superinstruction candidates of every scope, ranked by
    /// observed steps over their participating sites (descending; ties
    /// by scope key, then anchor label). The input artifact for the
    /// bytecode/superinstruction tier.
    pub fn superinstruction_report(&self) -> String {
        let mut ranked: Vec<(u64, String, String, String)> = Vec::new();
        for s in self.scopes() {
            for p in &s.patterns {
                let observed: u64 = p
                    .sites
                    .iter()
                    .map(|site| s.sites.get(site).copied().unwrap_or(0))
                    .sum();
                ranked.push((observed, s.key(), p.label.clone(), p.pattern.clone()));
            }
        }
        ranked.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)).then(a.2.cmp(&b.2)));
        let mut out = String::new();
        for (i, (observed, scope, label, pattern)) in ranked.iter().enumerate() {
            let _ = writeln!(
                out,
                "{:>3}. {pattern:<20} {scope} @{label} steps={observed}",
                i + 1
            );
        }
        out
    }

    /// Per-node rollup next to the plan layer's `node_state`:
    /// `(node, recorded dispatches, recorded steps)`, sorted by node.
    pub fn node_rollup(&self) -> Vec<(String, u64, u64)> {
        let mut by_node: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        for s in self.scopes.iter() {
            let e = by_node.entry(s.node.clone()).or_insert((0, 0));
            e.0 += s.dispatches;
            e.1 += s.steps;
        }
        by_node.into_iter().map(|(n, (d, st))| (n, d, st)).collect()
    }

    /// The whole registry as one byte-stable JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"sample_n\":");
        let _ = write!(out, "{}", self.sample_n);
        let _ = write!(out, ",\"downgrades\":{}", self.downgrades);
        let _ = write!(out, ",\"mismatches\":{}", self.mismatches());
        out.push_str(",\"scopes\":[");
        for (i, s) in self.scopes().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            push_key(&mut out, "scope");
            push_str(&mut out, &s.key());
            let _ = write!(
                out,
                ",\"dispatches\":{},\"skipped\":{},\"steps\":{},\"mismatches\":{}",
                s.dispatches, s.skipped, s.steps, s.mismatches
            );
            out.push_str(",\"sites\":[");
            let mut sites: Vec<u32> = s.meta.keys().copied().collect();
            for site in s.sites.keys() {
                if !s.meta.contains_key(site) {
                    sites.push(*site);
                }
            }
            sites.sort_unstable();
            for (j, site) in sites.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let observed = s.sites.get(site).copied().unwrap_or(0);
                let (label, bound) = match s.meta.get(site) {
                    Some(m) => (m.label.as_str(), m.bound),
                    None => ("unknown", 0),
                };
                let _ = write!(
                    out,
                    "{{\"site\":{site},\"observed\":{observed},\"bound\":{bound}"
                );
                out.push(',');
                push_key(&mut out, "label");
                push_str(&mut out, label);
                out.push('}');
            }
            out.push_str("],\"patterns\":[");
            for (j, p) in s.patterns.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('{');
                push_key(&mut out, "pattern");
                push_str(&mut out, &p.pattern);
                out.push(',');
                push_key(&mut out, "label");
                push_str(&mut out, &p.label);
                out.push_str(",\"sites\":[");
                for (k, site) in p.sites.iter().enumerate() {
                    if k > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{site}");
                }
                let observed: u64 = p
                    .sites
                    .iter()
                    .map(|site| s.sites.get(site).copied().unwrap_or(0))
                    .sum();
                let _ = write!(out, "],\"observed\":{observed}}}");
            }
            out.push_str("]}");
        }
        out.push_str("]}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn declared(reg: &mut ProfileRegistry) -> ScopeId {
        reg.declare(
            "gw",
            "network",
            0,
            [
                (10, "1:1:if".to_string(), 2),
                (20, "2:3:prim.tcpDst".to_string(), 1),
            ],
            [(
                "hdr_compare_branch".to_string(),
                vec![10, 20],
                "1:1".to_string(),
            )],
        )
    }

    #[test]
    fn declare_is_idempotent_and_keeps_observations() {
        let mut reg = ProfileRegistry::default();
        let a = declared(&mut reg);
        assert!(reg.should_profile(a));
        reg.record(a, &[(10, 2), (20, 1)], 3);
        let b = declared(&mut reg);
        assert_eq!(a, b);
        assert_eq!(reg.scope(b).dispatches, 1);
        assert_eq!(reg.scope(b).steps, 3);
        assert_eq!(reg.mismatches(), 0);
    }

    #[test]
    fn record_detects_aggregate_mismatch() {
        let mut reg = ProfileRegistry::default();
        let id = declared(&mut reg);
        reg.record(id, &[(10, 2)], 3);
        assert_eq!(reg.mismatches(), 1);
    }

    #[test]
    fn sampling_keeps_first_then_every_nth() {
        let mut reg = ProfileRegistry::default();
        let id = declared(&mut reg);
        reg.set_sample(4);
        let mut kept = 0;
        for _ in 0..8 {
            if reg.should_profile(id) {
                reg.record(id, &[(10, 1)], 1);
                kept += 1;
            }
        }
        assert_eq!(kept, 2, "1/4 sampling keeps dispatches 0 and 4");
        assert_eq!(reg.scope(id).skipped, 6);
    }

    #[test]
    fn step_budget_downgrades_deterministically() {
        let mut reg = ProfileRegistry::default();
        let id = declared(&mut reg);
        reg.set_step_budget(10);
        for _ in 0..4 {
            if reg.should_profile(id) {
                reg.record(id, &[(10, 5)], 5);
            }
        }
        let (n, downgrades) = reg.overhead();
        assert!(downgrades >= 1, "budget crossing must downgrade");
        assert!(n > 1, "sample_n doubled");
    }

    #[test]
    fn exports_are_byte_stable_and_ranked() {
        let build = || {
            let mut reg = ProfileRegistry::default();
            let id = declared(&mut reg);
            let other = reg.declare(
                "gw",
                "mon",
                0,
                [(30, "3:1:seq".to_string(), 5)],
                [("table_forward".to_string(), vec![30], "3:1".to_string())],
            );
            for _ in 0..3 {
                assert!(reg.should_profile(id));
                reg.record(id, &[(10, 2), (20, 1)], 3);
            }
            assert!(reg.should_profile(other));
            reg.record(other, &[(30, 1)], 1);
            reg
        };
        let a = build();
        let b = build();
        assert_eq!(a.collapsed_flame(), b.collapsed_flame());
        assert_eq!(a.render_heatmap(), b.render_heatmap());
        assert_eq!(a.to_json(), b.to_json());
        assert!(a.collapsed_flame().contains("planp;gw;network#0;1:1:if 6"));
        let report = a.superinstruction_report();
        let first = report.lines().next().unwrap();
        assert!(
            first.contains("hdr_compare_branch") && first.contains("steps=9"),
            "hottest candidate ranks first: {report}"
        );
        assert_eq!(a.mismatches(), 0);
    }

    #[test]
    fn heatmap_flags_hot_and_slack() {
        let mut reg = ProfileRegistry::default();
        let id = reg.declare(
            "n0",
            "c",
            0,
            [(1, "1:1:if".to_string(), 1), (2, "1:4:int".to_string(), 50)],
            [],
        );
        assert!(reg.should_profile(id));
        // Site 1 fully used (1000‰, hot); site 2 uses 1 of 50 (20‰, slack).
        reg.record(id, &[(1, 1), (2, 1)], 2);
        let rows = reg.heatmap();
        let r1 = rows.iter().find(|r| r.site == 1).unwrap();
        let r2 = rows.iter().find(|r| r.site == 2).unwrap();
        assert!(r1.hot && !r1.slack && r1.permille == 1000);
        assert!(r2.slack && !r2.hot && r2.permille == 20);
        assert!(rows.iter().all(|r| r.permille <= 1000), "soundness");
    }

    #[test]
    fn node_rollup_aggregates_per_node() {
        let mut reg = ProfileRegistry::default();
        let a = reg.declare("n0", "c", 0, [(1, "l".to_string(), 1)], []);
        let b = reg.declare("n0", "d", 0, [(2, "l".to_string(), 1)], []);
        let c = reg.declare("n1", "c", 0, [(3, "l".to_string(), 1)], []);
        for id in [a, b, c] {
            assert!(reg.should_profile(id));
        }
        reg.record(a, &[(1, 1)], 1);
        reg.record(b, &[(2, 2)], 2);
        reg.record(c, &[(3, 3)], 3);
        assert_eq!(
            reg.node_rollup(),
            vec![("n0".to_string(), 2, 3), ("n1".to_string(), 1, 3)]
        );
    }
}
