//! Always-on per-node flight recorder: a bounded ring of the most
//! recent notable events at every node, kept regardless of trace
//! configuration. When a node crashes — or an SLO rule breaches — the
//! ring is frozen into a [`FlightDump`]: the post-mortem window that
//! tells you what the node saw in its final moments, even when tracing
//! was off or the trace was sampled out.
//!
//! Events are deliberately compact (32 bytes, `Copy`, no strings): the
//! recorder runs on every packet at 100k+ nodes, so the per-event cost
//! must stay at a ring push. Detail codes are small integers decoded at
//! render time ([`DropReason::from_index`] for drops).

use crate::event::DropReason;
use std::collections::VecDeque;
use std::fmt::Write as _;

/// What kind of moment a flight-recorder entry captures.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlightKind {
    /// A local delivery (`detail` = app index).
    Deliver,
    /// A node-level drop (`detail` = [`DropReason::index`]).
    Drop,
    /// An uncaught ASP exception (fail-open).
    Exception,
    /// An injected fault touched this node.
    Fault,
    /// The node crashed (soft-state lost).
    Crash,
    /// The node restarted.
    Restart,
}

impl FlightKind {
    /// Stable lowercase name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            FlightKind::Deliver => "deliver",
            FlightKind::Drop => "drop",
            FlightKind::Exception => "exception",
            FlightKind::Fault => "fault",
            FlightKind::Crash => "crash",
            FlightKind::Restart => "restart",
        }
    }
}

/// One compact flight-recorder entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FlightEvent {
    /// Simulation time, nanoseconds.
    pub t_ns: u64,
    /// What happened.
    pub kind: FlightKind,
    /// The packet involved (0 = none).
    pub pkt: u64,
    /// Kind-specific detail code (see [`FlightKind`]).
    pub detail: u32,
}

impl FlightEvent {
    /// The human decoding of the detail code.
    pub fn detail_name(&self) -> String {
        match self.kind {
            FlightKind::Drop => DropReason::from_index(self.detail)
                .map(|r| r.name().to_string())
                .unwrap_or_else(|| self.detail.to_string()),
            FlightKind::Deliver => format!("app{}", self.detail),
            _ => String::from("-"),
        }
    }
}

/// A frozen post-mortem window for one node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlightDump {
    /// The node whose ring was frozen.
    pub node: u32,
    /// When the dump was taken.
    pub t_ns: u64,
    /// Why ("crash", or the breaching rule's name).
    pub cause: String,
    /// Overload posture at dump time (brownout level, non-closed
    /// breakers), empty when the owner has no overload machinery.
    pub state: String,
    /// The ring contents, oldest first.
    pub events: Vec<FlightEvent>,
}

/// Per-node rings plus the dumps taken so far.
///
/// Rings grow lazily with the highest node index seen; capacity is
/// fixed per node (default 32 events) so total memory is
/// `nodes × capacity × 32 B` — 100 MB at 100k nodes and the default
/// capacity, linear and bounded.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    rings: Vec<VecDeque<FlightEvent>>,
    dumps: Vec<FlightDump>,
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// Default per-node window of 32 events.
    pub const DEFAULT_CAPACITY: usize = 32;

    /// A recorder with the default per-node capacity.
    pub fn new() -> Self {
        FlightRecorder {
            cap: Self::DEFAULT_CAPACITY,
            rings: Vec::new(),
            dumps: Vec::new(),
        }
    }

    /// Changes the per-node ring capacity (existing rings are trimmed
    /// to the new bound, oldest first).
    pub fn set_capacity(&mut self, cap: usize) {
        self.cap = cap.max(1);
        for r in &mut self.rings {
            while r.len() > self.cap {
                r.pop_front();
            }
        }
    }

    /// Appends one entry to `node`'s ring, evicting the oldest when
    /// full.
    #[inline]
    pub fn record(&mut self, node: u32, ev: FlightEvent) {
        let i = node as usize;
        if i >= self.rings.len() {
            self.rings.resize_with(i + 1, VecDeque::new);
        }
        let r = &mut self.rings[i];
        if r.len() == self.cap {
            r.pop_front();
        }
        r.push_back(ev);
    }

    /// The current ring contents for `node`, oldest first.
    pub fn window(&self, node: u32) -> impl Iterator<Item = &FlightEvent> {
        self.rings
            .get(node as usize)
            .into_iter()
            .flat_map(|r| r.iter())
    }

    /// Freezes `node`'s current window into a dump.
    pub fn dump(&mut self, node: u32, t_ns: u64, cause: &str) {
        self.dump_with_state(node, t_ns, cause, "");
    }

    /// Freezes `node`'s current window into a dump stamped with the
    /// overload posture (brownout level / breaker states) at dump time,
    /// so post-mortems show what degradation stage the node was in.
    pub fn dump_with_state(&mut self, node: u32, t_ns: u64, cause: &str, state: &str) {
        let events = self.window(node).copied().collect();
        self.dumps.push(FlightDump {
            node,
            t_ns,
            cause: cause.to_string(),
            state: state.to_string(),
            events,
        });
    }

    /// The dumps taken so far, in capture order.
    pub fn dumps(&self) -> &[FlightDump] {
        &self.dumps
    }

    /// Renders every dump as a byte-stable text block. `nodes` supplies
    /// display names by node index.
    pub fn render_dumps(&self, nodes: &[String]) -> String {
        let mut out = String::new();
        for d in &self.dumps {
            let name = nodes
                .get(d.node as usize)
                .cloned()
                .unwrap_or_else(|| format!("n{}", d.node));
            let state = if d.state.is_empty() {
                String::new()
            } else {
                format!(" state={}", d.state)
            };
            let _ = writeln!(
                out,
                "flight dump  node={name} t_us={} cause={} events={}{state}",
                d.t_ns / 1000,
                d.cause,
                d.events.len()
            );
            for e in &d.events {
                let _ = writeln!(
                    out,
                    "  {:>12}  {:<9} pkt={} {}",
                    e.t_ns / 1000,
                    e.kind.name(),
                    e.pkt,
                    e.detail_name()
                );
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: u64, kind: FlightKind) -> FlightEvent {
        FlightEvent {
            t_ns: t,
            kind,
            pkt: t,
            detail: 0,
        }
    }

    #[test]
    fn ring_is_bounded_per_node() {
        let mut f = FlightRecorder::new();
        f.set_capacity(3);
        for t in 0..10 {
            f.record(2, ev(t, FlightKind::Deliver));
        }
        let w: Vec<u64> = f.window(2).map(|e| e.t_ns).collect();
        assert_eq!(w, vec![7, 8, 9]);
        assert_eq!(f.window(0).count(), 0, "untouched node has empty window");
    }

    #[test]
    fn dump_freezes_the_window() {
        let mut f = FlightRecorder::new();
        f.record(1, ev(5, FlightKind::Drop));
        f.record(1, ev(6, FlightKind::Crash));
        f.dump(1, 7, "crash");
        // Later traffic doesn't alter the frozen dump.
        f.record(1, ev(8, FlightKind::Restart));
        assert_eq!(f.dumps().len(), 1);
        let d = &f.dumps()[0];
        assert_eq!((d.node, d.t_ns, d.cause.as_str()), (1, 7, "crash"));
        assert_eq!(d.events.len(), 2);
        let text = f.render_dumps(&["a".into(), "relay".into()]);
        assert!(text.contains("node=relay") && text.contains("crash"));
        assert_eq!(text, f.render_dumps(&["a".into(), "relay".into()]));
    }

    #[test]
    fn state_stamp_renders_only_when_present() {
        let mut f = FlightRecorder::new();
        f.record(0, ev(1, FlightKind::Crash));
        f.dump_with_state(0, 2, "crash", "brownout=2 breakers=b1:open");
        f.dump(0, 3, "slo");
        let text = f.render_dumps(&["gw".into()]);
        assert!(text.contains("cause=crash events=1 state=brownout=2 breakers=b1:open"));
        assert!(text.contains("cause=slo events=1\n"));
    }

    #[test]
    fn drop_details_decode() {
        let e = FlightEvent {
            t_ns: 1,
            kind: FlightKind::Drop,
            pkt: 9,
            detail: DropReason::TtlExpired.index(),
        };
        assert_eq!(e.detail_name(), "ttl_expired");
    }
}
