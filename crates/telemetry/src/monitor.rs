//! Live SLO health monitoring over windowed metric deltas.
//!
//! A [`HealthMonitor`] carries a set of [`SloRule`]s and an evaluation
//! interval in simulation time. The simulator calls
//! [`HealthMonitor::evaluate`] at each due boundary with a cumulative
//! [`MetricsSnapshot`] (and the cumulative histograms the quantile
//! rules need); the monitor differences against the previous boundary
//! and judges each rule on the *window*, not the lifetime totals — a
//! delivery-rate dip during a fault burst is visible even when the
//! run-wide average still looks healthy.
//!
//! Everything is integer arithmetic on simulation-clock state, so two
//! same-seed runs produce byte-identical reports.

use crate::metrics::{Histogram, MetricsSnapshot};
use std::fmt::Write as _;

/// Selects counters from a snapshot: an exact name, or every name with
/// a given prefix and suffix (`node.*.delivered` style), summed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CounterSel {
    /// One counter by exact name.
    Exact(String),
    /// The sum of every counter matching `prefix…suffix`.
    Wildcard {
        /// Required name prefix (e.g. `"node."`).
        prefix: String,
        /// Required name suffix (e.g. `".delivered"`).
        suffix: String,
    },
}

impl CounterSel {
    /// Selects one counter by exact name.
    pub fn exact(name: &str) -> Self {
        CounterSel::Exact(name.to_string())
    }

    /// Selects (and sums) every counter with the given prefix + suffix.
    pub fn wildcard(prefix: &str, suffix: &str) -> Self {
        CounterSel::Wildcard {
            prefix: prefix.to_string(),
            suffix: suffix.to_string(),
        }
    }

    fn sum(&self, snap: &MetricsSnapshot) -> u64 {
        match self {
            CounterSel::Exact(n) => snap.counters.get(n).copied().unwrap_or(0),
            CounterSel::Wildcard { prefix, suffix } => snap
                .counters
                .range(prefix.clone()..)
                .take_while(|(k, _)| k.starts_with(prefix.as_str()))
                .filter(|(k, _)| k.ends_with(suffix.as_str()))
                .fold(0u64, |a, (_, v)| a.saturating_add(*v)),
        }
    }
}

/// One windowed SLO rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SloRule {
    /// `num/den` (window deltas) must stay ≥ `floor_ppm` parts per
    /// million. Windows where the denominator delta is below `min_den`
    /// carry no signal and are skipped (recorded, not judged).
    RatioFloor {
        /// Rule name, used in events and reports.
        name: String,
        /// Numerator counter(s).
        num: CounterSel,
        /// Denominator counter(s).
        den: CounterSel,
        /// Floor in parts per million (950_000 = 95%).
        floor_ppm: u64,
        /// Minimum denominator delta for the window to count.
        min_den: u64,
    },
    /// The counter's window delta must stay ≤ `ceiling`.
    CounterCeiling {
        /// Rule name.
        name: String,
        /// The counter(s) to watch.
        sel: CounterSel,
        /// Max allowed delta per window.
        ceiling: u64,
    },
    /// The windowed quantile of a named histogram must stay ≤
    /// `ceiling`. Windows with no samples are skipped.
    QuantileCeiling {
        /// Rule name.
        name: String,
        /// Histogram name (resolved against the `hists` argument of
        /// [`HealthMonitor::evaluate`]).
        hist: String,
        /// Quantile in per-mille (990 = p99).
        q_pm: u64,
        /// Max allowed quantile value.
        ceiling: u64,
    },
}

impl SloRule {
    /// The rule's display name.
    pub fn name(&self) -> &str {
        match self {
            SloRule::RatioFloor { name, .. }
            | SloRule::CounterCeiling { name, .. }
            | SloRule::QuantileCeiling { name, .. } => name,
        }
    }
}

/// One rule judgement at one window boundary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSample {
    /// Window end, simulation nanoseconds.
    pub t_ns: u64,
    /// The rule's name.
    pub rule: String,
    /// True unless the rule breached (skipped windows are `ok`).
    pub ok: bool,
    /// True when the window carried no signal for this rule.
    pub skipped: bool,
    /// Observed value (ppm for ratio rules, raw otherwise).
    pub value: u64,
    /// The rule's threshold, same unit as `value`.
    pub threshold: u64,
}

/// Windowed SLO evaluation state: rules, interval, per-rule cumulative
/// baselines, and the judged samples.
#[derive(Debug)]
pub struct HealthMonitor {
    interval_ns: u64,
    rules: Vec<SloRule>,
    next_ns: u64,
    prev_counters: Vec<(u64, u64)>,
    prev_hists: Vec<Histogram>,
    samples: Vec<HealthSample>,
    breaches: u64,
    /// Nodes whose flight-recorder windows should be dumped when a
    /// rule breaches (the simulator honours this).
    pub dump_on_breach: Vec<u32>,
}

impl HealthMonitor {
    /// A monitor evaluating every `interval_ns`, first boundary at
    /// `interval_ns`.
    pub fn new(interval_ns: u64) -> Self {
        HealthMonitor {
            interval_ns: interval_ns.max(1),
            rules: Vec::new(),
            next_ns: interval_ns.max(1),
            prev_counters: Vec::new(),
            prev_hists: Vec::new(),
            samples: Vec::new(),
            breaches: 0,
            dump_on_breach: Vec::new(),
        }
    }

    /// Adds a rule (builder style).
    pub fn rule(mut self, r: SloRule) -> Self {
        self.rules.push(r);
        self.prev_counters.push((0, 0));
        self.prev_hists.push(Histogram::new());
        self
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[SloRule] {
        &self.rules
    }

    /// True when simulation time has reached the next boundary.
    pub fn due(&self, now_ns: u64) -> bool {
        !self.rules.is_empty() && now_ns >= self.next_ns
    }

    /// The next boundary, in simulation nanoseconds.
    pub fn next_ns(&self) -> u64 {
        self.next_ns
    }

    /// The evaluation interval.
    pub fn interval_ns(&self) -> u64 {
        self.interval_ns
    }

    /// Evaluates every rule over the window ending at the current
    /// boundary and advances to the next one. `snap` is the cumulative
    /// snapshot; `hists` supplies cumulative histograms by name for
    /// quantile rules. Returns the new samples (also retained
    /// internally for the report).
    pub fn evaluate(
        &mut self,
        snap: &MetricsSnapshot,
        hists: &[(&str, &Histogram)],
    ) -> Vec<HealthSample> {
        let t_ns = self.next_ns;
        self.next_ns += self.interval_ns;
        let mut out = Vec::with_capacity(self.rules.len());
        for (i, rule) in self.rules.iter().enumerate() {
            let sample = match rule {
                SloRule::RatioFloor {
                    name,
                    num,
                    den,
                    floor_ppm,
                    min_den,
                } => {
                    let (n_cum, d_cum) = (num.sum(snap), den.sum(snap));
                    let (pn, pd) = self.prev_counters[i];
                    self.prev_counters[i] = (n_cum, d_cum);
                    let dn = n_cum.saturating_sub(pn);
                    let dd = d_cum.saturating_sub(pd);
                    if dd < (*min_den).max(1) {
                        HealthSample {
                            t_ns,
                            rule: name.clone(),
                            ok: true,
                            skipped: true,
                            value: 0,
                            threshold: *floor_ppm,
                        }
                    } else {
                        let ppm = dn.saturating_mul(1_000_000) / dd;
                        HealthSample {
                            t_ns,
                            rule: name.clone(),
                            ok: ppm >= *floor_ppm,
                            skipped: false,
                            value: ppm,
                            threshold: *floor_ppm,
                        }
                    }
                }
                SloRule::CounterCeiling { name, sel, ceiling } => {
                    let cum = sel.sum(snap);
                    let (p, _) = self.prev_counters[i];
                    self.prev_counters[i] = (cum, 0);
                    let delta = cum.saturating_sub(p);
                    HealthSample {
                        t_ns,
                        rule: name.clone(),
                        ok: delta <= *ceiling,
                        skipped: false,
                        value: delta,
                        threshold: *ceiling,
                    }
                }
                SloRule::QuantileCeiling {
                    name,
                    hist,
                    q_pm,
                    ceiling,
                } => {
                    let cur = hists
                        .iter()
                        .find(|(n, _)| *n == hist.as_str())
                        .map(|(_, h)| *h);
                    match cur {
                        Some(cur) => {
                            let window = cur.diff(&self.prev_hists[i]);
                            self.prev_hists[i] = cur.clone();
                            if window.count() == 0 {
                                HealthSample {
                                    t_ns,
                                    rule: name.clone(),
                                    ok: true,
                                    skipped: true,
                                    value: 0,
                                    threshold: *ceiling,
                                }
                            } else {
                                let v = window.percentile_permille(*q_pm);
                                HealthSample {
                                    t_ns,
                                    rule: name.clone(),
                                    ok: v <= *ceiling,
                                    skipped: false,
                                    value: v,
                                    threshold: *ceiling,
                                }
                            }
                        }
                        None => HealthSample {
                            t_ns,
                            rule: name.clone(),
                            ok: true,
                            skipped: true,
                            value: 0,
                            threshold: *ceiling,
                        },
                    }
                }
            };
            if !sample.ok {
                self.breaches += 1;
            }
            out.push(sample.clone());
            self.samples.push(sample);
        }
        out
    }

    /// Every judged sample, in time order.
    pub fn samples(&self) -> &[HealthSample] {
        &self.samples
    }

    /// Total breached windows across all rules.
    pub fn breaches(&self) -> u64 {
        self.breaches
    }

    /// Windows (boundary × rule) that breached for the named rule.
    pub fn breaches_of(&self, rule: &str) -> u64 {
        self.samples
            .iter()
            .filter(|s| s.rule == rule && !s.ok)
            .count() as u64
    }

    /// True if the named rule's *last judged* (non-skipped) window was
    /// healthy — the "recovered" signal after a breach.
    pub fn last_ok(&self, rule: &str) -> Option<bool> {
        self.samples
            .iter()
            .rev()
            .find(|s| s.rule == rule && !s.skipped)
            .map(|s| s.ok)
    }

    /// A byte-stable text report: one line per (boundary, rule), then a
    /// per-rule breach summary.
    pub fn render_report(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "health report  interval_us={}  windows={}  breaches={}",
            self.interval_ns / 1000,
            self.samples.len() / self.rules.len().max(1),
            self.breaches
        );
        let w = self.rules.iter().map(|r| r.name().len()).max().unwrap_or(4);
        let _ = writeln!(
            out,
            "  {:>10}  {:<w$}  {:<6}  {:>12} {:>12}",
            "t_us", "rule", "state", "value", "threshold"
        );
        for s in &self.samples {
            let state = if s.skipped {
                "skip"
            } else if s.ok {
                "ok"
            } else {
                "BREACH"
            };
            let _ = writeln!(
                out,
                "  {:>10}  {:<w$}  {:<6}  {:>12} {:>12}",
                s.t_ns / 1000,
                s.rule,
                state,
                s.value,
                s.threshold
            );
        }
        for r in &self.rules {
            let _ = writeln!(
                out,
                "rule {:<w$}  breaches={}  last_ok={}",
                r.name(),
                self.breaches_of(r.name()),
                match self.last_ok(r.name()) {
                    Some(true) => "true",
                    Some(false) => "false",
                    None => "n/a",
                }
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(pairs: &[(&str, u64)]) -> MetricsSnapshot {
        let mut s = MetricsSnapshot::default();
        for (k, v) in pairs {
            s.set_counter(*k, *v);
        }
        s
    }

    fn delivery_monitor() -> HealthMonitor {
        HealthMonitor::new(1_000_000).rule(SloRule::RatioFloor {
            name: "delivery".into(),
            num: CounterSel::wildcard("node.", ".delivered"),
            den: CounterSel::exact("app.sent"),
            floor_ppm: 900_000,
            min_den: 5,
        })
    }

    #[test]
    fn ratio_floor_judges_window_deltas_not_lifetime() {
        let mut m = delivery_monitor();
        assert!(m.due(1_000_000) && !m.due(999_999));
        // Window 1: 10 sent, 10 delivered across two nodes → ok.
        let s1 = m.evaluate(
            &snap(&[
                ("app.sent", 10),
                ("node.a.delivered", 6),
                ("node.b.delivered", 4),
            ]),
            &[],
        );
        assert!(s1[0].ok && !s1[0].skipped && s1[0].value == 1_000_000);
        // Window 2: 10 more sent, only 5 more delivered → 50% → breach,
        // even though the lifetime ratio (15/20) is still 75%.
        let s2 = m.evaluate(
            &snap(&[
                ("app.sent", 20),
                ("node.a.delivered", 9),
                ("node.b.delivered", 6),
            ]),
            &[],
        );
        assert!(!s2[0].ok);
        assert_eq!(s2[0].value, 500_000);
        assert_eq!(m.breaches(), 1);
        // Window 3: back above floor → recovery visible via last_ok.
        let s3 = m.evaluate(
            &snap(&[
                ("app.sent", 30),
                ("node.a.delivered", 19),
                ("node.b.delivered", 6),
            ]),
            &[],
        );
        assert!(s3[0].ok);
        assert_eq!(m.last_ok("delivery"), Some(true));
        assert_eq!(m.breaches_of("delivery"), 1);
    }

    #[test]
    fn quiet_windows_are_skipped_not_judged() {
        let mut m = delivery_monitor();
        let s = m.evaluate(&snap(&[("app.sent", 2)]), &[]);
        assert!(s[0].ok && s[0].skipped, "below min_den: no judgement");
        assert_eq!(m.breaches(), 0);
    }

    #[test]
    fn counter_ceiling_and_quantile_ceiling() {
        let mut m = HealthMonitor::new(1_000_000)
            .rule(SloRule::CounterCeiling {
                name: "fault_drops".into(),
                sel: CounterSel::wildcard("link", ".fault_drops"),
                ceiling: 3,
            })
            .rule(SloRule::QuantileCeiling {
                name: "hop_p99".into(),
                hist: "sim.hop_latency_ns".into(),
                q_pm: 990,
                ceiling: 1_000_000,
            });
        let mut h = Histogram::new();
        for _ in 0..100 {
            h.observe(10_000);
        }
        let s1 = m.evaluate(
            &snap(&[("link0.fault_drops", 2), ("link1.fault_drops", 1)]),
            &[("sim.hop_latency_ns", &h)],
        );
        assert!(s1[0].ok, "3 fault drops ≤ ceiling 3");
        assert!(s1[1].ok, "p99 10µs ≤ 1ms");
        // Window 2: 5 more fault drops; latency spikes into the ms.
        for _ in 0..50 {
            h.observe(8_000_000);
        }
        let s2 = m.evaluate(
            &snap(&[("link0.fault_drops", 6), ("link1.fault_drops", 2)]),
            &[("sim.hop_latency_ns", &h)],
        );
        assert!(!s2[0].ok, "5 fault drops > 3");
        assert!(!s2[1].ok, "windowed p99 must see the spike");
        assert!(s2[1].value >= 8_000_000, "p99 = {}", s2[1].value);
        assert_eq!(m.breaches(), 2);
    }

    #[test]
    fn report_is_byte_stable() {
        let mut m = delivery_monitor();
        m.evaluate(&snap(&[("app.sent", 10), ("node.a.delivered", 9)]), &[]);
        m.evaluate(&snap(&[("app.sent", 20), ("node.a.delivered", 10)]), &[]);
        let r = m.render_report();
        assert!(r.contains("BREACH") && r.contains("rule delivery"));
        assert!(r.contains("last_ok=false"));
        assert_eq!(r, m.render_report());
    }
}
