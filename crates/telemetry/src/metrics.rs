//! Named counters and histograms with deterministic export.
//!
//! The registry replaces ad-hoc counter structs: every layer records
//! into the same namespace (`node.<name>.<what>`,
//! `node.<name>.chan.<channel>.<what>`, `link<i>.<what>`), and a
//! [`MetricsSnapshot`] serializes the whole thing as byte-stable JSON or
//! a human table. `BTreeMap` keys make iteration order — and therefore
//! export bytes — independent of insertion order.

use crate::json::{push_key, push_str, Seq};
use std::collections::BTreeMap;

/// A power-of-two-bucket histogram over `u64` samples.
///
/// Bucket `0` holds the value 0; bucket `i ≥ 1` holds values in
/// `[2^(i-1), 2^i)`. 64 buckets cover the full `u64` range, so
/// `observe` never saturates or allocates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
    buckets: [u64; 65],
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
            buckets: [0; 65],
        }
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Histogram::default()
    }

    fn bucket_of(v: u64) -> usize {
        match v {
            0 => 0,
            v => 64 - v.leading_zeros() as usize,
        }
    }

    /// Upper bound (inclusive) of bucket `i`.
    fn bucket_top(i: usize) -> u64 {
        match i {
            0 => 0,
            64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    /// Records one sample.
    #[inline]
    pub fn observe(&mut self, v: u64) {
        self.count += 1;
        self.sum = self.sum.saturating_add(v);
        self.min = self.min.min(v);
        self.max = self.max.max(v);
        self.buckets[Self::bucket_of(v)] += 1;
    }

    /// Number of samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all samples (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        if other.count == 0 {
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        for (b, o) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *b += o;
        }
    }

    /// The window between `earlier` (a previous cumulative snapshot of
    /// the same series) and `self`: bucket counts, count, and sum
    /// subtract. The windowed extrema are unrecoverable from cumulative
    /// state, so `min`/`max` are re-derived from the surviving buckets'
    /// bounds (clamped to the cumulative `max`) — exactly what the
    /// windowed quantiles need.
    pub fn diff(&self, earlier: &Histogram) -> Histogram {
        let mut w = Histogram::new();
        w.count = self.count.saturating_sub(earlier.count);
        if w.count == 0 {
            return w;
        }
        w.sum = self.sum.saturating_sub(earlier.sum);
        for (i, (b, e)) in self.buckets.iter().zip(earlier.buckets.iter()).enumerate() {
            w.buckets[i] = b.saturating_sub(*e);
            if w.buckets[i] > 0 {
                // Lower bound of bucket i: 0 for bucket 0, else 2^(i-1).
                let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                w.min = w.min.min(lo);
                w.max = w.max.max(Histogram::bucket_top(i).min(self.max));
            }
        }
        w
    }

    /// The approximate value at quantile `q` in `[0, 100]`: the upper
    /// bound of the bucket containing the q-th percentile sample,
    /// clamped to `[min, max]`. Deterministic, integer-only.
    ///
    /// Edge behaviour (normative): an **empty** histogram returns `0`
    /// for every `q`; `q = 0` returns the observed minimum; values of
    /// `q` above 100 are clamped to 100 (the observed maximum).
    pub fn percentile(&self, q: u64) -> u64 {
        self.percentile_permille(q.saturating_mul(10))
    }

    /// Like [`Histogram::percentile`] but in per-mille (`q_pm` in
    /// `[0, 1000]`), so tail quantiles such as p99.9 (`q_pm = 999`) are
    /// expressible. Same edge behaviour: empty → 0, `0` → min, values
    /// above 1000 clamp to 1000.
    pub fn percentile_permille(&self, q_pm: u64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        if q_pm == 0 {
            return self.min;
        }
        let q_pm = q_pm.min(1000);
        // Rank of the target sample, 1-based: ceil(count * q / 1000),
        // at least 1.
        let rank = ((self.count.saturating_mul(q_pm)).div_ceil(1000)).max(1);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_top(i).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// A frozen summary for export.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary {
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
            p50: self.percentile(50),
            p90: self.percentile(90),
            p99: self.percentile(99),
            p999: self.percentile_permille(999),
        }
    }
}

/// The exported view of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSummary {
    /// Number of samples.
    pub count: u64,
    /// Sum of samples.
    pub sum: u64,
    /// Smallest sample (0 when empty).
    pub min: u64,
    /// Largest sample.
    pub max: u64,
    /// Approximate 50th percentile (bucket upper bound).
    pub p50: u64,
    /// Approximate 90th percentile.
    pub p90: u64,
    /// Approximate 99th percentile.
    pub p99: u64,
    /// Approximate 99.9th percentile.
    pub p999: u64,
}

impl HistogramSummary {
    fn write_json(&self, out: &mut String) {
        out.push_str(&format!(
            "{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"p50\":{},\"p90\":{},\"p99\":{},\"p999\":{}}}",
            self.count, self.sum, self.min, self.max, self.p50, self.p90, self.p99, self.p999
        ));
    }

    /// Field-wise merge used by [`MetricsSnapshot::merge`]: counts and
    /// sums add, `min`/`max` widen, and each percentile takes the larger
    /// of the two — a documented upper-bound approximation (the exact
    /// quantile of the union is unrecoverable from two summaries).
    pub fn absorb(&mut self, other: &HistogramSummary) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
        self.p50 = self.p50.max(other.p50);
        self.p90 = self.p90.max(other.p90);
        self.p99 = self.p99.max(other.p99);
        self.p999 = self.p999.max(other.p999);
    }
}

/// A pre-registered counter handle: the name → slot resolution happens
/// once at registration, so hot-path increments are a bounds-checked
/// array add with **no per-event string hashing** — the property that
/// lets the registry scale to 100k+ nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CounterId(u32);

/// Named counters and histograms.
///
/// Two counter stores share one namespace: ad-hoc string-keyed counters
/// (`add`/`inc`) and pre-registered integer-id slots
/// (`register_counter`/`add_id`). [`MetricsRegistry::counter`] and
/// [`MetricsRegistry::snapshot`] present the merged view; a name that
/// exists in both stores sums.
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    counters: BTreeMap<String, u64>,
    histograms: BTreeMap<String, Histogram>,
    id_names: Vec<String>,
    id_values: Vec<u64>,
    id_index: BTreeMap<String, u32>,
}

impl MetricsRegistry {
    /// A fresh, empty registry.
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    /// Resolves `name` to a stable integer handle, registering it at 0
    /// on first use. Call once at install time; increment through the
    /// handle on the hot path.
    pub fn register_counter(&mut self, name: &str) -> CounterId {
        if let Some(&i) = self.id_index.get(name) {
            return CounterId(i);
        }
        let i = self.id_names.len() as u32;
        self.id_names.push(name.to_string());
        self.id_values.push(0);
        self.id_index.insert(name.to_string(), i);
        CounterId(i)
    }

    /// Adds `n` to a pre-registered counter (saturating).
    #[inline]
    pub fn add_id(&mut self, id: CounterId, n: u64) {
        let v = &mut self.id_values[id.0 as usize];
        *v = v.saturating_add(n);
    }

    /// Increments a pre-registered counter by one.
    #[inline]
    pub fn inc_id(&mut self, id: CounterId) {
        self.add_id(id, 1);
    }

    /// Adds `n` to the named counter (creating it at 0).
    pub fn add(&mut self, name: &str, n: u64) {
        if let Some(c) = self.counters.get_mut(name) {
            *c += n;
        } else {
            self.counters.insert(name.to_string(), n);
        }
    }

    /// Increments the named counter by one.
    pub fn inc(&mut self, name: &str) {
        self.add(name, 1);
    }

    /// Current value of a counter (0 if never touched). Sees both the
    /// string-keyed and the id-registered stores.
    pub fn counter(&self, name: &str) -> u64 {
        let s = self.counters.get(name).copied().unwrap_or(0);
        let i = self
            .id_index
            .get(name)
            .map_or(0, |&i| self.id_values[i as usize]);
        s.saturating_add(i)
    }

    /// Records a histogram sample under `name`.
    pub fn observe(&mut self, name: &str, v: u64) {
        if let Some(h) = self.histograms.get_mut(name) {
            h.observe(v);
        } else {
            let mut h = Histogram::new();
            h.observe(v);
            self.histograms.insert(name.to_string(), h);
        }
    }

    /// The named histogram, if any samples were recorded.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms.get(name)
    }

    /// Iterates counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// Freezes the registry contents into a snapshot. Id-registered
    /// counters fold into the name-keyed map (zero-valued slots are
    /// skipped so unexercised registrations don't widen the export).
    pub fn snapshot(&self) -> MetricsSnapshot {
        let mut counters = self.counters.clone();
        for (name, &i) in &self.id_index {
            let v = self.id_values[i as usize];
            if v > 0 {
                let c = counters.entry(name.clone()).or_insert(0);
                *c = c.saturating_add(v);
            }
        }
        MetricsSnapshot {
            counters,
            histograms: self
                .histograms
                .iter()
                .map(|(k, h)| (k.clone(), h.summary()))
                .collect(),
        }
    }
}

/// Striped counters: `shards × width` lanes of saturating `u64`.
///
/// Saturating addition of non-negative values computes
/// `min(u64::MAX, Σ)` regardless of association order, so merging the
/// shards is **order-independent** — any merge schedule (sequential,
/// tree, reversed) produces the same totals. This is what makes a
/// sharded layout safe for deterministic exports: the simulator can
/// stripe writes by node index and still emit byte-stable totals.
#[derive(Debug, Clone)]
pub struct ShardedCounterSet {
    shards: Vec<Vec<u64>>,
}

impl ShardedCounterSet {
    /// `n_shards` stripes of `width` counters, all zero.
    pub fn new(n_shards: usize, width: usize) -> Self {
        ShardedCounterSet {
            shards: vec![vec![0; width]; n_shards.max(1)],
        }
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of counters per stripe.
    pub fn width(&self) -> usize {
        self.shards[0].len()
    }

    /// Adds `v` (saturating) to counter `c` of stripe `shard`.
    #[inline]
    pub fn add(&mut self, shard: usize, c: usize, v: u64) {
        let n = self.shards.len();
        let s = &mut self.shards[shard % n][c];
        *s = s.saturating_add(v);
    }

    /// One stripe's lanes.
    pub fn shard_totals(&self, shard: usize) -> &[u64] {
        &self.shards[shard]
    }

    /// Folds every stripe into per-counter totals (saturating).
    pub fn merged(&self) -> Vec<u64> {
        let mut out = vec![0u64; self.width()];
        for s in &self.shards {
            for (o, v) in out.iter_mut().zip(s.iter()) {
                *o = o.saturating_add(*v);
            }
        }
        out
    }
}

/// A frozen, export-ready view of every counter and histogram.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Counters by name.
    pub counters: BTreeMap<String, u64>,
    /// Histogram summaries by name.
    pub histograms: BTreeMap<String, HistogramSummary>,
}

impl MetricsSnapshot {
    /// Sets (or overwrites) a counter — used by layers that keep their
    /// own native counters and fold them in at snapshot time.
    pub fn set_counter(&mut self, name: impl Into<String>, v: u64) {
        self.counters.insert(name.into(), v);
    }

    /// Inserts a histogram summary.
    pub fn set_histogram(&mut self, name: impl Into<String>, h: &Histogram) {
        self.histograms.insert(name.into(), h.summary());
    }

    /// Merges `other` into `self`. **Contract:** on a name collision
    /// nothing is silently overwritten — counters **sum, saturating at
    /// `u64::MAX`** (so merging per-node snapshots yields fleet totals
    /// and overflow pins to the ceiling instead of wrapping or
    /// panicking; saturating addition of non-negative values is
    /// associative and commutative, so any merge order agrees), and
    /// histogram summaries merge field-wise via
    /// [`HistogramSummary::absorb`]: `count`/`sum` add, `min`/`max`
    /// widen, and each percentile takes the larger of the two (a
    /// documented upper bound on the true union quantile). Names
    /// present in only one side are carried over unchanged.
    pub fn merge(&mut self, other: &MetricsSnapshot) {
        for (k, v) in &other.counters {
            let c = self.counters.entry(k.clone()).or_insert(0);
            *c = c.saturating_add(*v);
        }
        for (k, v) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().absorb(v);
        }
    }

    /// Byte-stable JSON export:
    /// `{"counters":{...},"histograms":{...}}` with keys in name order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\"counters\":{");
        let mut seq = Seq::new();
        for (k, v) in &self.counters {
            seq.sep(&mut out);
            push_key(&mut out, k);
            out.push_str(&v.to_string());
        }
        out.push_str("},\"histograms\":{");
        let mut seq = Seq::new();
        for (k, h) in &self.histograms {
            seq.sep(&mut out);
            push_key(&mut out, k);
            h.write_json(&mut out);
        }
        out.push_str("}}");
        out
    }

    /// The human `--report` table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        if !self.counters.is_empty() {
            let w = self.counters.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("counters\n");
            for (k, v) in &self.counters {
                out.push_str(&format!("  {k:<w$}  {v}\n"));
            }
        }
        if !self.histograms.is_empty() {
            let w = self.histograms.keys().map(|k| k.len()).max().unwrap_or(0);
            out.push_str("histograms\n");
            out.push_str(&format!(
                "  {:<w$}  {:>10} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
                "name", "count", "sum", "min", "p50", "p99", "max"
            ));
            for (k, h) in &self.histograms {
                out.push_str(&format!(
                    "  {k:<w$}  {:>10} {:>12} {:>8} {:>8} {:>8} {:>8}\n",
                    h.count, h.sum, h.min, h.p50, h.p99, h.max
                ));
            }
        }
        if out.is_empty() {
            out.push_str("(no metrics recorded)\n");
        }
        out
    }
}

/// Writes a JSON object that embeds scalar fields alongside a metrics
/// snapshot — the shape of every `BENCH_*.json` file:
/// `{"bench":<name>,"scalars":{...},"metrics":<snapshot>}`.
pub fn bench_json(bench: &str, scalars: &[(&str, f64)], metrics: &MetricsSnapshot) -> String {
    let mut out = String::from("{");
    push_key(&mut out, "bench");
    push_str(&mut out, bench);
    out.push(',');
    push_key(&mut out, "scalars");
    out.push('{');
    let mut seq = Seq::new();
    let mut sorted: Vec<&(&str, f64)> = scalars.iter().collect();
    sorted.sort_by_key(|(k, _)| *k);
    for (k, v) in sorted {
        seq.sep(&mut out);
        push_key(&mut out, k);
        // Fixed-precision decimal keeps the bytes stable and readable;
        // six places is plenty for kbps / req/s / ms scalars.
        if v.fract() == 0.0 && v.abs() < 1e15 {
            out.push_str(&format!("{}", *v as i64));
        } else {
            out.push_str(&format!("{v:.6}"));
        }
    }
    out.push_str("},");
    push_key(&mut out, "metrics");
    out.push_str(&metrics.to_json());
    out.push('}');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_percentiles() {
        let mut h = Histogram::new();
        for v in [0u64, 1, 2, 3, 4, 5, 6, 7, 8, 100] {
            h.observe(v);
        }
        assert_eq!(h.count(), 10);
        assert_eq!(h.sum(), 136);
        let s = h.summary();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, 100);
        assert!(s.p50 >= 3 && s.p50 <= 7, "p50 = {}", s.p50);
        assert_eq!(s.p99, 100);
    }

    #[test]
    fn histogram_empty_summary_is_zero() {
        let s = Histogram::new().summary();
        assert_eq!((s.count, s.min, s.max, s.p50, s.p999), (0, 0, 0, 0, 0));
    }

    #[test]
    fn percentile_edge_behaviour_is_normalized() {
        // Empty: every quantile is 0, including q=0 and out-of-range q.
        let empty = Histogram::new();
        assert_eq!(empty.percentile(0), 0);
        assert_eq!(empty.percentile(50), 0);
        assert_eq!(empty.percentile(1000), 0);

        let mut h = Histogram::new();
        for v in [5u64, 10, 2000] {
            h.observe(v);
        }
        // q=0 is the observed minimum, not bucket 0.
        assert_eq!(h.percentile(0), 5);
        assert_eq!(h.percentile_permille(0), 5);
        // q above the top clamps to the maximum.
        assert_eq!(h.percentile(100), 2000);
        assert_eq!(h.percentile(250), 2000);
        assert_eq!(h.percentile_permille(5000), 2000);
    }

    #[test]
    fn p999_tracks_the_tail() {
        let mut h = Histogram::new();
        for _ in 0..998 {
            h.observe(10);
        }
        h.observe(100_000);
        h.observe(100_000);
        let s = h.summary();
        // 2 outliers in 1000 samples: p99 stays in the body, p999 must
        // land in the outlier's bucket (clamped to max).
        assert!(s.p99 < 100, "p99 = {}", s.p99);
        assert_eq!(s.p999, 100_000);
    }

    #[test]
    fn registry_counts_and_snapshots_deterministically() {
        let mut r = MetricsRegistry::new();
        r.inc("z.second");
        r.add("a.first", 41);
        r.inc("a.first");
        r.observe("lat", 10);
        r.observe("lat", 20);
        let snap = r.snapshot();
        assert_eq!(snap.counters["a.first"], 42);
        assert_eq!(snap.counters["z.second"], 1);
        let json = snap.to_json();
        // Name-ordered keys, independent of insertion order.
        assert!(json.starts_with("{\"counters\":{\"a.first\":42,\"z.second\":1}"));
        assert_eq!(json, r.snapshot().to_json());
    }

    #[test]
    fn snapshot_merge_adds_counters() {
        let mut a = MetricsSnapshot::default();
        a.set_counter("x", 1);
        let mut b = MetricsSnapshot::default();
        b.set_counter("x", 2);
        b.set_counter("y", 3);
        a.merge(&b);
        assert_eq!(a.counters["x"], 3);
        assert_eq!(a.counters["y"], 3);
    }

    #[test]
    fn snapshot_merge_combines_histogram_summaries() {
        let mut ha = Histogram::new();
        for v in [1u64, 2, 3] {
            ha.observe(v);
        }
        let mut hb = Histogram::new();
        for v in [500u64, 600] {
            hb.observe(v);
        }
        let mut a = MetricsSnapshot::default();
        a.set_histogram("lat", &ha);
        let mut b = MetricsSnapshot::default();
        b.set_histogram("lat", &hb);
        b.set_histogram("only_b", &hb);
        a.merge(&b);
        let m = a.histograms["lat"];
        // Counts and sums add; min/max widen; percentiles take the
        // larger side (upper-bound approximation).
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 6 + 1100);
        assert_eq!(m.min, 1);
        assert_eq!(m.max, 600);
        assert_eq!(m.p99, hb.summary().p99);
        // Names unique to one side carry over unchanged.
        assert_eq!(a.histograms["only_b"], hb.summary());
        // Merging an empty snapshot is a no-op.
        let before = a.clone();
        a.merge(&MetricsSnapshot::default());
        assert_eq!(a, before);
    }

    #[test]
    fn snapshot_merge_counters_saturate() {
        // Overflow pins to u64::MAX — never wraps, never panics — and
        // the result is independent of merge order.
        let mut a = MetricsSnapshot::default();
        a.set_counter("x", u64::MAX - 5);
        let mut b = MetricsSnapshot::default();
        b.set_counter("x", 10);
        let mut ab = a.clone();
        ab.merge(&b);
        assert_eq!(ab.counters["x"], u64::MAX);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ba.counters["x"], u64::MAX);
        // Merging more on top stays pinned.
        ab.merge(&b);
        assert_eq!(ab.counters["x"], u64::MAX);
    }

    #[test]
    fn counter_ids_resolve_once_and_fold_into_snapshots() {
        let mut r = MetricsRegistry::new();
        let a = r.register_counter("node.a.delivered");
        let a2 = r.register_counter("node.a.delivered");
        assert_eq!(a, a2, "same name resolves to the same handle");
        let b = r.register_counter("node.b.delivered");
        r.inc_id(a);
        r.add_id(a, 4);
        r.inc_id(b);
        // Merged view through both accessors.
        assert_eq!(r.counter("node.a.delivered"), 5);
        let snap = r.snapshot();
        assert_eq!(snap.counters["node.a.delivered"], 5);
        assert_eq!(snap.counters["node.b.delivered"], 1);
        // A name used by both stores sums.
        r.add("node.a.delivered", 2);
        assert_eq!(r.counter("node.a.delivered"), 7);
        assert_eq!(r.snapshot().counters["node.a.delivered"], 7);
        // Registered-but-untouched slots don't widen the export.
        r.register_counter("node.c.delivered");
        assert!(!r.snapshot().counters.contains_key("node.c.delivered"));
        // Saturation at the slot level.
        r.add_id(a, u64::MAX);
        assert_eq!(r.counter("node.a.delivered"), u64::MAX);
    }

    #[test]
    fn sharded_counter_merge_is_order_independent() {
        // Seeded pseudo-random fills, folded in three different shard
        // orders: totals must agree bit-for-bit (associativity +
        // commutativity of saturating add).
        let mut set = ShardedCounterSet::new(8, 4);
        let mut state = 0x1234_5678_9abc_def0u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..500 {
            let r = next();
            set.add(
                (r >> 8) as usize % 8,
                (r >> 3) as usize % 4,
                // Large addends so saturation actually occurs.
                if r % 10 == 0 { u64::MAX / 2 } else { r % 1000 },
            );
        }
        let forward = set.merged();
        let fold = |order: &[usize]| {
            let mut out = vec![0u64; set.width()];
            for &s in order {
                for (o, v) in out.iter_mut().zip(set.shard_totals(s)) {
                    *o = o.saturating_add(*v);
                }
            }
            out
        };
        assert_eq!(forward, fold(&[0, 1, 2, 3, 4, 5, 6, 7]));
        assert_eq!(forward, fold(&[7, 6, 5, 4, 3, 2, 1, 0]));
        assert_eq!(forward, fold(&[3, 0, 7, 1, 6, 2, 5, 4]));
    }

    #[test]
    fn histogram_diff_recovers_the_window() {
        let mut cum = Histogram::new();
        for v in [10u64, 20, 30] {
            cum.observe(v);
        }
        let earlier = cum.clone();
        for v in [1000u64, 2000, 4000] {
            cum.observe(v);
        }
        let w = cum.diff(&earlier);
        assert_eq!(w.count(), 3);
        assert_eq!(w.sum(), 7000);
        // Window quantiles come from the window's buckets only.
        assert!(w.percentile(99) >= 2000, "p99 = {}", w.percentile(99));
        assert!(w.percentile(0) >= 512, "min bound = {}", w.percentile(0));
        // Empty window.
        let e = cum.diff(&cum);
        assert_eq!(e.count(), 0);
        assert_eq!(e.percentile(99), 0);
    }

    #[test]
    fn table_render_mentions_every_name() {
        let mut r = MetricsRegistry::new();
        r.inc("node.a.delivered");
        r.observe("link0.queue_depth", 4);
        let t = r.snapshot().render_table();
        assert!(t.contains("node.a.delivered") && t.contains("link0.queue_depth"));
    }

    #[test]
    fn bench_json_embeds_scalars_and_metrics() {
        let mut r = MetricsRegistry::new();
        r.inc("c");
        let j = bench_json("fig6", &[("rx_kbps", 512.5), ("n", 3.0)], &r.snapshot());
        assert!(j.starts_with("{\"bench\":\"fig6\",\"scalars\":{\"n\":3,\"rx_kbps\":512.500000}"));
        assert!(j.contains("\"metrics\":{\"counters\":{\"c\":1}"));
    }
}
