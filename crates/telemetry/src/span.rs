//! Causal span trees reconstructed from a [`TraceLog`].
//!
//! Every packet identity is one **span**: it opens when the packet
//! first enters a node's send path ([`TraceEvent::SpanStart`], which
//! carries the packet's lineage) and closes at the last event that
//! mentions the packet. An ASP that duplicates, re-addresses
//! (`OnRemote`/`OnNeighbor`) or delivers a packet creates *child*
//! packets whose lineage points back at the packet being processed, so
//! the spans of one ingress packet form a tree spanning every node it
//! — or its descendants — touched. [`TraceForest`] rebuilds those
//! trees, attributes per-span VM cost, computes hop / end-to-end
//! latency histograms and fan-out, and extracts the **critical path**:
//! the root-to-leaf chain that finishes last and therefore bounds the
//! trace's end-to-end latency.
//!
//! Reconstruction requires the `span` category to have been enabled
//! while recording; `deliver`, `link`, `hop` and `vm` enrich the trees
//! with delivery times, hop latency and step counts when present.
//! Everything is deterministic: spans are keyed by packet id in
//! `BTreeMap`s and ties are broken by id, so renderings are byte-stable
//! for identical logs.

use crate::event::{SpanOrigin, TraceEvent, TraceLog};
use crate::metrics::Histogram;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;

/// One packet identity's journey, as reconstructed from the log.
#[derive(Debug, Clone)]
pub struct Span {
    /// Packet id (= span id).
    pub id: u64,
    /// Root span id of the tree this span belongs to.
    pub trace: u64,
    /// Parent span id; 0 for roots.
    pub parent: u64,
    /// How the packet came into existence.
    pub origin: SpanOrigin,
    /// Channel the creating ASP sent it on (None for app ingress).
    pub chan: Option<Rc<str>>,
    /// Node where the span opened.
    pub node: u32,
    /// Time the span opened (first entry into a send path).
    pub start_ns: u64,
    /// Time of the last event mentioning the packet.
    pub end_ns: u64,
    /// Forwarding decisions taken for the packet.
    pub hops: u32,
    /// `(t_ns, node)` for each local delivery of the packet.
    pub deliveries: Vec<(u64, u32)>,
    /// Node/link drops of the packet.
    pub drops: u32,
    /// VM steps charged to channel runs dispatched on this packet.
    pub vm_steps: u64,
    /// Child span ids, ascending.
    pub children: Vec<u64>,
}

/// One segment of a critical path, root first.
#[derive(Debug, Clone)]
pub struct CriticalHop {
    /// Span id of the segment.
    pub span: u64,
    /// Node where the segment's span opened.
    pub node: u32,
    /// Origin of the segment's span.
    pub origin: SpanOrigin,
    /// Channel that created the span, if an ASP did.
    pub chan: Option<Rc<str>>,
    /// Span open time.
    pub start_ns: u64,
    /// Span close time.
    pub end_ns: u64,
}

/// All span trees reconstructed from one merged event log.
#[derive(Debug, Default)]
pub struct TraceForest {
    spans: BTreeMap<u64, Span>,
    roots: Vec<u64>,
    /// Spans whose parent never appeared in the log (e.g. evicted from
    /// the ring buffer). Rendered as extra roots.
    orphans: Vec<u64>,
    hop_latency: Histogram,
    end_to_end: Histogram,
}

impl TraceForest {
    /// Rebuilds span trees from a log's events (which arrive in
    /// simulation order).
    pub fn from_log(log: &TraceLog) -> TraceForest {
        TraceForest::from_events(log.events())
    }

    /// Rebuilds span trees from any event sequence in time order.
    pub fn from_events<'a>(events: impl Iterator<Item = &'a TraceEvent>) -> TraceForest {
        let mut f = TraceForest::default();
        // FIFO of enqueue times per (link, pkt): a retransmitting pkt
        // matches its link_tx events in order.
        let mut pending: BTreeMap<(u32, u64), Vec<u64>> = BTreeMap::new();
        for ev in events {
            if let TraceEvent::SpanStart {
                t_ns,
                node,
                pkt,
                trace,
                parent,
                origin,
                chan,
            } = ev
            {
                f.spans.entry(*pkt).or_insert(Span {
                    id: *pkt,
                    trace: *trace,
                    parent: *parent,
                    origin: *origin,
                    chan: chan.clone(),
                    node: *node,
                    start_ns: *t_ns,
                    end_ns: *t_ns,
                    hops: 0,
                    deliveries: Vec::new(),
                    drops: 0,
                    vm_steps: 0,
                    children: Vec::new(),
                });
            }
            let Some(pkt) = ev.pkt() else { continue };
            match ev {
                TraceEvent::LinkEnqueue { t_ns, link, .. } => {
                    pending.entry((*link, pkt)).or_default().push(*t_ns);
                }
                TraceEvent::LinkTx { t_ns, link, .. } => {
                    if let Some(q) = pending.get_mut(&(*link, pkt)) {
                        if !q.is_empty() {
                            f.hop_latency.observe(t_ns - q.remove(0));
                        }
                    }
                }
                _ => {}
            }
            let Some(s) = f.spans.get_mut(&pkt) else {
                continue;
            };
            s.end_ns = s.end_ns.max(ev.t_ns());
            match ev {
                TraceEvent::Forward { .. } => s.hops += 1,
                TraceEvent::Deliver { t_ns, node, .. } => s.deliveries.push((*t_ns, *node)),
                TraceEvent::LinkDrop { .. } | TraceEvent::NodeDrop { .. } => s.drops += 1,
                TraceEvent::VmRun { steps, .. } => s.vm_steps += steps,
                _ => {}
            }
        }
        // Link children (BTreeMap order keeps them ascending) and
        // classify roots.
        let ids: Vec<u64> = f.spans.keys().copied().collect();
        for id in &ids {
            let parent = f.spans[id].parent;
            if parent == 0 {
                f.roots.push(*id);
            } else if f.spans.contains_key(&parent) {
                f.spans.get_mut(&parent).unwrap().children.push(*id);
            } else {
                f.orphans.push(*id);
            }
        }
        // End-to-end latency: every delivery, measured from the root
        // span's open.
        for id in &ids {
            let s = &f.spans[id];
            if s.deliveries.is_empty() {
                continue;
            }
            let Some(root) = f.spans.get(&s.trace) else {
                continue;
            };
            let root_start = root.start_ns;
            for (t, _) in f.spans[id].deliveries.clone() {
                f.end_to_end.observe(t.saturating_sub(root_start));
            }
        }
        f
    }

    /// The span for a packet id, if it appeared in the log.
    pub fn span(&self, id: u64) -> Option<&Span> {
        self.spans.get(&id)
    }

    /// All spans, ascending by id.
    pub fn spans(&self) -> impl Iterator<Item = &Span> {
        self.spans.values()
    }

    /// Root span ids (ingress packets), ascending.
    pub fn roots(&self) -> &[u64] {
        &self.roots
    }

    /// Spans whose parent is missing from the log, ascending.
    pub fn orphans(&self) -> &[u64] {
        &self.orphans
    }

    /// Walks parents up to the tree root. Returns `None` if the chain
    /// leaves the log (orphan) or a lineage cycle is detected.
    pub fn root_of(&self, id: u64) -> Option<&Span> {
        let mut cur = self.spans.get(&id)?;
        for _ in 0..self.spans.len() + 1 {
            if cur.parent == 0 {
                return Some(cur);
            }
            cur = self.spans.get(&cur.parent)?;
        }
        None
    }

    /// Number of spans in the subtree rooted at `id` (including it).
    pub fn subtree_size(&self, id: u64) -> usize {
        let Some(s) = self.spans.get(&id) else {
            return 0;
        };
        1 + s
            .children
            .iter()
            .map(|c| self.subtree_size(*c))
            .sum::<usize>()
    }

    /// Latest span close time in the subtree rooted at `id`.
    pub fn subtree_end(&self, id: u64) -> u64 {
        let Some(s) = self.spans.get(&id) else {
            return 0;
        };
        s.children
            .iter()
            .map(|c| self.subtree_end(*c))
            .fold(s.end_ns, u64::max)
    }

    /// Largest VM cost along the chain rooted at `id`: the maximum over
    /// its root-to-leaf span chains of the summed per-span `vm_steps`.
    pub fn chain_vm_steps(&self, id: u64) -> u64 {
        let Some(s) = self.spans.get(&id) else {
            return 0;
        };
        s.vm_steps
            + s.children
                .iter()
                .map(|c| self.chain_vm_steps(*c))
                .max()
                .unwrap_or(0)
    }

    /// The costliest traced causal chain, in VM steps, across every
    /// tree (roots and orphans): the observed counterpart of a
    /// deployment plan's statically composed per-packet path budget,
    /// which must dominate it. 0 when the `span`/`vm` categories were
    /// off.
    pub fn max_path_vm_steps(&self) -> u64 {
        self.roots
            .iter()
            .chain(self.orphans.iter())
            .map(|&r| self.chain_vm_steps(r))
            .max()
            .unwrap_or(0)
    }

    /// Per-hop (link enqueue → tx-complete) latency over all packets.
    pub fn hop_latency(&self) -> &Histogram {
        &self.hop_latency
    }

    /// End-to-end latency: each delivery measured from its trace root's
    /// open.
    pub fn end_to_end(&self) -> &Histogram {
        &self.end_to_end
    }

    /// Fan-out (child count) of every span, as a histogram.
    pub fn fanout(&self) -> Histogram {
        let mut h = Histogram::new();
        for s in self.spans.values() {
            h.observe(s.children.len() as u64);
        }
        h
    }

    /// The critical path of the tree rooted at `root`: the root-to-leaf
    /// chain whose subtree finishes last (ties broken toward the
    /// smaller span id). Empty if `root` is unknown.
    pub fn critical_path(&self, root: u64) -> Vec<CriticalHop> {
        let mut path = Vec::new();
        let mut cur = root;
        while let Some(s) = self.spans.get(&cur) {
            path.push(CriticalHop {
                span: s.id,
                node: s.node,
                origin: s.origin,
                chan: s.chan.clone(),
                start_ns: s.start_ns,
                end_ns: s.end_ns,
            });
            // Descend into the child subtree that ends last; children
            // are ascending, so strict `>` keeps the smallest id on tie.
            let mut next = None;
            let mut best = 0u64;
            for c in &s.children {
                let e = self.subtree_end(*c);
                if next.is_none() || e > best {
                    next = Some(*c);
                    best = e;
                }
            }
            match next {
                Some(n) => cur = n,
                None => break,
            }
        }
        path
    }

    /// Renders every tree (roots, then orphans) as deterministic ASCII.
    /// `nodes` supplies display names by node index (falls back to
    /// `n<i>`); critical-path spans are starred.
    pub fn render(&self, nodes: &[String]) -> String {
        let mut out = String::new();
        for (i, root) in self.roots.iter().chain(self.orphans.iter()).enumerate() {
            if i > 0 {
                out.push('\n');
            }
            self.render_tree(*root, nodes, &mut out);
        }
        if out.is_empty() {
            out.push_str("(no spans recorded — was the `span` trace category enabled?)\n");
        }
        out
    }

    /// Renders the single tree rooted at `root`.
    pub fn render_tree(&self, root: u64, nodes: &[String], out: &mut String) {
        let Some(s) = self.spans.get(&root) else {
            return;
        };
        let e2e = self.subtree_end(root).saturating_sub(s.start_ns);
        let size = self.subtree_size(root);
        let orphan = if s.parent != 0 { " (orphan)" } else { "" };
        let _ = writeln!(
            out,
            "trace {} — {} span(s), {:.3} ms end-to-end{}",
            s.trace,
            size,
            e2e as f64 / 1e6,
            orphan
        );
        let critical: Vec<u64> = self.critical_path(root).iter().map(|h| h.span).collect();
        self.render_span(root, nodes, "", true, true, &critical, out);
    }

    #[allow(clippy::too_many_arguments)]
    fn render_span(
        &self,
        id: u64,
        nodes: &[String],
        prefix: &str,
        is_last: bool,
        is_root: bool,
        critical: &[u64],
        out: &mut String,
    ) {
        let s = &self.spans[&id];
        let (head, tail) = if is_root {
            (String::new(), String::new())
        } else if is_last {
            (format!("{prefix}└─ "), format!("{prefix}   "))
        } else {
            (format!("{prefix}├─ "), format!("{prefix}│  "))
        };
        let node = nodes
            .get(s.node as usize)
            .cloned()
            .unwrap_or_else(|| format!("n{}", s.node));
        let star = if critical.contains(&id) { " *" } else { "" };
        let _ = write!(
            out,
            "{head}span {} @{node} {} [{:.3}..{:.3} ms]",
            s.id,
            s.origin.name(),
            s.start_ns as f64 / 1e6,
            s.end_ns as f64 / 1e6,
        );
        if let Some(c) = &s.chan {
            let _ = write!(out, " chan={c}");
        }
        if s.vm_steps > 0 {
            let _ = write!(out, " vm={}", s.vm_steps);
        }
        if !s.deliveries.is_empty() {
            let _ = write!(out, " delivered={}", s.deliveries.len());
        }
        if s.drops > 0 {
            let _ = write!(out, " drops={}", s.drops);
        }
        let _ = writeln!(out, "{star}");
        for (i, c) in s.children.iter().enumerate() {
            let last = i + 1 == s.children.len();
            self.render_span(*c, nodes, &tail, last, false, critical, out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Category, TraceConfig};

    fn start(
        t: u64,
        node: u32,
        pkt: u64,
        trace: u64,
        parent: u64,
        origin: SpanOrigin,
    ) -> TraceEvent {
        TraceEvent::SpanStart {
            t_ns: t,
            node,
            pkt,
            trace,
            parent,
            origin,
            chan: if parent == 0 {
                None
            } else {
                Some("network".into())
            },
        }
    }

    fn sample_log() -> TraceLog {
        // pkt 1 ingresses at n0, an ASP at n1 duplicates it into pkts
        // 2 and 3; pkt 3 is delivered at n2 (later than pkt 2 at n1).
        let mut log = TraceLog::new(TraceConfig::all());
        log.push(start(0, 0, 1, 1, 0, SpanOrigin::Ingress));
        log.push(TraceEvent::LinkEnqueue {
            t_ns: 0,
            link: 0,
            from: 0,
            pkt: 1,
            bytes: 64,
            qlen: 1,
        });
        log.push(TraceEvent::LinkTx {
            t_ns: 500,
            link: 0,
            from: 0,
            pkt: 1,
            bytes: 64,
        });
        log.push(TraceEvent::VmRun {
            t_ns: 600,
            node: 1,
            pkt: 1,
            chan: "network".into(),
            steps: 12,
        });
        log.push(start(600, 1, 2, 1, 1, SpanOrigin::Deliver));
        log.push(start(600, 1, 3, 1, 1, SpanOrigin::Remote));
        log.push(TraceEvent::Deliver {
            t_ns: 700,
            node: 1,
            pkt: 2,
            app: 0,
        });
        log.push(TraceEvent::Deliver {
            t_ns: 2000,
            node: 2,
            pkt: 3,
            app: 0,
        });
        log
    }

    #[test]
    fn forest_links_children_and_finds_roots() {
        let f = TraceForest::from_log(&sample_log());
        assert_eq!(f.roots(), &[1]);
        assert!(f.orphans().is_empty());
        assert_eq!(f.span(1).unwrap().children, vec![2, 3]);
        assert_eq!(f.span(1).unwrap().vm_steps, 12);
        assert_eq!(f.subtree_size(1), 3);
        assert_eq!(f.root_of(3).unwrap().id, 1);
        assert_eq!(f.root_of(3).unwrap().origin, SpanOrigin::Ingress);
    }

    #[test]
    fn latency_and_fanout_histograms() {
        let f = TraceForest::from_log(&sample_log());
        assert_eq!(f.hop_latency().count(), 1);
        assert_eq!(f.hop_latency().sum(), 500);
        // Two deliveries, both measured from pkt 1's start at t=0.
        assert_eq!(f.end_to_end().count(), 2);
        assert_eq!(f.end_to_end().sum(), 700 + 2000);
        let fan = f.fanout();
        assert_eq!(fan.count(), 3);
        assert_eq!(fan.summary().max, 2);
    }

    #[test]
    fn critical_path_follows_latest_subtree() {
        let f = TraceForest::from_log(&sample_log());
        let path: Vec<u64> = f.critical_path(1).iter().map(|h| h.span).collect();
        // pkt 3 closes at t=2000 > pkt 2's 700.
        assert_eq!(path, vec![1, 3]);
    }

    #[test]
    fn render_is_deterministic_and_marks_critical_path() {
        let f = TraceForest::from_log(&sample_log());
        let nodes = vec![
            "src".to_string(),
            "router".to_string(),
            "client".to_string(),
        ];
        let r = f.render(&nodes);
        assert_eq!(r, f.render(&nodes));
        assert!(r.contains("trace 1 — 3 span(s)"));
        assert!(r.contains("span 1 @src ingress"));
        assert!(r.contains("├─ span 2 @router deliver"));
        assert!(r.contains("└─ span 3 @router remote"));
        // Critical path: root and pkt 3 starred, pkt 2 not.
        assert!(r.lines().any(|l| l.contains("span 3") && l.ends_with('*')));
        assert!(!r.lines().any(|l| l.contains("span 2") && l.ends_with('*')));
    }

    #[test]
    fn orphan_spans_surface_as_extra_roots() {
        let mut log = TraceLog::new(TraceConfig {
            categories: Category::ALL,
            capacity: 64,
            ..TraceConfig::default()
        });
        log.push(start(10, 1, 5, 1, 4, SpanOrigin::Remote));
        let f = TraceForest::from_log(&log);
        assert!(f.roots().is_empty());
        assert_eq!(f.orphans(), &[5]);
        assert!(f.render(&[]).contains("(orphan)"));
    }
}
