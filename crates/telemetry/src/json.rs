//! A tiny deterministic JSON writer.
//!
//! `serde_json` is unavailable offline, and determinism is a hard
//! requirement here anyway: these helpers emit keys in the order the
//! caller provides them (callers iterate `BTreeMap`s) and format numbers
//! without any locale or float involvement, so the same data always
//! serializes to the same bytes.

/// Appends `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends `"key":` to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str(out, key);
    out.push(':');
}

/// A comma-separating helper for building objects and arrays.
#[derive(Debug)]
pub struct Seq {
    first: bool,
}

impl Seq {
    /// Starts a sequence.
    pub fn new() -> Self {
        Seq { first: true }
    }

    /// Appends a separator unless this is the first element.
    pub fn sep(&mut self, out: &mut String) {
        if self.first {
            self.first = false;
        } else {
            out.push(',');
        }
    }
}

impl Default for Seq {
    fn default() -> Self {
        Seq::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_are_escaped() {
        let mut out = String::new();
        push_str(&mut out, "a\"b\\c\nd\u{1}");
        assert_eq!(out, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn seq_separates() {
        let mut out = String::new();
        let mut seq = Seq::new();
        for k in ["a", "b"] {
            seq.sep(&mut out);
            out.push_str(k);
        }
        assert_eq!(out, "a,b");
    }
}
