//! Packet header values and the typed-payload codec.
//!
//! PLAN-P channels match packets by type (`ip*tcp*blob`,
//! `ip*tcp*char*int`, …). The runtime decodes an arriving packet's
//! payload against each overload's payload component types; the first
//! overload whose decode succeeds receives the packet (section 2.3's
//! overloaded channels).
//!
//! Wire encodings (big-endian network order):
//!
//! | component | encoding                        |
//! |-----------|---------------------------------|
//! | `char`    | 1 byte                          |
//! | `bool`    | 1 byte, `0` or `1`              |
//! | `int`     | 8 bytes, two's complement       |
//! | `host`    | 4 bytes                         |
//! | `string`  | 2-byte length + UTF-8 bytes     |
//! | `blob`    | the uninterpreted rest (last)   |

use bytes::{BufMut, Bytes, BytesMut};
use planp_lang::types::Type;

pub use netsim::packet::{addr, addr_to_string, tcp_flags, IpHdr, TcpHdr, UdpHdr};

/// Decodes `payload` against the payload component `types` of a packet
/// shape. Returns `None` if the payload does not match (wrong length,
/// bad bool, bad UTF-8…). The decoded values are in component order.
pub fn decode_payload(types: &[Type], payload: &Bytes) -> Option<Vec<super::value::Value>> {
    use super::value::Value;
    let mut out = Vec::with_capacity(types.len());
    let mut off = 0usize;
    for (i, t) in types.iter().enumerate() {
        let last = i + 1 == types.len();
        match t {
            Type::Blob => {
                debug_assert!(last, "blob is only valid as the final component");
                out.push(Value::Blob(payload.slice(off..)));
                off = payload.len();
            }
            Type::Char => {
                let b = *payload.get(off)?;
                out.push(Value::Char(b as char));
                off += 1;
            }
            Type::Bool => {
                let b = *payload.get(off)?;
                if b > 1 {
                    return None;
                }
                out.push(Value::Bool(b == 1));
                off += 1;
            }
            Type::Int => {
                let bytes = payload.get(off..off + 8)?;
                out.push(Value::Int(i64::from_be_bytes(bytes.try_into().ok()?)));
                off += 8;
            }
            Type::Host => {
                let bytes = payload.get(off..off + 4)?;
                out.push(Value::Host(u32::from_be_bytes(bytes.try_into().ok()?)));
                off += 4;
            }
            Type::Str => {
                let lb = payload.get(off..off + 2)?;
                let len = u16::from_be_bytes(lb.try_into().ok()?) as usize;
                let bytes = payload.get(off + 2..off + 2 + len)?;
                let s = std::str::from_utf8(bytes).ok()?;
                out.push(Value::Str(s.into()));
                off += 2 + len;
            }
            other => {
                debug_assert!(false, "invalid payload component type {other}");
                return None;
            }
        }
    }
    // Unless a trailing blob consumed the rest, require an exact fit so
    // that overload dispatch is unambiguous.
    if off != payload.len() {
        return None;
    }
    Some(out)
}

/// Encodes payload component values back into wire bytes. The inverse of
/// [`decode_payload`] for values of valid payload types.
///
/// # Panics
///
/// Panics if a value is not a valid payload component (ruled out by the
/// type checker for well-typed programs).
pub fn encode_payload(values: &[super::value::Value]) -> Bytes {
    use super::value::Value;
    let mut buf = BytesMut::new();
    for v in values {
        match v {
            Value::Blob(b) => buf.put_slice(b),
            Value::Char(c) => buf.put_u8(*c as u8),
            Value::Bool(b) => buf.put_u8(*b as u8),
            Value::Int(n) => buf.put_i64(*n),
            Value::Host(h) => buf.put_u32(*h),
            Value::Str(s) => {
                let bytes = s.as_bytes();
                assert!(bytes.len() <= u16::MAX as usize, "string payload too long");
                buf.put_u16(bytes.len() as u16);
                buf.put_slice(bytes);
            }
            other => panic!("value {other:?} is not a payload component"),
        }
    }
    buf.freeze()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::Value;

    #[test]
    fn addr_round_trip() {
        let a = addr(131, 254, 60, 81);
        assert_eq!(addr_to_string(a), "131.254.60.81");
    }

    #[test]
    fn multicast_detection() {
        assert!(IpHdr::new(0, addr(224, 0, 0, 5), IpHdr::PROTO_UDP).is_multicast());
        assert!(IpHdr::new(0, addr(239, 255, 0, 1), IpHdr::PROTO_UDP).is_multicast());
        assert!(!IpHdr::new(0, addr(10, 0, 0, 1), IpHdr::PROTO_UDP).is_multicast());
    }

    #[test]
    fn tcp_flag_tests() {
        let h = TcpHdr {
            flags: tcp_flags::SYN | tcp_flags::ACK,
            ..TcpHdr::data(1, 2, 0)
        };
        assert!(h.has(tcp_flags::SYN));
        assert!(h.has(tcp_flags::ACK));
        assert!(!h.has(tcp_flags::FIN));
    }

    #[test]
    fn payload_round_trip_scalars() {
        let vals = vec![
            Value::Char('A'),
            Value::Int(-42),
            Value::Host(addr(10, 0, 0, 1)),
            Value::Bool(true),
            Value::Str("hello".into()),
        ];
        let types = vec![Type::Char, Type::Int, Type::Host, Type::Bool, Type::Str];
        let bytes = encode_payload(&vals);
        let decoded = decode_payload(&types, &bytes).unwrap();
        assert_eq!(format!("{decoded:?}"), format!("{vals:?}"));
    }

    #[test]
    fn payload_with_trailing_blob() {
        let vals = vec![Value::Char('X'), Value::Blob(Bytes::from_static(b"rest"))];
        let types = vec![Type::Char, Type::Blob];
        let bytes = encode_payload(&vals);
        let decoded = decode_payload(&types, &bytes).unwrap();
        let Value::Blob(b) = &decoded[1] else {
            panic!()
        };
        assert_eq!(&b[..], b"rest");
    }

    #[test]
    fn decode_rejects_wrong_length() {
        let types = vec![Type::Int];
        assert!(decode_payload(&types, &Bytes::from_static(b"abc")).is_none());
        // Trailing unconsumed bytes without a blob are a mismatch.
        let bytes = encode_payload(&[Value::Int(1), Value::Int(2)]);
        assert!(decode_payload(&types, &bytes).is_none());
    }

    #[test]
    fn decode_rejects_bad_bool_and_utf8() {
        assert!(decode_payload(&[Type::Bool], &Bytes::from_static(&[7])).is_none());
        let mut raw = vec![0u8, 2]; // length 2
        raw.extend_from_slice(&[0xff, 0xfe]); // invalid UTF-8
        assert!(decode_payload(&[Type::Str], &Bytes::from(raw)).is_none());
    }

    #[test]
    fn blob_only_payload() {
        let b = Bytes::from_static(b"raw bytes");
        let decoded = decode_payload(&[Type::Blob], &b).unwrap();
        let Value::Blob(out) = &decoded[0] else {
            panic!()
        };
        assert_eq!(out, &b);
    }
}
