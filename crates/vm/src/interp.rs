//! The **portable interpreter** for PLAN-P (paper section 2.2).
//!
//! This is the reference evaluator: a straightforward environment-passing
//! tree walker that resolves variables *by name* at run time, exactly the
//! style of interpreter the paper describes writing in C and then
//! specializing with Tempo. It is deliberately naive — the JIT in
//! [`crate::jit`] is its specialization, and the two are differential-
//! tested against each other.

use crate::env::NetEnv;
use crate::ops::{eval_binop, eval_unop};
use crate::prims;
use crate::value::{Value, VmError};
use planp_lang::ast::BinOp;
use planp_lang::tast::{TExpr, TExprKind, TProgram};
use std::cell::Cell;

/// Name → value bindings, innermost last (looked up linearly, as a
/// portable C interpreter would).
#[derive(Debug, Default)]
pub struct NameEnv {
    bindings: Vec<(String, Value)>,
}

impl NameEnv {
    /// An empty environment.
    pub fn new() -> Self {
        NameEnv {
            bindings: Vec::new(),
        }
    }

    /// Pushes a binding.
    pub fn push(&mut self, name: &str, v: Value) {
        self.bindings.push((name.to_string(), v));
    }

    /// Pops the innermost binding.
    pub fn pop(&mut self) {
        self.bindings.pop();
    }

    fn lookup(&self, name: &str) -> Option<&Value> {
        self.bindings
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v)
    }
}

/// The interpreter, borrowing the typed program it executes.
#[derive(Debug, Clone)]
pub struct Interp<'p> {
    prog: &'p TProgram,
    /// Expression nodes evaluated so far (the VM profiling step count).
    steps: Cell<u64>,
}

impl<'p> Interp<'p> {
    /// Creates an interpreter for `prog`.
    pub fn new(prog: &'p TProgram) -> Self {
        Interp {
            prog,
            steps: Cell::new(0),
        }
    }

    /// Total expression nodes evaluated by this interpreter instance.
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }

    /// Evaluates the `val` globals in declaration order.
    ///
    /// # Errors
    ///
    /// Propagates any exception raised by an initializer (a load-time
    /// failure).
    pub fn eval_globals(&self, net: &mut dyn NetEnv) -> Result<Vec<Value>, VmError> {
        let mut globals = Vec::with_capacity(self.prog.globals.len());
        for g in &self.prog.globals {
            let mut names = NameEnv::new();
            let v = self.eval(&g.init, &globals, &mut names, net)?;
            globals.push(v);
        }
        Ok(globals)
    }

    /// Evaluates the initial protocol state.
    pub fn init_proto(&self, globals: &[Value], net: &mut dyn NetEnv) -> Result<Value, VmError> {
        match &self.prog.proto_init {
            Some(e) => {
                let mut names = NameEnv::new();
                self.eval(e, globals, &mut names, net)
            }
            None => Ok(Value::default_of(&self.prog.proto_ty)),
        }
    }

    /// Evaluates the initial state of channel `idx`.
    pub fn init_channel_state(
        &self,
        idx: usize,
        globals: &[Value],
        net: &mut dyn NetEnv,
    ) -> Result<Value, VmError> {
        let ch = &self.prog.channels[idx];
        match &ch.initstate {
            Some(e) => {
                let mut names = NameEnv::new();
                self.eval(e, globals, &mut names, net)
            }
            None => Ok(Value::default_of(&ch.ss_ty)),
        }
    }

    /// Runs channel `idx` on a packet, returning the new
    /// `(protocol state, channel state)` pair.
    ///
    /// # Errors
    ///
    /// Propagates uncaught PLAN-P exceptions and traps.
    pub fn run_channel(
        &self,
        idx: usize,
        globals: &[Value],
        ps: Value,
        ss: Value,
        pkt: Value,
        net: &mut dyn NetEnv,
    ) -> Result<(Value, Value), VmError> {
        let ch = &self.prog.channels[idx];
        let mut names = NameEnv::new();
        names.push(&ch.ps_name, ps);
        names.push(&ch.ss_name, ss);
        names.push(&ch.pkt_name, pkt);
        let before = self.steps.get();
        let out = self.eval(&ch.body, globals, &mut names, net);
        net.charge_steps(self.steps.get() - before);
        let out = out?;
        match out {
            Value::Tuple(pair) if pair.len() == 2 => Ok((pair[0].clone(), pair[1].clone())),
            other => Err(VmError::trap(format!(
                "channel body returned non-pair {other:?}"
            ))),
        }
    }

    /// Evaluates one expression.
    ///
    /// # Errors
    ///
    /// Returns raised exceptions ([`VmError::Exn`]) and internal traps.
    pub fn eval(
        &self,
        e: &TExpr,
        globals: &[Value],
        names: &mut NameEnv,
        net: &mut dyn NetEnv,
    ) -> Result<Value, VmError> {
        self.steps
            .set(self.steps.get() + crate::cost::STEPS_PER_NODE);
        net.charge_site(e.span.start, crate::cost::STEPS_PER_NODE);
        match &e.kind {
            TExprKind::Int(n) => Ok(Value::Int(*n)),
            TExprKind::Bool(b) => Ok(Value::Bool(*b)),
            TExprKind::Str(s) => Ok(Value::Str(s.as_str().into())),
            TExprKind::Char(c) => Ok(Value::Char(*c)),
            TExprKind::Unit => Ok(Value::Unit),
            TExprKind::Host(a) => Ok(Value::Host(*a)),
            TExprKind::Local { name, .. } => names
                .lookup(name)
                .cloned()
                .ok_or_else(|| VmError::trap(format!("unbound local `{name}`"))),
            TExprKind::Global { index, .. } => globals
                .get(*index as usize)
                .cloned()
                .ok_or_else(|| VmError::trap("global index out of range")),
            TExprKind::Tuple(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, globals, names, net)?);
                }
                Ok(Value::tuple(out))
            }
            TExprKind::Proj(i, inner) => {
                let v = self.eval(inner, globals, names, net)?;
                match v {
                    Value::Tuple(items) => items
                        .get(*i as usize)
                        .cloned()
                        .ok_or_else(|| VmError::trap("projection out of range")),
                    other => Err(VmError::trap(format!("projection on {other:?}"))),
                }
            }
            TExprKind::CallFun { index, args } => {
                let f = &self.prog.funs[*index as usize];
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, globals, names, net)?);
                }
                let mut fresh = NameEnv::new();
                for ((pname, _), v) in f.params.iter().zip(vals) {
                    fresh.push(pname, v);
                }
                self.eval(&f.body, globals, &mut fresh, net)
            }
            TExprKind::CallPrim { prim, args } => {
                let mut vals = Vec::with_capacity(args.len());
                for a in args {
                    vals.push(self.eval(a, globals, names, net)?);
                }
                prims::eval(*prim, &vals, net)
            }
            TExprKind::If(c, t, f) => match self.eval(c, globals, names, net)? {
                Value::Bool(true) => self.eval(t, globals, names, net),
                Value::Bool(false) => self.eval(f, globals, names, net),
                other => Err(VmError::trap(format!("if condition {other:?}"))),
            },
            TExprKind::Let {
                name, init, body, ..
            } => {
                let v = self.eval(init, globals, names, net)?;
                names.push(name, v);
                let out = self.eval(body, globals, names, net);
                names.pop();
                out
            }
            TExprKind::Seq(items) => {
                let mut last = Value::Unit;
                for item in items {
                    last = self.eval(item, globals, names, net)?;
                }
                Ok(last)
            }
            TExprKind::Binop(op, a, b) => match op {
                BinOp::And => match self.eval(a, globals, names, net)? {
                    Value::Bool(false) => Ok(Value::Bool(false)),
                    Value::Bool(true) => self.eval(b, globals, names, net),
                    other => Err(VmError::trap(format!("andalso on {other:?}"))),
                },
                BinOp::Or => match self.eval(a, globals, names, net)? {
                    Value::Bool(true) => Ok(Value::Bool(true)),
                    Value::Bool(false) => self.eval(b, globals, names, net),
                    other => Err(VmError::trap(format!("orelse on {other:?}"))),
                },
                strict => {
                    let va = self.eval(a, globals, names, net)?;
                    let vb = self.eval(b, globals, names, net)?;
                    eval_binop(*strict, &va, &vb)
                }
            },
            TExprKind::Unop(op, a) => {
                let v = self.eval(a, globals, names, net)?;
                eval_unop(*op, &v)
            }
            TExprKind::Raise(id) => Err(VmError::Exn(*id)),
            TExprKind::Handle(body, pat, handler) => match self.eval(body, globals, names, net) {
                Err(VmError::Exn(id)) if pat.is_none() || *pat == Some(id) => {
                    self.eval(handler, globals, names, net)
                }
                other => other,
            },
            TExprKind::List(items) => {
                let mut out = Vec::with_capacity(items.len());
                for item in items {
                    out.push(self.eval(item, globals, names, net)?);
                }
                Ok(Value::List(std::rc::Rc::new(out)))
            }
            TExprKind::OnRemote {
                chan,
                overload,
                pkt,
            } => {
                let v = self.eval(pkt, globals, names, net)?;
                net.note_send_site(crate::env::SendKind::Remote, Some(chan));
                net.send_remote(chan, *overload, v);
                Ok(Value::Unit)
            }
            TExprKind::OnNeighbor {
                chan,
                overload,
                host,
                pkt,
            } => {
                let h = self.eval(host, globals, names, net)?;
                let Value::Host(h) = h else {
                    return Err(VmError::trap("OnNeighbor host not a host"));
                };
                let v = self.eval(pkt, globals, names, net)?;
                net.note_send_site(crate::env::SendKind::Neighbor, Some(chan));
                net.send_neighbor(chan, *overload, h, v);
                Ok(Value::Unit)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{Effect, MockEnv};
    use crate::pkthdr::{addr, IpHdr, UdpHdr};
    use bytes::Bytes;
    use planp_lang::compile_front;

    fn setup(src: &str) -> TProgram {
        compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}"))
    }

    fn udp_packet(src: u32, dst: u32, payload: &'static [u8]) -> Value {
        Value::tuple(vec![
            Value::Ip(IpHdr::new(src, dst, IpHdr::PROTO_UDP)),
            Value::Udp(UdpHdr::new(1000, 2000)),
            Value::Blob(Bytes::from_static(payload)),
        ])
    }

    #[test]
    fn runs_trivial_forwarder() {
        let prog = setup(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps + 1, ss))",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(addr(10, 0, 0, 1));
        let globals = interp.eval_globals(&mut env).unwrap();
        let pkt = udp_packet(addr(10, 0, 0, 2), addr(10, 0, 0, 3), b"x");
        let (ps, _ss) = interp
            .run_channel(0, &globals, Value::Int(0), Value::Unit, pkt, &mut env)
            .unwrap();
        assert_eq!(format!("{ps}"), "1");
        assert_eq!(env.remote_count(), 1);
    }

    #[test]
    fn globals_evaluate_in_order() {
        let prog = setup(
            "val a : int = 10\nval b : int = a * 4\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let globals = interp.eval_globals(&mut env).unwrap();
        assert_eq!(format!("{}", globals[1]), "40");
    }

    #[test]
    fn function_call_with_own_scope() {
        let prog = setup(
            "fun add3(x : int) : int = x + 3\n\
             channel network(ps : int, ss : unit, p : ip*udp*blob) is (add3(ps), ss)",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let (ps, _) = interp
            .run_channel(
                0,
                &[],
                Value::Int(10),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert_eq!(format!("{ps}"), "13");
    }

    #[test]
    fn handle_catches_matching_exception() {
        let prog = setup(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob) is\n\
             ((tblGet(ss, ipSrc(#1 p)) handle NotFound => 99, ss))",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let ss = Value::default_of(&prog.channels[0].ss_ty);
        let (ps, _) = interp
            .run_channel(0, &[], Value::Int(0), ss, udp_packet(1, 2, b""), &mut env)
            .unwrap();
        assert_eq!(format!("{ps}"), "99");
    }

    #[test]
    fn uncaught_exception_propagates() {
        let prog = setup(
            "exception Busy\n\
             channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if true then raise Busy else (ps, ss))",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let r = interp.run_channel(
            0,
            &[],
            Value::Int(0),
            Value::Unit,
            udp_packet(1, 2, b""),
            &mut env,
        );
        let busy = prog.exn_id("Busy").unwrap();
        match r {
            Err(VmError::Exn(id)) => assert_eq!(id, busy),
            other => panic!("expected Busy, got {other:?}"),
        }
    }

    #[test]
    fn state_table_persists_across_invocations() {
        let prog = setup(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
             initstate mkTable(4) is\n\
             let val n : int = tblGet(ss, ipSrc(#1 p)) handle NotFound => 0 in\n\
               (tblSet(ss, ipSrc(#1 p), n + 1); (n + 1, ss))\n\
             end",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let globals = interp.eval_globals(&mut env).unwrap();
        let mut ss = interp.init_channel_state(0, &globals, &mut env).unwrap();
        let mut ps = Value::Int(0);
        for expect in 1..=3 {
            let pkt = udp_packet(addr(9, 9, 9, 9), 2, b"");
            let (nps, nss) = interp
                .run_channel(0, &globals, ps, ss, pkt, &mut env)
                .unwrap();
            ps = nps;
            ss = nss;
            assert_eq!(format!("{ps}"), expect.to_string());
        }
    }

    #[test]
    fn short_circuit_does_not_evaluate_rhs() {
        // Division by zero on the right of `orelse true` must not raise.
        let prog = setup(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if true orelse (1 div 0 = 0) then (ps, ss) else (ps, ss))",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        assert!(interp
            .run_channel(
                0,
                &[],
                Value::Int(0),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env
            )
            .is_ok());
    }

    #[test]
    fn shadowing_resolves_innermost() {
        let prog = setup(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             let val x : int = 1 in\n\
               let val x : int = 2 in (ps + x, ss) end\n\
             end",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let (ps, _) = interp
            .run_channel(
                0,
                &[],
                Value::Int(0),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert_eq!(format!("{ps}"), "2");
    }

    #[test]
    fn proto_declaration_initializes_state() {
        let prog = setup(
            "proto 41
             channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + 1, ss)",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        let globals = interp.eval_globals(&mut env).unwrap();
        let ps = interp.init_proto(&globals, &mut env).unwrap();
        assert_eq!(ps.display(), "41");
        // Default initialization when `proto` is absent.
        let prog = setup("channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps, ss)");
        let interp = Interp::new(&prog);
        let ps = interp.init_proto(&[], &mut env).unwrap();
        assert_eq!(ps.display(), "0");
    }

    #[test]
    fn steps_counted_and_charged_to_env() {
        let prog = setup("channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + 1, ss)");
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        interp
            .run_channel(
                0,
                &[],
                Value::Int(0),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert!(interp.steps() > 0);
        assert_eq!(env.steps, interp.steps());
        // A second invocation charges the same amount again.
        interp
            .run_channel(
                0,
                &[],
                Value::Int(1),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert_eq!(env.steps, interp.steps());
        assert_eq!(env.steps % 2, 0);
        // Every aggregate step was also attributed to a site.
        let attributed: u64 = env.site_steps.iter().map(|(_, n)| n).sum();
        assert_eq!(attributed, env.steps);
    }

    #[test]
    fn on_neighbor_effect_recorded() {
        let prog = setup(
            "channel mon(ps : unit, ss : unit, p : ip*udp*blob) is (deliver(p); (ps, ss))\n\
             channel network(ps : unit, ss : unit, p : ip*udp*blob) is\n\
             (OnNeighbor(mon, 10.0.0.7, p); (ps, ss))",
        );
        let interp = Interp::new(&prog);
        let mut env = MockEnv::new(0);
        interp
            .run_channel(
                1,
                &[],
                Value::Unit,
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        let Effect::Neighbor { chan, host, .. } = &env.effects[0] else {
            panic!()
        };
        assert_eq!(chan, "mon");
        assert_eq!(*host, addr(10, 0, 0, 7));
    }
}
