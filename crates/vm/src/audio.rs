//! PCM audio transformations backing the audio-degradation primitives
//! (paper section 3.1: three quality levels — 16-bit stereo, 16-bit
//! monaural, 8-bit monaural).
//!
//! Samples are 16-bit little-endian signed PCM; stereo frames interleave
//! left/right. Degradation halves the bit rate at each step:
//!
//! * stereo → mono: average the channel pair (16-bit samples);
//! * 16 → 8 bit: keep the high byte of each sample;
//! * the inverse transformations reconstruct the original *format* (the
//!   client ASP's job) with the inherent precision loss.

use bytes::Bytes;

/// Averages stereo 16-bit frames into mono 16-bit samples (halves size).
///
/// A trailing partial frame (fewer than 4 bytes) is dropped.
pub fn stereo_to_mono(pcm: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(pcm.len() / 2);
    for frame in pcm.chunks_exact(4) {
        let l = i16::from_le_bytes([frame[0], frame[1]]) as i32;
        let r = i16::from_le_bytes([frame[2], frame[3]]) as i32;
        let m = ((l + r) / 2) as i16;
        out.extend_from_slice(&m.to_le_bytes());
    }
    Bytes::from(out)
}

/// Duplicates mono 16-bit samples into stereo frames (doubles size).
pub fn mono_to_stereo(pcm: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(pcm.len() * 2);
    for s in pcm.chunks_exact(2) {
        out.extend_from_slice(s);
        out.extend_from_slice(s);
    }
    Bytes::from(out)
}

/// Truncates 16-bit samples to their signed high byte (halves size).
pub fn pcm16_to_8(pcm: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(pcm.len() / 2);
    for s in pcm.chunks_exact(2) {
        let v = i16::from_le_bytes([s[0], s[1]]);
        out.push(((v >> 8) as i8) as u8);
    }
    Bytes::from(out)
}

/// Expands signed 8-bit samples back to 16-bit (doubles size; the low
/// byte is zero — precision lost by [`pcm16_to_8`] is gone for good).
pub fn pcm8_to_16(pcm: &[u8]) -> Bytes {
    let mut out = Vec::with_capacity(pcm.len() * 2);
    for &b in pcm {
        let v = ((b as i8) as i16) << 8;
        out.extend_from_slice(&v.to_le_bytes());
    }
    Bytes::from(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pcm16(samples: &[i16]) -> Vec<u8> {
        samples.iter().flat_map(|s| s.to_le_bytes()).collect()
    }

    #[test]
    fn stereo_to_mono_averages() {
        let stereo = pcm16(&[1000, 2000, -500, 500]);
        let mono = stereo_to_mono(&stereo);
        assert_eq!(&mono[..], &pcm16(&[1500, 0])[..]);
    }

    #[test]
    fn mono_to_stereo_duplicates() {
        let mono = pcm16(&[123, -456]);
        let stereo = mono_to_stereo(&mono);
        assert_eq!(&stereo[..], &pcm16(&[123, 123, -456, -456])[..]);
    }

    #[test]
    fn bit_depth_round_trip_loses_low_byte() {
        let orig = pcm16(&[0x1234, -0x1234, 0x00ff]);
        let narrow = pcm16_to_8(&orig);
        assert_eq!(narrow.len(), 3);
        let wide = pcm8_to_16(&narrow);
        let restored: Vec<i16> = wide
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(restored, vec![0x1200, -0x1300, 0x0000]);
    }

    #[test]
    fn sizes_halve_and_double() {
        let stereo = vec![0u8; 400];
        assert_eq!(stereo_to_mono(&stereo).len(), 200);
        assert_eq!(pcm16_to_8(&stereo).len(), 200);
        assert_eq!(mono_to_stereo(&stereo).len(), 800);
        assert_eq!(pcm8_to_16(&stereo).len(), 800);
    }

    #[test]
    fn full_degradation_chain_preserves_loudness_scale() {
        // 16-bit stereo → mono → 8-bit → back up; signal should stay in
        // the same ballpark (no overflow artifacts).
        let stereo = pcm16(&[12000, 12000, -12000, -12000]);
        let m = stereo_to_mono(&stereo);
        let d = pcm16_to_8(&m);
        let up = mono_to_stereo(&pcm8_to_16(&d));
        let restored: Vec<i16> = up
            .chunks_exact(2)
            .map(|c| i16::from_le_bytes([c[0], c[1]]))
            .collect();
        assert_eq!(restored.len(), 4);
        assert!((restored[0] - 12000).abs() < 256);
        assert!((restored[2] + 12000).abs() < 256);
    }

    #[test]
    fn trailing_partial_frames_dropped() {
        let odd = vec![1u8, 2, 3];
        assert_eq!(stereo_to_mono(&odd).len(), 0);
        assert_eq!(pcm16_to_8(&odd).len(), 2 / 2);
    }
}
