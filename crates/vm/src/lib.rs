//! # planp-vm — execution engines for PLAN-P
//!
//! This crate executes type-checked PLAN-P programs two ways:
//!
//! * [`interp`] — the **portable interpreter**: a naive
//!   environment-passing tree walker with name-based variable lookup,
//!   playing the role of the paper's C interpreter;
//! * [`jit`] — the **JIT specializer**: the interpreter specialized with
//!   respect to the program (closure threading with slot-resolved
//!   variables, pre-dispatched primitives, and constant folding), playing
//!   the role of the Tempo-generated run-time specializer of section 2.2.
//!
//! Both engines share one semantic core — [`ops`] for operators and
//! [`prims`] for the primitive library (whose *signatures* live in
//! [`planp_lang::prims`]) — so the JIT is maintained by maintaining the
//! interpreter, which is the paper's central engineering claim.
//!
//! Programs interact with their node through the [`env::NetEnv`] trait;
//! the simulator-backed implementation lives in `planp-runtime`, and
//! [`env::MockEnv`] supports tests and micro-benchmarks.
//!
//! ## Example
//!
//! ```
//! use std::rc::Rc;
//! use planp_vm::{jit, env::MockEnv, value::Value};
//!
//! let prog = Rc::new(planp_lang::compile_front(
//!     "channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + 1, ss)",
//! ).unwrap());
//! let (compiled, stats) = jit::compile(prog);
//! assert!(stats.nodes > 0);
//! let mut env = MockEnv::new(0);
//! let pkt = Value::tuple(vec![
//!     Value::Ip(planp_vm::pkthdr::IpHdr::new(1, 2, 17)),
//!     Value::Udp(planp_vm::pkthdr::UdpHdr::new(9, 9)),
//!     Value::Blob(bytes::Bytes::new()),
//! ]);
//! let (ps, _ss) = compiled
//!     .run_channel(0, &[], Value::Int(0), Value::Unit, pkt, &mut env)
//!     .unwrap();
//! assert_eq!(ps.display(), "1");
//! ```

#![warn(missing_docs)]

pub mod audio;
pub mod cost;
pub mod env;
pub mod interp;
pub mod jit;
pub mod ops;
pub mod pkthdr;
pub mod prims;
pub mod value;

pub use env::{Effect, MockEnv, NetEnv, SendKind};
pub use interp::Interp;
pub use jit::{compile, CodegenStats, CompiledProgram};
pub use value::{Value, VmError};
