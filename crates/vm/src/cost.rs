//! The VM cost model shared by the interpreter, the JIT, and the static
//! cost-bound analysis.
//!
//! Both engines account execution cost in abstract **steps** and report
//! them through [`NetEnv::charge_steps`](crate::env::NetEnv::charge_steps):
//!
//! * the portable interpreter charges [`STEPS_PER_NODE`] for every
//!   expression node it evaluates;
//! * the JIT charges [`STEPS_PER_NODE`] for every compiled template it
//!   executes. Constant folding collapses whole constant subtrees into a
//!   single template, so for any program and input the JIT's step count
//!   is **at most** the interpreter's.
//!
//! The static analysis in `planp-analysis` charges the same constant per
//! AST node along the worst-case execution path, which is why its bound
//! is sound for both engines: it over-approximates the interpreter
//! (branches and short-circuit operators only ever *skip* nodes), and the
//! interpreter dominates the JIT.

/// Abstract VM steps charged per evaluated expression node (interpreter)
/// or executed closure template (JIT).
pub const STEPS_PER_NODE: u64 = 1;
