//! The **JIT specializer** — the run-time compiler "generated from" the
//! portable interpreter (paper section 2.2).
//!
//! Tempo turned the PLAN-P C interpreter into a run-time specializer that
//! assembles and patches pre-compiled machine-code templates. The honest
//! Rust analog is closure threading — the first Futamura projection
//! applied by hand: for each AST node we *specialize* the interpreter's
//! evaluation case with respect to the program, producing a closure
//! ("template") with its immediates patched in:
//!
//! * variable references become direct slot loads (no name lookup);
//! * primitive calls become pre-resolved function pointers;
//! * constant subexpressions are folded at compile time (the folded
//!   template still charges every node of the subtree, so step counts
//!   and per-site profiles stay byte-identical with the interpreter);
//! * user-function calls bind directly to the callee's compiled body
//!   (call graphs are acyclic, so callees are always compiled first).
//!
//! The semantics is shared with the interpreter — both dispatch operators
//! through [`crate::ops`] and primitives through [`crate::prims`] — so a
//! change to the interpreter *is* a change to the JIT, which is the
//! maintainability property the paper's framework is about.
//!
//! [`compile`] also reports [`CodegenStats`], the "code generation time"
//! metric of the paper's figure 3.

use crate::env::NetEnv;
use crate::ops::{eval_binop, eval_unop};
use crate::prims::{self, PrimFn};
use crate::value::{Value, VmError};
use planp_lang::ast::BinOp;
use planp_lang::tast::{TExpr, TExprKind, TProgram};
use std::cell::Cell;
use std::rc::Rc;
use std::time::{Duration, Instant};

/// The execution frame a compiled closure runs against.
pub struct Frame<'a> {
    /// Local slots (parameters + lets), sized by the owner's `nlocals`.
    pub slots: &'a mut [Value],
    /// The program's evaluated `val` globals.
    pub globals: &'a [Value],
    /// The node environment.
    pub net: &'a mut (dyn NetEnv + 'a),
}

/// A compiled expression: a specialized closure.
pub type Code = Rc<dyn for<'a> Fn(&mut Frame<'a>) -> Result<Value, VmError>>;

/// A compiled user function.
struct CompiledFun {
    nlocals: u32,
    arity: usize,
    code: Code,
}

/// A compiled channel overload.
pub struct CompiledChannel {
    /// Channel name.
    pub name: String,
    nlocals: u32,
    code: Code,
    initstate: Option<(u32, Code)>,
}

/// A fully compiled program, ready to be installed on a node.
pub struct CompiledProgram {
    global_inits: Vec<(u32, Code)>,
    proto_init: Option<(u32, Code)>,
    /// Compiled channels, parallel to [`TProgram::channels`].
    pub channels: Vec<CompiledChannel>,
    /// The typed program (kept for state types and dispatch metadata).
    pub prog: Rc<TProgram>,
    /// Step counter shared with every compiled closure (each executed
    /// template bumps it once).
    steps: Rc<Cell<u64>>,
}

/// Statistics from one compilation — the figure 3 measurement.
#[derive(Debug, Clone, Copy)]
pub struct CodegenStats {
    /// Number of typed AST nodes compiled.
    pub nodes: usize,
    /// Wall-clock code generation time.
    pub elapsed: Duration,
}

/// Compiles a typed program.
pub fn compile(prog: Rc<TProgram>) -> (CompiledProgram, CodegenStats) {
    let start = Instant::now();
    let steps = Rc::new(Cell::new(0u64));
    let mut cx = Cx {
        funs: Vec::new(),
        nodes: 0,
        steps: steps.clone(),
    };

    let global_inits: Vec<(u32, Code)> = prog
        .globals
        .iter()
        .map(|g| (count_let_depth(&g.init), cx.compile(&g.init)))
        .collect();

    for f in &prog.funs {
        let code = cx.compile(&f.body);
        cx.funs.push(Rc::new(CompiledFun {
            nlocals: f.nlocals,
            arity: f.params.len(),
            code,
        }));
    }

    let proto_init = prog
        .proto_init
        .as_ref()
        .map(|e| (count_let_depth(e), cx.compile(e)));

    let channels = prog
        .channels
        .iter()
        .map(|ch| CompiledChannel {
            name: ch.name.clone(),
            nlocals: ch.nlocals,
            code: cx.compile(&ch.body),
            initstate: ch
                .initstate
                .as_ref()
                .map(|e| (count_let_depth(e), cx.compile(e))),
        })
        .collect();

    let stats = CodegenStats {
        nodes: cx.nodes,
        elapsed: start.elapsed(),
    };
    (
        CompiledProgram {
            global_inits,
            proto_init,
            channels,
            prog,
            steps,
        },
        stats,
    )
}

/// The sites of a constant-foldable subtree in the interpreter's
/// evaluation order (pre-order: a node charges on eval entry, then its
/// operands left to right). Only the shapes [`Cx::const_of`] accepts
/// appear here — leaves, strict `Binop`, and `Unop` — all branch-free,
/// so this order is exactly what the interpreter charges.
fn collect_const_sites(e: &TExpr, out: &mut Vec<u32>) {
    out.push(e.span.start);
    match &e.kind {
        TExprKind::Binop(_, a, b) => {
            collect_const_sites(a, out);
            collect_const_sites(b, out);
        }
        TExprKind::Unop(_, a) => collect_const_sites(a, out),
        _ => {}
    }
}

/// Number of local slots an initializer expression needs (initializers
/// have no parameters, so this is just the peak `let` nesting).
fn count_let_depth(e: &TExpr) -> u32 {
    let mut max = 0;
    e.walk(&mut |n| {
        if let TExprKind::Let { slot, .. } = &n.kind {
            max = max.max(slot + 1);
        }
    });
    max
}

impl CompiledProgram {
    /// Evaluates the `val` globals in declaration order.
    ///
    /// # Errors
    ///
    /// Propagates load-time evaluation failures.
    pub fn eval_globals(&self, net: &mut dyn NetEnv) -> Result<Vec<Value>, VmError> {
        let mut globals: Vec<Value> = Vec::with_capacity(self.global_inits.len());
        for (nlocals, code) in &self.global_inits {
            let mut slots = vec![Value::Unit; *nlocals as usize];
            let v = {
                let mut frame = Frame {
                    slots: &mut slots,
                    globals: &globals,
                    net,
                };
                code(&mut frame)?
            };
            globals.push(v);
        }
        Ok(globals)
    }

    /// Evaluates the initial protocol state.
    pub fn init_proto(&self, globals: &[Value], net: &mut dyn NetEnv) -> Result<Value, VmError> {
        match &self.proto_init {
            Some((nlocals, code)) => {
                let mut slots = vec![Value::Unit; *nlocals as usize];
                let mut frame = Frame {
                    slots: &mut slots,
                    globals,
                    net,
                };
                code(&mut frame)
            }
            None => Ok(Value::default_of(&self.prog.proto_ty)),
        }
    }

    /// Evaluates the initial state of channel `idx`.
    pub fn init_channel_state(
        &self,
        idx: usize,
        globals: &[Value],
        net: &mut dyn NetEnv,
    ) -> Result<Value, VmError> {
        match &self.channels[idx].initstate {
            Some((nlocals, code)) => {
                let mut slots = vec![Value::Unit; *nlocals as usize];
                let mut frame = Frame {
                    slots: &mut slots,
                    globals,
                    net,
                };
                code(&mut frame)
            }
            None => Ok(Value::default_of(&self.prog.channels[idx].ss_ty)),
        }
    }

    /// Runs channel `idx` on a packet, returning `(ps', ss')`.
    ///
    /// # Errors
    ///
    /// Propagates uncaught PLAN-P exceptions and traps.
    pub fn run_channel(
        &self,
        idx: usize,
        globals: &[Value],
        ps: Value,
        ss: Value,
        pkt: Value,
        net: &mut dyn NetEnv,
    ) -> Result<(Value, Value), VmError> {
        let ch = &self.channels[idx];
        let mut slots = vec![Value::Unit; ch.nlocals as usize];
        slots[0] = ps;
        slots[1] = ss;
        slots[2] = pkt;
        let before = self.steps.get();
        let out = {
            let mut frame = Frame {
                slots: &mut slots,
                globals,
                net,
            };
            (ch.code)(&mut frame)
        };
        net.charge_steps(self.steps.get() - before);
        let out = out?;
        match out {
            Value::Tuple(pair) if pair.len() == 2 => Ok((pair[0].clone(), pair[1].clone())),
            other => Err(VmError::trap(format!(
                "channel body returned non-pair {other:?}"
            ))),
        }
    }

    /// Total templates executed by this program (the VM profiling step
    /// count).
    pub fn steps(&self) -> u64 {
        self.steps.get()
    }
}

struct Cx {
    funs: Vec<Rc<CompiledFun>>,
    nodes: usize,
    steps: Rc<Cell<u64>>,
}

impl Cx {
    /// Attempts compile-time evaluation of a constant expression.
    fn const_of(&self, e: &TExpr) -> Option<Value> {
        match &e.kind {
            TExprKind::Int(n) => Some(Value::Int(*n)),
            TExprKind::Bool(b) => Some(Value::Bool(*b)),
            TExprKind::Str(s) => Some(Value::Str(s.as_str().into())),
            TExprKind::Char(c) => Some(Value::Char(*c)),
            TExprKind::Unit => Some(Value::Unit),
            TExprKind::Host(a) => Some(Value::Host(*a)),
            TExprKind::Binop(op, a, b) if !matches!(op, BinOp::And | BinOp::Or) => {
                let va = self.const_of(a)?;
                let vb = self.const_of(b)?;
                eval_binop(*op, &va, &vb).ok()
            }
            TExprKind::Unop(op, a) => {
                let va = self.const_of(a)?;
                eval_unop(*op, &va).ok()
            }
            _ => None,
        }
    }

    /// Compiles one node and wraps its template with the step-count
    /// bump — a `Cell` increment per evaluated node, the hook the
    /// telemetry layer reads through [`NetEnv::charge_steps`] — plus
    /// the per-site attribution via [`NetEnv::charge_site`].
    ///
    /// A constant-foldable subtree becomes a single template, but it
    /// still charges every node of the folded subtree (in the
    /// interpreter's evaluation order), so both the aggregate step
    /// count and the per-site profile are byte-identical between
    /// engines. That is safe because foldable subtrees are branch-free
    /// (no `andalso`/`orelse`, no `if`) — the interpreter always
    /// evaluates all of their nodes — and a subtree whose folding
    /// would trap (e.g. `1 div 0`) fails [`Cx::const_of`] and compiles
    /// normally, preserving the error path's charge order.
    fn compile(&mut self, e: &TExpr) -> Code {
        if let Some(v) = self.const_of(e) {
            self.nodes += 1;
            let mut sites = Vec::new();
            collect_const_sites(e, &mut sites);
            let total = sites.len() as u64 * crate::cost::STEPS_PER_NODE;
            let steps = self.steps.clone();
            return Rc::new(move |f| {
                steps.set(steps.get() + total);
                for &s in &sites {
                    f.net.charge_site(s, crate::cost::STEPS_PER_NODE);
                }
                Ok(v.clone())
            });
        }
        let inner = self.compile_node(e);
        let steps = self.steps.clone();
        let site = e.span.start;
        Rc::new(move |f| {
            steps.set(steps.get() + crate::cost::STEPS_PER_NODE);
            f.net.charge_site(site, crate::cost::STEPS_PER_NODE);
            inner(f)
        })
    }

    fn compile_node(&mut self, e: &TExpr) -> Code {
        self.nodes += 1;
        match &e.kind {
            TExprKind::Int(n) => {
                let n = *n;
                Rc::new(move |_| Ok(Value::Int(n)))
            }
            TExprKind::Bool(b) => {
                let b = *b;
                Rc::new(move |_| Ok(Value::Bool(b)))
            }
            TExprKind::Str(s) => {
                let v = Value::Str(s.as_str().into());
                Rc::new(move |_| Ok(v.clone()))
            }
            TExprKind::Char(c) => {
                let c = *c;
                Rc::new(move |_| Ok(Value::Char(c)))
            }
            TExprKind::Unit => Rc::new(|_| Ok(Value::Unit)),
            TExprKind::Host(a) => {
                let a = *a;
                Rc::new(move |_| Ok(Value::Host(a)))
            }
            TExprKind::Local { slot, .. } => {
                let slot = *slot as usize;
                Rc::new(move |f| Ok(f.slots[slot].clone()))
            }
            TExprKind::Global { index, .. } => {
                let index = *index as usize;
                Rc::new(move |f| Ok(f.globals[index].clone()))
            }
            TExprKind::Tuple(items) => {
                let codes: Vec<Code> = items.iter().map(|i| self.compile(i)).collect();
                Rc::new(move |f| {
                    let mut out = Vec::with_capacity(codes.len());
                    for c in &codes {
                        out.push(c(f)?);
                    }
                    Ok(Value::tuple(out))
                })
            }
            TExprKind::Proj(i, inner) => {
                let i = *i as usize;
                let inner = self.compile(inner);
                Rc::new(move |f| match inner(f)? {
                    Value::Tuple(items) => items
                        .get(i)
                        .cloned()
                        .ok_or_else(|| VmError::trap("projection out of range")),
                    other => Err(VmError::trap(format!("projection on {other:?}"))),
                })
            }
            TExprKind::CallFun { index, args } => {
                let callee = self.funs[*index as usize].clone();
                let arg_codes: Vec<Code> = args.iter().map(|a| self.compile(a)).collect();
                debug_assert_eq!(callee.arity, arg_codes.len());
                Rc::new(move |f| {
                    let mut slots = vec![Value::Unit; callee.nlocals as usize];
                    for (i, c) in arg_codes.iter().enumerate() {
                        slots[i] = c(f)?;
                    }
                    let mut frame = Frame {
                        slots: &mut slots,
                        globals: f.globals,
                        net: &mut *f.net,
                    };
                    (callee.code)(&mut frame)
                })
            }
            TExprKind::CallPrim { prim, args } => {
                // Pre-resolved dispatch: the template is patched with the
                // primitive's function pointer at compile time. Small
                // arities get allocation-free templates.
                let pf: PrimFn = prims::impls()[prim.0 as usize];
                let mut arg_codes: Vec<Code> = args.iter().map(|a| self.compile(a)).collect();
                match arg_codes.len() {
                    0 => Rc::new(move |f| pf(&[], f.net)),
                    1 => {
                        let a = arg_codes.pop().expect("arity 1");
                        Rc::new(move |f| {
                            let va = a(f)?;
                            pf(&[va], f.net)
                        })
                    }
                    2 => {
                        let b = arg_codes.pop().expect("arity 2");
                        let a = arg_codes.pop().expect("arity 2");
                        Rc::new(move |f| {
                            let va = a(f)?;
                            let vb = b(f)?;
                            pf(&[va, vb], f.net)
                        })
                    }
                    3 => {
                        let c3 = arg_codes.pop().expect("arity 3");
                        let b = arg_codes.pop().expect("arity 3");
                        let a = arg_codes.pop().expect("arity 3");
                        Rc::new(move |f| {
                            let va = a(f)?;
                            let vb = b(f)?;
                            let vc = c3(f)?;
                            pf(&[va, vb, vc], f.net)
                        })
                    }
                    _ => Rc::new(move |f| {
                        let mut vals = Vec::with_capacity(arg_codes.len());
                        for c in &arg_codes {
                            vals.push(c(f)?);
                        }
                        pf(&vals, f.net)
                    }),
                }
            }
            TExprKind::If(c, t, els) => {
                let c = self.compile(c);
                let t = self.compile(t);
                let e2 = self.compile(els);
                Rc::new(move |f| match c(f)? {
                    Value::Bool(true) => t(f),
                    Value::Bool(false) => e2(f),
                    other => Err(VmError::trap(format!("if condition {other:?}"))),
                })
            }
            TExprKind::Let {
                slot, init, body, ..
            } => {
                let slot = *slot as usize;
                let init = self.compile(init);
                let body = self.compile(body);
                Rc::new(move |f| {
                    let v = init(f)?;
                    f.slots[slot] = v;
                    body(f)
                })
            }
            TExprKind::Seq(items) => {
                let codes: Vec<Code> = items.iter().map(|i| self.compile(i)).collect();
                Rc::new(move |f| {
                    let mut last = Value::Unit;
                    for c in &codes {
                        last = c(f)?;
                    }
                    Ok(last)
                })
            }
            TExprKind::Binop(op, a, b) => {
                let a = self.compile(a);
                let b = self.compile(b);
                match op {
                    BinOp::And => Rc::new(move |f| match a(f)? {
                        Value::Bool(false) => Ok(Value::Bool(false)),
                        Value::Bool(true) => b(f),
                        other => Err(VmError::trap(format!("andalso on {other:?}"))),
                    }),
                    BinOp::Or => Rc::new(move |f| match a(f)? {
                        Value::Bool(true) => Ok(Value::Bool(true)),
                        Value::Bool(false) => b(f),
                        other => Err(VmError::trap(format!("orelse on {other:?}"))),
                    }),
                    strict => {
                        let op = *strict;
                        Rc::new(move |f| {
                            let va = a(f)?;
                            let vb = b(f)?;
                            eval_binop(op, &va, &vb)
                        })
                    }
                }
            }
            TExprKind::Unop(op, a) => {
                let op = *op;
                let a = self.compile(a);
                Rc::new(move |f| {
                    let v = a(f)?;
                    eval_unop(op, &v)
                })
            }
            TExprKind::Raise(id) => {
                let id = *id;
                Rc::new(move |_| Err(VmError::Exn(id)))
            }
            TExprKind::Handle(body, pat, handler) => {
                let body = self.compile(body);
                let handler = self.compile(handler);
                let pat = *pat;
                Rc::new(move |f| match body(f) {
                    Err(VmError::Exn(id)) if pat.is_none() || pat == Some(id) => handler(f),
                    other => other,
                })
            }
            TExprKind::List(items) => {
                let codes: Vec<Code> = items.iter().map(|i| self.compile(i)).collect();
                Rc::new(move |f| {
                    let mut out = Vec::with_capacity(codes.len());
                    for c in &codes {
                        out.push(c(f)?);
                    }
                    Ok(Value::List(Rc::new(out)))
                })
            }
            TExprKind::OnRemote {
                chan,
                overload,
                pkt,
            } => {
                let chan = chan.clone();
                let overload = *overload;
                let pkt = self.compile(pkt);
                Rc::new(move |f| {
                    let v = pkt(f)?;
                    f.net
                        .note_send_site(crate::env::SendKind::Remote, Some(&chan));
                    f.net.send_remote(&chan, overload, v);
                    Ok(Value::Unit)
                })
            }
            TExprKind::OnNeighbor {
                chan,
                overload,
                host,
                pkt,
            } => {
                let chan = chan.clone();
                let overload = *overload;
                let host = self.compile(host);
                let pkt = self.compile(pkt);
                Rc::new(move |f| {
                    let h = match host(f)? {
                        Value::Host(h) => h,
                        other => return Err(VmError::trap(format!("OnNeighbor host {other:?}"))),
                    };
                    let v = pkt(f)?;
                    f.net
                        .note_send_site(crate::env::SendKind::Neighbor, Some(&chan));
                    f.net.send_neighbor(&chan, overload, h, v);
                    Ok(Value::Unit)
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;
    use crate::interp::Interp;
    use crate::pkthdr::{addr, IpHdr, UdpHdr};
    use bytes::Bytes;
    use planp_lang::compile_front;

    fn both(src: &str) -> (Rc<TProgram>, CompiledProgram) {
        let tp = Rc::new(compile_front(src).unwrap_or_else(|e| panic!("front: {e}\n{src}")));
        let (cp, stats) = compile(tp.clone());
        assert!(stats.nodes > 0);
        (tp, cp)
    }

    fn udp_packet(src: u32, dst: u32, payload: &'static [u8]) -> Value {
        Value::tuple(vec![
            Value::Ip(IpHdr::new(src, dst, IpHdr::PROTO_UDP)),
            Value::Udp(UdpHdr::new(1000, 2000)),
            Value::Blob(Bytes::from_static(payload)),
        ])
    }

    /// Runs channel 0 through both evaluators and checks they agree on
    /// the new protocol state (displayed) and the effect count.
    fn differential(src: &str, ps: Value) {
        let (tp, cp) = both(src);
        let interp = Interp::new(&tp);

        let mut env_i = MockEnv::new(addr(10, 0, 0, 1));
        let mut env_j = MockEnv::new(addr(10, 0, 0, 1));
        let gi = interp.eval_globals(&mut env_i).unwrap();
        let gj = cp.eval_globals(&mut env_j).unwrap();
        assert_eq!(gi.len(), gj.len());

        let ssi = interp.init_channel_state(0, &gi, &mut env_i).unwrap();
        let ssj = cp.init_channel_state(0, &gj, &mut env_j).unwrap();
        let pkt = udp_packet(addr(1, 1, 1, 1), addr(2, 2, 2, 2), b"payload");

        let ri = interp.run_channel(0, &gi, ps.clone(), ssi, pkt.clone(), &mut env_i);
        let rj = cp.run_channel(0, &gj, ps, ssj, pkt, &mut env_j);
        match (ri, rj) {
            (Ok((pi, _)), Ok((pj, _))) => {
                assert_eq!(pi.display(), pj.display(), "state mismatch in {src}")
            }
            (Err(a), Err(b)) => assert_eq!(a, b),
            (a, b) => panic!("interp={a:?} jit={b:?} for {src}"),
        }
        assert_eq!(env_i.effects.len(), env_j.effects.len());
        assert_eq!(env_i.output, env_j.output);
        assert_eq!(env_i.send_sites, env_j.send_sites, "send sites in {src}");
        assert_eq!(
            env_i.table_writes, env_j.table_writes,
            "table writes in {src}"
        );
        assert_eq!(
            env_i.site_steps, env_j.site_steps,
            "site charge trail in {src}"
        );
        assert_eq!(env_i.steps, env_j.steps, "aggregate steps in {src}");
    }

    #[test]
    fn differential_simple_programs() {
        differential(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (OnRemote(network, p); (ps + 1, ss))",
            Value::Int(41),
        );
        differential(
            "val k : int = 6 * 7\n\
             channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + k, ss)",
            Value::Int(0),
        );
        differential(
            "fun dbl(x : int) : int = x * 2\n\
             channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (println(dbl(ps)); (dbl(dbl(ps)), ss))",
            Value::Int(5),
        );
        differential(
            "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
             initstate mkTable(8) is\n\
             let val n : int = tblGet(ss, ipSrc(#1 p)) handle NotFound => 0 in\n\
               (tblSet(ss, ipSrc(#1 p), n + 1); (n, ss))\n\
             end",
            Value::Int(0),
        );
        differential(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             (if blobLen(#3 p) > 3 andalso ps < 100 then (ps * 2, ss) else (ps, ss))",
            Value::Int(7),
        );
    }

    #[test]
    fn table_eviction_prims_agree_and_account_identically() {
        // Insert (fresh), overwrite (not fresh), delete one key, then
        // clear the rest — the channel returns the final table size.
        let src = "channel network(ps : int, ss : (host, int) hash_table, p : ip*udp*blob)\n\
                   initstate mkTable(8) is\n\
                   (tblSet(ss, ipSrc(#1 p), 1);\n\
                    tblSet(ss, ipSrc(#1 p), 2);\n\
                    tblSet(ss, ipDst(#1 p), 3);\n\
                    tblDel(ss, ipSrc(#1 p));\n\
                    tblDel(ss, ipSrc(#1 p));\n\
                    tblClear(ss);\n\
                    (tblSize(ss), ss))";
        differential(src, Value::Int(-1));

        // The recorded mutation trail is exact, not just engine-equal.
        let (tp, cp) = both(src);
        let interp = Interp::new(&tp);
        let mut env = MockEnv::new(addr(10, 0, 0, 1));
        let ss = interp.init_channel_state(0, &[], &mut env).unwrap();
        let pkt = udp_packet(addr(1, 1, 1, 1), addr(2, 2, 2, 2), b"x");
        let (ps, _) = interp
            .run_channel(0, &[], Value::Int(0), ss, pkt.clone(), &mut env)
            .unwrap();
        assert_eq!(ps.display(), "0", "table is empty after tblClear");
        assert_eq!(
            env.table_writes,
            vec![(1, 1), (0, 1), (1, 2), (-1, 1), (0, 1), (-1, 0)],
            "insert, overwrite, insert, delete, no-op delete, clear"
        );
        assert_eq!(env.insert_count(), 2);

        // And the JIT leaves the same trail.
        let mut env_j = MockEnv::new(addr(10, 0, 0, 1));
        let ssj = cp.init_channel_state(0, &[], &mut env_j).unwrap();
        cp.run_channel(0, &[], Value::Int(0), ssj, pkt, &mut env_j)
            .unwrap();
        assert_eq!(env_j.table_writes, env.table_writes);
    }

    #[test]
    fn send_sites_noted_identically_by_both_engines() {
        use crate::env::SendKind;
        let src = "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
                   (OnRemote(network, p); OnNeighbor(network, thisHost(), p);\n\
                    deliver(p); (ps, ss))";
        let (tp, cp) = both(src);
        let interp = Interp::new(&tp);
        let mut env_i = MockEnv::new(addr(10, 0, 0, 1));
        let mut env_j = MockEnv::new(addr(10, 0, 0, 1));
        let pkt = udp_packet(1, 2, b"x");
        interp
            .run_channel(0, &[], Value::Int(0), Value::Unit, pkt.clone(), &mut env_i)
            .unwrap();
        cp.run_channel(0, &[], Value::Int(0), Value::Unit, pkt, &mut env_j)
            .unwrap();
        let want = vec![
            (SendKind::Remote, Some("network".to_string())),
            (SendKind::Neighbor, Some("network".to_string())),
            (SendKind::Deliver, None),
        ];
        assert_eq!(env_i.send_sites, want);
        assert_eq!(env_j.send_sites, want);
    }

    #[test]
    fn jit_steps_counted_and_charged_to_env() {
        let (_, cp) = both("channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + 1, ss)");
        let mut env = MockEnv::new(0);
        cp.run_channel(
            0,
            &[],
            Value::Int(0),
            Value::Unit,
            udp_packet(1, 2, b""),
            &mut env,
        )
        .unwrap();
        assert!(cp.steps() > 0);
        assert_eq!(env.steps, cp.steps());
        // Deterministic: running the same channel again doubles the count.
        cp.run_channel(
            0,
            &[],
            Value::Int(1),
            Value::Unit,
            udp_packet(1, 2, b""),
            &mut env,
        )
        .unwrap();
        assert_eq!(env.steps, cp.steps());
        assert_eq!(env.steps % 2, 0);
        // Every aggregate step was also attributed to a site.
        let attributed: u64 = env.site_steps.iter().map(|(_, n)| n).sum();
        assert_eq!(attributed, env.steps);
    }

    #[test]
    fn constant_folding_produces_constant() {
        let (_, cp) = both(
            "val k : int = 2 + 3 * 4\n\
             channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + k, ss)",
        );
        let mut env = MockEnv::new(0);
        let globals = cp.eval_globals(&mut env).unwrap();
        assert_eq!(globals[0].display(), "14");
    }

    #[test]
    fn folding_does_not_hide_division_by_zero() {
        let (_, cp) = both(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is\n\
             ((ps + (1 div 0), ss) handle Div => (0 - 1, ss))",
        );
        let mut env = MockEnv::new(0);
        let (ps, _) = cp
            .run_channel(
                0,
                &[],
                Value::Int(5),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert_eq!(ps.display(), "-1");
    }

    #[test]
    fn codegen_stats_scale_with_program_size() {
        let small = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is (ps, ss)";
        let big = format!(
            "{}\nchannel other(ps : unit, ss : unit, p : ip*tcp*blob) is\n\
             let val a : int = 1 val b : int = a + 2 val c : int = b * b in\n\
               (println(a + b + c); (ps, ss))\n\
             end",
            small
        );
        let tp1 = Rc::new(compile_front(small).unwrap());
        let tp2 = Rc::new(compile_front(&big).unwrap());
        let (_, s1) = compile(tp1);
        let (_, s2) = compile(tp2);
        assert!(s2.nodes > s1.nodes);
    }

    #[test]
    fn jit_runs_overloaded_channels_independently() {
        let (_, cp) = both(
            "channel network(ps : int, ss : unit, p : ip*udp*blob) is (ps + 1, ss)\n\
             channel network(ps : int, ss : unit, p : ip*tcp*blob) is (ps + 100, ss)",
        );
        let mut env = MockEnv::new(0);
        let (ps, _) = cp
            .run_channel(
                0,
                &[],
                Value::Int(0),
                Value::Unit,
                udp_packet(1, 2, b""),
                &mut env,
            )
            .unwrap();
        assert_eq!(ps.display(), "1");
        let tcp_pkt = Value::tuple(vec![
            Value::Ip(IpHdr::new(1, 2, IpHdr::PROTO_TCP)),
            Value::Tcp(crate::pkthdr::TcpHdr::data(5, 80, 0)),
            Value::Blob(Bytes::new()),
        ]);
        let (ps, _) = cp
            .run_channel(1, &[], Value::Int(0), Value::Unit, tcp_pkt, &mut env)
            .unwrap();
        assert_eq!(ps.display(), "100");
    }
}
