//! Operator semantics shared by the interpreter and the JIT.
//!
//! Keeping these in one place is part of the paper's implementation
//! discipline: the JIT is a specialization of the interpreter, so the two
//! must share every semantic definition.

use crate::value::{exn, Value, VmError};
use planp_lang::ast::{BinOp, UnOp};

/// Evaluates a strict binary operator (everything except the
/// short-circuiting `andalso`/`orelse`, which the evaluators handle
/// control-flow-wise).
///
/// # Errors
///
/// `div`/`mod` raise `Div` on a zero divisor; comparisons trap on
/// non-comparable values (unreachable for checked programs).
pub fn eval_binop(op: BinOp, a: &Value, b: &Value) -> Result<Value, VmError> {
    use BinOp::*;
    match op {
        Add => Ok(Value::Int(int(a)?.wrapping_add(int(b)?))),
        Sub => Ok(Value::Int(int(a)?.wrapping_sub(int(b)?))),
        Mul => Ok(Value::Int(int(a)?.wrapping_mul(int(b)?))),
        Div => {
            let (x, y) = (int(a)?, int(b)?);
            if y == 0 {
                Err(VmError::Exn(exn::DIV))
            } else {
                Ok(Value::Int(x.wrapping_div(y)))
            }
        }
        Mod => {
            let (x, y) = (int(a)?, int(b)?);
            if y == 0 {
                Err(VmError::Exn(exn::DIV))
            } else {
                Ok(Value::Int(x.wrapping_rem(y)))
            }
        }
        Concat => match (a, b) {
            (Value::Str(x), Value::Str(y)) => {
                let mut s = String::with_capacity(x.len() + y.len());
                s.push_str(x);
                s.push_str(y);
                Ok(Value::Str(s.into()))
            }
            _ => Err(VmError::trap("`^` on non-strings")),
        },
        Eq => equality(a, b).map(Value::Bool),
        Ne => equality(a, b).map(|r| Value::Bool(!r)),
        Lt => ordering(a, b).map(|o| Value::Bool(o.is_lt())),
        Le => ordering(a, b).map(|o| Value::Bool(o.is_le())),
        Gt => ordering(a, b).map(|o| Value::Bool(o.is_gt())),
        Ge => ordering(a, b).map(|o| Value::Bool(o.is_ge())),
        And | Or => Err(VmError::trap("short-circuit operator reached eval_binop")),
    }
}

/// Evaluates a unary operator.
pub fn eval_unop(op: UnOp, a: &Value) -> Result<Value, VmError> {
    match op {
        UnOp::Not => match a {
            Value::Bool(b) => Ok(Value::Bool(!b)),
            _ => Err(VmError::trap("`not` on non-bool")),
        },
        UnOp::Neg => Ok(Value::Int(int(a)?.wrapping_neg())),
    }
}

fn int(v: &Value) -> Result<i64, VmError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(VmError::trap(format!("expected int, got {other:?}"))),
    }
}

fn equality(a: &Value, b: &Value) -> Result<bool, VmError> {
    a.struct_eq(b)
        .ok_or_else(|| VmError::trap("equality on non-equality type"))
}

fn ordering(a: &Value, b: &Value) -> Result<std::cmp::Ordering, VmError> {
    match (a, b) {
        (Value::Int(x), Value::Int(y)) => Ok(x.cmp(y)),
        (Value::Char(x), Value::Char(y)) => Ok(x.cmp(y)),
        (Value::Str(x), Value::Str(y)) => Ok(x.cmp(y)),
        _ => Err(VmError::trap("ordering on unordered type")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic() {
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Int(2), &Value::Int(3)),
            Ok(Value::Int(5))
        );
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(7), &Value::Int(2)),
            Ok(Value::Int(3))
        );
        assert_eq!(
            eval_binop(BinOp::Mod, &Value::Int(7), &Value::Int(2)),
            Ok(Value::Int(1))
        );
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(7), &Value::Int(0)),
            Err(VmError::Exn(exn::DIV))
        );
    }

    #[test]
    fn int_min_div_does_not_panic() {
        assert_eq!(
            eval_binop(BinOp::Div, &Value::Int(i64::MIN), &Value::Int(-1)),
            Ok(Value::Int(i64::MIN))
        );
    }

    #[test]
    fn arithmetic_wraps_at_extremes() {
        // PLAN-P ints are 64-bit two's complement with wrapping
        // arithmetic (no run-time overflow faults in the packet path).
        assert_eq!(
            eval_binop(BinOp::Add, &Value::Int(i64::MAX), &Value::Int(1)),
            Ok(Value::Int(i64::MIN))
        );
        assert_eq!(
            eval_binop(BinOp::Mul, &Value::Int(i64::MAX), &Value::Int(2)),
            Ok(Value::Int(-2))
        );
        assert_eq!(
            eval_unop(UnOp::Neg, &Value::Int(i64::MIN)),
            Ok(Value::Int(i64::MIN))
        );
    }

    #[test]
    fn type_confusion_traps_not_panics() {
        assert!(matches!(
            eval_binop(BinOp::Add, &Value::Bool(true), &Value::Int(1)),
            Err(VmError::Trap(_))
        ));
        assert!(matches!(
            eval_binop(BinOp::Lt, &Value::Bool(true), &Value::Bool(false)),
            Err(VmError::Trap(_))
        ));
        assert!(matches!(
            eval_unop(UnOp::Not, &Value::Int(0)),
            Err(VmError::Trap(_))
        ));
    }

    #[test]
    fn concat_and_compare() {
        assert_eq!(
            eval_binop(BinOp::Concat, &Value::str("ab"), &Value::str("cd")),
            Ok(Value::str("abcd"))
        );
        assert_eq!(
            eval_binop(BinOp::Lt, &Value::str("a"), &Value::str("b")),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            eval_binop(BinOp::Ge, &Value::Char('b'), &Value::Char('b')),
            Ok(Value::Bool(true))
        );
    }

    #[test]
    fn equality_structural() {
        let t1 = Value::tuple(vec![Value::Int(1), Value::Host(9)]);
        let t2 = Value::tuple(vec![Value::Int(1), Value::Host(9)]);
        assert_eq!(eval_binop(BinOp::Eq, &t1, &t2), Ok(Value::Bool(true)));
        assert_eq!(eval_binop(BinOp::Ne, &t1, &t2), Ok(Value::Bool(false)));
    }

    #[test]
    fn unops() {
        assert_eq!(
            eval_unop(UnOp::Not, &Value::Bool(true)),
            Ok(Value::Bool(false))
        );
        assert_eq!(eval_unop(UnOp::Neg, &Value::Int(5)), Ok(Value::Int(-5)));
    }
}
