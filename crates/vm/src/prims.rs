//! Implementations of the PLAN-P primitives.
//!
//! Each entry of the declarative signature table in
//! [`planp_lang::prims`] is paired here with exactly one evaluation
//! function, indexed by [`PrimId`]. Both the portable interpreter and the
//! JIT dispatch through this table — the "generate the JIT from the
//! interpreter" architecture of section 2.2: the semantics is written
//! once, and the JIT merely pre-resolves the dispatch.

use crate::audio;
use crate::env::NetEnv;
use crate::pkthdr::{IpHdr, TcpHdr, UdpHdr};
use crate::value::{exn, new_table, Key, Value, VmError};
use bytes::Bytes;
use planp_lang::prims::{table as sig_table, PrimId};
use std::rc::Rc;
use std::sync::OnceLock;

/// The type of a primitive's evaluation function.
pub type PrimFn = fn(&[Value], &mut dyn NetEnv) -> Result<Value, VmError>;

/// Returns the evaluation functions, indexed by [`PrimId`].
pub fn impls() -> &'static [PrimFn] {
    static IMPLS: OnceLock<Vec<PrimFn>> = OnceLock::new();
    IMPLS.get_or_init(|| {
        sig_table()
            .iter()
            .map(|(_, sig)| impl_for(sig.name))
            .collect()
    })
}

/// Evaluates primitive `id` on `args`.
///
/// # Errors
///
/// Returns [`VmError::Exn`] for PLAN-P exceptions the primitive's
/// signature declares, and [`VmError::Trap`] on type confusion (ruled out
/// for checked programs).
pub fn eval(id: PrimId, args: &[Value], env: &mut dyn NetEnv) -> Result<Value, VmError> {
    impls()[id.0 as usize](args, env)
}

// ---- argument helpers ---------------------------------------------------

fn want_int(v: &Value) -> Result<i64, VmError> {
    match v {
        Value::Int(n) => Ok(*n),
        other => Err(VmError::trap(format!("expected int, got {other:?}"))),
    }
}

fn want_host(v: &Value) -> Result<u32, VmError> {
    match v {
        Value::Host(a) => Ok(*a),
        other => Err(VmError::trap(format!("expected host, got {other:?}"))),
    }
}

fn want_char(v: &Value) -> Result<char, VmError> {
    match v {
        Value::Char(c) => Ok(*c),
        other => Err(VmError::trap(format!("expected char, got {other:?}"))),
    }
}

fn want_str(v: &Value) -> Result<&Rc<str>, VmError> {
    match v {
        Value::Str(s) => Ok(s),
        other => Err(VmError::trap(format!("expected string, got {other:?}"))),
    }
}

fn want_blob(v: &Value) -> Result<&Bytes, VmError> {
    match v {
        Value::Blob(b) => Ok(b),
        other => Err(VmError::trap(format!("expected blob, got {other:?}"))),
    }
}

fn want_ip(v: &Value) -> Result<IpHdr, VmError> {
    match v {
        Value::Ip(h) => Ok(*h),
        other => Err(VmError::trap(format!("expected ip header, got {other:?}"))),
    }
}

fn want_tcp(v: &Value) -> Result<TcpHdr, VmError> {
    match v {
        Value::Tcp(h) => Ok(*h),
        other => Err(VmError::trap(format!("expected tcp header, got {other:?}"))),
    }
}

fn want_udp(v: &Value) -> Result<UdpHdr, VmError> {
    match v {
        Value::Udp(h) => Ok(*h),
        other => Err(VmError::trap(format!("expected udp header, got {other:?}"))),
    }
}

fn want_list(v: &Value) -> Result<&Rc<Vec<Value>>, VmError> {
    match v {
        Value::List(l) => Ok(l),
        other => Err(VmError::trap(format!("expected list, got {other:?}"))),
    }
}

fn want_port(n: i64) -> Result<u16, VmError> {
    u16::try_from(n).map_err(|_| VmError::Exn(exn::OUT_OF_RANGE))
}

fn index(n: i64, len: usize) -> Result<usize, VmError> {
    if n < 0 || n as usize >= len {
        Err(VmError::Exn(exn::OUT_OF_RANGE))
    } else {
        Ok(n as usize)
    }
}

fn range(off: i64, len: i64, total: usize) -> Result<(usize, usize), VmError> {
    if off < 0 || len < 0 {
        return Err(VmError::Exn(exn::OUT_OF_RANGE));
    }
    let (off, len) = (off as usize, len as usize);
    if off.checked_add(len).is_none_or(|end| end > total) {
        return Err(VmError::Exn(exn::OUT_OF_RANGE));
    }
    Ok((off, len))
}

// ---- dispatch -----------------------------------------------------------

fn impl_for(name: &'static str) -> PrimFn {
    match name {
        // IP header
        "ipSrc" => |a, _| Ok(Value::Host(want_ip(&a[0])?.src)),
        "ipDst" => |a, _| Ok(Value::Host(want_ip(&a[0])?.dst)),
        "ipSrcSet" => |a, _| {
            let mut h = want_ip(&a[0])?;
            h.src = want_host(&a[1])?;
            Ok(Value::Ip(h))
        },
        "ipDestSet" => |a, _| {
            let mut h = want_ip(&a[0])?;
            h.dst = want_host(&a[1])?;
            Ok(Value::Ip(h))
        },
        "ipTtl" => |a, _| Ok(Value::Int(want_ip(&a[0])?.ttl as i64)),
        "ipProto" => |a, _| Ok(Value::Int(want_ip(&a[0])?.proto as i64)),
        // TCP header
        "tcpSrc" => |a, _| Ok(Value::Int(want_tcp(&a[0])?.sport as i64)),
        "tcpDst" => |a, _| Ok(Value::Int(want_tcp(&a[0])?.dport as i64)),
        "tcpSrcSet" => |a, _| {
            let mut h = want_tcp(&a[0])?;
            h.sport = want_port(want_int(&a[1])?)?;
            Ok(Value::Tcp(h))
        },
        "tcpDstSet" => |a, _| {
            let mut h = want_tcp(&a[0])?;
            h.dport = want_port(want_int(&a[1])?)?;
            Ok(Value::Tcp(h))
        },
        "tcpSeq" => |a, _| Ok(Value::Int(want_tcp(&a[0])?.seq as i64)),
        "tcpAck" => |a, _| Ok(Value::Int(want_tcp(&a[0])?.ack as i64)),
        "tcpIsSyn" => |a, _| {
            Ok(Value::Bool(
                want_tcp(&a[0])?.has(crate::pkthdr::tcp_flags::SYN),
            ))
        },
        "tcpIsFin" => |a, _| {
            Ok(Value::Bool(
                want_tcp(&a[0])?.has(crate::pkthdr::tcp_flags::FIN),
            ))
        },
        "tcpIsAck" => |a, _| {
            Ok(Value::Bool(
                want_tcp(&a[0])?.has(crate::pkthdr::tcp_flags::ACK),
            ))
        },
        "tcpIsRst" => |a, _| {
            Ok(Value::Bool(
                want_tcp(&a[0])?.has(crate::pkthdr::tcp_flags::RST),
            ))
        },
        // UDP header
        "udpSrc" => |a, _| Ok(Value::Int(want_udp(&a[0])?.sport as i64)),
        "udpDst" => |a, _| Ok(Value::Int(want_udp(&a[0])?.dport as i64)),
        "udpSrcSet" => |a, _| {
            let mut h = want_udp(&a[0])?;
            h.sport = want_port(want_int(&a[1])?)?;
            Ok(Value::Udp(h))
        },
        "udpDstSet" => |a, _| {
            let mut h = want_udp(&a[0])?;
            h.dport = want_port(want_int(&a[1])?)?;
            Ok(Value::Udp(h))
        },
        // Blobs
        "blobLen" => |a, _| Ok(Value::Int(want_blob(&a[0])?.len() as i64)),
        "blobSub" => |a, _| {
            let b = want_blob(&a[0])?;
            let (off, len) = range(want_int(&a[1])?, want_int(&a[2])?, b.len())?;
            Ok(Value::Blob(b.slice(off..off + len)))
        },
        "blobCat" => |a, _| {
            let x = want_blob(&a[0])?;
            let y = want_blob(&a[1])?;
            let mut out = Vec::with_capacity(x.len() + y.len());
            out.extend_from_slice(x);
            out.extend_from_slice(y);
            Ok(Value::Blob(Bytes::from(out)))
        },
        "blobByte" => |a, _| {
            let b = want_blob(&a[0])?;
            let i = index(want_int(&a[1])?, b.len())?;
            Ok(Value::Int(b[i] as i64))
        },
        "blobSetByte" => |a, _| {
            let b = want_blob(&a[0])?;
            let i = index(want_int(&a[1])?, b.len())?;
            let v = want_int(&a[2])?;
            if !(0..=255).contains(&v) {
                return Err(VmError::Exn(exn::OUT_OF_RANGE));
            }
            let mut out = b.to_vec();
            out[i] = v as u8;
            Ok(Value::Blob(Bytes::from(out)))
        },
        "blobInt" => |a, _| {
            let b = want_blob(&a[0])?;
            let (off, _) = range(want_int(&a[1])?, 8, b.len())?;
            let bytes: [u8; 8] = b[off..off + 8].try_into().expect("len checked");
            Ok(Value::Int(i64::from_be_bytes(bytes)))
        },
        "blobSetInt" => |a, _| {
            let b = want_blob(&a[0])?;
            let (off, _) = range(want_int(&a[1])?, 8, b.len())?;
            let mut out = b.to_vec();
            out[off..off + 8].copy_from_slice(&want_int(&a[2])?.to_be_bytes());
            Ok(Value::Blob(Bytes::from(out)))
        },
        "mkBlob" => |a, _| {
            let len = want_int(&a[0])?;
            let fill = want_int(&a[1])?;
            if !(0..=1 << 24).contains(&len) || !(0..=255).contains(&fill) {
                return Err(VmError::Exn(exn::OUT_OF_RANGE));
            }
            Ok(Value::Blob(Bytes::from(vec![fill as u8; len as usize])))
        },
        "blobFromString" => |a, _| {
            Ok(Value::Blob(Bytes::copy_from_slice(
                want_str(&a[0])?.as_bytes(),
            )))
        },
        "blobToString" => |a, _| {
            let b = want_blob(&a[0])?;
            Ok(Value::Str(String::from_utf8_lossy(b).into_owned().into()))
        },
        // Strings / chars
        "strLen" => |a, _| Ok(Value::Int(want_str(&a[0])?.chars().count() as i64)),
        "strSub" => |a, _| {
            let s = want_str(&a[0])?;
            let chars: Vec<char> = s.chars().collect();
            let (off, len) = range(want_int(&a[1])?, want_int(&a[2])?, chars.len())?;
            Ok(Value::Str(
                chars[off..off + len].iter().collect::<String>().into(),
            ))
        },
        "strChar" => |a, _| {
            let s = want_str(&a[0])?;
            let i = want_int(&a[1])?;
            s.chars()
                .nth(usize::try_from(i).map_err(|_| VmError::Exn(exn::OUT_OF_RANGE))?)
                .map(Value::Char)
                .ok_or(VmError::Exn(exn::OUT_OF_RANGE))
        },
        "strFind" => |a, _| {
            let hay = want_str(&a[0])?;
            let needle = want_str(&a[1])?;
            match hay.find(needle.as_ref()) {
                Some(byte_pos) => {
                    let char_pos = hay[..byte_pos].chars().count();
                    Ok(Value::Int(char_pos as i64))
                }
                None => Ok(Value::Int(-1)),
            }
        },
        "intToString" => |a, _| Ok(Value::Str(want_int(&a[0])?.to_string().into())),
        "strToInt" => |a, _| {
            want_str(&a[0])?
                .trim()
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| VmError::Exn(exn::FORMAT))
        },
        "charPos" => |a, _| Ok(Value::Int(want_char(&a[0])? as i64)),
        "chr" => |a, _| {
            let n = want_int(&a[0])?;
            u32::try_from(n)
                .ok()
                .and_then(char::from_u32)
                .map(Value::Char)
                .ok_or(VmError::Exn(exn::OUT_OF_RANGE))
        },
        // Hosts
        "isMulticast" => |a, _| Ok(Value::Bool((want_host(&a[0])? >> 28) == 0xE)),
        "thisHost" => |_, env| Ok(Value::Host(env.this_host())),
        // Environment
        "timeMs" => |_, env| Ok(Value::Int(env.time_ms())),
        "linkLoad" => |a, env| Ok(Value::Int(env.link_load(want_host(&a[0])?))),
        "linkCapacity" => |a, env| Ok(Value::Int(env.link_capacity(want_host(&a[0])?))),
        "queueLen" => |a, env| Ok(Value::Int(env.queue_len(want_host(&a[0])?))),
        "randInt" => |a, env| Ok(Value::Int(env.rand_int(want_int(&a[0])?))),
        "setTimer" => |a, env| {
            env.set_timer(want_int(&a[0])?, want_int(&a[1])?);
            Ok(Value::Unit)
        },
        // Audio
        "audio16to8" => |a, _| Ok(Value::Blob(audio::pcm16_to_8(want_blob(&a[0])?))),
        "audio8to16" => |a, _| Ok(Value::Blob(audio::pcm8_to_16(want_blob(&a[0])?))),
        "audioStereoToMono" => |a, _| Ok(Value::Blob(audio::stereo_to_mono(want_blob(&a[0])?))),
        "audioMonoToStereo" => |a, _| Ok(Value::Blob(audio::mono_to_stereo(want_blob(&a[0])?))),
        // Tables
        "mkTable" => |a, _| {
            let hint = want_int(&a[0])?.clamp(0, 1 << 20) as usize;
            Ok(Value::Table(new_table(hint)))
        },
        "tblGet" => |a, _| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblGet on non-table"));
            };
            t.borrow()
                .get(&Key(a[1].clone()))
                .cloned()
                .ok_or(VmError::Exn(exn::NOT_FOUND))
        },
        "tblSet" => |a, env| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblSet on non-table"));
            };
            let mut m = t.borrow_mut();
            let fresh = m.insert(Key(a[1].clone()), a[2].clone()).is_none();
            let entries = m.len() as u64;
            drop(m);
            env.note_table_write(i64::from(fresh), entries);
            Ok(Value::Unit)
        },
        "tblHas" => |a, _| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblHas on non-table"));
            };
            Ok(Value::Bool(t.borrow().contains_key(&Key(a[1].clone()))))
        },
        "tblDel" => |a, env| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblDel on non-table"));
            };
            let mut m = t.borrow_mut();
            let removed = m.remove(&Key(a[1].clone())).is_some();
            let entries = m.len() as u64;
            drop(m);
            env.note_table_write(-i64::from(removed), entries);
            Ok(Value::Unit)
        },
        "tblClear" => |a, env| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblClear on non-table"));
            };
            let mut m = t.borrow_mut();
            let dropped = m.len() as i64;
            m.clear();
            drop(m);
            env.note_table_write(-dropped, 0);
            Ok(Value::Unit)
        },
        "tblSize" => |a, _| {
            let Value::Table(t) = &a[0] else {
                return Err(VmError::trap("tblSize on non-table"));
            };
            Ok(Value::Int(t.borrow().len() as i64))
        },
        // Lists
        "listLen" => |a, _| Ok(Value::Int(want_list(&a[0])?.len() as i64)),
        "listGet" => |a, _| {
            let l = want_list(&a[0])?;
            let i = index(want_int(&a[1])?, l.len())?;
            Ok(l[i].clone())
        },
        "cons" => |a, _| {
            let l = want_list(&a[1])?;
            let mut out = Vec::with_capacity(l.len() + 1);
            out.push(a[0].clone());
            out.extend(l.iter().cloned());
            Ok(Value::List(Rc::new(out)))
        },
        "append" => |a, _| {
            let x = want_list(&a[0])?;
            let y = want_list(&a[1])?;
            let mut out = Vec::with_capacity(x.len() + y.len());
            out.extend(x.iter().cloned());
            out.extend(y.iter().cloned());
            Ok(Value::List(Rc::new(out)))
        },
        "listRev" => |a, _| {
            let l = want_list(&a[0])?;
            Ok(Value::List(Rc::new(l.iter().rev().cloned().collect())))
        },
        // I/O
        "print" => |a, env| {
            env.print(&a[0].display());
            Ok(Value::Unit)
        },
        "println" => |a, env| {
            env.print(&a[0].display());
            env.print("\n");
            Ok(Value::Unit)
        },
        "deliver" => |a, env| {
            env.note_send_site(crate::env::SendKind::Deliver, None);
            env.deliver(a[0].clone());
            Ok(Value::Unit)
        },
        other => panic!("primitive `{other}` has a signature but no implementation"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::MockEnv;
    use crate::pkthdr::addr;

    fn run(name: &str, args: Vec<Value>) -> Result<Value, VmError> {
        let (id, _) = sig_table()
            .lookup(name)
            .unwrap_or_else(|| panic!("{name}?"));
        let mut env = MockEnv::new(addr(10, 0, 0, 1));
        eval(id, &args, &mut env)
    }

    #[test]
    fn every_signature_has_an_implementation() {
        // Forces construction of the whole table; a missing arm panics.
        assert_eq!(impls().len(), sig_table().len());
    }

    #[test]
    fn ip_header_ops() {
        let h = Value::Ip(IpHdr::new(addr(1, 2, 3, 4), addr(5, 6, 7, 8), 17));
        assert!(matches!(run("ipSrc", vec![h.clone()]), Ok(Value::Host(a)) if a == addr(1,2,3,4)));
        let set = run("ipDestSet", vec![h.clone(), Value::Host(addr(9, 9, 9, 9))]).unwrap();
        let Value::Ip(newh) = set else { panic!() };
        assert_eq!(newh.dst, addr(9, 9, 9, 9));
        assert_eq!(newh.src, addr(1, 2, 3, 4));
        assert!(matches!(run("ipTtl", vec![h]), Ok(Value::Int(64))));
    }

    #[test]
    fn tcp_udp_ops() {
        let t = Value::Tcp(TcpHdr::data(1234, 80, 7));
        assert!(matches!(run("tcpDst", vec![t.clone()]), Ok(Value::Int(80))));
        assert!(matches!(
            run("tcpIsAck", vec![t.clone()]),
            Ok(Value::Bool(true))
        ));
        assert!(matches!(
            run("tcpIsSyn", vec![t.clone()]),
            Ok(Value::Bool(false))
        ));
        let t2 = run("tcpDstSet", vec![t, Value::Int(8080)]).unwrap();
        assert!(matches!(run("tcpDst", vec![t2]), Ok(Value::Int(8080))));
        let u = Value::Udp(UdpHdr::new(5000, 6000));
        assert!(matches!(
            run("udpSrc", vec![u.clone()]),
            Ok(Value::Int(5000))
        ));
        // Port out of range raises.
        let u2 = run("udpDstSet", vec![u, Value::Int(70000)]);
        assert_eq!(u2, Err(VmError::Exn(exn::OUT_OF_RANGE)));
    }

    #[test]
    fn blob_ops() {
        let b = Value::Blob(Bytes::from_static(b"hello world"));
        assert!(matches!(
            run("blobLen", vec![b.clone()]),
            Ok(Value::Int(11))
        ));
        let sub = run("blobSub", vec![b.clone(), Value::Int(6), Value::Int(5)]).unwrap();
        let Value::Blob(s) = &sub else { panic!() };
        assert_eq!(&s[..], b"world");
        assert!(matches!(
            run("blobByte", vec![b.clone(), Value::Int(0)]),
            Ok(Value::Int(104))
        ));
        assert_eq!(
            run("blobByte", vec![b.clone(), Value::Int(99)]),
            Err(VmError::Exn(exn::OUT_OF_RANGE))
        );
        let cat = run("blobCat", vec![sub, b]).unwrap();
        assert!(matches!(run("blobLen", vec![cat]), Ok(Value::Int(16))));
    }

    #[test]
    fn blob_int_round_trip() {
        let b = run("mkBlob", vec![Value::Int(16), Value::Int(0)]).unwrap();
        let b = run("blobSetInt", vec![b, Value::Int(8), Value::Int(-12345)]).unwrap();
        assert!(matches!(
            run("blobInt", vec![b, Value::Int(8)]),
            Ok(Value::Int(-12345))
        ));
    }

    #[test]
    fn string_ops() {
        let s = Value::str("GET /index.html HTTP/1.0");
        assert!(matches!(run("strLen", vec![s.clone()]), Ok(Value::Int(24))));
        assert!(matches!(
            run("strFind", vec![s.clone(), Value::str("index")]),
            Ok(Value::Int(5))
        ));
        assert!(matches!(
            run("strFind", vec![s.clone(), Value::str("zzz")]),
            Ok(Value::Int(-1))
        ));
        let sub = run("strSub", vec![s, Value::Int(4), Value::Int(11)]).unwrap();
        assert!(matches!(&sub, Value::Str(x) if x.as_ref() == "/index.html"));
        assert_eq!(run("strToInt", vec![Value::str("42")]), Ok(Value::Int(42)));
        assert_eq!(
            run("strToInt", vec![Value::str("nope")]),
            Err(VmError::Exn(exn::FORMAT))
        );
        assert_eq!(run("charPos", vec![Value::Char('A')]), Ok(Value::Int(65)));
        assert_eq!(run("chr", vec![Value::Int(66)]), Ok(Value::Char('B')));
        assert_eq!(
            run("chr", vec![Value::Int(-1)]),
            Err(VmError::Exn(exn::OUT_OF_RANGE))
        );
    }

    #[test]
    fn table_ops() {
        let t = run("mkTable", vec![Value::Int(8)]).unwrap();
        let k = Value::tuple(vec![Value::Host(1), Value::Int(80)]);
        assert_eq!(
            run("tblGet", vec![t.clone(), k.clone()]),
            Err(VmError::Exn(exn::NOT_FOUND))
        );
        run("tblSet", vec![t.clone(), k.clone(), Value::Int(1)]).unwrap();
        assert_eq!(run("tblGet", vec![t.clone(), k.clone()]), Ok(Value::Int(1)));
        assert_eq!(
            run("tblHas", vec![t.clone(), k.clone()]),
            Ok(Value::Bool(true))
        );
        assert_eq!(run("tblSize", vec![t.clone()]), Ok(Value::Int(1)));
        run("tblDel", vec![t.clone(), k.clone()]).unwrap();
        assert_eq!(run("tblHas", vec![t, k]), Ok(Value::Bool(false)));
    }

    #[test]
    fn list_ops() {
        let l = Value::List(Rc::new(vec![Value::Int(1), Value::Int(2)]));
        assert_eq!(run("listLen", vec![l.clone()]), Ok(Value::Int(2)));
        assert_eq!(
            run("listGet", vec![l.clone(), Value::Int(1)]),
            Ok(Value::Int(2))
        );
        assert_eq!(
            run("listGet", vec![l.clone(), Value::Int(5)]),
            Err(VmError::Exn(exn::OUT_OF_RANGE))
        );
        let l2 = run("cons", vec![Value::Int(0), l.clone()]).unwrap();
        assert_eq!(run("listLen", vec![l2.clone()]), Ok(Value::Int(3)));
        let r = run("listRev", vec![l2]).unwrap();
        assert_eq!(run("listGet", vec![r, Value::Int(0)]), Ok(Value::Int(2)));
        let cat = run("append", vec![l.clone(), l]).unwrap();
        assert_eq!(run("listLen", vec![cat]), Ok(Value::Int(4)));
    }

    #[test]
    fn env_and_io_ops() {
        let (print_id, _) = sig_table().lookup("println").unwrap();
        let (host_id, _) = sig_table().lookup("thisHost").unwrap();
        let (deliver_id, _) = sig_table().lookup("deliver").unwrap();
        let mut env = MockEnv::new(addr(10, 0, 0, 9));
        env.load = 123;
        assert_eq!(
            eval(host_id, &[], &mut env),
            Ok(Value::Host(addr(10, 0, 0, 9)))
        );
        let (load_id, _) = sig_table().lookup("linkLoad").unwrap();
        assert_eq!(
            eval(load_id, &[Value::Host(1)], &mut env),
            Ok(Value::Int(123))
        );
        eval(print_id, &[Value::Int(5)], &mut env).unwrap();
        assert_eq!(env.output, "5\n");
        eval(deliver_id, &[Value::Unit], &mut env).unwrap();
        assert_eq!(env.deliver_count(), 1);
    }

    #[test]
    fn audio_prims_change_sizes() {
        let pcm = Value::Blob(Bytes::from(vec![0u8; 400]));
        let m = run("audioStereoToMono", vec![pcm.clone()]).unwrap();
        assert!(matches!(run("blobLen", vec![m]), Ok(Value::Int(200))));
        let d = run("audio16to8", vec![pcm]).unwrap();
        assert!(matches!(
            run("blobLen", vec![d.clone()]),
            Ok(Value::Int(200))
        ));
        let u = run("audio8to16", vec![d]).unwrap();
        assert!(matches!(run("blobLen", vec![u]), Ok(Value::Int(400))));
    }

    #[test]
    fn type_confusion_traps() {
        assert!(matches!(
            run("ipSrc", vec![Value::Int(1)]),
            Err(VmError::Trap(_))
        ));
        assert!(matches!(
            run("tblGet", vec![Value::Int(1), Value::Int(2)]),
            Err(VmError::Trap(_))
        ));
    }

    #[test]
    fn is_multicast_prim() {
        assert_eq!(
            run("isMulticast", vec![Value::Host(addr(224, 0, 0, 1))]),
            Ok(Value::Bool(true))
        );
        assert_eq!(
            run("isMulticast", vec![Value::Host(addr(10, 0, 0, 1))]),
            Ok(Value::Bool(false))
        );
    }
}
