//! The node environment a PLAN-P program executes against.
//!
//! The environment primitives (`thisHost`, `linkLoad`, …) and the output
//! effects (`OnRemote`, `OnNeighbor`, `deliver`, `print`) are mediated by
//! the [`NetEnv`] trait. The real implementation lives in
//! `planp-runtime`, backed by a simulated node; [`MockEnv`] here supports
//! unit tests and micro-benchmarks.

use crate::value::Value;

/// Which send primitive an ASP is about to execute. Both engines report
/// this via [`NetEnv::note_send_site`] immediately before the effect
/// call, so environments that tag causal lineage (the runtime's span
/// tracing) know how the child packet came to exist.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendKind {
    /// `OnRemote(chan, pkt)` — route by the packet's destination.
    Remote,
    /// `OnNeighbor(chan, host, pkt)` — direct to a neighbor.
    Neighbor,
    /// `deliver(pkt)` — hand to the local application.
    Deliver,
}

/// What a PLAN-P program can observe and effect on its node.
pub trait NetEnv {
    /// The address of the node the program runs on.
    fn this_host(&self) -> u32;
    /// Milliseconds since an arbitrary epoch (simulated time).
    fn time_ms(&mut self) -> i64;
    /// Measured traffic (kb/s) on the outgoing link toward `dst` —
    /// including competing traffic on a shared segment. This is the
    /// router-local bandwidth monitor of section 3.1.
    fn link_load(&mut self, dst: u32) -> i64;
    /// Capacity (kb/s) of the outgoing link toward `dst`.
    fn link_capacity(&mut self, dst: u32) -> i64;
    /// Packets currently queued on the outgoing link toward `dst`.
    fn queue_len(&mut self, dst: u32) -> i64;
    /// A uniform random integer in `0..bound` (`0` when `bound <= 0`).
    fn rand_int(&mut self, bound: i64) -> i64;
    /// Effect of `OnRemote(chan, pkt)`.
    fn send_remote(&mut self, chan: &str, overload: u32, pkt: Value);
    /// Effect of `OnNeighbor(chan, host, pkt)`.
    fn send_neighbor(&mut self, chan: &str, overload: u32, host: u32, pkt: Value);
    /// Effect of `deliver(pkt)` — hand the packet to the local
    /// application above the PLAN-P layer.
    fn deliver(&mut self, pkt: Value);
    /// Effect of `print`/`println`.
    fn print(&mut self, text: &str);
    /// Effect of `setTimer(delay_ms, key)`: schedule a synthetic
    /// timer-channel dispatch on this node after `delay_ms` milliseconds
    /// carrying `key`. The default discards the request (environments
    /// without a clock, such as the verifier's abstract ones).
    fn set_timer(&mut self, _delay_ms: i64, _key: i64) {}
    /// Accounts `n` abstract VM execution steps (evaluated expression
    /// nodes) to the current channel invocation. Both engines call this
    /// once per `run_channel` with the steps that invocation consumed —
    /// a deterministic, wall-clock-free cost measure. The default
    /// discards the charge.
    fn charge_steps(&mut self, _n: u64) {}
    /// Attributes `n` VM steps to the expression **site** being
    /// evaluated (a site id is the node's source span start offset —
    /// stable across engines, runs, and recompiles of the same source).
    /// Both engines call this once per charged node, so per dispatch
    /// the per-site charges sum exactly to the `charge_steps`
    /// aggregate. Environments that build execution profiles (the
    /// runtime's telemetry) consume it; the default discards the
    /// charge.
    fn charge_site(&mut self, _site: u32, _n: u64) {}
    /// Announces the send primitive about to run (both engines call
    /// this right before `send_remote`/`send_neighbor`/`deliver`), with
    /// the target channel when the primitive names one. Environments
    /// that track packet lineage use it to tag the child packet's
    /// origin; the default discards the note.
    fn note_send_site(&mut self, _kind: SendKind, _chan: Option<&str>) {}
    /// Accounts a table mutation (both engines call this from the
    /// `tblSet`/`tblDel`/`tblClear` primitives). `inserted` is `1` when
    /// a `tblSet` created a new key, `0` on an overwrite, and `-n` when
    /// an eviction removed `n` entries; `entries` is the mutated
    /// table's size after the write. Environments that enforce the
    /// static state bounds (the runtime's telemetry) use it as a live
    /// soundness cross-check; the default discards the note.
    fn note_table_write(&mut self, _inserted: i64, _entries: u64) {}
}

/// A recorded output effect (used by [`MockEnv`] and by tests).
#[derive(Debug, Clone)]
pub enum Effect {
    /// An `OnRemote` send.
    Remote {
        /// Target channel.
        chan: String,
        /// Target overload index.
        overload: u32,
        /// The packet value.
        pkt: Value,
    },
    /// An `OnNeighbor` send.
    Neighbor {
        /// Target channel.
        chan: String,
        /// Target overload index.
        overload: u32,
        /// The neighbor address.
        host: u32,
        /// The packet value.
        pkt: Value,
    },
    /// A local delivery.
    Deliver(Value),
}

/// A deterministic in-memory environment for tests and benchmarks.
#[derive(Debug)]
pub struct MockEnv {
    /// Node address reported by `thisHost`.
    pub host: u32,
    /// Value reported by `timeMs` (advance manually).
    pub now_ms: i64,
    /// Value reported by `linkLoad` for every destination.
    pub load: i64,
    /// Value reported by `linkCapacity` for every destination.
    pub capacity: i64,
    /// Value reported by `queueLen` for every destination.
    pub queue: i64,
    /// Recorded sends and deliveries, in order.
    pub effects: Vec<Effect>,
    /// Recorded print output (concatenated).
    pub output: String,
    /// Total VM steps charged via [`NetEnv::charge_steps`].
    pub steps: u64,
    /// Per-site step charges via [`NetEnv::charge_site`], in charge
    /// order (one entry per charged node — raw trail, not aggregated).
    pub site_steps: Vec<(u32, u64)>,
    /// Send sites announced via [`NetEnv::note_send_site`], in order.
    pub send_sites: Vec<(SendKind, Option<String>)>,
    /// Timers requested via [`NetEnv::set_timer`], as `(delay_ms, key)`.
    pub timers: Vec<(i64, i64)>,
    /// Table mutations noted via [`NetEnv::note_table_write`], as
    /// `(inserted, entries_after)`.
    pub table_writes: Vec<(i64, u64)>,
    rng_state: u64,
}

impl MockEnv {
    /// A mock node at `host` with quiet links.
    pub fn new(host: u32) -> Self {
        MockEnv {
            host,
            now_ms: 0,
            load: 0,
            capacity: 10_000,
            queue: 0,
            effects: Vec::new(),
            output: String::new(),
            steps: 0,
            site_steps: Vec::new(),
            send_sites: Vec::new(),
            timers: Vec::new(),
            table_writes: Vec::new(),
            rng_state: 0x9E3779B97F4A7C15,
        }
    }

    /// Number of recorded `OnRemote` effects.
    pub fn remote_count(&self) -> usize {
        self.effects
            .iter()
            .filter(|e| matches!(e, Effect::Remote { .. }))
            .count()
    }

    /// Number of `tblSet` mutations that created a new key.
    pub fn insert_count(&self) -> u64 {
        self.table_writes.iter().filter(|(i, _)| *i > 0).count() as u64
    }

    /// The recorded site charges aggregated per site (site → total
    /// steps), for order-insensitive profile comparisons.
    pub fn site_profile(&self) -> std::collections::BTreeMap<u32, u64> {
        let mut out = std::collections::BTreeMap::new();
        for &(site, n) in &self.site_steps {
            *out.entry(site).or_insert(0) += n;
        }
        out
    }

    /// Number of recorded deliveries.
    pub fn deliver_count(&self) -> usize {
        self.effects
            .iter()
            .filter(|e| matches!(e, Effect::Deliver(_)))
            .count()
    }
}

impl NetEnv for MockEnv {
    fn this_host(&self) -> u32 {
        self.host
    }

    fn time_ms(&mut self) -> i64 {
        self.now_ms
    }

    fn link_load(&mut self, _dst: u32) -> i64 {
        self.load
    }

    fn link_capacity(&mut self, _dst: u32) -> i64 {
        self.capacity
    }

    fn queue_len(&mut self, _dst: u32) -> i64 {
        self.queue
    }

    fn rand_int(&mut self, bound: i64) -> i64 {
        if bound <= 0 {
            return 0;
        }
        // SplitMix64 — deterministic and independent of external crates.
        self.rng_state = self.rng_state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.rng_state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        (z % bound as u64) as i64
    }

    fn send_remote(&mut self, chan: &str, overload: u32, pkt: Value) {
        self.effects.push(Effect::Remote {
            chan: chan.to_string(),
            overload,
            pkt,
        });
    }

    fn send_neighbor(&mut self, chan: &str, overload: u32, host: u32, pkt: Value) {
        self.effects.push(Effect::Neighbor {
            chan: chan.to_string(),
            overload,
            host,
            pkt,
        });
    }

    fn deliver(&mut self, pkt: Value) {
        self.effects.push(Effect::Deliver(pkt));
    }

    fn print(&mut self, text: &str) {
        self.output.push_str(text);
    }

    fn charge_steps(&mut self, n: u64) {
        self.steps += n;
    }

    fn charge_site(&mut self, site: u32, n: u64) {
        self.site_steps.push((site, n));
    }

    fn note_send_site(&mut self, kind: SendKind, chan: Option<&str>) {
        self.send_sites.push((kind, chan.map(str::to_string)));
    }

    fn set_timer(&mut self, delay_ms: i64, key: i64) {
        self.timers.push((delay_ms, key));
    }

    fn note_table_write(&mut self, inserted: i64, entries: u64) {
        self.table_writes.push((inserted, entries));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mock_records_effects() {
        let mut env = MockEnv::new(7);
        env.send_remote("network", 0, Value::Unit);
        env.deliver(Value::Int(1));
        env.print("hi");
        assert_eq!(env.remote_count(), 1);
        assert_eq!(env.deliver_count(), 1);
        assert_eq!(env.output, "hi");
        assert_eq!(env.this_host(), 7);
    }

    #[test]
    fn rand_int_is_deterministic_and_bounded() {
        let mut a = MockEnv::new(0);
        let mut b = MockEnv::new(0);
        for _ in 0..100 {
            let x = a.rand_int(10);
            assert_eq!(x, b.rand_int(10));
            assert!((0..10).contains(&x));
        }
        assert_eq!(a.rand_int(0), 0);
        assert_eq!(a.rand_int(-5), 0);
    }
}
