//! Run-time values of PLAN-P programs.

use crate::pkthdr::{addr_to_string, IpHdr, TcpHdr, UdpHdr};
use bytes::Bytes;
use planp_lang::tast::ExnId;
use planp_lang::types::Type;
use std::cell::RefCell;
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::rc::Rc;

/// A PLAN-P run-time value.
///
/// Values are cheap to clone: compound values share their backing storage
/// (`Rc`/[`Bytes`]), matching the language's immutable data semantics.
/// The only mutable value is [`Value::Table`], which implements the
/// channel/protocol state tables.
#[derive(Debug, Clone)]
pub enum Value {
    /// `int`
    Int(i64),
    /// `bool`
    Bool(bool),
    /// `char`
    Char(char),
    /// `unit`
    Unit,
    /// `host`
    Host(u32),
    /// `string`
    Str(Rc<str>),
    /// `blob`
    Blob(Bytes),
    /// Product value.
    Tuple(Rc<[Value]>),
    /// List value.
    List(Rc<Vec<Value>>),
    /// Mutable hash table (state).
    Table(TableRef),
    /// `ip` header.
    Ip(IpHdr),
    /// `tcp` header.
    Tcp(TcpHdr),
    /// `udp` header.
    Udp(UdpHdr),
}

impl PartialEq for Value {
    /// Structural equality where the language defines it; headers compare
    /// by fields and tables by identity (sharing), mirroring run-time
    /// behavior closely enough for assertions and collections.
    fn eq(&self, other: &Self) -> bool {
        use Value::*;
        match (self, other) {
            (Table(a), Table(b)) => Rc::ptr_eq(a, b),
            (Ip(a), Ip(b)) => a == b,
            (Tcp(a), Tcp(b)) => a == b,
            (Udp(a), Udp(b)) => a == b,
            (Tuple(a), Tuple(b)) => a == b,
            (List(a), List(b)) => a == b,
            _ => self.struct_eq(other).unwrap_or(false),
        }
    }
}

/// Shared, mutable hash table used for channel and protocol state.
pub type TableRef = Rc<RefCell<HashMap<Key, Value>>>;

/// Creates an empty state table.
pub fn new_table(capacity: usize) -> TableRef {
    Rc::new(RefCell::new(HashMap::with_capacity(capacity)))
}

impl Value {
    /// Builds a string value.
    pub fn str(s: &str) -> Value {
        Value::Str(s.into())
    }

    /// Builds a tuple value.
    pub fn tuple(items: Vec<Value>) -> Value {
        Value::Tuple(items.into())
    }

    /// The canonical default value of a defaultable type, used to
    /// initialize states without `initstate`/`proto` declarations.
    ///
    /// # Panics
    ///
    /// Panics on non-defaultable types (`ip`, `tcp`, `udp`), which the
    /// type checker excludes.
    pub fn default_of(ty: &Type) -> Value {
        match ty {
            Type::Int => Value::Int(0),
            Type::Bool => Value::Bool(false),
            Type::Str => Value::str(""),
            Type::Char => Value::Char('\0'),
            Type::Unit => Value::Unit,
            Type::Host => Value::Host(0),
            Type::Blob => Value::Blob(Bytes::new()),
            Type::Tuple(parts) => Value::tuple(parts.iter().map(Value::default_of).collect()),
            Type::List(_) => Value::List(Rc::new(Vec::new())),
            Type::Table(..) => Value::Table(new_table(16)),
            Type::Ip | Type::Tcp | Type::Udp => {
                panic!("type {ty} has no default value (checked by the front end)")
            }
        }
    }

    /// Structural equality for equality types. Headers and tables are not
    /// equality types; comparing them is a [`VmError::Trap`] at the call
    /// sites that can observe it (the type checker rules it out).
    pub fn struct_eq(&self, other: &Value) -> Option<bool> {
        use Value::*;
        match (self, other) {
            (Int(a), Int(b)) => Some(a == b),
            (Bool(a), Bool(b)) => Some(a == b),
            (Char(a), Char(b)) => Some(a == b),
            (Unit, Unit) => Some(true),
            (Host(a), Host(b)) => Some(a == b),
            (Str(a), Str(b)) => Some(a == b),
            (Blob(a), Blob(b)) => Some(a == b),
            (Tuple(a), Tuple(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.struct_eq(y) {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Some(true)
            }
            (List(a), List(b)) => {
                if a.len() != b.len() {
                    return Some(false);
                }
                for (x, y) in a.iter().zip(b.iter()) {
                    match x.struct_eq(y) {
                        Some(true) => {}
                        other => return other,
                    }
                }
                Some(true)
            }
            _ => None,
        }
    }

    /// Renders the value the way `print` does.
    pub fn display(&self) -> String {
        match self {
            Value::Int(n) => n.to_string(),
            Value::Bool(b) => b.to_string(),
            Value::Char(c) => c.to_string(),
            Value::Unit => "()".to_string(),
            Value::Host(a) => addr_to_string(*a),
            Value::Str(s) => s.to_string(),
            Value::Blob(b) => format!("<blob:{} bytes>", b.len()),
            Value::Tuple(items) => {
                let parts: Vec<String> = items.iter().map(Value::display).collect();
                format!("({})", parts.join(", "))
            }
            Value::List(items) => {
                let parts: Vec<String> = items.iter().map(Value::display).collect();
                format!("[{}]", parts.join(", "))
            }
            Value::Table(t) => format!("<table:{} entries>", t.borrow().len()),
            Value::Ip(h) => format!(
                "<ip {} -> {} ttl={}>",
                addr_to_string(h.src),
                addr_to_string(h.dst),
                h.ttl
            ),
            Value::Tcp(h) => format!("<tcp {}:{}>", h.sport, h.dport),
            Value::Udp(h) => format!("<udp {}:{}>", h.sport, h.dport),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.display())
    }
}

/// A table key: a value restricted (by the type checker) to equality
/// types, wrapped so it can implement `Hash`/`Eq`.
#[derive(Debug, Clone)]
pub struct Key(pub Value);

impl PartialEq for Key {
    fn eq(&self, other: &Self) -> bool {
        self.0.struct_eq(&other.0).unwrap_or(false)
    }
}

impl Eq for Key {}

impl Hash for Key {
    fn hash<H: Hasher>(&self, state: &mut H) {
        hash_value(&self.0, state);
    }
}

fn hash_value<H: Hasher>(v: &Value, state: &mut H) {
    use Value::*;
    match v {
        Int(n) => {
            0u8.hash(state);
            n.hash(state);
        }
        Bool(b) => {
            1u8.hash(state);
            b.hash(state);
        }
        Char(c) => {
            2u8.hash(state);
            c.hash(state);
        }
        Unit => 3u8.hash(state),
        Host(a) => {
            4u8.hash(state);
            a.hash(state);
        }
        Str(s) => {
            5u8.hash(state);
            s.hash(state);
        }
        Blob(b) => {
            6u8.hash(state);
            b.hash(state);
        }
        Tuple(items) => {
            7u8.hash(state);
            items.len().hash(state);
            for i in items.iter() {
                hash_value(i, state);
            }
        }
        List(items) => {
            8u8.hash(state);
            items.len().hash(state);
            for i in items.iter() {
                hash_value(i, state);
            }
        }
        // Not equality types; the checker prevents their use as keys.
        Table(_) | Ip(_) | Tcp(_) | Udp(_) => 9u8.hash(state),
    }
}

/// Errors produced while evaluating PLAN-P code.
#[derive(Debug, Clone, PartialEq)]
pub enum VmError {
    /// A PLAN-P exception (catchable by `handle`).
    Exn(ExnId),
    /// An internal invariant violation — unreachable for programs that
    /// passed the type checker; surfaced rather than panicking so a
    /// router never crashes on a hostile program.
    Trap(String),
}

impl VmError {
    /// Constructs a trap.
    pub fn trap(msg: impl Into<String>) -> Self {
        VmError::Trap(msg.into())
    }
}

impl fmt::Display for VmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VmError::Exn(id) => write!(f, "uncaught exception #{}", id.0),
            VmError::Trap(m) => write!(f, "vm trap: {m}"),
        }
    }
}

impl std::error::Error for VmError {}

/// [`ExnId`]s of the predeclared exceptions, fixed by their position in
/// [`planp_lang::prims::PREDECLARED_EXNS`].
pub mod exn {
    use planp_lang::tast::ExnId;

    /// `NotFound` — table lookup miss.
    pub const NOT_FOUND: ExnId = ExnId(0);
    /// `OutOfRange` — index/bounds failures.
    pub const OUT_OF_RANGE: ExnId = ExnId(1);
    /// `Format` — string/number conversion failures.
    pub const FORMAT: ExnId = ExnId(2);
    /// `Div` — division by zero.
    pub const DIV: ExnId = ExnId(3);
    /// `Empty` — empty-collection access.
    pub const EMPTY: ExnId = ExnId(4);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predeclared_exn_ids_match_lang_table() {
        use planp_lang::prims::PREDECLARED_EXNS;
        assert_eq!(PREDECLARED_EXNS[exn::NOT_FOUND.0 as usize], "NotFound");
        assert_eq!(PREDECLARED_EXNS[exn::OUT_OF_RANGE.0 as usize], "OutOfRange");
        assert_eq!(PREDECLARED_EXNS[exn::FORMAT.0 as usize], "Format");
        assert_eq!(PREDECLARED_EXNS[exn::DIV.0 as usize], "Div");
        assert_eq!(PREDECLARED_EXNS[exn::EMPTY.0 as usize], "Empty");
    }

    #[test]
    fn default_values() {
        assert!(matches!(Value::default_of(&Type::Int), Value::Int(0)));
        let t = Type::Tuple(vec![Type::Int, Type::Bool]);
        let Value::Tuple(items) = Value::default_of(&t) else {
            panic!()
        };
        assert_eq!(items.len(), 2);
        assert!(matches!(
            Value::default_of(&Type::Table(Box::new(Type::Int), Box::new(Type::Int))),
            Value::Table(_)
        ));
    }

    #[test]
    #[should_panic(expected = "no default value")]
    fn default_of_header_panics() {
        let _ = Value::default_of(&Type::Ip);
    }

    #[test]
    fn struct_eq_on_equality_types() {
        assert_eq!(
            Value::tuple(vec![Value::Int(1), Value::str("a")])
                .struct_eq(&Value::tuple(vec![Value::Int(1), Value::str("a")])),
            Some(true)
        );
        assert_eq!(Value::Int(1).struct_eq(&Value::Int(2)), Some(false));
        assert_eq!(
            Value::Ip(IpHdr::new(0, 0, 6)).struct_eq(&Value::Ip(IpHdr::new(0, 0, 6))),
            None
        );
    }

    #[test]
    #[allow(clippy::mutable_key_type)] // keys are equality types; tables never nest as keys
    fn keys_hash_and_compare_structurally() {
        let mut map: HashMap<Key, i32> = HashMap::new();
        let k1 = Key(Value::tuple(vec![Value::Host(7), Value::Int(80)]));
        let k2 = Key(Value::tuple(vec![Value::Host(7), Value::Int(80)]));
        map.insert(k1, 1);
        assert_eq!(map.get(&k2), Some(&1));
        let k3 = Key(Value::tuple(vec![Value::Host(8), Value::Int(80)]));
        assert_eq!(map.get(&k3), None);
    }

    #[test]
    fn display_formats() {
        assert_eq!(
            Value::Host(crate::pkthdr::addr(10, 0, 0, 1)).display(),
            "10.0.0.1"
        );
        assert_eq!(
            Value::tuple(vec![Value::Int(1), Value::Bool(true)]).display(),
            "(1, true)"
        );
        assert_eq!(Value::List(Rc::new(vec![Value::Int(1)])).display(), "[1]");
    }
}
