//! The paper's performance claims (§1, §2.4 and [36]): a JIT-compiled
//! ASP processes packets as fast as the equivalent built-in C code,
//! and far faster than the portable interpreter.
//!
//! Three engines run the same two packet-processing workloads:
//!
//! * the audio-degradation router on a full-quality audio frame;
//! * the HTTP load-balancing gateway on a port-80 TCP segment.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use netsim::packet::{addr, IpHdr, TcpHdr, UdpHdr};
use planp_analysis::Policy;
use planp_apps::audio::AUDIO_ROUTER_ASP;
use planp_apps::http::HTTP_GATEWAY_ASP;
use planp_runtime::load;
use planp_vm::interp::Interp;
use planp_vm::{audio, MockEnv, Value};
use std::hint::black_box;

fn audio_packet() -> Value {
    let mut payload = vec![0u8]; // format: 16-bit stereo
    payload.extend_from_slice(&5i64.to_be_bytes());
    payload.extend_from_slice(&vec![0x11u8; 1100]);
    Value::tuple(vec![
        Value::Ip(IpHdr::new(
            addr(10, 0, 0, 1),
            addr(224, 1, 2, 3),
            IpHdr::PROTO_UDP,
        )),
        Value::Udp(UdpHdr::new(7777, 7777)),
        Value::Blob(Bytes::from(payload)),
    ])
}

fn http_packet() -> Value {
    Value::tuple(vec![
        Value::Ip(IpHdr::new(
            addr(10, 0, 1, 10),
            addr(10, 9, 9, 9),
            IpHdr::PROTO_TCP,
        )),
        Value::Tcp(TcpHdr::data(12345, 80, 7)),
        Value::Blob(Bytes::from_static(b"GET /doc/1\n")),
    ])
}

/// The native ("built-in C") audio degradation, equivalent to the ASP
/// body under high load.
fn native_audio(pkt: &Value, env: &mut MockEnv) -> Value {
    let Value::Tuple(parts) = pkt else {
        unreachable!()
    };
    let Value::Blob(body) = &parts[2] else {
        unreachable!()
    };
    let util = env.load * 100 / (env.capacity + 1);
    if util > 80 && body.len() > 9 && body[0] == 0 {
        let pcm = audio::pcm16_to_8(&audio::stereo_to_mono(&body[9..]));
        let mut out = Vec::with_capacity(9 + pcm.len());
        out.push(2u8);
        out.extend_from_slice(&body[1..9]);
        out.extend_from_slice(&pcm);
        Value::tuple(vec![
            parts[0].clone(),
            parts[1].clone(),
            Value::Blob(Bytes::from(out)),
        ])
    } else {
        pkt.clone()
    }
}

fn bench_engines(c: &mut Criterion) {
    // --- audio router -------------------------------------------------
    let lp = load(AUDIO_ROUTER_ASP, Policy::strict()).expect("audio ASP");
    let mut env = MockEnv::new(addr(10, 0, 0, 254));
    env.load = 9500;
    env.capacity = 10_000;
    let globals = lp.compiled.eval_globals(&mut env).expect("globals");
    let pkt = audio_packet();

    let mut group = c.benchmark_group("audio_router");
    group.bench_function("jit", |b| {
        b.iter(|| {
            env.effects.clear();
            let r = lp
                .compiled
                .run_channel(
                    0,
                    &globals,
                    Value::Int(0),
                    Value::Unit,
                    black_box(pkt.clone()),
                    &mut env,
                )
                .expect("runs");
            black_box(r)
        })
    });
    let interp = Interp::new(&lp.prog);
    group.bench_function("interp", |b| {
        b.iter(|| {
            env.effects.clear();
            let r = interp
                .run_channel(
                    0,
                    &globals,
                    Value::Int(0),
                    Value::Unit,
                    black_box(pkt.clone()),
                    &mut env,
                )
                .expect("runs");
            black_box(r)
        })
    });
    group.bench_function("native", |b| {
        b.iter(|| black_box(native_audio(black_box(&pkt), &mut env)))
    });
    group.finish();

    // --- HTTP gateway ----------------------------------------------------
    let lp = load(HTTP_GATEWAY_ASP, Policy::strict()).expect("gateway ASP");
    let mut env = MockEnv::new(addr(10, 0, 1, 254));
    let globals = lp.compiled.eval_globals(&mut env).expect("globals");
    // Channel 1 is `network` (0 is `relay`).
    let net_idx = lp
        .prog
        .channels
        .iter()
        .position(|ch| ch.name == "network")
        .expect("network channel");
    let ss0 = lp
        .compiled
        .init_channel_state(net_idx, &globals, &mut env)
        .expect("state");
    let pkt = http_packet();

    let mut group = c.benchmark_group("http_gateway");
    group.bench_function("jit", |b| {
        b.iter(|| {
            env.effects.clear();
            let r = lp
                .compiled
                .run_channel(
                    net_idx,
                    &globals,
                    Value::Int(0),
                    ss0.clone(),
                    black_box(pkt.clone()),
                    &mut env,
                )
                .expect("runs");
            black_box(r)
        })
    });
    let interp = Interp::new(&lp.prog);
    group.bench_function("interp", |b| {
        b.iter(|| {
            env.effects.clear();
            let r = interp
                .run_channel(
                    net_idx,
                    &globals,
                    Value::Int(0),
                    ss0.clone(),
                    black_box(pkt.clone()),
                    &mut env,
                )
                .expect("runs");
            black_box(r)
        })
    });
    // Native: hash-map lookup + header rewrite.
    let mut table: std::collections::HashMap<(u32, u16), u32> = std::collections::HashMap::new();
    group.bench_function("native", |b| {
        b.iter(|| {
            let Value::Tuple(parts) = black_box(&pkt) else {
                unreachable!()
            };
            let (Value::Ip(ip), Value::Tcp(tcp)) = (&parts[0], &parts[1]) else {
                unreachable!()
            };
            let chosen = *table
                .entry((ip.src, tcp.sport))
                .or_insert(netsim::packet::addr(10, 0, 2, 1));
            let mut ip2 = *ip;
            ip2.dst = chosen;
            black_box(Value::tuple(vec![
                Value::Ip(ip2),
                parts[1].clone(),
                parts[2].clone(),
            ]))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(50)
        .warm_up_time(std::time::Duration::from_secs(5));
    targets = bench_engines
}
criterion_main!(benches);
