//! Figure 3: code generation time for the paper's five PLAN-P programs.
//!
//! The paper measures the Tempo-generated run-time specializer
//! assembling machine-code templates on a 1998 SPARC (6–34 ms). We
//! measure our closure-threading JIT on the equivalent five programs;
//! absolute numbers are microseconds on modern hardware, and the shape
//! to check is that generation time scales with program size in the
//! same order as the paper's table.

use criterion::{criterion_group, criterion_main, Criterion};
use planp_bench::paper_programs;
use planp_lang::compile_front;
use planp_vm::jit;
use std::hint::black_box;
use std::rc::Rc;

fn bench_codegen(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig3_codegen");
    for (name, src, _policy) in paper_programs() {
        let prog = Rc::new(compile_front(src).expect("front end"));
        group.bench_function(name, |b| {
            b.iter(|| {
                let (compiled, stats) = jit::compile(black_box(prog.clone()));
                black_box((compiled.channels.len(), stats.nodes))
            })
        });
    }
    // The full download path (parse + check + verify + compile), for
    // context: this is what a router actually does on program arrival.
    for (name, src, policy) in paper_programs() {
        group.bench_function(format!("full_download/{name}"), |b| {
            b.iter(|| {
                let lp = planp_runtime::load(black_box(src), policy).expect("loads");
                black_box(lp.lines)
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_codegen
}
criterion_main!(benches);
