//! Regenerates the **section 3.3** result: the point-to-point MPEG
//! server turned multipoint — server egress stays at one stream while
//! the number of viewers grows, and every viewer still receives the
//! video.
//!
//! ```text
//! cargo run --release -p planp-bench --bin mpeg_sharing_table
//! ```

use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

fn main() {
    let opts = BenchOpts::from_args();
    println!("Section 3.3 — multipoint MPEG delivery from a point-to-point server\n");

    let mut rows = Vec::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    let mut last_asp_metrics = MetricsSnapshot::default();
    for clients in 1..=4usize {
        for use_asps in [false, true] {
            let (r, _telemetry, metrics) =
                run_mpeg_traced(&MpegConfig::new(clients, use_asps), TraceConfig::default());
            let mode = if use_asps { "asps" } else { "direct" };
            scalars.push((format!("{mode}_{clients}_streams"), r.server.streams as f64));
            scalars.push((
                format!("{mode}_{clients}_uplink_mb"),
                r.uplink_bytes as f64 / 1e6,
            ));
            if use_asps {
                last_asp_metrics = metrics;
            }
            let min_frames = r.clients.iter().map(|c| c.frames).min().unwrap_or(0);
            let shared = r.clients.iter().filter(|c| c.shared).count();
            rows.push(vec![
                clients.to_string(),
                if use_asps { "ASPs" } else { "direct" }.to_string(),
                r.server.streams.to_string(),
                format!("{:.1}", r.server.video_bytes as f64 / 1e6),
                format!("{:.1}", r.uplink_bytes as f64 / 1e6),
                min_frames.to_string(),
                shared.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        render_table(
            &[
                "viewers",
                "mode",
                "server streams",
                "video MB sent",
                "uplink MB",
                "min frames/viewer",
                "viewers sharing",
            ],
            &rows
        )
    );
    println!("expected shape: with ASPs the server always opens exactly 1 stream and its");
    println!("egress is flat in the number of viewers; direct mode scales linearly.");

    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(opts, "mpeg_sharing_table", &scalar_refs, &last_asp_metrics);
}
