//! Regenerates the paper's **figure 3**: code generation time for the
//! five PLAN-P programs, side by side with the paper's 1998 numbers.
//!
//! ```text
//! cargo run --release -p planp-bench --bin fig3_codegen_table
//! ```

use planp_bench::{
    emit_bench, paper_programs, render_analysis_report, render_table, BenchOpts, PAPER_FIG3,
};
use planp_lang::{compile_front, count_lines};
use planp_telemetry::MetricsSnapshot;
use planp_vm::jit;
use std::rc::Rc;
use std::time::Instant;

fn median(mut samples: Vec<f64>) -> f64 {
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("Figure 3 — code generation time for PLAN-P programs");
    println!("(paper: Tempo template assembly on a 1998 SPARC; ours: closure-threading JIT)\n");

    let mut rows = Vec::new();
    let mut ours = Vec::new();
    let mut analyses = Vec::new();
    for (i, (name, src, policy)) in paper_programs().into_iter().enumerate() {
        let prog = Rc::new(compile_front(src).expect("front end"));
        // Median of repeated compilations.
        let codegen_us = median(
            (0..51)
                .map(|_| {
                    let t = Instant::now();
                    let (compiled, _stats) = jit::compile(prog.clone());
                    let dt = t.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(compiled.channels.len());
                    dt
                })
                .collect(),
        );
        // The verifier the paper designed but had not implemented: its
        // cost is part of the download path, so report it alongside.
        let verify_us = median(
            (0..51)
                .map(|_| {
                    let t = Instant::now();
                    let report =
                        planp_analysis::verify(&prog, planp_analysis::Policy::authenticated());
                    let dt = t.elapsed().as_secs_f64() * 1e6;
                    std::hint::black_box(report.termination.is_proved());
                    dt
                })
                .collect(),
        );
        if opts.report {
            analyses.push(render_analysis_report(
                name,
                &planp_analysis::verify(&prog, policy.with_exhaustive_check()),
            ));
        }
        let (_, paper_lines, paper_ms) = PAPER_FIG3[i];
        let lines = count_lines(src);
        ours.push((lines as f64, codegen_us));
        rows.push(vec![
            name.to_string(),
            lines.to_string(),
            format!("{codegen_us:.1}"),
            format!("{verify_us:.1}"),
            paper_lines.to_string(),
            format!("{paper_ms:.1}"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "program",
                "lines",
                "codegen (us)",
                "verify (us)",
                "paper lines",
                "paper codegen (ms)"
            ],
            &rows
        )
    );

    // Shape check: generation time should grow with program size, as in
    // the paper (the correlation of lines vs time should be positive).
    let n = ours.len() as f64;
    let (sx, sy): (f64, f64) = ours
        .iter()
        .fold((0.0, 0.0), |a, &(x, y)| (a.0 + x, a.1 + y));
    let (mx, my) = (sx / n, sy / n);
    let cov: f64 = ours.iter().map(|&(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = ours.iter().map(|&(x, _)| (x - mx) * (x - mx)).sum();
    let vy: f64 = ours.iter().map(|&(_, y)| (y - my) * (y - my)).sum();
    let corr = cov / (vx.sqrt() * vy.sqrt());
    println!("lines-vs-time correlation: {corr:.2} (paper's table implies strong positive)");

    for a in &analyses {
        print!("{a}");
    }

    // `--report` also sweeps the exhaustive model checker over every
    // bundled ASP, printing each one's verdicts and explored-state
    // counts (the paper's `r·d·2^d` made concrete per program).
    if opts.report {
        println!("--- exhaustive model check: bundled ASPs ---");
        for (name, src, policy) in planp_bench::bundled_asps() {
            let prog = compile_front(src).expect("bundled ASP compiles");
            let report = planp_analysis::verify(&prog, policy.with_exhaustive_check());
            let mc = report.exhaustive.as_ref().expect("exhaustive tier ran");
            println!(
                "{name}: termination {}, delivery {} ({} state(s), {} transition(s))",
                mc.termination.as_str(),
                mc.delivery.as_str(),
                mc.states,
                mc.transitions
            );
        }
    }

    // No simulator runs here — only wall-clock codegen scalars (which
    // vary by machine; the JSON is for trend tracking, not determinism).
    let scalars: Vec<(String, f64)> = paper_programs()
        .iter()
        .zip(&ours)
        .map(|((name, _, _), &(_lines, us))| {
            let key = name
                .to_lowercase()
                .replace(|c: char| !c.is_ascii_alphanumeric(), "_");
            (format!("{key}_codegen_us"), us)
        })
        .collect();
    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(
        opts,
        "fig3_codegen_table",
        &scalar_refs,
        &MetricsSnapshot::default(),
    );
}
