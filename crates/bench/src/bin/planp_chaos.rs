//! Chaos sweep: the three experiments of section 3 plus the relay
//! chain, run under seeded fault injection.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_chaos -- --json
//! ```
//!
//! Four stages, all derived from fixed seeds so two runs of this binary
//! produce byte-identical JSON (CI runs it twice and diffs):
//!
//! 1. **Relay loss sweep** — per-link Bernoulli loss 0–20% across the
//!    five-hop chain, reliable (NACK-repaired) vs fragile (verified but
//!    retransmission-free) relay programs.
//! 2. **Crash schedule** — the middle relay crashes mid-stream, loses
//!    its protocol state, and is re-verified + reinstalled on restart.
//! 3. **HTTP failover** — a backend server crashes under the failover
//!    gateway: requests drain to the fallback with zero drops at the
//!    corpse.
//! 4. **Audio / MPEG under loss** — the section 3 applications with
//!    impairments on their shared segment.
//!
//! Every stage also asserts the run's invariants (delivery thresholds,
//! the drop-accounting identity, the static duplicate-amplification
//! bound, recovery counts); a violated invariant aborts the binary.
//!
//! `--sample 1/N` turns on causal tracing with deterministic head
//! sampling across every stage (default: tracing off). Sampling never
//! perturbs the runs — the invariants hold at any rate.

use netsim::LinkFaults;
use planp_apps::audio::{run_audio, Adaptation, AudioConfig};
use planp_apps::chaos::{run_relay_chaos, RelayChaosConfig, RelayChaosResult, RelayKind};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig, HTTP_GATEWAY_FAILOVER_ASP};
use planp_apps::mpeg::{run_mpeg, MpegConfig};
use planp_bench::{emit_bench, render_table, sample_from_cli, BenchOpts, Cli};
use planp_telemetry::TraceConfig;

const HELP: &str = "planp-chaos: seeded fault-injection sweep over the section 3 apps

usage: planp_chaos [--json] [--report] [--sample 1/N]

  --json        write BENCH_planp_chaos.json
  --report      print the final metrics table
  --sample 1/N  head-sampled causal tracing (default off)
  -h, --help    this text
";

const CLI: Cli = Cli {
    bin: "planp-chaos",
    help: HELP,
    flags: &["--report"],
    value_flags: &["--sample"],
};

/// The invariants every relay run must satisfy, whatever its config.
fn check_common(label: &str, res: &RelayChaosResult) {
    assert!(
        res.drop_identity_holds(),
        "{label}: total_link_drops {} != congestion {} + fault {}",
        res.total_link_drops,
        res.sum_link_drops,
        res.sum_fault_drops
    );
    assert!(
        res.node_drop_identity_holds(),
        "{label}: total_node_drops {} != per-node policy + cpu + shed {}",
        res.total_node_drops,
        res.sum_node_drops
    );
    assert!(
        res.duplicates_within_bound(),
        "{label}: {} duplicates exceed {} dup events x send bound {}",
        res.duplicates,
        res.fault.duplicated,
        res.sends_bound
    );
    assert_eq!(res.recovery_failures, 0, "{label}: recovery failed");
    assert!(
        res.unique as f64 <= res.snapshot.counters["node.dst.delivered"] as f64,
        "{label}: collector saw more than the node delivered"
    );
}

fn main() {
    let args = CLI.parse_or_exit();
    if args.baseline.is_some() || args.write_baseline.is_some() {
        eprintln!("planp-chaos: no baseline gate; CI diffs two runs instead");
        std::process::exit(2);
    }
    let opts = BenchOpts::from_cli(&args);
    let sample_n = sample_from_cli("planp-chaos", &args);
    let trace = if sample_n > 1 {
        TraceConfig::sampled(sample_n)
    } else {
        TraceConfig::default()
    };
    let traced = |mut cfg: RelayChaosConfig| {
        cfg.trace = trace;
        cfg
    };
    let mut scalars: Vec<(String, f64)> = Vec::new();

    // --- 1. relay loss sweep -------------------------------------------
    println!("Relay chain under per-link Bernoulli loss (5 hops, seeded)");
    let mut rows = Vec::new();
    for loss in [0.0, 0.05, 0.10, 0.20] {
        let mut row = vec![format!("{:.0}%", loss * 100.0)];
        for kind in [RelayKind::Reliable, RelayKind::Fragile] {
            let res = run_relay_chaos(&traced(RelayChaosConfig::loss(kind, loss)));
            check_common(&format!("loss {loss} {}", kind.name()), &res);
            let pct = (loss * 100.0) as u64;
            scalars.push((
                format!("relay_{}_loss{pct}_delivery", kind.name()),
                res.delivery_ratio,
            ));
            scalars.push((
                format!("relay_{}_loss{pct}_retransmits", kind.name()),
                res.retransmits as f64,
            ));
            row.push(format!("{:.3}", res.delivery_ratio));
            row.push(res.retransmits.to_string());
            row.push(res.sum_fault_drops.to_string());
        }
        rows.push(row);
    }
    println!(
        "{}",
        render_table(
            &[
                "loss/link",
                "reliable",
                "nacks->src",
                "fault drops",
                "fragile",
                "nacks->src",
                "fault drops",
            ],
            &rows
        )
    );

    // The headline acceptance numbers.
    let reliable5 = scalars
        .iter()
        .find(|(k, _)| k == "relay_reliable_loss5_delivery")
        .map(|(_, v)| *v)
        .unwrap();
    let fragile10 = scalars
        .iter()
        .find(|(k, _)| k == "relay_fragile_loss10_delivery")
        .map(|(_, v)| *v)
        .unwrap();
    assert!(reliable5 >= 0.99, "reliable relay at 5% loss: {reliable5}");
    assert!(fragile10 < 0.7, "fragile relay at 10% loss: {fragile10}");
    println!("invariants: reliable@5% = {reliable5:.3} (>= 0.99), fragile@10% = {fragile10:.3} (< 0.7)\n");

    // Duplication: amplification stays under the static send bound.
    for kind in [RelayKind::Reliable, RelayKind::Fragile] {
        let mut cfg = RelayChaosConfig::new(
            kind,
            LinkFaults {
                loss: 0.02,
                duplicate: 0.05,
                ..LinkFaults::default()
            },
        );
        cfg.seed = 11;
        let res = run_relay_chaos(&traced(cfg));
        check_common(&format!("dup {}", kind.name()), &res);
        scalars.push((
            format!("relay_{}_dup_duplicates", kind.name()),
            res.duplicates as f64,
        ));
        scalars.push((
            format!("relay_{}_dup_injected", kind.name()),
            res.fault.duplicated as f64,
        ));
        println!(
            "duplication ({}): {} injected -> {} at the app (bound {} per event)",
            kind.name(),
            res.fault.duplicated,
            res.duplicates,
            res.sends_bound
        );
    }

    // --- 2. crash schedule ---------------------------------------------
    let mut cfg = RelayChaosConfig::loss(RelayKind::Reliable, 0.02);
    cfg.crash_relay = Some((0.25, 0.55));
    let crash = run_relay_chaos(&traced(cfg));
    check_common("crash", &crash);
    assert!(crash.redeploys >= 1, "crash run must redeploy");
    assert!(
        crash.delivery_ratio >= 0.99,
        "outage not repaired: {}",
        crash.delivery_ratio
    );
    println!(
        "\ncrash schedule: middle relay down 0.25-0.55 s; crashes={} state_lost={} redeploys={} delivery={:.3}",
        crash.crashes, crash.state_lost, crash.redeploys, crash.delivery_ratio
    );
    scalars.push(("crash_redeploys".into(), crash.redeploys as f64));
    scalars.push(("crash_state_lost".into(), crash.state_lost as f64));
    scalars.push(("crash_delivery".into(), crash.delivery_ratio));

    // --- 3. http failover ----------------------------------------------
    let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
    cfg.duration_s = 20;
    cfg.warmup_s = 4.0;
    cfg.gateway_src = Some(HTTP_GATEWAY_FAILOVER_ASP);
    cfg.crash_server1_at_s = Some(6.0);
    let (http, _t, snap) = run_http_traced(&cfg, trace);
    let corpse_drops = snap.counters["node.server1.dropped"];
    assert_eq!(corpse_drops, 0, "failover gateway leaked to dead backend");
    println!(
        "\nhttp failover: backend crashed at 6 s under the failover gateway; {:.0} req/s, {} drops at the corpse",
        http.req_per_sec, corpse_drops
    );
    scalars.push(("http_failover_req_per_sec".into(), http.req_per_sec));
    scalars.push(("http_failover_corpse_drops".into(), corpse_drops as f64));

    // --- 4. audio & mpeg under loss ------------------------------------
    let mut audio_cfg = AudioConfig::constant_load(Adaptation::AspJit, 1000, 20);
    let audio_clean = run_audio(&audio_cfg);
    audio_cfg.segment_faults = Some((1.0, LinkFaults::loss(0.10)));
    let audio_lossy = run_audio(&audio_cfg);
    assert!(audio_lossy.stats.gaps > audio_clean.stats.gaps);
    println!(
        "\naudio, 10% segment loss: gaps {} -> {}, frames {} -> {}",
        audio_clean.stats.gaps,
        audio_lossy.stats.gaps,
        audio_clean.stats.frames,
        audio_lossy.stats.frames
    );
    scalars.push(("audio_loss10_gaps".into(), audio_lossy.stats.gaps as f64));
    scalars.push(("audio_clean_gaps".into(), audio_clean.stats.gaps as f64));

    let mut mpeg_cfg = MpegConfig::new(3, true);
    mpeg_cfg.segment_faults = Some((1.0, LinkFaults::loss(0.05)));
    let mpeg = run_mpeg(&mpeg_cfg);
    let shared_frames: u64 = mpeg.clients.iter().map(|c| c.frames).sum();
    assert_eq!(mpeg.server.streams, 1, "sharing survives segment loss");
    println!(
        "mpeg, 5% segment loss: 1 server stream still feeds {} viewers ({} frames total)",
        mpeg.clients.len(),
        shared_frames
    );
    scalars.push(("mpeg_loss5_frames".into(), shared_frames as f64));
    scalars.push(("mpeg_loss5_streams".into(), mpeg.server.streams as f64));

    println!("\nall chaos invariants hold");
    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    // The crash run's snapshot is the richest: fault counters, recovery
    // metrics, per-node crash/state-loss counts.
    emit_bench(opts, "planp_chaos", &scalar_refs, &crash.snapshot);
}
