//! `planp-lint` — verify PLAN-P source files and report structured
//! diagnostics, per-channel cost bounds, and the accept/reject verdict.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_lint -- \
//!     --policy no-delivery --deny-warnings asps/*.planp
//! ```
//!
//! Options:
//!
//! * `--policy strict|no-delivery|authenticated` — download policy to
//!   verify against (default `no-delivery`, the weakest policy all
//!   bundled ASPs satisfy).
//! * `--max-steps N` — add a per-packet step budget to the policy;
//!   programs whose static worst-case bound exceeds it are rejected.
//! * `--exhaustive` — run the model-checking precision tier on top of
//!   the screening analyses ([`Policy::with_exhaustive_check`]).
//! * `--json` — machine form: one byte-stable JSON document on stdout.
//! * `--deny-warnings` — exit nonzero when any warning is reported
//!   (the CI gate).
//!
//! Exit status: 0 when every file is accepted (and warning-free under
//! `--deny-warnings`), 1 when any file is rejected or has denied
//! warnings, 2 on usage or I/O errors.

use planp_analysis::diag::push_json_str;
use planp_analysis::{verify, Policy, VerifyReport};

struct Args {
    policy: Policy,
    json: bool,
    deny_warnings: bool,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        policy: Policy::no_delivery(),
        json: false,
        deny_warnings: false,
        files: Vec::new(),
    };
    let mut max_steps: Option<u64> = None;
    let mut exhaustive = false;
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--policy" => {
                let v = value(&argv, i, "--policy")?;
                args.policy = match v.as_str() {
                    "strict" => Policy::strict(),
                    "no-delivery" => Policy::no_delivery(),
                    "authenticated" => Policy::authenticated(),
                    other => return Err(format!("unknown policy {other:?}")),
                };
                i += 1;
            }
            "--max-steps" => {
                let v = value(&argv, i, "--max-steps")?;
                max_steps = Some(v.parse().map_err(|_| format!("bad step budget {v:?}"))?);
                i += 1;
            }
            "--json" => args.json = true,
            "--deny-warnings" => args.deny_warnings = true,
            "--exhaustive" => exhaustive = true,
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?} (try --help)"));
            }
            file => args.files.push(file.to_string()),
        }
        i += 1;
    }
    if let Some(n) = max_steps {
        args.policy = args.policy.with_step_budget(n);
    }
    if exhaustive {
        args.policy = args.policy.with_exhaustive_check();
    }
    if args.files.is_empty() {
        return Err("no input files (try --help)".to_string());
    }
    Ok(args)
}

const HELP: &str = "\
planp-lint: verify PLAN-P files and report diagnostics and cost bounds
usage: planp_lint [options] <file.planp>...
  --policy strict|no-delivery|authenticated  download policy (default no-delivery)
  --max-steps N                              reject bounds over N steps/packet
  --exhaustive                               run the model-checking precision tier
  --json                                     byte-stable machine output
  --deny-warnings                            exit 1 when any warning fires
";

/// What linting one file produced.
struct FileResult {
    path: String,
    src: String,
    /// `Err` holds front-end errors (the file never reached the verifier).
    report: Result<VerifyReport, Vec<planp_lang::error::LangError>>,
}

impl FileResult {
    fn accepted(&self) -> bool {
        self.report.as_ref().map(|r| r.accepted()).unwrap_or(false)
    }

    fn warning_count(&self) -> usize {
        self.report
            .as_ref()
            .map(|r| r.warnings().count())
            .unwrap_or(0)
    }
}

fn lint_file(path: &str, policy: Policy) -> Result<FileResult, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let report = match planp_lang::compile_front(&src) {
        Ok(prog) => Ok(verify(&prog, policy)),
        Err(e) => Err(vec![e]),
    };
    Ok(FileResult {
        path: path.to_string(),
        src,
        report,
    })
}

fn print_human(r: &FileResult) {
    println!(
        "{}: {}",
        r.path,
        if r.accepted() { "ACCEPTED" } else { "REJECTED" }
    );
    match &r.report {
        Ok(report) => {
            for c in &report.cost.channels {
                println!("  channel {}#{}: {}", c.name, c.overload, c.bound);
            }
            for d in &report.diagnostics {
                for line in d.render(&r.src).lines() {
                    println!("  {line}");
                }
            }
        }
        Err(errs) => {
            for e in errs {
                println!("  {}", e.render(&r.src));
            }
        }
    }
}

fn write_json(results: &[FileResult], out: &mut String) {
    out.push_str("{\"files\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(out, &r.path);
        out.push_str(",\"report\":");
        match &r.report {
            Ok(report) => report.write_json(&r.src, out),
            Err(errs) => {
                // Front-end failures never reach the verifier; emit the
                // same shape with the errors as E000 diagnostics.
                out.push_str("{\"accepted\":false,\"channels\":[],\"diagnostics\":[");
                for (j, e) in errs.iter().enumerate() {
                    if j > 0 {
                        out.push(',');
                    }
                    planp_analysis::Diagnostic::error("E000", e.span, e.message.clone())
                        .write_json(&r.src, out);
                }
                out.push_str("]}");
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-lint: {e}");
            std::process::exit(2);
        }
    };
    let mut results = Vec::new();
    for path in &args.files {
        match lint_file(path, args.policy) {
            Ok(r) => results.push(r),
            Err(e) => {
                eprintln!("planp-lint: {e}");
                std::process::exit(2);
            }
        }
    }
    if args.json {
        let mut out = String::new();
        write_json(&results, &mut out);
        println!("{out}");
    } else {
        for r in &results {
            print_human(r);
        }
    }
    let rejected = results.iter().filter(|r| !r.accepted()).count();
    let warnings: usize = results.iter().map(|r| r.warning_count()).sum();
    eprintln!(
        "{} file(s), {} rejected, {} warning(s)",
        results.len(),
        rejected,
        warnings
    );
    if rejected > 0 || (args.deny_warnings && warnings > 0) {
        std::process::exit(1);
    }
}
