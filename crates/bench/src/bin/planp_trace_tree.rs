//! `planp-trace-tree` — replay a scenario with causal tracing on and
//! render its cross-node span trees, critical paths, and latency
//! summaries; optionally export Chrome `trace_event` JSON (loadable in
//! Perfetto / `chrome://tracing`) and Prometheus text exposition.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_trace_tree -- \
//!     --scenario audio --limit 3 --chrome-json audio.trace.json --prom audio.prom
//! ```
//!
//! Options:
//!
//! * `--scenario audio|http|mpeg` — which experiment to replay
//!   (default `audio`, a short constant-load run).
//! * `--seed N` — simulation seed (default: the scenario's default).
//! * `--duration N` — simulated seconds (default 20; mpeg always 22).
//! * `--sample 1/N` — deterministic head sampling: keep 1 of every N
//!   traces (default `1/1`). Kept traces still render complete trees.
//! * `--limit N` — print at most the first N span trees (default 10;
//!   `0` means all). The summary always covers every trace.
//! * `--chrome-json FILE` — write the full forest as Chrome
//!   `trace_event` JSON to FILE.
//! * `--prom FILE` — write the scenario's metrics snapshot as
//!   Prometheus text exposition to FILE.
//!
//! Same seed ⇒ byte-identical output and export files; CI re-runs each
//! scenario twice and diffs the artifacts.

use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::{
    chrome_trace, prometheus, Category, HistogramSummary, MetricsSnapshot, Telemetry, TraceConfig,
    TraceForest,
};

struct Args {
    scenario: String,
    seed: Option<u64>,
    duration_s: u64,
    sample_n: u32,
    limit: usize,
    chrome_json: Option<String>,
    prom: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "audio".to_string(),
        seed: None,
        duration_s: 20,
        sample_n: 1,
        limit: 10,
        chrome_json: None,
        prom: None,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--scenario" => {
                args.scenario = value(&argv, i, "--scenario")?;
                i += 1;
            }
            "--seed" => {
                let v = value(&argv, i, "--seed")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                i += 1;
            }
            "--duration" => {
                let v = value(&argv, i, "--duration")?;
                args.duration_s = v.parse().map_err(|_| format!("bad duration {v:?}"))?;
                i += 1;
            }
            "--sample" => {
                args.sample_n = TraceConfig::parse_sample(&value(&argv, i, "--sample")?)?;
                i += 1;
            }
            "--limit" => {
                let v = value(&argv, i, "--limit")?;
                args.limit = v.parse().map_err(|_| format!("bad limit {v:?}"))?;
                i += 1;
            }
            "--chrome-json" => {
                args.chrome_json = Some(value(&argv, i, "--chrome-json")?);
                i += 1;
            }
            "--prom" => {
                args.prom = Some(value(&argv, i, "--prom")?);
                i += 1;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "\
planp-trace-tree: replay a scenario and render its causal span trees
  --scenario audio|http|mpeg   experiment to replay (default audio)
  --seed N                     simulation seed
  --duration N                 simulated seconds (default 20)
  --sample 1/N                 keep 1 of every N traces (whole lineages)
  --limit N                    span trees to print (default 10, 0 = all)
  --chrome-json FILE           write Chrome trace_event JSON (Perfetto)
  --prom FILE                  write Prometheus text exposition
";

fn replay(args: &Args) -> Result<(Telemetry, MetricsSnapshot), String> {
    let trace = TraceConfig {
        categories: Category::ALL,
        sample_n: args.sample_n,
        ..TraceConfig::default()
    };
    match args.scenario.as_str() {
        "audio" => {
            let mut cfg = AudioConfig::constant_load(Adaptation::AspJit, 9450, args.duration_s);
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_audio_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        "http" => {
            let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
            cfg.duration_s = args.duration_s;
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_http_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        "mpeg" => {
            let mut cfg = MpegConfig::new(3, true);
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_mpeg_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        other => Err(format!("unknown scenario {other:?} (audio, http, mpeg)")),
    }
}

fn ms(ns: u64) -> String {
    format!("{}.{:03}", ns / 1_000_000, (ns % 1_000_000) / 1_000)
}

fn latency_line(label: &str, s: &HistogramSummary) -> String {
    format!(
        "{label}: count {} p50 {} ms p90 {} ms p99 {} ms p999 {} ms max {} ms",
        s.count,
        ms(s.p50),
        ms(s.p90),
        ms(s.p99),
        ms(s.p999),
        ms(s.max),
    )
}

/// The forest-wide summary: trace counts, latency distributions,
/// fan-out, and the slowest trace's critical path hop by hop.
fn print_summary(forest: &TraceForest, nodes: &[String]) {
    let spans = forest.spans().count();
    println!(
        "{} trace(s), {} span(s), {} orphan(s)",
        forest.roots().len(),
        spans,
        forest.orphans().len()
    );
    println!(
        "{}",
        latency_line("end-to-end", &forest.end_to_end().summary())
    );
    println!(
        "{}",
        latency_line("per-hop   ", &forest.hop_latency().summary())
    );
    let fan = forest.fanout().summary();
    println!(
        "fan-out   : p50 {} p99 {} max {}",
        fan.p50, fan.p99, fan.max
    );

    // Critical path of the slowest trace — the chain an operator
    // should look at first.
    let slowest = forest.roots().iter().copied().max_by_key(|&r| {
        let start = forest.span(r).map(|s| s.start_ns).unwrap_or(0);
        (
            forest.subtree_end(r).saturating_sub(start),
            std::cmp::Reverse(r),
        )
    });
    let Some(root) = slowest else { return };
    let start = forest.span(root).map(|s| s.start_ns).unwrap_or(0);
    println!(
        "critical path of slowest trace {root} ({} ms):",
        ms(forest.subtree_end(root).saturating_sub(start))
    );
    let name = |n: u32| -> String {
        nodes
            .get(n as usize)
            .cloned()
            .unwrap_or_else(|| format!("n{n}"))
    };
    for hop in forest.critical_path(root) {
        let chan = match &hop.chan {
            Some(c) => format!(" chan={c}"),
            None => String::new(),
        };
        println!(
            "  span {} @{} {}{} [{}..{} ms]",
            hop.span,
            name(hop.node),
            hop.origin.name(),
            chan,
            ms(hop.start_ns),
            ms(hop.end_ns),
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-trace-tree: {e}");
            std::process::exit(2);
        }
    };
    let (telemetry, metrics) = match replay(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planp-trace-tree: {e}");
            std::process::exit(2);
        }
    };

    let forest = TraceForest::from_log(&telemetry.trace);
    let rendered = forest.render(&telemetry.nodes);
    let mut printed = 0usize;
    for block in rendered.split("\n\n") {
        if args.limit != 0 && printed >= args.limit {
            break;
        }
        if block.trim().is_empty() {
            continue;
        }
        if printed > 0 {
            println!();
        }
        println!("{block}");
        printed += 1;
    }
    let total = forest.roots().len() + forest.orphans().len();
    if args.limit != 0 && total > printed {
        println!("... {} more trace(s) not shown (--limit)", total - printed);
    }
    println!();
    print_summary(&forest, &telemetry.nodes);
    if telemetry.trace.evicted() > 0 {
        eprintln!(
            "warning: {} event(s) evicted from the trace ring; trees may be partial",
            telemetry.trace.evicted()
        );
    }

    if let Some(path) = &args.chrome_json {
        let json = chrome_trace(&forest, &telemetry.nodes);
        if let Err(e) = std::fs::write(path, json) {
            eprintln!("planp-trace-tree: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }
    if let Some(path) = &args.prom {
        let text = prometheus(&metrics);
        if let Err(e) = std::fs::write(path, text) {
            eprintln!("planp-trace-tree: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    }
}
