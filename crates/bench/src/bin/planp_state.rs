//! `planp-state` — run the state-effect analysis over the checked-in
//! ASP corpus and the bundled deployment plans, render per-table
//! growth bounds, and gate CI on a verdict baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_state -- \
//!     --baseline asps/STATE_BASELINE.txt asps/*.planp asps/buggy/*.planp
//! ```
//!
//! Every ASP file named on the command line is compiled and summarized;
//! the bundled plans (`asps/plans/`) are always verified in addition.
//! Options:
//!
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--baseline FILE` — compare each verdict line against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline (sorted) instead.
//!
//! ASP lines read `<path> tables=<t> inserts=<i> bound=<n|unbounded>
//! verdict=<bounded|waived>` — `waived` marks corpus ASPs that ship
//! with packet-keyed, never-evicted tables and are accepted only
//! because their download policies do not demand bounded state. Plan
//! lines read `plan <name> nodes=<n> state=<entries|unbounded>
//! budget=<n|none> verdict=<within|exceeded|unchecked>`.
//!
//! Exit status: 0 on success, 1 on baseline mismatch, 2 on usage or
//! I/O errors.

use planp_analysis::diag::push_json_str;
use planp_analysis::summarize;
use planp_apps::plans::{bundled_plans, resolve_asp};
use planp_bench::{baseline_gate, Cli};
use planp_runtime::{load_plan, PlanImage};

const CLI: Cli = Cli {
    bin: "planp-state",
    help: HELP,
    flags: &[],
    value_flags: &[],
};

const HELP: &str = "\
planp-state: state-effect bounds for the ASP corpus and bundled plans
usage: planp_state [options] <file.planp>...
  (the bundled plans are always verified in addition to the files)
  --json                 byte-stable machine output
  --baseline FILE        fail if verdict lines differ from FILE
  --write-baseline FILE  regenerate FILE (sorted)
";

/// The state analysis of one ASP file.
struct AspResult {
    path: String,
    tables: usize,
    max_inserts: u64,
    /// `None` when some table's growth is unbounded.
    bound: Option<u64>,
}

impl AspResult {
    fn verdict_line(&self) -> String {
        match self.bound {
            Some(n) => format!(
                "{} tables={} inserts={} bound={} verdict=bounded",
                self.path, self.tables, self.max_inserts, n
            ),
            None => format!(
                "{} tables={} inserts={} bound=unbounded verdict=waived",
                self.path, self.tables, self.max_inserts
            ),
        }
    }
}

/// The plan-level state composition of one bundled plan.
struct PlanStateResult {
    name: &'static str,
    image: PlanImage,
}

impl PlanStateResult {
    /// Worst per-node composed entry bound (`None` = some node hosts
    /// an unbounded ASP; nodes without installs are not reported).
    fn worst(&self) -> Option<u64> {
        let ns = &self.image.report.node_state;
        if ns.iter().any(|n| n.entries.is_none()) {
            return None;
        }
        Some(ns.iter().filter_map(|n| n.entries).max().unwrap_or(0))
    }

    fn verdict_line(&self) -> String {
        let r = &self.image.report;
        let state = match self.worst() {
            Some(n) => n.to_string(),
            None => "unbounded".to_string(),
        };
        let budget = match r.policy.max_node_state_entries {
            Some(n) => n.to_string(),
            None => "none".to_string(),
        };
        let verdict = match r.policy.max_node_state_entries {
            None => "unchecked",
            Some(_) if r.diagnostics.iter().any(|d| d.code == "E010") => "exceeded",
            Some(_) => "within",
        };
        format!(
            "plan {} nodes={} state={state} budget={budget} verdict={verdict}",
            self.name,
            r.node_state.len()
        )
    }
}

/// Baseline text: one verdict line per ASP and per plan, sorted.
fn baseline_text(asps: &[AspResult], plans: &[PlanStateResult]) -> String {
    let mut lines: Vec<String> = asps.iter().map(AspResult::verdict_line).collect();
    lines.extend(plans.iter().map(PlanStateResult::verdict_line));
    lines.sort();
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

fn write_json(asps: &[AspResult], plans: &[PlanStateResult], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"asps\":[");
    for (i, a) in asps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(out, &a.path);
        let _ = write!(
            out,
            ",\"tables\":{},\"inserts\":{}",
            a.tables, a.max_inserts
        );
        match a.bound {
            Some(n) => {
                let _ = write!(out, ",\"bound\":{n}}}");
            }
            None => out.push_str(",\"bound\":null}"),
        }
    }
    out.push_str("],\"plans\":[");
    for (i, p) in plans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, p.name);
        out.push_str(",\"nodes\":[");
        for (j, ns) in p.image.report.node_state.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push_str("{\"node\":");
            push_json_str(out, &ns.node);
            match ns.entries {
                Some(e) => {
                    let _ = write!(out, ",\"entries\":{e}}}");
                }
                None => out.push_str(",\"entries\":null}"),
            }
        }
        out.push_str("]}");
    }
    out.push_str("]}");
}

fn analyze_asp(path: &str) -> Result<AspResult, String> {
    let src = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let prog =
        planp_lang::compile_front(&src).map_err(|e| format!("{path}: {}", e.render(&src)))?;
    let sum = summarize(&prog);
    Ok(AspResult {
        path: path.to_string(),
        tables: sum.state.tables.len(),
        max_inserts: sum.state.max_inserts(),
        bound: sum.state.entry_bound(),
    })
}

fn main() {
    let args = CLI.parse_or_exit();

    let mut asps = Vec::new();
    for path in &args.positionals {
        match analyze_asp(path) {
            Ok(a) => asps.push(a),
            Err(e) => {
                eprintln!("planp-state: {e}");
                std::process::exit(2);
            }
        }
    }

    let mut plans = Vec::new();
    for (name, src) in bundled_plans() {
        match load_plan(src, &resolve_asp) {
            Ok(image) => plans.push(PlanStateResult { name, image }),
            Err(e) => {
                eprintln!("planp-state: {name}: {e}");
                std::process::exit(2);
            }
        }
    }

    if args.json {
        let mut out = String::new();
        write_json(&asps, &plans, &mut out);
        println!("{out}");
    } else {
        for a in &asps {
            println!("{}", a.verdict_line());
        }
        for p in &plans {
            println!("{}", p.verdict_line());
        }
    }

    let failed = baseline_gate("planp-state", &args, &baseline_text(&asps, &plans));

    let unbounded = asps.iter().filter(|a| a.bound.is_none()).count();
    eprintln!(
        "{} ASP(s) ({} waived unbounded), {} plan(s)",
        asps.len(),
        unbounded,
        plans.len()
    );
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Vec<AspResult> {
        let root = std::path::PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../asps"));
        let mut out = Vec::new();
        for dir in [root.clone(), root.join("buggy")] {
            for entry in std::fs::read_dir(&dir).expect("asps dir") {
                let path = entry.unwrap().path();
                if path.extension().and_then(|e| e.to_str()) != Some("planp") {
                    continue;
                }
                let rel = format!("asps/{}", path.strip_prefix(&root).unwrap().display());
                let mut a = analyze_asp(path.to_str().unwrap()).expect("corpus ASP analyzes");
                a.path = rel;
                out.push(a);
            }
        }
        out
    }

    #[test]
    fn baseline_text_is_sorted_and_stable() {
        let mut asps = corpus();
        let mut plans: Vec<PlanStateResult> = bundled_plans()
            .into_iter()
            .map(|(name, src)| PlanStateResult {
                name,
                image: load_plan(src, &resolve_asp).expect("bundled plan loads"),
            })
            .collect();
        let sorted = baseline_text(&asps, &plans);
        asps.reverse();
        plans.reverse();
        assert_eq!(
            sorted,
            baseline_text(&asps, &plans),
            "baseline order must not depend on analysis order"
        );
        let keys: Vec<&str> = sorted.lines().collect();
        let mut expect = keys.clone();
        expect.sort_unstable();
        assert_eq!(keys, expect);
    }

    #[test]
    fn bounded_gateway_and_leak_pin_their_verdicts() {
        let asps = corpus();
        let find = |p: &str| {
            asps.iter()
                .find(|a| a.path == p)
                .unwrap_or_else(|| panic!("{p} in corpus"))
        };
        assert_eq!(find("asps/http_gateway_bounded.planp").bound, Some(256));
        assert_eq!(find("asps/http_gateway.planp").bound, None);
        assert_eq!(find("asps/buggy/state_leak.planp").bound, None);
        assert_eq!(find("asps/forwarder.planp").bound, Some(0));
    }
}
