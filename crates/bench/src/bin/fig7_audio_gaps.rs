//! Regenerates the paper's **figure 7**: the number of silent periods
//! in audio playback, with and without adaptation, across load levels.
//!
//! ```text
//! cargo run --release -p planp-bench --bin fig7_audio_gaps
//! ```

use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig, LoadPhase};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

fn run(adaptation: Adaptation, kbps: u64) -> (u64, u64, f64, MetricsSnapshot) {
    let cfg = AudioConfig {
        adaptation,
        phases: if kbps == 0 {
            vec![]
        } else {
            vec![LoadPhase {
                from_s: 5.0,
                to_s: 120.0,
                kbps,
            }]
        },
        jitter_pct: 4,
        duration_s: 120,
        seed: 7,
        router_src: None,
        dual_segment: false,
        segment_faults: None,
    };
    let (r, _telemetry, metrics) = run_audio_traced(&cfg, TraceConfig::default());
    (
        r.stats.gaps,
        r.segment_drops,
        r.avg_kbps(10.0, 120.0),
        metrics,
    )
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("Figure 7 — silent periods during 120 s of playback");
    println!("(paper: adaptation greatly reduces gaps under load)\n");

    // Load levels paralleling the paper's configurations. The \"large\"
    // level oversubscribes the segment once full-quality audio is added,
    // which is the regime where adaptation pays off.
    let levels = [
        ("no load", 0u64),
        ("small load", 6200),
        ("medium load", 7750),
        ("large load", 9560),
    ];

    let mut rows = Vec::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    let mut large_load_metrics = MetricsSnapshot::default();
    for (name, kbps) in levels {
        let (gaps_on, drops_on, bw_on, metrics) = run(Adaptation::AspJit, kbps);
        let (gaps_native, _, _, _) = run(Adaptation::Native, kbps);
        let (gaps_off, drops_off, bw_off, _) = run(Adaptation::Off, kbps);
        let key = name.replace(' ', "_");
        scalars.push((format!("{key}_gaps_asp"), gaps_on as f64));
        scalars.push((format!("{key}_gaps_native"), gaps_native as f64));
        scalars.push((format!("{key}_gaps_off"), gaps_off as f64));
        if kbps == 9560 {
            large_load_metrics = metrics;
        }
        rows.push(vec![
            name.to_string(),
            gaps_on.to_string(),
            gaps_native.to_string(),
            gaps_off.to_string(),
            format!("{bw_on:.0}"),
            format!("{bw_off:.0}"),
            drops_on.to_string(),
            drops_off.to_string(),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "load",
                "gaps ASP",
                "gaps native",
                "gaps off",
                "kb/s ASP",
                "kb/s off",
                "drops ASP",
                "drops off",
            ],
            &rows
        )
    );
    println!("expected shape: gaps(ASP) ≈ gaps(native) << gaps(off) at large load;");
    println!(
        "ASP bandwidth drops to the degraded rate under load, no-adaptation stays at ~177 kb/s."
    );

    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(opts, "fig7_audio_gaps", &scalar_refs, &large_load_metrics);
}
