//! Regenerates the paper's **figure 6**: audio bandwidth over time
//! under the four-phase load schedule (none → large at 100 s → medium
//! at 220 s → small at 340 s).
//!
//! ```text
//! cargo run --release -p planp-bench --bin fig6_audio_bandwidth
//! ```

use planp_apps::audio::{run_audio, run_audio_traced, Adaptation, AudioConfig, LoadPhase};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::TraceConfig;

fn main() {
    let opts = BenchOpts::from_args();
    println!("Figure 6 — measured audio bandwidth vs time (ASP adaptation in the router)");
    println!("paper: 176 kb/s -> 44 kb/s at t=100s -> 44-88 kb/s at t=220s -> 88 kb/s at t=340s\n");

    let cfg = AudioConfig::figure6(Adaptation::AspJit);
    let (r, _telemetry, metrics) = run_audio_traced(&cfg, TraceConfig::default());

    // Ten-second buckets of the per-second series.
    let mut rows = Vec::new();
    for t0 in (0..460).step_by(10) {
        let avg = r.avg_kbps(t0 as f64, (t0 + 10) as f64);
        let phase = match t0 {
            0..=99 => "no load",
            100..=219 => "large load",
            220..=339 => "medium load",
            _ => "small load",
        };
        let bar = "#".repeat((avg / 6.0) as usize);
        rows.push(vec![
            format!("{t0}-{}", t0 + 10),
            format!("{avg:.0}"),
            phase.to_string(),
            bar,
        ]);
    }
    println!(
        "{}",
        render_table(&["t (s)", "audio kb/s", "phase", ""], &rows)
    );

    let phases = [
        ("no load (0-100s)", r.avg_kbps(10.0, 100.0), 176.0),
        ("large load (100-220s)", r.avg_kbps(110.0, 220.0), 44.0),
        ("medium load (220-340s)", r.avg_kbps(230.0, 340.0), 66.0),
        ("small load (340-460s)", r.avg_kbps(350.0, 460.0), 88.0),
    ];
    println!("phase averages (paper's nominal rates shown for reference):");
    for (name, got, paper) in phases {
        println!("  {name:>24}: {got:6.1} kb/s   (paper: ~{paper:.0} kb/s)");
    }
    println!(
        "\nclient frames: {}   gaps: {}   segment drops: {}",
        r.stats.frames, r.stats.gaps, r.segment_drops
    );
    println!(
        "frames by wire format [16-bit stereo, 16-bit mono, 8-bit mono]: {:?}",
        r.stats.by_format
    );
    let (frames, gaps, segment_drops) = (r.stats.frames, r.stats.gaps, r.segment_drops);

    // Figure 5's per-segment claim: while one segment is overloaded and
    // its audio degraded, a quiet segment behind another router keeps
    // full quality ("audio clients in IRISA may still receive
    // high-quality audio").
    println!("\nper-segment adaptation (figure 5):");
    let r = run_audio(&AudioConfig {
        adaptation: Adaptation::AspJit,
        phases: vec![LoadPhase {
            from_s: 10.0,
            to_s: 60.0,
            kbps: 9450,
        }],
        jitter_pct: 0,
        duration_s: 60,
        seed: 3,
        router_src: None,
        dual_segment: true,
        segment_faults: None,
    });
    let quiet: Vec<f64> = r
        .rx_kbps_b
        .iter()
        .filter(|&&(t, _)| (15.0..60.0).contains(&t))
        .map(|&(_, v)| v)
        .collect();
    let quiet_avg = quiet.iter().sum::<f64>() / quiet.len().max(1) as f64;
    println!(
        "  loaded segment client: {:>5.0} kb/s   (degraded to 8-bit mono)",
        r.avg_kbps(15.0, 60.0)
    );
    println!(
        "  quiet segment client : {:>5.0} kb/s   (untouched 16-bit stereo)",
        quiet_avg
    );

    emit_bench(
        opts,
        "fig6_audio_bandwidth",
        &[
            ("no_load_kbps", phases[0].1),
            ("large_load_kbps", phases[1].1),
            ("medium_load_kbps", phases[2].1),
            ("small_load_kbps", phases[3].1),
            ("frames", frames as f64),
            ("gaps", gaps as f64),
            ("segment_drops", segment_drops as f64),
        ],
        &metrics,
    );
}
