//! `planp-trace` — replay a scenario deterministically and dump its
//! structured event log.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_trace -- \
//!     --scenario audio --seed 7 --categories drop,dispatch --limit 50
//! ```
//!
//! Options:
//!
//! * `--scenario audio|http|mpeg` — which experiment to replay
//!   (default `audio`, a short constant-load run).
//! * `--seed N` — simulation seed (default: the scenario's default).
//! * `--duration N` — simulated seconds (default 20; mpeg always 22).
//! * `--categories LIST` — comma-separated event categories to record
//!   (`link,hop,deliver,drop,dispatch,exception,timer,span,vm` or
//!   `all`; default `all`).
//! * `--sample 1/N` — deterministic head sampling: keep 1 of every N
//!   traces, whole lineages at a time (default `1/1`, keep all).
//! * `--limit N` — print at most the last N events (default: all held).
//! * `--jsonl` — machine form: one JSON object per line instead of the
//!   human table.
//! * `--metrics` — after the events, dump the metrics snapshot as JSON.
//!
//! Same seed ⇒ byte-identical output; the workspace determinism tests
//! assert this property on the underlying log.

use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_telemetry::{Category, MetricsSnapshot, Telemetry, TraceConfig};

struct Args {
    scenario: String,
    seed: Option<u64>,
    duration_s: u64,
    categories: Category,
    sample_n: u32,
    limit: Option<usize>,
    jsonl: bool,
    metrics: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        scenario: "audio".to_string(),
        seed: None,
        duration_s: 20,
        categories: Category::ALL,
        sample_n: 1,
        limit: None,
        jsonl: false,
        metrics: false,
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    while i < argv.len() {
        match argv[i].as_str() {
            "--scenario" => {
                args.scenario = value(&argv, i, "--scenario")?;
                i += 1;
            }
            "--seed" => {
                let v = value(&argv, i, "--seed")?;
                args.seed = Some(v.parse().map_err(|_| format!("bad seed {v:?}"))?);
                i += 1;
            }
            "--duration" => {
                let v = value(&argv, i, "--duration")?;
                args.duration_s = v.parse().map_err(|_| format!("bad duration {v:?}"))?;
                i += 1;
            }
            "--categories" => {
                args.categories = Category::from_list(&value(&argv, i, "--categories")?)?;
                i += 1;
            }
            "--sample" => {
                args.sample_n = TraceConfig::parse_sample(&value(&argv, i, "--sample")?)?;
                i += 1;
            }
            "--limit" => {
                let v = value(&argv, i, "--limit")?;
                args.limit = Some(v.parse().map_err(|_| format!("bad limit {v:?}"))?);
                i += 1;
            }
            "--jsonl" => args.jsonl = true,
            "--metrics" => args.metrics = true,
            "--help" | "-h" => {
                print!("{}", HELP);
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?} (try --help)")),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "\
planp-trace: replay a scenario and dump its structured event log
  --scenario audio|http|mpeg   experiment to replay (default audio)
  --seed N                     simulation seed
  --duration N                 simulated seconds (default 20)
  --categories LIST            link,hop,deliver,drop,dispatch,exception,timer,span,vm|all
  --sample 1/N                 keep 1 of every N traces (whole lineages)
  --limit N                    print at most the last N events
  --jsonl                      one JSON object per line (machine form)
  --metrics                    also dump the metrics snapshot as JSON
";

fn replay(args: &Args) -> Result<(Telemetry, MetricsSnapshot), String> {
    let trace = TraceConfig {
        categories: args.categories,
        sample_n: args.sample_n,
        ..TraceConfig::default()
    };
    match args.scenario.as_str() {
        "audio" => {
            let mut cfg = AudioConfig::constant_load(Adaptation::AspJit, 9450, args.duration_s);
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_audio_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        "http" => {
            let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
            cfg.duration_s = args.duration_s;
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_http_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        "mpeg" => {
            let mut cfg = MpegConfig::new(3, true);
            if let Some(seed) = args.seed {
                cfg.seed = seed;
            }
            let (_, telemetry, metrics) = run_mpeg_traced(&cfg, trace);
            Ok((telemetry, metrics))
        }
        other => Err(format!("unknown scenario {other:?} (audio, http, mpeg)")),
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-trace: {e}");
            std::process::exit(2);
        }
    };
    let (telemetry, metrics) = match replay(&args) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("planp-trace: {e}");
            std::process::exit(2);
        }
    };

    let held = telemetry.trace.len();
    let skip = match args.limit {
        Some(n) => held.saturating_sub(n),
        None => 0,
    };
    let mut line = String::new();
    for ev in telemetry.trace.events().skip(skip) {
        if args.jsonl {
            line.clear();
            ev.write_json(&mut line);
            println!("{line}");
        } else {
            println!("{ev}");
        }
    }
    eprintln!(
        "{} events recorded, {} evicted, {} held, {} printed",
        telemetry.trace.recorded(),
        telemetry.trace.evicted(),
        held,
        held - skip
    );
    if args.sample_n > 1 {
        eprintln!(
            "sampling 1/{}: {} event(s) of sampled-out traces suppressed",
            telemetry.trace.sample_n(),
            telemetry.trace.sampled_out()
        );
    }
    if args.metrics {
        println!("{}", metrics.to_json());
    }
}
