//! Regenerates the paper's **figure 8**: HTTP cluster throughput as a
//! function of offered client load, for the four configurations —
//! single server (a), ASP gateway over two servers (b), built-in C
//! gateway (c), and two servers with disjoint clients (d) — plus the
//! interpreter-run gateway as an ablation.
//!
//! ```text
//! cargo run --release -p planp-bench --bin fig8_http_perf
//! ```

use planp_apps::http::{run_http, run_http_traced, ClusterMode, HttpConfig};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::TraceConfig;

fn main() {
    let opts = BenchOpts::from_args();
    println!("Figure 8 — HTTP server performance (requests/second)");
    println!("(paper: ASP == built-in C; cluster = 1.75 x single server = 85% of two servers)\n");

    let modes = [
        ("a: single server", ClusterMode::Single),
        ("b: ASP gateway", ClusterMode::AspGateway),
        ("c: built-in gateway", ClusterMode::NativeGateway),
        ("d: disjoint clients", ClusterMode::Disjoint),
        ("ablation: interp gw", ClusterMode::InterpGateway),
    ];
    let client_counts = [2usize, 4, 8, 12, 16, 24, 32];

    let mut results = vec![Vec::new(); modes.len()];
    let mut rows = Vec::new();
    for &clients in &client_counts {
        let mut row = vec![clients.to_string()];
        for (i, (_, mode)) in modes.iter().enumerate() {
            let mut cfg = HttpConfig::new(*mode, clients);
            cfg.duration_s = 20;
            cfg.warmup_s = 5.0;
            let r = run_http(&cfg);
            results[i].push(r.req_per_sec);
            row.push(format!("{:.0}", r.req_per_sec));
        }
        rows.push(row);
    }
    let headers: Vec<&str> = std::iter::once("clients")
        .chain(modes.iter().map(|(n, _)| *n))
        .collect();
    println!("{}", render_table(&headers, &rows));

    // Latency distribution at the 16-client point (the knee). The ASP
    // gateway run also supplies the metrics snapshot for --json/--report.
    println!("latency at 16 clients (ms):");
    let mut knee_metrics = None;
    for (name, mode) in modes.iter().take(4) {
        let mut cfg = HttpConfig::new(*mode, 16);
        cfg.duration_s = 20;
        cfg.warmup_s = 5.0;
        let (r, _telemetry, metrics) = run_http_traced(&cfg, TraceConfig::default());
        if *mode == ClusterMode::AspGateway {
            knee_metrics = Some(metrics);
        }
        println!(
            "  {name:>20}: mean {:>4.0}  p50 {:>4.0}  p95 {:>4.0}",
            r.mean_latency_ms, r.p50_latency_ms, r.p95_latency_ms
        );
    }
    println!();

    let peak = |i: usize| -> f64 { results[i].iter().cloned().fold(0.0, f64::max) };
    let (a, b, c, d) = (peak(0), peak(1), peak(2), peak(3));
    println!("peak throughput: single {a:.0}, ASP gw {b:.0}, C gw {c:.0}, disjoint {d:.0} req/s");
    println!(
        "  ASP vs built-in C gateway : {:+.1}%  (paper: ~0%)",
        (b - c) / c * 100.0
    );
    println!(
        "  cluster vs single server  : {:.2}x   (paper: 1.75x)",
        b / a
    );
    println!(
        "  cluster vs two servers    : {:.0}%   (paper: 85%)",
        b / d * 100.0
    );

    emit_bench(
        opts,
        "fig8_http_perf",
        &[
            ("peak_single_rps", a),
            ("peak_asp_gateway_rps", b),
            ("peak_native_gateway_rps", c),
            ("peak_disjoint_rps", d),
            ("asp_vs_native_pct", (b - c) / c * 100.0),
            ("cluster_vs_single_x", b / a),
        ],
        &knee_metrics.unwrap_or_default(),
    );
}
