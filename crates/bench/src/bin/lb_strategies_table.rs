//! Ablation: load-balancing strategies for the extensible HTTP server
//! (paper section 3.2: "Different load-balancing strategies can be
//! evaluated by changing the gateway ASP").
//!
//! ```text
//! cargo run --release -p planp-bench --bin lb_strategies_table
//! ```

use planp_apps::http::{
    run_http, ClusterMode, HttpConfig, HTTP_GATEWAY_ASP, HTTP_GATEWAY_PORTHASH_ASP,
    HTTP_GATEWAY_RANDOM_ASP,
};
use planp_bench::render_table;

fn main() {
    println!("Load-balancing strategies (swap the gateway ASP, nothing else changes)\n");

    let strategies = [
        ("modulo (paper's)", HTTP_GATEWAY_ASP),
        ("random sticky", HTTP_GATEWAY_RANDOM_ASP),
        ("port parity (stateless)", HTTP_GATEWAY_PORTHASH_ASP),
    ];

    let mut rows = Vec::new();
    for (name, src) in strategies {
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
        cfg.duration_s = 20;
        cfg.warmup_s = 5.0;
        cfg.gateway_src = Some(src);
        let r = run_http(&cfg);
        let s0 = r.per_server[0].1;
        let s1 = r.per_server[1].1;
        let skew = if s0 + s1 > 0.0 {
            (s0 - s1).abs() / (s0 + s1) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", r.req_per_sec),
            format!("{:.0}", r.mean_latency_ms),
            format!("{s0:.0}"),
            format!("{s1:.0}"),
            format!("{skew:.1}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["strategy", "req/s", "latency ms", "server0", "server1", "skew"],
            &rows
        )
    );
    println!("expected shape: all strategies reach the same gateway-bound throughput;");
    println!("modulo splits connections most evenly, random shows mild skew.");
}
