//! Ablation: load-balancing strategies for the extensible HTTP server
//! (paper section 3.2: "Different load-balancing strategies can be
//! evaluated by changing the gateway ASP").
//!
//! ```text
//! cargo run --release -p planp-bench --bin lb_strategies_table
//! ```

use planp_apps::http::{
    run_http_traced, ClusterMode, HttpConfig, HTTP_GATEWAY_ASP, HTTP_GATEWAY_PORTHASH_ASP,
    HTTP_GATEWAY_RANDOM_ASP,
};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

fn main() {
    let opts = BenchOpts::from_args();
    println!("Load-balancing strategies (swap the gateway ASP, nothing else changes)\n");

    let strategies = [
        ("modulo (paper's)", HTTP_GATEWAY_ASP),
        ("random sticky", HTTP_GATEWAY_RANDOM_ASP),
        ("port parity (stateless)", HTTP_GATEWAY_PORTHASH_ASP),
    ];

    let mut rows = Vec::new();
    let mut scalars: Vec<(String, f64)> = Vec::new();
    let mut modulo_metrics = MetricsSnapshot::default();
    for (name, src) in strategies {
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
        cfg.duration_s = 20;
        cfg.warmup_s = 5.0;
        cfg.gateway_src = Some(src);
        let (r, _telemetry, metrics) = run_http_traced(&cfg, TraceConfig::default());
        if std::ptr::eq(src, HTTP_GATEWAY_ASP) {
            modulo_metrics = metrics;
        }
        scalars.push((
            format!("{}_rps", name.split_whitespace().next().unwrap_or(name)),
            r.req_per_sec,
        ));
        let s0 = r.per_server[0].1;
        let s1 = r.per_server[1].1;
        let skew = if s0 + s1 > 0.0 {
            (s0 - s1).abs() / (s0 + s1) * 100.0
        } else {
            0.0
        };
        rows.push(vec![
            name.to_string(),
            format!("{:.0}", r.req_per_sec),
            format!("{:.0}", r.mean_latency_ms),
            format!("{s0:.0}"),
            format!("{s1:.0}"),
            format!("{skew:.1}%"),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "strategy",
                "req/s",
                "latency ms",
                "server0",
                "server1",
                "skew"
            ],
            &rows
        )
    );
    println!("expected shape: all strategies reach the same gateway-bound throughput;");
    println!("modulo splits connections most evenly, random shows mild skew.");

    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(opts, "lb_strategies_table", &scalar_refs, &modulo_metrics);
}
