//! `planp-cluster` — the overload-robustness headline: a Zipf flash
//! crowd (1M requests) over 24 heterogeneous backends with rolling
//! crashes, defended by admission control, a bounded-load
//! consistent-hash gateway with per-backend circuit breakers, and the
//! monitor-driven brownout controller.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_cluster -- --json
//! ```
//!
//! One seeded run of [`ClusterConfig::standard`]; everything printed —
//! the verdict block, the breaker transition log, the brownout log —
//! is byte-stable, so CI runs the binary twice and diffs, and gates on
//! the pinned `asps/CLUSTER_BASELINE.txt`.
//!
//! Asserted invariants (a violation aborts the binary):
//!
//! * ≥ 99% of *admitted* requests complete, through the flash crowd
//!   and six rolling backend crashes (shed requests were refused at
//!   ingress, not lost);
//! * client p99 latency stays under the ceiling;
//! * corpse traffic is probe-only: once a breaker opens, the only
//!   packets toward the dead backend are its half-open probes;
//! * the brownout controller engages during the flash and fully
//!   restores service (level 0) by the end of the run;
//! * both drop-accounting identities (link- and node-level) hold.
//!
//! Flags: `--json` (or `PLANP_BENCH_JSON=1`) writes
//! `BENCH_planp_cluster.json`; `--report` prints the metrics table;
//! `--baseline FILE` gates on a pinned verdict file (exit 1 on drift);
//! `--write-baseline FILE` regenerates it; `--sample 1/N` enables
//! head-sampled causal tracing (the verdict does not depend on it).

use planp_apps::cluster::{run_cluster, ClusterConfig};
use planp_bench::{baseline_gate, emit_bench, sample_from_cli, BenchOpts, Cli};
use planp_telemetry::TraceConfig;
use std::fmt::Write as _;

const HELP: &str = "planp-cluster: flash-crowd overload robustness bench

usage: planp_cluster [--json] [--report] [--sample 1/N]
                     [--baseline FILE | --write-baseline FILE]

  --json                write BENCH_planp_cluster.json
  --report              print the final metrics table
  --sample 1/N          head-sampled causal tracing (default off)
  --baseline FILE       compare the verdict block against FILE; exit 1 on drift
  --write-baseline FILE regenerate FILE from this run
  -h, --help            this text
";

const CLI: Cli = Cli {
    bin: "planp-cluster",
    help: HELP,
    flags: &["--report"],
    value_flags: &["--sample"],
};

/// Client p99 ceiling (ns). The latency histogram has power-of-two
/// buckets, so the reported p99 is a bucket upper bound; the ceiling
/// leaves one bucket of headroom over the expected ~8–16 ms backlog
/// peak during the flash crowd.
const P99_CEILING_NS: u64 = 67_108_864; // 2^26 ≈ 67 ms

fn main() {
    let args = CLI.parse_or_exit();
    let opts = BenchOpts::from_cli(&args);
    let sample_n = sample_from_cli("planp-cluster", &args);

    let mut cfg = ClusterConfig::standard();
    if sample_n > 1 {
        cfg.trace = TraceConfig::sampled(sample_n);
    }
    let res = run_cluster(&cfg);

    // --- the byte-stable verdict block ---------------------------------
    let mut verdict = String::new();
    let _ = writeln!(
        verdict,
        "cluster seed={} clients={} backends={} requests={}",
        cfg.seed,
        cfg.clients,
        cfg.backends,
        cfg.requests_per_client * u64::from(cfg.clients),
    );
    let _ = writeln!(
        verdict,
        "sent={} admitted={} completed={} delivery_admitted={:.4}",
        res.sent, res.admitted, res.completed, res.delivery_admitted
    );
    let _ = writeln!(
        verdict,
        "shed agg={} gw_brownout={} gw_saturated={} gw_queue={} expired_agg={} expired_gw={}",
        res.agg_shed,
        res.shed_brownout,
        res.shed_saturated,
        res.shed_queue,
        res.agg_expired,
        res.gw_expired
    );
    let _ = writeln!(
        verdict,
        "breakers opens={} probes={} sent_while_broken={} timeouts={} transitions={}",
        res.opens,
        res.probes,
        res.sent_while_broken,
        res.timeouts,
        res.transitions_log.lines().count()
    );
    let _ = writeln!(
        verdict,
        "brownout max={} final={} steps={}",
        res.max_brownout,
        res.final_brownout,
        res.brownout_log.lines().count()
    );
    let _ = writeln!(
        verdict,
        "latency_ns p50={} p99={} p999={}",
        res.latency_p50_ns, res.latency_p99_ns, res.latency_p999_ns
    );
    let _ = writeln!(
        verdict,
        "drops corpse={} node_total={} link_total={} crashes={} breaches={}",
        res.corpse_drops, res.total_node_drops, res.total_link_drops, res.crashes, res.breaches
    );
    let _ = writeln!(
        verdict,
        "completed_by_class c0={} c1={} c2={} c3={}",
        res.completed_by_class[0],
        res.completed_by_class[1],
        res.completed_by_class[2],
        res.completed_by_class[3]
    );
    verdict.push_str("--- breaker transitions ---\n");
    verdict.push_str(&res.transitions_log);
    verdict.push_str("--- brownout transitions ---\n");
    verdict.push_str(&res.brownout_log);
    print!("{verdict}");
    if !res.flight.is_empty() {
        println!("--- flight dumps ---");
        print!("{}", res.flight);
    }

    // --- invariants -----------------------------------------------------
    assert_eq!(res.sent, 1_000_000, "every client drains its request trace");
    assert!(
        res.delivery_admitted >= 0.99,
        "admitted-delivery floor violated: {:.4}",
        res.delivery_admitted
    );
    assert!(
        res.latency_p99_ns <= P99_CEILING_NS,
        "p99 ceiling violated: {} > {}",
        res.latency_p99_ns,
        P99_CEILING_NS
    );
    assert!(
        res.corpse_traffic_probe_only(),
        "corpse traffic beyond probes: sent_while_broken={} probes={}",
        res.sent_while_broken,
        res.probes
    );
    assert!(
        res.opens >= u64::from(cfg.crashes),
        "every crash must open its breaker: opens={} crashes={}",
        res.opens,
        cfg.crashes
    );
    assert!(
        res.corpse_drops <= res.admitted / 500,
        "breakers leaked to corpses: {} drops at crashed backends",
        res.corpse_drops
    );
    assert!(
        res.max_brownout >= 1,
        "the flash crowd must engage the brownout controller"
    );
    assert_eq!(
        res.final_brownout, 0,
        "service must be fully restored by the end of the run"
    );
    assert!(
        res.node_drop_identity_holds(),
        "node drop identity: total={} sum={}",
        res.total_node_drops,
        res.sum_node_drops
    );
    assert!(
        res.link_drop_identity_holds(),
        "link drop identity: total={} sum={}+{}",
        res.total_link_drops,
        res.sum_link_drops,
        res.sum_fault_drops
    );
    println!("all cluster invariants hold");

    let scalars = [
        ("sent", res.sent as f64),
        ("admitted", res.admitted as f64),
        ("completed", res.completed as f64),
        ("delivery_admitted", res.delivery_admitted),
        ("agg_shed", res.agg_shed as f64),
        ("shed_brownout", res.shed_brownout as f64),
        ("shed_saturated", res.shed_saturated as f64),
        ("shed_queue", res.shed_queue as f64),
        ("latency_p50_ns", res.latency_p50_ns as f64),
        ("latency_p99_ns", res.latency_p99_ns as f64),
        ("latency_p999_ns", res.latency_p999_ns as f64),
        ("opens", res.opens as f64),
        ("probes", res.probes as f64),
        ("timeouts", res.timeouts as f64),
        ("corpse_drops", res.corpse_drops as f64),
        ("crashes", res.crashes as f64),
        ("max_brownout", f64::from(res.max_brownout)),
        ("breaches", res.breaches as f64),
    ];
    emit_bench(opts, "planp_cluster", &scalars, &res.snapshot);

    if baseline_gate("planp-cluster", &args, &verdict) {
        std::process::exit(1);
    }
}
