//! `planp-health` — the live SLO health monitor over the chaos relay
//! chain: windowed delivery-floor / latency / queue / fault-burst
//! rules, with flight-recorder dumps frozen at crashes and at the
//! first breached window.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_health -- --json
//! ```
//!
//! Three monitored stages, all seeded (two runs of this binary produce
//! byte-identical output; CI runs it twice and diffs):
//!
//! 1. **Fragile relay at 10% loss** — the delivery floor (95% per
//!    window) breaches; the monitor freezes the middle relay's flight
//!    recorder at the first breached window.
//! 2. **Reliable relay at 5% loss** — NACK repair holds every window
//!    above the floor: zero delivery breaches.
//! 3. **Crash schedule** — the middle relay crashes mid-stream under
//!    the reliable relay; the windows spanning the outage breach, the
//!    post-restart windows recover, and the report carries the crashed
//!    node's flight-recorder window (cause `crash`).
//!
//! Each stage asserts its verdict; a violated invariant aborts the
//! binary. `--sample 1/N` turns on head-sampled causal tracing for
//! every stage (the monitor's verdicts do not depend on the rate).

use planp_apps::chaos::{run_relay_chaos, RelayChaosConfig, RelayChaosResult, RelayKind};
use planp_bench::{emit_bench, sample_from_cli, BenchOpts, Cli};
use planp_telemetry::TraceConfig;

const HELP: &str = "planp-health: live SLO monitor over the chaos relay chain

usage: planp_health [--json] [--report] [--sample 1/N]

  --json        write BENCH_planp_health.json
  --report      print the final metrics table
  --sample 1/N  head-sampled causal tracing (default off)
  -h, --help    this text
";

const CLI: Cli = Cli {
    bin: "planp-health",
    help: HELP,
    flags: &["--report"],
    value_flags: &["--sample"],
};

/// Monitor window used by every stage (milliseconds of sim time).
const WINDOW_MS: u64 = 250;

fn monitored(mut cfg: RelayChaosConfig, sample_n: u32) -> RelayChaosConfig {
    cfg.monitor_ms = Some(WINDOW_MS);
    // `--sample 1/N` turns on deterministic head-sampled tracing; the
    // monitor's windowed counters are unaffected by the rate.
    if sample_n > 1 {
        cfg.trace = TraceConfig::sampled(sample_n);
    }
    cfg
}

fn print_stage(title: &str, res: &RelayChaosResult) {
    let health = res.health.as_ref().expect("monitored run");
    println!("=== {title} ===");
    print!("{}", health.report);
    if health.flight.is_empty() {
        println!("flight dumps: none");
    } else {
        print!("{}", health.flight);
    }
    println!(
        "delivery {:.3}  breaches={} (delivery={})  recovered={}",
        res.delivery_ratio,
        health.breaches,
        health.delivery_breaches,
        match health.delivery_recovered {
            Some(true) => "true",
            Some(false) => "false",
            None => "n/a",
        }
    );
    println!();
}

fn main() {
    let args = CLI.parse_or_exit();
    if args.baseline.is_some() || args.write_baseline.is_some() {
        eprintln!("planp-health: no baseline gate; CI diffs two runs instead");
        std::process::exit(2);
    }
    let opts = BenchOpts::from_cli(&args);
    let sample_n = sample_from_cli("planp-health", &args);
    let mut scalars: Vec<(String, f64)> = Vec::new();

    // --- 1. fragile relay: the floor must breach ------------------------
    let fragile = run_relay_chaos(&monitored(
        RelayChaosConfig::loss(RelayKind::Fragile, 0.10),
        sample_n,
    ));
    print_stage("fragile relay, 10% per-link loss", &fragile);
    let fh = fragile.health.as_ref().unwrap();
    assert!(
        fh.delivery_breaches >= 1,
        "fragile relay must violate the delivery floor: {}",
        fh.report
    );
    assert!(
        fh.flight.contains("node=r3"),
        "first breach must freeze the middle relay's flight window:\n{}",
        fh.flight
    );
    scalars.push((
        "fragile_delivery_breaches".into(),
        fh.delivery_breaches as f64,
    ));
    scalars.push(("fragile_breaches".into(), fh.breaches as f64));

    // --- 2. reliable relay: every window healthy ------------------------
    let reliable = run_relay_chaos(&monitored(
        RelayChaosConfig::loss(RelayKind::Reliable, 0.05),
        sample_n,
    ));
    print_stage("reliable relay, 5% per-link loss", &reliable);
    let rh = reliable.health.as_ref().unwrap();
    assert_eq!(
        rh.delivery_breaches, 0,
        "NACK repair must hold the floor: {}",
        rh.report
    );
    assert_eq!(rh.delivery_recovered, Some(true));
    scalars.push((
        "reliable_delivery_breaches".into(),
        rh.delivery_breaches as f64,
    ));

    // --- 3. crash schedule: breach during the outage, recover after ----
    let mut cfg = RelayChaosConfig::loss(RelayKind::Reliable, 0.02);
    cfg.crash_relay = Some((0.25, 0.55));
    let crash = run_relay_chaos(&monitored(cfg, sample_n));
    print_stage("crash schedule (middle relay down 0.25-0.55 s)", &crash);
    let ch = crash.health.as_ref().unwrap();
    assert!(
        ch.delivery_breaches >= 1,
        "the outage windows must breach: {}",
        ch.report
    );
    assert_eq!(
        ch.delivery_recovered,
        Some(true),
        "post-restart windows must recover: {}",
        ch.report
    );
    assert!(
        ch.flight.contains("cause=crash") && ch.flight.contains("node=r3"),
        "the crashed node's flight window must be in the report:\n{}",
        ch.flight
    );
    assert!(crash.delivery_ratio >= 0.99, "repair covers the outage");
    scalars.push((
        "crash_delivery_breaches".into(),
        ch.delivery_breaches as f64,
    ));
    scalars.push(("crash_breaches".into(), ch.breaches as f64));
    scalars.push(("crash_delivery".into(), crash.delivery_ratio));

    println!("all health invariants hold");
    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(opts, "planp_health", &scalar_refs, &crash.snapshot);
}
