//! `planp-obs` — telemetry overhead at scale: deterministic trace
//! sampling swept over a 1024-node grid of relay chains.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_obs -- --json
//! ```
//!
//! Four seeded runs of the same grid (128 chains × 6 JIT relays):
//! full tracing, head sampling at 1/4 and 1/16, and a kept-event
//! budget that deterministically steps the rate down as the run
//! spends it. For each run the bin reports what the sampler kept and
//! suppressed, the estimated record bytes, and the reconstructed
//! span forest — every kept trace must form a *complete* tree (no
//! orphan spans), whatever the rate.
//!
//! Asserted invariants (a violation aborts the binary):
//!
//! * sampling never perturbs the simulation — all four runs deliver
//!   every datagram;
//! * 1/16 sampling cuts kept events ≥ 8× against full tracing;
//! * no run evicts or orphans anything;
//! * the budget run downgrades its rate at least once, and a second
//!   budget run reproduces the identical JSONL byte-for-byte.
//!
//! Two runs of this binary produce byte-identical output; CI runs it
//! twice and diffs. `--sample 1/N` appends a user-chosen head-sampling
//! rate to the sweep (the default rows are unchanged, so the flagless
//! output stays byte-identical).

use planp_apps::obs::{run_obs_grid, ObsGridConfig, ObsGridResult};
use planp_bench::{emit_bench, render_table, sample_from_cli, BenchOpts, Cli};
use planp_telemetry::TraceConfig;

const HELP: &str = "planp-obs: telemetry overhead sweep on the 1024-node grid

usage: planp_obs [--json] [--report] [--sample 1/N]

  --json        write BENCH_planp_obs.json
  --report      print the final metrics table
  --sample 1/N  append a user-chosen rate to the sampling sweep
  -h, --help    this text
";

const CLI: Cli = Cli {
    bin: "planp-obs",
    help: HELP,
    flags: &["--report"],
    value_flags: &["--sample"],
};

/// Ring capacity for the sweep: the full-tracing run of the 1024-node
/// grid must not evict (evictions would understate overhead).
const CAPACITY: usize = 1 << 17;

/// Kept-event budget of the degraded run.
const BUDGET: u64 = 4_000;

fn grid(trace: TraceConfig) -> ObsGridResult {
    run_obs_grid(&ObsGridConfig::new(TraceConfig {
        capacity: CAPACITY,
        ..trace
    }))
}

fn main() {
    let args = CLI.parse_or_exit();
    if args.baseline.is_some() || args.write_baseline.is_some() {
        eprintln!("planp-obs: no baseline gate; CI diffs two runs instead");
        std::process::exit(2);
    }
    let opts = BenchOpts::from_cli(&args);
    let sample_n = sample_from_cli("planp-obs", &args);

    let full = grid(TraceConfig::all());
    let s4 = grid(TraceConfig::sampled(4));
    let s16 = grid(TraceConfig::sampled(16));
    let budget = grid(TraceConfig {
        budget: BUDGET,
        ..TraceConfig::all()
    });
    // `--sample 1/N` appends a user-chosen rate to the sweep; the
    // default output stays byte-identical when the flag is absent.
    let extra = (sample_n > 1).then(|| grid(TraceConfig::sampled(sample_n)));

    println!(
        "Trace sampling on the {}-node grid ({} datagrams end-to-end)",
        full.nodes, full.expected
    );
    let row = |label: &str, r: &ObsGridResult| -> Vec<String> {
        let oh = &r.overhead;
        vec![
            label.to_string(),
            oh.kept.to_string(),
            oh.sampled_out.to_string(),
            oh.est_bytes.to_string(),
            r.roots.to_string(),
            r.orphans.to_string(),
            format!("1/{}", oh.sample_n),
            oh.downgrades.to_string(),
            format!("{:.1}x", full.overhead.kept as f64 / oh.kept.max(1) as f64),
        ]
    };
    let mut rows = vec![
        row("full", &full),
        row("1/4", &s4),
        row("1/16", &s16),
        row(&format!("budget {BUDGET}"), &budget),
    ];
    if let Some(r) = &extra {
        rows.push(row(&format!("1/{sample_n} (--sample)"), r));
    }
    println!(
        "{}",
        render_table(
            &[
                "sampling",
                "kept",
                "sampled out",
                "est bytes",
                "traces",
                "orphans",
                "final rate",
                "downgrades",
                "reduction",
            ],
            &rows
        )
    );

    assert!(full.nodes >= 1000, "the grid must be 1k+ nodes");
    let mut runs = vec![
        ("full", &full),
        ("1/4", &s4),
        ("1/16", &s16),
        ("budget", &budget),
    ];
    if let Some(r) = &extra {
        runs.push(("--sample", r));
    }
    for (label, r) in runs {
        assert_eq!(
            r.unique, r.expected,
            "{label}: sampling must never perturb the simulation"
        );
        assert_eq!(r.orphans, 0, "{label}: kept traces must stay complete");
        assert_eq!(r.overhead.evicted, 0, "{label}: ring sized for the run");
    }
    let reduction = full.overhead.kept as f64 / s16.overhead.kept.max(1) as f64;
    assert!(
        reduction >= 8.0,
        "1/16 sampling must cut kept events >= 8x, got {reduction:.1}x"
    );
    assert!(
        budget.overhead.downgrades >= 1 && budget.overhead.sample_n > 1,
        "the budget must step the rate down: {:?}",
        budget.overhead
    );

    // Downgrade determinism: the budget path re-run produces the same
    // downgrade schedule and the same kept events, byte for byte.
    let budget2 = grid(TraceConfig {
        budget: BUDGET,
        ..TraceConfig::all()
    });
    assert_eq!(budget.overhead, budget2.overhead);
    assert_eq!(
        budget.telemetry.trace.to_jsonl(),
        budget2.telemetry.trace.to_jsonl(),
        "budget-degraded trace must be byte-stable"
    );
    println!(
        "invariants: 1/16 reduction {reduction:.1}x (>= 8x), 0 orphans everywhere, budget run downgraded {} time(s) to 1/{} deterministically",
        budget.overhead.downgrades, budget.overhead.sample_n
    );

    let scalars = [
        ("nodes", full.nodes as f64),
        ("full_kept", full.overhead.kept as f64),
        ("s4_kept", s4.overhead.kept as f64),
        ("s16_kept", s16.overhead.kept as f64),
        ("s16_reduction", reduction),
        ("full_est_bytes", full.overhead.est_bytes as f64),
        ("s16_est_bytes", s16.overhead.est_bytes as f64),
        ("budget_kept", budget.overhead.kept as f64),
        ("budget_downgrades", budget.overhead.downgrades as f64),
        ("budget_final_sample_n", budget.overhead.sample_n as f64),
    ];
    emit_bench(opts, "planp_obs", &scalars, &s16.snapshot);
}
