//! `planp-profile` — the always-on VM profiler over the bundled ASP
//! corpus and the traced scenarios, with byte-stable exports and a CI
//! verdict baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_profile -- \
//!     --baseline asps/PROFILE_BASELINE.txt
//! ```
//!
//! Two sections, both deterministic (two runs of this binary produce
//! byte-identical output; CI runs it twice and diffs):
//!
//! 1. **Static corpus** — every bundled ASP's per-site cost bounds and
//!    superinstruction candidates (header-field load + compare +
//!    branch; table lookup + forward), straight from the analysis.
//! 2. **Traced scenarios** — the audio, HTTP, and MPEG experiments
//!    replayed at fixed seeds with the per-site profiler on: every
//!    dispatch's charge vector is attributed to source sites, joined
//!    against the static bounds, and rendered as a utilization heatmap
//!    plus a ranked superinstruction-candidate report.
//!
//! Asserted invariants (a violation aborts the binary):
//!
//! * Σ per-site steps == the aggregate `vm_steps` charge, on every
//!   dispatch of every scope (`mismatches=0`);
//! * observed per-site steps never exceed `static bound × dispatches`
//!   (utilization ≤ 1000‰) — the per-site cost analysis is sound;
//! * every observed site carries a static bound (no unknown sites);
//! * the ranked superinstruction report is non-empty.
//!
//! Options:
//!
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--flame FILE` — write collapsed-stack flamegraph lines
//!   (`planp;<scenario>;<node>;<chan>#<ov>;<site> <steps>`), ready for
//!   `flamegraph.pl` or speedscope.
//! * `--heatmap FILE` — write the utilization heatmap rows as JSON.
//! * `--baseline FILE` — compare each profile line against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline (sorted).
//!
//! Baseline lines read `asp <name> chans=<n> sites=<n> bound=<steps>
//! candidates=<k>` for the static section and `scenario <name>
//! scope=<key> dispatches=<d> steps=<s> sites=<n> util=<max permille>`
//! for the dynamic one.
//!
//! Exit status: 0 on success, 1 on baseline mismatch, 2 on usage or
//! I/O errors.

use planp_analysis::diag::push_json_str;
use planp_apps::audio::{run_audio_traced, Adaptation, AudioConfig};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig};
use planp_apps::mpeg::{run_mpeg_traced, MpegConfig};
use planp_bench::{baseline_gate, bundled_asps, Cli};
use planp_telemetry::{ProfileRegistry, TraceConfig};

const CLI: Cli = Cli {
    bin: "planp-profile",
    help: HELP,
    flags: &[],
    value_flags: &["--flame", "--heatmap"],
};

const HELP: &str = "\
planp-profile: per-site VM step profiles for the corpus and scenarios
usage: planp_profile [options]
  --json                 byte-stable machine output
  --flame FILE           write collapsed-stack flamegraph lines
  --heatmap FILE         write the utilization heatmap rows as JSON
  --baseline FILE        fail if profile lines differ from FILE
  --write-baseline FILE  regenerate FILE (sorted)
";

/// The static per-site analysis of one bundled ASP.
struct AspProfile {
    name: &'static str,
    chans: usize,
    sites: usize,
    bound: u64,
    candidates: usize,
}

impl AspProfile {
    fn verdict_line(&self) -> String {
        format!(
            "asp {} chans={} sites={} bound={} candidates={}",
            self.name, self.chans, self.sites, self.bound, self.candidates
        )
    }
}

fn analyze_corpus() -> Vec<AspProfile> {
    let mut out = Vec::new();
    for (name, src, _policy) in bundled_asps() {
        let prog =
            planp_lang::compile_front(src).unwrap_or_else(|e| panic!("{name}: {}", e.render(src)));
        let report = planp_analysis::site_bounds(&prog, src);
        let candidates = planp_analysis::superinstruction_candidates(&prog, src);
        out.push(AspProfile {
            name,
            chans: report.channels.len(),
            sites: report.channels.iter().map(|c| c.sites.len()).sum(),
            bound: report.channels.iter().map(|c| c.total_bound()).sum(),
            candidates: candidates.len(),
        });
    }
    out
}

/// One traced scenario's profile registry.
struct ScenarioProfile {
    name: &'static str,
    profile: ProfileRegistry,
}

fn run_scenarios() -> Vec<ScenarioProfile> {
    let audio = {
        let cfg = AudioConfig::constant_load(Adaptation::AspJit, 9450, 5);
        run_audio_traced(&cfg, TraceConfig::default()).1
    };
    let http = {
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 8);
        cfg.duration_s = 5;
        run_http_traced(&cfg, TraceConfig::default()).1
    };
    let mpeg = run_mpeg_traced(&MpegConfig::new(3, true), TraceConfig::default()).1;
    vec![
        ScenarioProfile {
            name: "audio",
            profile: audio.profile,
        },
        ScenarioProfile {
            name: "http",
            profile: http.profile,
        },
        ScenarioProfile {
            name: "mpeg",
            profile: mpeg.profile,
        },
    ]
}

/// `scenario <name> scope=<key> ...` lines, one per declared scope.
fn scenario_lines(s: &ScenarioProfile) -> Vec<String> {
    // Per-scope worst utilization, from the joined heatmap rows.
    let mut util = std::collections::BTreeMap::new();
    for row in s.profile.heatmap() {
        let worst = util.entry(row.scope.clone()).or_insert(0);
        *worst = (*worst).max(row.permille);
    }
    s.profile
        .scopes()
        .map(|sc| {
            format!(
                "scenario {} scope={} dispatches={} steps={} sites={} util={}",
                s.name,
                sc.key(),
                sc.dispatches,
                sc.steps,
                sc.sites.len(),
                util.get(&sc.key()).copied().unwrap_or(0)
            )
        })
        .collect()
}

/// Baseline text: the static and dynamic profile lines, sorted.
fn baseline_text(asps: &[AspProfile], scenarios: &[ScenarioProfile]) -> String {
    let mut lines: Vec<String> = asps.iter().map(AspProfile::verdict_line).collect();
    for s in scenarios {
        lines.extend(scenario_lines(s));
    }
    lines.sort();
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

/// Collapsed flamegraph lines with the scenario as the second frame.
fn flame_text(scenarios: &[ScenarioProfile]) -> String {
    let mut out = String::new();
    for s in scenarios {
        for line in s.profile.collapsed_flame().lines() {
            out.push_str(&line.replacen("planp;", &format!("planp;{};", s.name), 1));
            out.push('\n');
        }
    }
    out
}

/// The joined heatmap rows of every scenario, as one JSON array.
fn heatmap_json(scenarios: &[ScenarioProfile]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from("[");
    let mut first = true;
    for s in scenarios {
        for row in s.profile.heatmap() {
            if !first {
                out.push(',');
            }
            first = false;
            out.push_str("{\"scenario\":");
            push_json_str(&mut out, s.name);
            out.push_str(",\"scope\":");
            push_json_str(&mut out, &row.scope);
            out.push_str(",\"label\":");
            push_json_str(&mut out, &row.label);
            let _ = write!(
                out,
                ",\"site\":{},\"observed\":{},\"bound\":{},\"dispatches\":{},\
                 \"permille\":{},\"hot\":{},\"slack\":{}}}",
                row.site, row.observed, row.bound, row.dispatches, row.permille, row.hot, row.slack
            );
        }
    }
    out.push(']');
    out
}

fn write_json(asps: &[AspProfile], scenarios: &[ScenarioProfile], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"asps\":[");
    for (i, a) in asps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, a.name);
        let _ = write!(
            out,
            ",\"chans\":{},\"sites\":{},\"bound\":{},\"candidates\":{}}}",
            a.chans, a.sites, a.bound, a.candidates
        );
    }
    out.push_str("],\"scenarios\":[");
    for (i, s) in scenarios.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, s.name);
        out.push_str(",\"profile\":");
        out.push_str(&s.profile.to_json());
        out.push('}');
    }
    out.push_str("]}");
}

/// Aborts on any violated profiler invariant (see the module docs).
fn assert_invariants(scenarios: &[ScenarioProfile]) {
    let mut ranked = 0usize;
    for s in scenarios {
        assert_eq!(
            s.profile.mismatches(),
            0,
            "{}: some dispatch's per-site charges did not sum to its aggregate",
            s.name
        );
        for sc in s.profile.scopes() {
            assert_eq!(
                sc.unknown_sites(),
                0,
                "{}: scope {} observed sites without a static bound",
                s.name,
                sc.key()
            );
        }
        for row in s.profile.heatmap() {
            assert!(
                row.permille <= 1000,
                "{}: site {} of {} at {}‰ of its static bound — per-site cost \
                 analysis unsound",
                s.name,
                row.site,
                row.scope,
                row.permille
            );
        }
        ranked += s.profile.superinstruction_report().lines().count();
    }
    assert!(ranked > 0, "no ranked superinstruction candidates observed");
}

fn main() {
    let args = CLI.parse_or_exit();

    let asps = analyze_corpus();
    let scenarios = run_scenarios();
    assert_invariants(&scenarios);

    if args.json {
        let mut out = String::new();
        write_json(&asps, &scenarios, &mut out);
        println!("{out}");
    } else {
        for a in &asps {
            println!("{}", a.verdict_line());
        }
        for s in &scenarios {
            println!("--- scenario {} ---", s.name);
            print!("{}", s.profile.render_heatmap());
            let report = s.profile.superinstruction_report();
            if report.is_empty() {
                println!("superinstruction candidates: none observed");
            } else {
                print!("{report}");
            }
        }
    }

    for (flag, text) in [
        ("--flame", flame_text(&scenarios)),
        ("--heatmap", heatmap_json(&scenarios)),
    ] {
        if let Some(path) = args.value(flag) {
            if let Err(e) = std::fs::write(path, text) {
                eprintln!("planp-profile: cannot write {path}: {e}");
                std::process::exit(2);
            }
            eprintln!("wrote {path}");
        }
    }

    let failed = baseline_gate("planp-profile", &args, &baseline_text(&asps, &scenarios));

    let dispatched: u64 = scenarios
        .iter()
        .flat_map(|s| s.profile.scopes())
        .map(|sc| sc.dispatches)
        .sum();
    eprintln!(
        "{} ASP(s), {} scenario(s), {} profiled dispatch(es)",
        asps.len(),
        scenarios.len(),
        dispatched
    );
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_has_sites_bounds_and_candidates() {
        let asps = analyze_corpus();
        assert_eq!(asps.len(), bundled_asps().len());
        for a in &asps {
            assert!(a.chans > 0 && a.sites > 0 && a.bound > 0, "{}", a.name);
        }
        // The load-balancing gateways are table-lookup-and-forward
        // machines: the candidate scan must see them.
        let gw = asps.iter().find(|a| a.name == "http_gateway").unwrap();
        assert!(gw.candidates > 0, "gateway has no superinstruction shapes");
    }

    #[test]
    fn static_lines_are_sorted_and_stable() {
        let mut asps = analyze_corpus();
        let sorted = baseline_text(&asps, &[]);
        asps.reverse();
        assert_eq!(sorted, baseline_text(&asps, &[]));
        let lines: Vec<&str> = sorted.lines().collect();
        let mut expect = lines.clone();
        expect.sort_unstable();
        assert_eq!(lines, expect);
    }
}
