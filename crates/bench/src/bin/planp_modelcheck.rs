//! `planp-modelcheck` — run the explicit-state model checker over
//! PLAN-P source files, render counterexample witnesses, optionally
//! replay them through the simulator, and gate CI on a verdict
//! baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_modelcheck -- \
//!     --replay --baseline asps/MODELCHECK_BASELINE.txt asps/*.planp
//! ```
//!
//! With no files, the twelve bundled ASPs are checked. Options:
//!
//! * `--budget N` — state budget for the exploration (default 65536).
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--replay` — replay each file with a violated property through
//!   the two-router simulator and report whether the concrete traffic
//!   exhibits the predicted loop/drop/exception.
//! * `--baseline FILE` — compare each file's verdicts against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline file instead
//!   (an existing file's `witness=abstract` markers are preserved).
//!
//! A baseline line may end with `witness=abstract`, declaring that
//! file's Violated verdict a *conservative over-approximation*: its
//! counterexample needs conditions (e.g. repeated packet loss) the
//! clean replay topology never produces, so `--replay` confirmation is
//! waived for it. `reliable_relay.planp` is the canonical case — the
//! checker cannot prove its NACK/retransmit cycle terminates, but the
//! cycle only recurs while the network keeps losing the retransmission.
//!
//! Exit status: 0 on success, 1 on baseline mismatch or a predicted
//! violation that fails to replay (unless marked abstract), 2 on usage
//! or I/O errors.

use planp_analysis::diag::push_json_str;
use planp_analysis::modelcheck::{model_check, ModelCheckReport, DEFAULT_STATE_BUDGET};
use planp_analysis::summary::summarize;
use planp_runtime::replay_asp_traced;

struct Args {
    budget: usize,
    json: bool,
    replay: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget: DEFAULT_STATE_BUDGET,
        json: false,
        replay: false,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--budget" => {
                let v = value(&argv, i, "--budget")?;
                args.budget = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                i += 1;
            }
            "--json" => args.json = true,
            "--replay" => args.replay = true,
            "--baseline" => {
                args.baseline = Some(value(&argv, i, "--baseline")?);
                i += 1;
            }
            "--write-baseline" => {
                args.write_baseline = Some(value(&argv, i, "--write-baseline")?);
                i += 1;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?} (try --help)"));
            }
            file => args.files.push(file.to_string()),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "\
planp-modelcheck: exhaustively model-check PLAN-P files, render witnesses
usage: planp_modelcheck [options] [<file.planp>...]
  (no files: check the twelve bundled ASPs)
  --budget N             state budget (default 65536)
  --json                 byte-stable machine output
  --replay               replay violations through the simulator
  --baseline FILE        fail if verdicts differ from FILE; lines marked
                         witness=abstract waive replay confirmation
  --write-baseline FILE  regenerate FILE from current verdicts
";

/// Model-checking one source produced this.
struct FileResult {
    name: String,
    src: String,
    /// `Err` holds the front-end error (the file never reached the
    /// checker).
    report: Result<ModelCheckReport, planp_lang::error::LangError>,
    replay: Option<planp_runtime::ReplayReport>,
    /// ASCII span trees of the replay's probe packets (`--replay` only):
    /// the causal shape of the predicted loop/drop/exception.
    replay_trees: Option<String>,
}

impl FileResult {
    /// Verdict pair as baseline text, `error error` for front-end
    /// failures.
    fn verdict_line(&self) -> String {
        match &self.report {
            Ok(r) => format!(
                "{} termination={} delivery={}",
                self.name,
                r.termination.as_str(),
                r.delivery.as_str()
            ),
            Err(_) => format!("{} termination=error delivery=error", self.name),
        }
    }
}

fn check_source(name: &str, src: &str, budget: usize, replay: bool) -> FileResult {
    let report = match planp_lang::compile_front(src) {
        Ok(prog) => {
            let sum = summarize(&prog);
            Ok(model_check(&prog, &sum, budget))
        }
        Err(e) => Err(e),
    };
    // Replay only when the checker predicts a violation: the report
    // records whether the concrete traffic exhibits it.
    let traced = match (&report, replay) {
        (Ok(r), true) if !r.witnesses.is_empty() => replay_asp_traced(src).ok(),
        _ => None,
    };
    let (replay, replay_trees) = match traced {
        Some((rep, trees)) => (Some(rep), Some(trees)),
        None => (None, None),
    };
    FileResult {
        name: name.to_string(),
        src: src.to_string(),
        report,
        replay,
        replay_trees,
    }
}

fn print_human(r: &FileResult) {
    match &r.report {
        Ok(report) => {
            println!(
                "{}: termination {}, delivery {} ({} state(s), {} transition(s){})",
                r.name,
                report.termination.as_str(),
                report.delivery.as_str(),
                report.states,
                report.transitions,
                if report.exhausted {
                    ", budget exhausted"
                } else {
                    ""
                }
            );
            for w in &report.witnesses {
                for line in w.render(&r.src).lines() {
                    println!("  {line}");
                }
            }
        }
        Err(e) => println!("{}: front-end error\n  {}", r.name, e.render(&r.src)),
    }
    if let Some(rep) = &r.replay {
        println!(
            "  replay: sent {} dispatched {} delivered {} dropped {} errors {} \
             (loop {}, drop {}, exception {})",
            rep.sent,
            rep.dispatches,
            rep.delivered,
            rep.dropped,
            rep.errors,
            rep.confirmed_loop,
            rep.confirmed_drop,
            rep.confirmed_exception
        );
    }
    if let Some(trees) = &r.replay_trees {
        for line in trees.lines() {
            println!("    {line}");
        }
    }
}

fn write_json(results: &[FileResult], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"files\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(out, &r.name);
        out.push_str(",\"modelcheck\":");
        match &r.report {
            Ok(report) => report.write_json(&r.src, out),
            Err(e) => {
                out.push_str("{\"error\":");
                push_json_str(out, &e.message);
                out.push('}');
            }
        }
        match &r.replay {
            Some(rep) => {
                let _ = write!(
                    out,
                    ",\"replay\":{{\"sent\":{},\"dispatches\":{},\"delivered\":{},\"dropped\":{},\"errors\":{},\"confirmed_loop\":{},\"confirmed_drop\":{},\"confirmed_exception\":{}}}",
                    rep.sent,
                    rep.dispatches,
                    rep.delivered,
                    rep.dropped,
                    rep.errors,
                    rep.confirmed_loop,
                    rep.confirmed_drop,
                    rep.confirmed_exception
                );
            }
            None => out.push_str(",\"replay\":null"),
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// True if every predicted violation the replay ran for was exhibited
/// by the concrete traffic.
fn replays_confirm(r: &FileResult) -> bool {
    let (Ok(report), Some(rep)) = (&r.report, &r.replay) else {
        return true;
    };
    report.witnesses.iter().all(|w| rep.confirms(&w.kind))
}

/// The file names a baseline marks `witness=abstract` — their verdicts
/// are conservative over-approximations whose witnesses need conditions
/// the clean replay topology never produces (e.g. repeated loss), so
/// replay confirmation is waived for them.
fn abstract_witness_names(baseline: &str) -> std::collections::HashSet<String> {
    baseline
        .lines()
        .filter(|l| l.split_whitespace().any(|tok| tok == "witness=abstract"))
        .filter_map(|l| l.split_whitespace().next().map(str::to_string))
        .collect()
}

/// A baseline line reduced to its verdict triple (path + two verdicts),
/// dropping any trailing markers, for comparison against
/// [`FileResult::verdict_line`].
fn verdict_triple(line: &str) -> String {
    line.split_whitespace()
        .take(3)
        .collect::<Vec<_>>()
        .join(" ")
}

/// Renders the baseline file for `results`: one verdict line per ASP,
/// **sorted by name** — so the emitted file never depends on the argv
/// or shell-glob order the sources arrived in — with the
/// `witness=abstract` markers from `abstract_names` re-applied.
fn baseline_text(
    results: &[FileResult],
    abstract_names: &std::collections::HashSet<String>,
) -> String {
    let mut entries: Vec<(&str, String)> = results
        .iter()
        .map(|r| {
            let mut line = r.verdict_line();
            if abstract_names.contains(&r.name) {
                line.push_str(" witness=abstract");
            }
            (r.name.as_str(), line)
        })
        .collect();
    entries.sort_by(|a, b| a.0.cmp(b.0));
    let mut s: String = entries
        .into_iter()
        .map(|(_, line)| line)
        .collect::<Vec<_>>()
        .join("\n");
    s.push('\n');
    s
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-modelcheck: {e}");
            std::process::exit(2);
        }
    };

    let mut results = Vec::new();
    if args.files.is_empty() {
        for (name, src, _policy) in planp_bench::bundled_asps() {
            results.push(check_source(name, src, args.budget, args.replay));
        }
    } else {
        for path in &args.files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("planp-modelcheck: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            results.push(check_source(path, &src, args.budget, args.replay));
        }
    }

    if args.json {
        let mut out = String::new();
        write_json(&results, &mut out);
        println!("{out}");
    } else {
        for r in &results {
            print_human(r);
        }
    }

    let baseline = match &args.baseline {
        Some(path) => match std::fs::read_to_string(path) {
            Ok(s) => Some(s),
            Err(e) => {
                eprintln!("planp-modelcheck: cannot read {path}: {e}");
                std::process::exit(2);
            }
        },
        None => None,
    };
    let abstract_names = baseline
        .as_deref()
        .map(abstract_witness_names)
        .unwrap_or_default();

    let mut failed = false;
    for r in &results {
        if !replays_confirm(r) {
            if abstract_names.contains(&r.name) {
                eprintln!(
                    "planp-modelcheck: {}: witness is abstract per the baseline; \
                     replay confirmation waived",
                    r.name
                );
            } else {
                eprintln!(
                    "planp-modelcheck: {}: predicted violation did not replay",
                    r.name
                );
                failed = true;
            }
        }
    }

    if let Some(path) = &args.write_baseline {
        // Preserve the previous file's witness=abstract markers: the
        // checker cannot tell an abstract witness from a concrete one,
        // so regeneration must not silently drop the annotation.
        let old_abstract = std::fs::read_to_string(path)
            .map(|s| abstract_witness_names(&s))
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, baseline_text(&results, &old_abstract)) {
            eprintln!("planp-modelcheck: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    } else if let (Some(path), Some(expected)) = (&args.baseline, &baseline) {
        let actual = baseline_text(&results, &abstract_names);
        let expected_lines: Vec<String> = expected.lines().map(verdict_triple).collect();
        let actual_lines: Vec<String> = actual.lines().map(verdict_triple).collect();
        if expected_lines != actual_lines {
            eprintln!("planp-modelcheck: verdicts differ from {path}:");
            for (e, a) in expected_lines.iter().zip(actual_lines.iter()) {
                if e != a {
                    eprintln!("  - {e}\n  + {a}");
                }
            }
            let (en, an) = (expected_lines.len(), actual_lines.len());
            if en != an {
                eprintln!("  ({en} baseline line(s), {an} checked)");
            }
            failed = true;
        }
    }

    let violated = results
        .iter()
        .filter(|r| {
            r.report
                .as_ref()
                .map(|rep| !rep.witnesses.is_empty())
                .unwrap_or(true)
        })
        .count();
    eprintln!("{} file(s), {} with violations", results.len(), violated);
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    const FWD: &str = "channel network(ps : int, ss : unit, p : ip*udp*blob) is
  (OnRemote(network, p); (ps + 1, ss))";

    #[test]
    fn baseline_text_is_sorted_by_name_regardless_of_input_order() {
        let results: Vec<FileResult> = ["z.planp", "asps/a.planp", "asps/buggy/k.planp"]
            .iter()
            .map(|n| check_source(n, FWD, 1024, false))
            .collect();
        let text = baseline_text(&results, &HashSet::new());
        let names: Vec<&str> = text
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        assert_eq!(names, vec!["asps/a.planp", "asps/buggy/k.planp", "z.planp"]);

        // `witness=abstract` markers survive regeneration, still sorted.
        let marked: HashSet<String> = std::iter::once("z.planp".to_string()).collect();
        let text = baseline_text(&results, &marked);
        assert!(text.ends_with("z.planp termination=proved delivery=proved witness=abstract\n"));
    }
}
