//! `planp-modelcheck` — run the explicit-state model checker over
//! PLAN-P source files, render counterexample witnesses, optionally
//! replay them through the simulator, and gate CI on a verdict
//! baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_modelcheck -- \
//!     --replay --baseline asps/MODELCHECK_BASELINE.txt asps/*.planp
//! ```
//!
//! With no files, the twelve bundled ASPs are checked. Options:
//!
//! * `--budget N` — state budget for the exploration (default 65536).
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--replay` — replay each file with a violated property through
//!   the two-router simulator and report whether the concrete traffic
//!   exhibits the predicted loop/drop/exception.
//! * `--baseline FILE` — compare each file's verdicts against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline file instead.
//!
//! Exit status: 0 on success, 1 on baseline mismatch or a predicted
//! violation that fails to replay, 2 on usage or I/O errors.

use planp_analysis::diag::push_json_str;
use planp_analysis::modelcheck::{model_check, ModelCheckReport, DEFAULT_STATE_BUDGET};
use planp_analysis::summary::summarize;
use planp_runtime::replay_asp_traced;

struct Args {
    budget: usize,
    json: bool,
    replay: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
    files: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        budget: DEFAULT_STATE_BUDGET,
        json: false,
        replay: false,
        baseline: None,
        write_baseline: None,
        files: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--budget" => {
                let v = value(&argv, i, "--budget")?;
                args.budget = v.parse().map_err(|_| format!("bad budget {v:?}"))?;
                i += 1;
            }
            "--json" => args.json = true,
            "--replay" => args.replay = true,
            "--baseline" => {
                args.baseline = Some(value(&argv, i, "--baseline")?);
                i += 1;
            }
            "--write-baseline" => {
                args.write_baseline = Some(value(&argv, i, "--write-baseline")?);
                i += 1;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?} (try --help)"));
            }
            file => args.files.push(file.to_string()),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "\
planp-modelcheck: exhaustively model-check PLAN-P files, render witnesses
usage: planp_modelcheck [options] [<file.planp>...]
  (no files: check the twelve bundled ASPs)
  --budget N             state budget (default 65536)
  --json                 byte-stable machine output
  --replay               replay violations through the simulator
  --baseline FILE        fail if verdicts differ from FILE
  --write-baseline FILE  regenerate FILE from current verdicts
";

/// Model-checking one source produced this.
struct FileResult {
    name: String,
    src: String,
    /// `Err` holds the front-end error (the file never reached the
    /// checker).
    report: Result<ModelCheckReport, planp_lang::error::LangError>,
    replay: Option<planp_runtime::ReplayReport>,
    /// ASCII span trees of the replay's probe packets (`--replay` only):
    /// the causal shape of the predicted loop/drop/exception.
    replay_trees: Option<String>,
}

impl FileResult {
    /// Verdict pair as baseline text, `error error` for front-end
    /// failures.
    fn verdict_line(&self) -> String {
        match &self.report {
            Ok(r) => format!(
                "{} termination={} delivery={}",
                self.name,
                r.termination.as_str(),
                r.delivery.as_str()
            ),
            Err(_) => format!("{} termination=error delivery=error", self.name),
        }
    }
}

fn check_source(name: &str, src: &str, budget: usize, replay: bool) -> FileResult {
    let report = match planp_lang::compile_front(src) {
        Ok(prog) => {
            let sum = summarize(&prog);
            Ok(model_check(&prog, &sum, budget))
        }
        Err(e) => Err(e),
    };
    // Replay only when the checker predicts a violation: the report
    // records whether the concrete traffic exhibits it.
    let traced = match (&report, replay) {
        (Ok(r), true) if !r.witnesses.is_empty() => replay_asp_traced(src).ok(),
        _ => None,
    };
    let (replay, replay_trees) = match traced {
        Some((rep, trees)) => (Some(rep), Some(trees)),
        None => (None, None),
    };
    FileResult {
        name: name.to_string(),
        src: src.to_string(),
        report,
        replay,
        replay_trees,
    }
}

fn print_human(r: &FileResult) {
    match &r.report {
        Ok(report) => {
            println!(
                "{}: termination {}, delivery {} ({} state(s), {} transition(s){})",
                r.name,
                report.termination.as_str(),
                report.delivery.as_str(),
                report.states,
                report.transitions,
                if report.exhausted {
                    ", budget exhausted"
                } else {
                    ""
                }
            );
            for w in &report.witnesses {
                for line in w.render(&r.src).lines() {
                    println!("  {line}");
                }
            }
        }
        Err(e) => println!("{}: front-end error\n  {}", r.name, e.render(&r.src)),
    }
    if let Some(rep) = &r.replay {
        println!(
            "  replay: sent {} dispatched {} delivered {} dropped {} errors {} \
             (loop {}, drop {}, exception {})",
            rep.sent,
            rep.dispatches,
            rep.delivered,
            rep.dropped,
            rep.errors,
            rep.confirmed_loop,
            rep.confirmed_drop,
            rep.confirmed_exception
        );
    }
    if let Some(trees) = &r.replay_trees {
        for line in trees.lines() {
            println!("    {line}");
        }
    }
}

fn write_json(results: &[FileResult], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"files\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"path\":");
        push_json_str(out, &r.name);
        out.push_str(",\"modelcheck\":");
        match &r.report {
            Ok(report) => report.write_json(&r.src, out),
            Err(e) => {
                out.push_str("{\"error\":");
                push_json_str(out, &e.message);
                out.push('}');
            }
        }
        match &r.replay {
            Some(rep) => {
                let _ = write!(
                    out,
                    ",\"replay\":{{\"sent\":{},\"dispatches\":{},\"delivered\":{},\"dropped\":{},\"errors\":{},\"confirmed_loop\":{},\"confirmed_drop\":{},\"confirmed_exception\":{}}}",
                    rep.sent,
                    rep.dispatches,
                    rep.delivered,
                    rep.dropped,
                    rep.errors,
                    rep.confirmed_loop,
                    rep.confirmed_drop,
                    rep.confirmed_exception
                );
            }
            None => out.push_str(",\"replay\":null"),
        }
        out.push('}');
    }
    out.push_str("]}");
}

/// True if every predicted violation the replay ran for was exhibited
/// by the concrete traffic.
fn replays_confirm(r: &FileResult) -> bool {
    let (Ok(report), Some(rep)) = (&r.report, &r.replay) else {
        return true;
    };
    report.witnesses.iter().all(|w| rep.confirms(&w.kind))
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-modelcheck: {e}");
            std::process::exit(2);
        }
    };

    let mut results = Vec::new();
    if args.files.is_empty() {
        for (name, src, _policy) in planp_bench::bundled_asps() {
            results.push(check_source(name, src, args.budget, args.replay));
        }
    } else {
        for path in &args.files {
            let src = match std::fs::read_to_string(path) {
                Ok(s) => s,
                Err(e) => {
                    eprintln!("planp-modelcheck: cannot read {path}: {e}");
                    std::process::exit(2);
                }
            };
            results.push(check_source(path, &src, args.budget, args.replay));
        }
    }

    if args.json {
        let mut out = String::new();
        write_json(&results, &mut out);
        println!("{out}");
    } else {
        for r in &results {
            print_human(r);
        }
    }

    let mut failed = false;
    for r in &results {
        if !replays_confirm(r) {
            eprintln!(
                "planp-modelcheck: {}: predicted violation did not replay",
                r.name
            );
            failed = true;
        }
    }

    let baseline_text = || -> String {
        let mut s: String = results
            .iter()
            .map(|r| r.verdict_line())
            .collect::<Vec<_>>()
            .join("\n");
        s.push('\n');
        s
    };
    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, baseline_text()) {
            eprintln!("planp-modelcheck: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    } else if let Some(path) = &args.baseline {
        let expected = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("planp-modelcheck: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let actual = baseline_text();
        if expected != actual {
            eprintln!("planp-modelcheck: verdicts differ from {path}:");
            for (e, a) in expected.lines().zip(actual.lines()) {
                if e != a {
                    eprintln!("  - {e}\n  + {a}");
                }
            }
            let (en, an) = (expected.lines().count(), actual.lines().count());
            if en != an {
                eprintln!("  ({en} baseline line(s), {an} checked)");
            }
            failed = true;
        }
    }

    let violated = results
        .iter()
        .filter(|r| {
            r.report
                .as_ref()
                .map(|rep| !rep.witnesses.is_empty())
                .unwrap_or(true)
        })
        .count();
    eprintln!("{} file(s), {} with violations", results.len(), violated);
    if failed {
        std::process::exit(1);
    }
}
