//! `planp-plan` — verify the bundled deployment plans, render their
//! reports (joint product verdicts, composed path budgets, plan lints),
//! optionally replay plan-level witnesses over each plan's own
//! topology, and gate CI on a verdict baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_plan -- \
//!     --replay --baseline asps/PLAN_BASELINE.txt
//! ```
//!
//! With no names, every bundled plan (`asps/plans/`) is verified.
//! Options:
//!
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--replay` — replay each *rejected* plan concretely over its own
//!   topology and require the predicted joint loop to reproduce.
//!   Accepted plans are not replayed: a plan may record a conservative
//!   joint violation yet be accepted under the `authenticated` plan
//!   policy (`relay_chain_reliable` — its NACK cycle only recurs under
//!   loss), and clean replay traffic cannot confirm those.
//! * `--baseline FILE` — compare each plan's verdict line against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline (sorted by plan
//!   name) instead.
//!
//! Baseline lines read `<name> joint=<verdict> budget=<steps>
//! accepted=<yes|no>`.
//!
//! Exit status: 0 on success, 1 on baseline mismatch or a rejecting
//! witness that fails to replay, 2 on usage or I/O errors.

use planp_analysis::diag::push_json_str;
use planp_apps::plans::{bundled_plans, resolve_asp};
use planp_runtime::{load_plan, replay_plan, PlanImage, ReplayReport};

struct Args {
    json: bool,
    replay: bool,
    baseline: Option<String>,
    write_baseline: Option<String>,
    names: Vec<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        json: false,
        replay: false,
        baseline: None,
        write_baseline: None,
        names: Vec::new(),
    };
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
        argv.get(i + 1)
            .cloned()
            .ok_or_else(|| format!("{flag} needs a value"))
    };
    let mut i = 0;
    while i < argv.len() {
        match argv[i].as_str() {
            "--json" => args.json = true,
            "--replay" => args.replay = true,
            "--baseline" => {
                args.baseline = Some(value(&argv, i, "--baseline")?);
                i += 1;
            }
            "--write-baseline" => {
                args.write_baseline = Some(value(&argv, i, "--write-baseline")?);
                i += 1;
            }
            "--help" | "-h" => {
                print!("{HELP}");
                std::process::exit(0);
            }
            flag if flag.starts_with("--") => {
                return Err(format!("unknown argument {flag:?} (try --help)"));
            }
            name => args.names.push(name.to_string()),
        }
        i += 1;
    }
    Ok(args)
}

const HELP: &str = "\
planp-plan: statically verify the bundled deployment plans
usage: planp_plan [options] [<plan name>...]
  (no names: verify every bundled plan)
  --json                 byte-stable machine output
  --replay               replay rejected plans over their own topology
  --baseline FILE        fail if verdict lines differ from FILE
  --write-baseline FILE  regenerate FILE (sorted by plan name)
";

/// Verifying one plan produced this.
struct PlanResult {
    name: &'static str,
    src: &'static str,
    image: PlanImage,
    replay: Option<ReplayReport>,
}

impl PlanResult {
    /// `<name> joint=<verdict> budget=<steps> accepted=<yes|no>`.
    fn verdict_line(&self) -> String {
        let r = &self.image.report;
        format!(
            "{} joint={} budget={} accepted={}",
            self.name,
            r.joint.as_str(),
            r.max_budget(),
            if r.accepted() { "yes" } else { "no" }
        )
    }
}

/// Baseline text: one verdict line per plan, sorted by name.
fn baseline_text(results: &[PlanResult]) -> String {
    let mut lines: Vec<String> = results.iter().map(PlanResult::verdict_line).collect();
    lines.sort();
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

fn write_json(results: &[PlanResult], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"plans\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, r.name);
        out.push_str(",\"report\":");
        r.image.report.write_json(r.src, out);
        out.push_str(",\"replay\":");
        match &r.replay {
            None => out.push_str("null"),
            Some(rep) => {
                let _ = write!(
                    out,
                    "{{\"sent\":{},\"dispatches\":{},\"delivered\":{},\"dropped\":{},\
                     \"errors\":{},\"confirmed_loop\":{}}}",
                    rep.sent,
                    rep.dispatches,
                    rep.delivered,
                    rep.dropped,
                    rep.errors,
                    rep.confirmed_loop
                );
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

fn print_human(r: &PlanResult) {
    print!("{}", r.image.report.render(r.src));
    if let Some(rep) = &r.replay {
        println!(
            "  replay: sent {} dispatched {} delivered {} dropped {} errors {} (loop {})",
            rep.sent, rep.dispatches, rep.delivered, rep.dropped, rep.errors, rep.confirmed_loop
        );
    }
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("planp-plan: {e}");
            std::process::exit(2);
        }
    };

    let all = bundled_plans();
    let selected: Vec<(&'static str, &'static str)> = if args.names.is_empty() {
        all
    } else {
        let mut sel = Vec::new();
        for want in &args.names {
            match all.iter().find(|(n, _)| n == want) {
                Some(&p) => sel.push(p),
                None => {
                    eprintln!("planp-plan: no bundled plan {want:?}");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let mut failed = false;
    let mut results = Vec::new();
    for (name, src) in selected {
        let image = match load_plan(src, &resolve_asp) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("planp-plan: {name}: {e}");
                std::process::exit(2);
            }
        };
        // Rejected plans carry witnesses that must reproduce concretely;
        // accepted ones are never replayed (see module docs).
        let replay = if args.replay && !image.report.accepted() {
            match replay_plan(&image) {
                Ok(rep) => {
                    if !rep.confirmed_loop {
                        eprintln!("planp-plan: {name}: predicted joint loop did not replay");
                        failed = true;
                    }
                    Some(rep)
                }
                Err(e) => {
                    eprintln!("planp-plan: {name}: replay failed: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            None
        };
        results.push(PlanResult {
            name,
            src,
            image,
            replay,
        });
    }

    if args.json {
        let mut out = String::new();
        write_json(&results, &mut out);
        println!("{out}");
    } else {
        for r in &results {
            print_human(r);
        }
    }

    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, baseline_text(&results)) {
            eprintln!("planp-plan: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
    } else if let Some(path) = &args.baseline {
        let expected = match std::fs::read_to_string(path) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("planp-plan: cannot read {path}: {e}");
                std::process::exit(2);
            }
        };
        let actual = baseline_text(&results);
        if expected != actual {
            eprintln!("planp-plan: verdicts differ from {path}:");
            for (e, a) in expected.lines().zip(actual.lines()) {
                if e != a {
                    eprintln!("  - {e}\n  + {a}");
                }
            }
            let (en, an) = (expected.lines().count(), actual.lines().count());
            if en != an {
                eprintln!("  ({en} baseline line(s), {an} checked)");
            }
            failed = true;
        }
    }

    let rejected = results
        .iter()
        .filter(|r| !r.image.report.accepted())
        .count();
    eprintln!("{} plan(s), {} rejected", results.len(), rejected);
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_text_is_sorted_and_stable() {
        let mut results: Vec<PlanResult> = bundled_plans()
            .into_iter()
            .map(|(name, src)| PlanResult {
                name,
                src,
                image: load_plan(src, &resolve_asp).expect("bundled plan loads"),
                replay: None,
            })
            .collect();
        let sorted = baseline_text(&results);
        results.reverse();
        assert_eq!(
            sorted,
            baseline_text(&results),
            "baseline order must not depend on verification order"
        );
        let names: Vec<&str> = sorted
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let mut expect = names.clone();
        expect.sort_unstable();
        assert_eq!(names, expect);
    }
}
