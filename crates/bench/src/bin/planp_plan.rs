//! `planp-plan` — verify the bundled deployment plans, render their
//! reports (joint product verdicts, composed path budgets, plan lints),
//! optionally replay plan-level witnesses over each plan's own
//! topology, and gate CI on a verdict baseline.
//!
//! ```text
//! cargo run --release -p planp-bench --bin planp_plan -- \
//!     --replay --baseline asps/PLAN_BASELINE.txt
//! ```
//!
//! With no names, every bundled plan (`asps/plans/`) is verified.
//! Options:
//!
//! * `--json` — one byte-stable JSON document on stdout.
//! * `--replay` — replay each *rejected* plan concretely over its own
//!   topology and require the predicted joint loop to reproduce.
//!   Accepted plans are not replayed: a plan may record a conservative
//!   joint violation yet be accepted under the `authenticated` plan
//!   policy (`relay_chain_reliable` — its NACK cycle only recurs under
//!   loss), and clean replay traffic cannot confirm those.
//! * `--baseline FILE` — compare each plan's verdict line against the
//!   checked-in baseline; exit 1 on any difference (the CI gate).
//! * `--write-baseline FILE` — regenerate the baseline (sorted by plan
//!   name) instead.
//!
//! Baseline lines read `<name> joint=<verdict> budget=<steps>
//! accepted=<yes|no>`.
//!
//! Exit status: 0 on success, 1 on baseline mismatch or a rejecting
//! witness that fails to replay, 2 on usage or I/O errors.

use planp_analysis::diag::push_json_str;
use planp_apps::plans::{bundled_plans, resolve_asp};
use planp_bench::{baseline_gate, Cli};
use planp_runtime::{load_plan, replay_plan, PlanImage, ReplayReport};

const CLI: Cli = Cli {
    bin: "planp-plan",
    help: HELP,
    flags: &["--replay"],
    value_flags: &[],
};

const HELP: &str = "\
planp-plan: statically verify the bundled deployment plans
usage: planp_plan [options] [<plan name>...]
  (no names: verify every bundled plan)
  --json                 byte-stable machine output
  --replay               replay rejected plans over their own topology
  --baseline FILE        fail if verdict lines differ from FILE
  --write-baseline FILE  regenerate FILE (sorted by plan name)
";

/// Verifying one plan produced this.
struct PlanResult {
    name: &'static str,
    src: &'static str,
    image: PlanImage,
    replay: Option<ReplayReport>,
}

impl PlanResult {
    /// `<name> joint=<verdict> budget=<steps> accepted=<yes|no>`.
    fn verdict_line(&self) -> String {
        let r = &self.image.report;
        format!(
            "{} joint={} budget={} accepted={}",
            self.name,
            r.joint.as_str(),
            r.max_budget(),
            if r.accepted() { "yes" } else { "no" }
        )
    }
}

/// Baseline text: one verdict line per plan, sorted by name.
fn baseline_text(results: &[PlanResult]) -> String {
    let mut lines: Vec<String> = results.iter().map(PlanResult::verdict_line).collect();
    lines.sort();
    let mut s = lines.join("\n");
    s.push('\n');
    s
}

fn write_json(results: &[PlanResult], out: &mut String) {
    use std::fmt::Write as _;
    out.push_str("{\"plans\":[");
    for (i, r) in results.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"name\":");
        push_json_str(out, r.name);
        out.push_str(",\"report\":");
        r.image.report.write_json(r.src, out);
        out.push_str(",\"replay\":");
        match &r.replay {
            None => out.push_str("null"),
            Some(rep) => {
                let _ = write!(
                    out,
                    "{{\"sent\":{},\"dispatches\":{},\"delivered\":{},\"dropped\":{},\
                     \"errors\":{},\"confirmed_loop\":{}}}",
                    rep.sent,
                    rep.dispatches,
                    rep.delivered,
                    rep.dropped,
                    rep.errors,
                    rep.confirmed_loop
                );
            }
        }
        out.push('}');
    }
    out.push_str("]}");
}

fn print_human(r: &PlanResult) {
    print!("{}", r.image.report.render(r.src));
    if let Some(rep) = &r.replay {
        println!(
            "  replay: sent {} dispatched {} delivered {} dropped {} errors {} (loop {})",
            rep.sent, rep.dispatches, rep.delivered, rep.dropped, rep.errors, rep.confirmed_loop
        );
    }
}

fn main() {
    let args = CLI.parse_or_exit();
    let replay_rejected = args.flag("--replay");

    let all = bundled_plans();
    let selected: Vec<(&'static str, &'static str)> = if args.positionals.is_empty() {
        all
    } else {
        let mut sel = Vec::new();
        for want in &args.positionals {
            match all.iter().find(|(n, _)| n == want) {
                Some(&p) => sel.push(p),
                None => {
                    eprintln!("planp-plan: no bundled plan {want:?}");
                    std::process::exit(2);
                }
            }
        }
        sel
    };

    let mut failed = false;
    let mut results = Vec::new();
    for (name, src) in selected {
        let image = match load_plan(src, &resolve_asp) {
            Ok(i) => i,
            Err(e) => {
                eprintln!("planp-plan: {name}: {e}");
                std::process::exit(2);
            }
        };
        // Rejected plans carry witnesses that must reproduce concretely;
        // accepted ones are never replayed (see module docs).
        let replay = if replay_rejected && !image.report.accepted() {
            match replay_plan(&image) {
                Ok(rep) => {
                    if !rep.confirmed_loop {
                        eprintln!("planp-plan: {name}: predicted joint loop did not replay");
                        failed = true;
                    }
                    Some(rep)
                }
                Err(e) => {
                    eprintln!("planp-plan: {name}: replay failed: {e}");
                    std::process::exit(2);
                }
            }
        } else {
            None
        };
        results.push(PlanResult {
            name,
            src,
            image,
            replay,
        });
    }

    if args.json {
        let mut out = String::new();
        write_json(&results, &mut out);
        println!("{out}");
    } else {
        for r in &results {
            print_human(r);
        }
    }

    failed |= baseline_gate("planp-plan", &args, &baseline_text(&results));

    let rejected = results
        .iter()
        .filter(|r| !r.image.report.accepted())
        .count();
    eprintln!("{} plan(s), {} rejected", results.len(), rejected);
    if failed {
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_text_is_sorted_and_stable() {
        let mut results: Vec<PlanResult> = bundled_plans()
            .into_iter()
            .map(|(name, src)| PlanResult {
                name,
                src,
                image: load_plan(src, &resolve_asp).expect("bundled plan loads"),
                replay: None,
            })
            .collect();
        let sorted = baseline_text(&results);
        results.reverse();
        assert_eq!(
            sorted,
            baseline_text(&results),
            "baseline order must not depend on verification order"
        );
        let names: Vec<&str> = sorted
            .lines()
            .filter_map(|l| l.split_whitespace().next())
            .collect();
        let mut expect = names.clone();
        expect.sort_unstable();
        assert_eq!(names, expect);
    }
}
