//! Ablation: audio bandwidth-adaptation policies (paper section 3.1:
//! "strategies can be quickly developed and experimented with" — the
//! PLAN-P program in the experiment was written in one day).
//!
//! ```text
//! cargo run --release -p planp-bench --bin adaptation_policies_table
//! ```

use planp_apps::audio::{
    run_audio, Adaptation, AudioConfig, LoadPhase, AUDIO_ROUTER_ASP,
    AUDIO_ROUTER_HYSTERESIS_ASP, AUDIO_ROUTER_QUEUE_ASP,
};
use planp_bench::render_table;

fn run(router_src: Option<&'static str>, kbps: u64) -> planp_apps::audio::AudioResult {
    run_audio(&AudioConfig {
        adaptation: Adaptation::AspJit,
        phases: vec![LoadPhase { from_s: 5.0, to_s: 90.0, kbps }],
        jitter_pct: 6,
        duration_s: 90,
        seed: 7,
        router_src,
        dual_segment: false,
    })
}

fn main() {
    println!("Audio adaptation policies under medium (7750 kb/s) and large (9560 kb/s) load\n");

    let policies: [(&str, Option<&'static str>); 3] = [
        ("utilization (paper's)", None),
        ("hysteresis", Some(AUDIO_ROUTER_HYSTERESIS_ASP)),
        ("queue length", Some(AUDIO_ROUTER_QUEUE_ASP)),
    ];

    for (label, kbps) in [("medium", 7750u64), ("large", 9560)] {
        let mut rows = Vec::new();
        for (name, src) in policies {
            let r = run(src, kbps);
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", r.avg_kbps(10.0, 90.0)),
                r.stats.format_changes.to_string(),
                r.stats.gaps.to_string(),
                r.segment_drops.to_string(),
            ]);
        }
        println!("{label} load:");
        println!(
            "{}",
            render_table(
                &["policy", "audio kb/s", "format flaps", "gaps", "drops"],
                &rows
            )
        );
    }
    println!("expected shape: hysteresis trades a little bandwidth for far fewer format");
    println!("flaps at medium load; all policies protect playback under large load.");

    // Line counts: writing a new policy is a ~40-line affair (the
    // paper's one-day-turnaround claim).
    for (name, src) in [
        ("utilization", AUDIO_ROUTER_ASP),
        ("hysteresis", AUDIO_ROUTER_HYSTERESIS_ASP),
        ("queue", AUDIO_ROUTER_QUEUE_ASP),
    ] {
        println!("  {name}: {} lines of PLAN-P", planp_lang::count_lines(src));
    }
}
