//! Ablation: audio bandwidth-adaptation policies (paper section 3.1:
//! "strategies can be quickly developed and experimented with" — the
//! PLAN-P program in the experiment was written in one day).
//!
//! ```text
//! cargo run --release -p planp-bench --bin adaptation_policies_table
//! ```

use planp_apps::audio::{
    run_audio_traced, Adaptation, AudioConfig, LoadPhase, AUDIO_ROUTER_ASP,
    AUDIO_ROUTER_HYSTERESIS_ASP, AUDIO_ROUTER_QUEUE_ASP,
};
use planp_bench::{emit_bench, render_table, BenchOpts};
use planp_telemetry::{MetricsSnapshot, TraceConfig};

fn run(
    router_src: Option<&'static str>,
    kbps: u64,
) -> (planp_apps::audio::AudioResult, MetricsSnapshot) {
    let (r, _telemetry, metrics) = run_audio_traced(
        &AudioConfig {
            adaptation: Adaptation::AspJit,
            phases: vec![LoadPhase {
                from_s: 5.0,
                to_s: 90.0,
                kbps,
            }],
            jitter_pct: 6,
            duration_s: 90,
            seed: 7,
            router_src,
            dual_segment: false,
            segment_faults: None,
        },
        TraceConfig::default(),
    );
    (r, metrics)
}

fn main() {
    let opts = BenchOpts::from_args();
    println!("Audio adaptation policies under medium (7750 kb/s) and large (9560 kb/s) load\n");

    let policies: [(&str, Option<&'static str>); 3] = [
        ("utilization (paper's)", None),
        ("hysteresis", Some(AUDIO_ROUTER_HYSTERESIS_ASP)),
        ("queue length", Some(AUDIO_ROUTER_QUEUE_ASP)),
    ];

    let mut scalars: Vec<(String, f64)> = Vec::new();
    let mut paper_metrics = MetricsSnapshot::default();
    for (label, kbps) in [("medium", 7750u64), ("large", 9560)] {
        let mut rows = Vec::new();
        for (name, src) in policies {
            let (r, metrics) = run(src, kbps);
            let key = name.split_whitespace().next().unwrap_or(name);
            scalars.push((format!("{key}_{label}_kbps"), r.avg_kbps(10.0, 90.0)));
            scalars.push((
                format!("{key}_{label}_flaps"),
                r.stats.format_changes as f64,
            ));
            if src.is_none() && kbps == 9560 {
                paper_metrics = metrics;
            }
            rows.push(vec![
                name.to_string(),
                format!("{:.0}", r.avg_kbps(10.0, 90.0)),
                r.stats.format_changes.to_string(),
                r.stats.gaps.to_string(),
                r.segment_drops.to_string(),
            ]);
        }
        println!("{label} load:");
        println!(
            "{}",
            render_table(
                &["policy", "audio kb/s", "format flaps", "gaps", "drops"],
                &rows
            )
        );
    }
    println!("expected shape: hysteresis trades a little bandwidth for far fewer format");
    println!("flaps at medium load; all policies protect playback under large load.");

    // Line counts: writing a new policy is a ~40-line affair (the
    // paper's one-day-turnaround claim).
    for (name, src) in [
        ("utilization", AUDIO_ROUTER_ASP),
        ("hysteresis", AUDIO_ROUTER_HYSTERESIS_ASP),
        ("queue", AUDIO_ROUTER_QUEUE_ASP),
    ] {
        println!("  {name}: {} lines of PLAN-P", planp_lang::count_lines(src));
    }

    let scalar_refs: Vec<(&str, f64)> = scalars.iter().map(|(k, v)| (k.as_str(), *v)).collect();
    emit_bench(
        opts,
        "adaptation_policies_table",
        &scalar_refs,
        &paper_metrics,
    );
}
