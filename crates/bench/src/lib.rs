//! # planp-bench — the evaluation harness
//!
//! One target per table/figure of the paper's evaluation:
//!
//! | paper | target |
//! |---|---|
//! | Fig. 3 (code generation time) | `benches/fig3_codegen.rs`, `bin/fig3_codegen_table` |
//! | §2.4 / bridge claim: "ASP as fast as built-in C" | `benches/jit_vs_native.rs` |
//! | Fig. 6 (audio bandwidth adaptation) | `bin/fig6_audio_bandwidth` |
//! | Fig. 7 (silent periods) | `bin/fig7_audio_gaps` |
//! | Fig. 8 (HTTP cluster throughput) | `bin/fig8_http_perf` |
//! | §3.3 (multipoint MPEG) | `bin/mpeg_sharing_table` |

#![warn(missing_docs)]

pub mod cli;

pub use cli::{baseline_gate, sample_from_cli, Cli, CliArgs};

use planp_analysis::Policy;
use planp_telemetry::MetricsSnapshot;

/// The five PLAN-P programs measured by the paper's figure 3, with the
/// verification policy each loads under.
pub fn paper_programs() -> Vec<(&'static str, &'static str, Policy)> {
    vec![
        (
            "Audio Broadcasting (router)",
            planp_apps::audio::AUDIO_ROUTER_ASP,
            Policy::strict(),
        ),
        (
            "Audio Broadcasting (client)",
            planp_apps::audio::AUDIO_CLIENT_ASP,
            Policy::strict(),
        ),
        (
            "Extensible Web Server",
            planp_apps::http::HTTP_GATEWAY_ASP,
            Policy::strict(),
        ),
        (
            "MPEG (monitor)",
            planp_apps::mpeg::MPEG_MONITOR_ASP,
            Policy::no_delivery(),
        ),
        (
            "MPEG (client)",
            planp_apps::mpeg::MPEG_CAPTURE_ASP,
            Policy::no_delivery(),
        ),
    ]
}

/// Every bundled ASP — the eleven embedded application programs plus
/// the standalone forwarder — with the weakest policy each satisfies.
/// This is the corpus the model-checking harness (`planp_modelcheck`)
/// and the figure-3 `--report` sweep run over.
pub fn bundled_asps() -> Vec<(&'static str, &'static str, Policy)> {
    vec![
        (
            "audio_router",
            planp_apps::audio::AUDIO_ROUTER_ASP,
            Policy::no_delivery(),
        ),
        (
            "audio_client",
            planp_apps::audio::AUDIO_CLIENT_ASP,
            Policy::no_delivery(),
        ),
        (
            "audio_router_hysteresis",
            planp_apps::audio::AUDIO_ROUTER_HYSTERESIS_ASP,
            Policy::no_delivery(),
        ),
        (
            "audio_router_queue",
            planp_apps::audio::AUDIO_ROUTER_QUEUE_ASP,
            Policy::no_delivery(),
        ),
        (
            "http_gateway",
            planp_apps::http::HTTP_GATEWAY_ASP,
            Policy::no_delivery(),
        ),
        (
            "http_gateway_3srv",
            planp_apps::http::HTTP_GATEWAY_3SRV_ASP,
            Policy::no_delivery(),
        ),
        (
            "http_gateway_random",
            planp_apps::http::HTTP_GATEWAY_RANDOM_ASP,
            Policy::no_delivery(),
        ),
        (
            "http_gateway_porthash",
            planp_apps::http::HTTP_GATEWAY_PORTHASH_ASP,
            Policy::no_delivery(),
        ),
        (
            "http_gateway_failover",
            planp_apps::http::HTTP_GATEWAY_FAILOVER_ASP,
            Policy::no_delivery(),
        ),
        (
            "mpeg_monitor",
            planp_apps::mpeg::MPEG_MONITOR_ASP,
            Policy::no_delivery(),
        ),
        (
            "mpeg_capture",
            planp_apps::mpeg::MPEG_CAPTURE_ASP,
            Policy::no_delivery(),
        ),
        (
            "forwarder",
            include_str!("../../../asps/forwarder.planp"),
            Policy::no_delivery(),
        ),
    ]
}

/// The paper's figure 3 reference values: (lines, codegen milliseconds)
/// on a 1998 SPARC with Tempo's template assembler.
pub const PAPER_FIG3: [(&str, u32, f64); 5] = [
    ("Audio Broadcasting (router)", 68, 11.0),
    ("Audio Broadcasting (client)", 28, 6.2),
    ("Extensible Web Server", 91, 15.3),
    ("MPEG (monitor)", 161, 33.9),
    ("MPEG (client)", 53, 6.1),
];

/// Telemetry output options shared by every bench bin.
///
/// * `--report` prints the run's metrics snapshot as a table after the
///   figure itself.
/// * `--json` (or `PLANP_BENCH_JSON=1`) writes a deterministic
///   `BENCH_<name>.json` file — headline scalars plus the full metrics
///   snapshot — in the current directory, for machine consumption (the
///   CI workflow uploads these as artifacts).
#[derive(Debug, Clone, Copy, Default)]
pub struct BenchOpts {
    /// Write `BENCH_<name>.json`.
    pub json: bool,
    /// Print the metrics table on stdout.
    pub report: bool,
}

impl BenchOpts {
    /// Parses `--json` / `--report` from the process arguments; the
    /// `PLANP_BENCH_JSON=1` environment variable also enables `json`.
    pub fn from_args() -> Self {
        let mut opts = BenchOpts::default();
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--json" => opts.json = true,
                "--report" => opts.report = true,
                _ => {}
            }
        }
        if std::env::var("PLANP_BENCH_JSON").as_deref() == Ok("1") {
            opts.json = true;
        }
        opts
    }

    /// Builds the options from an already-parsed shared [`cli::Cli`]
    /// command line (`--json` is a shared flag; `--report` must be in
    /// the bin's `flags`). `PLANP_BENCH_JSON=1` still enables `json`.
    pub fn from_cli(args: &cli::CliArgs) -> Self {
        BenchOpts {
            json: args.json
                || std::env::var("PLANP_BENCH_JSON").as_deref() == Ok("1"),
            report: args.flag("--report"),
        }
    }
}

/// Emits a bench bin's telemetry per `opts`: the metrics table on
/// stdout (`--report`) and/or a `BENCH_<name>.json` snapshot in the
/// current directory (`--json`). Returns the path written, if any.
pub fn emit_bench(
    opts: BenchOpts,
    name: &str,
    scalars: &[(&str, f64)],
    metrics: &MetricsSnapshot,
) -> Option<std::path::PathBuf> {
    if opts.report {
        println!("--- metrics: {name} ---");
        print!("{}", metrics.render_table());
    }
    if !opts.json {
        return None;
    }
    let path = std::path::PathBuf::from(format!("BENCH_{name}.json"));
    let body = planp_telemetry::metrics::bench_json(name, scalars, metrics);
    match std::fs::write(&path, body) {
        Ok(()) => {
            eprintln!("wrote {}", path.display());
            Some(path)
        }
        Err(e) => {
            eprintln!("could not write {}: {e}", path.display());
            None
        }
    }
}

/// Renders a program's static-analysis summary — problem-size stats
/// plus the verifier's per-channel worst-case cost bounds — for the
/// `--report` output of the bench bins.
pub fn render_analysis_report(name: &str, report: &planp_analysis::VerifyReport) -> String {
    let mut out = format!("--- analysis: {name} ---\n");
    out.push_str(&format!("problem size: {}\n", report.stats));
    if let Some(mc) = &report.exhaustive {
        out.push_str(&format!(
            "exhaustive:   termination {}, delivery {} ({} state(s), {} transition(s))\n",
            mc.termination.as_str(),
            mc.delivery.as_str(),
            mc.states,
            mc.transitions
        ));
    }
    for c in &report.cost.channels {
        out.push_str(&format!("channel {}#{}: {}\n", c.name, c.overload, c.bound));
    }
    out
}

/// Renders an aligned text table (simple two-space separation).
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_runtime::load;

    #[test]
    fn all_five_paper_programs_load() {
        for (name, src, policy) in paper_programs() {
            let lp = load(src, policy).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(lp.lines > 10, "{name} suspiciously short");
        }
    }

    #[test]
    fn analysis_report_shows_stats_and_bounds() {
        let (name, src, policy) = paper_programs().remove(0);
        let prog = planp_lang::compile_front(src).unwrap();
        let report = planp_analysis::verify(&prog, policy);
        let s = render_analysis_report(name, &report);
        assert!(s.contains("problem size:"), "{s}");
        assert!(s.contains("channel network#0: <="), "{s}");
        assert!(s.contains("send site(s)"), "{s}");
    }

    #[test]
    fn table_renders_aligned() {
        let t = render_table(
            &["name", "n"],
            &[
                vec!["a".into(), "1".into()],
                vec!["long-name".into(), "22".into()],
            ],
        );
        assert!(t.contains("long-name"));
        assert_eq!(t.lines().count(), 4);
    }
}
