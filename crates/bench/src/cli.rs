//! Shared command-line plumbing for the baseline-gated bench bins.
//!
//! `planp_state`, `planp_plan`, and `planp_profile` all follow the same
//! conventions: `--json` for byte-stable machine output, `--baseline
//! FILE` to gate CI on a checked-in verdict file, `--write-baseline
//! FILE` to regenerate it, exit status 2 on usage or I/O errors and 1
//! on a baseline mismatch. This module holds the argument parser and
//! the baseline compare/write logic once, so the bins only declare
//! their extra flags and their verdict text.

/// A bin's argument vocabulary: the shared flags plus its extras.
pub struct Cli {
    /// Bin name used as the prefix of error messages (`planp-state:`).
    pub bin: &'static str,
    /// Full `--help` text, printed verbatim.
    pub help: &'static str,
    /// Extra boolean flags beyond `--json` (e.g. `--replay`).
    pub flags: &'static [&'static str],
    /// Extra value-taking flags beyond `--baseline` /
    /// `--write-baseline` (e.g. `--flame`).
    pub value_flags: &'static [&'static str],
}

/// A parsed command line.
#[derive(Debug, Default)]
pub struct CliArgs {
    /// `--json`: byte-stable machine output.
    pub json: bool,
    /// `--baseline FILE`: compare verdicts, exit 1 on difference.
    pub baseline: Option<String>,
    /// `--write-baseline FILE`: regenerate the baseline instead.
    pub write_baseline: Option<String>,
    /// Extra boolean flags that were present.
    flags: Vec<&'static str>,
    /// Extra value flags with their values.
    values: Vec<(&'static str, String)>,
    /// Everything that was not a flag, in order.
    pub positionals: Vec<String>,
}

impl CliArgs {
    /// Was the extra boolean flag present?
    pub fn flag(&self, name: &str) -> bool {
        self.flags.contains(&name)
    }

    /// The extra value flag's value, if given (last occurrence wins).
    pub fn value(&self, name: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(f, _)| *f == name)
            .map(|(_, v)| v.as_str())
    }
}

impl Cli {
    /// Parses the process arguments; prints `--help` and exits 0, or
    /// prints the parse error and exits 2.
    pub fn parse_or_exit(&self) -> CliArgs {
        let argv: Vec<String> = std::env::args().skip(1).collect();
        if argv.iter().any(|a| a == "--help" || a == "-h") {
            print!("{}", self.help);
            std::process::exit(0);
        }
        match self.parse_from(&argv) {
            Ok(a) => a,
            Err(e) => {
                eprintln!("{}: {e}", self.bin);
                std::process::exit(2);
            }
        }
    }

    /// The pure parse (no process exit), for the bins' own tests.
    pub fn parse_from(&self, argv: &[String]) -> Result<CliArgs, String> {
        let mut args = CliArgs::default();
        let value = |argv: &[String], i: usize, flag: &str| -> Result<String, String> {
            argv.get(i + 1)
                .cloned()
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        let mut i = 0;
        while i < argv.len() {
            let arg = argv[i].as_str();
            if arg == "--json" {
                args.json = true;
            } else if arg == "--baseline" {
                args.baseline = Some(value(argv, i, "--baseline")?);
                i += 1;
            } else if arg == "--write-baseline" {
                args.write_baseline = Some(value(argv, i, "--write-baseline")?);
                i += 1;
            } else if let Some(f) = self.flags.iter().find(|f| **f == arg) {
                args.flags.push(f);
            } else if let Some(f) = self.value_flags.iter().find(|f| **f == arg) {
                args.values.push((f, value(argv, i, f)?));
                i += 1;
            } else if arg.starts_with("--") {
                return Err(format!("unknown argument {arg:?} (try --help)"));
            } else {
                args.positionals.push(arg.to_string());
            }
            i += 1;
        }
        Ok(args)
    }
}

/// Applies the `--write-baseline` / `--baseline` convention to the
/// byte-stable verdict text `actual`. Returns `true` when the compare
/// failed (the caller exits 1 after its summary line); exits 2 on I/O
/// errors.
pub fn baseline_gate(bin: &str, args: &CliArgs, actual: &str) -> bool {
    if let Some(path) = &args.write_baseline {
        if let Err(e) = std::fs::write(path, actual) {
            eprintln!("{bin}: cannot write {path}: {e}");
            std::process::exit(2);
        }
        eprintln!("wrote {path}");
        return false;
    }
    let Some(path) = &args.baseline else {
        return false;
    };
    let expected = match std::fs::read_to_string(path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{bin}: cannot read {path}: {e}");
            std::process::exit(2);
        }
    };
    if expected == actual {
        return false;
    }
    eprintln!("{bin}: verdicts differ from {path}:");
    eprint!("{}", render_diff(&expected, actual));
    true
}

/// The pairwise line diff the baseline gate prints on a mismatch.
pub fn render_diff(expected: &str, actual: &str) -> String {
    let mut out = String::new();
    for (e, a) in expected.lines().zip(actual.lines()) {
        if e != a {
            out.push_str(&format!("  - {e}\n  + {a}\n"));
        }
    }
    let (en, an) = (expected.lines().count(), actual.lines().count());
    if en != an {
        out.push_str(&format!("  ({en} baseline line(s), {an} checked)\n"));
    }
    out
}

/// Resolves a parsed `--sample 1/N` value flag (declared in the bin's
/// [`Cli::value_flags`]); returns 1 when absent and exits 2 on a
/// malformed rate.
pub fn sample_from_cli(bin: &str, args: &CliArgs) -> u32 {
    let Some(spec) = args.value("--sample") else {
        return 1;
    };
    match planp_telemetry::TraceConfig::parse_sample(spec) {
        Ok(n) => n,
        Err(e) => {
            eprintln!("{bin}: {e}");
            std::process::exit(2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &[&str]) -> Vec<String> {
        s.iter().map(|a| a.to_string()).collect()
    }

    const CLI: Cli = Cli {
        bin: "planp-test",
        help: "help\n",
        flags: &["--replay"],
        value_flags: &["--flame"],
    };

    #[test]
    fn parses_shared_and_extra_flags() {
        let a = CLI
            .parse_from(&argv(&[
                "--json",
                "--replay",
                "--flame",
                "out.txt",
                "--baseline",
                "B",
                "x.planp",
            ]))
            .unwrap();
        assert!(a.json);
        assert!(a.flag("--replay"));
        assert_eq!(a.value("--flame"), Some("out.txt"));
        assert_eq!(a.baseline.as_deref(), Some("B"));
        assert!(a.write_baseline.is_none());
        assert_eq!(a.positionals, vec!["x.planp"]);
    }

    #[test]
    fn rejects_unknown_flags_and_missing_values() {
        assert!(CLI.parse_from(&argv(&["--bogus"])).is_err());
        assert!(CLI.parse_from(&argv(&["--baseline"])).is_err());
        assert!(CLI.parse_from(&argv(&["--flame"])).is_err());
    }

    #[test]
    fn diff_renders_changed_pairs_and_length_mismatch() {
        let d = render_diff("a\nb\n", "a\nc\nd\n");
        assert_eq!(d, "  - b\n  + c\n  (2 baseline line(s), 3 checked)\n");
        assert_eq!(render_diff("a\n", "a\n"), "");
    }
}
