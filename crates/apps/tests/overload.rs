//! Property suites for the overload-protection pipeline.
//!
//! 1. A seeded 200-request trace through the bounded-load gateway with
//!    one backend crash walks the full breaker lifecycle (closed →
//!    open → half-open → closed), and the rendered transition log is
//!    byte-identical across two runs.
//! 2. The cluster scenario's breaker and brownout logs are
//!    byte-identical across the interpreter and the JIT — engine
//!    choice never shifts a transition by a nanosecond.

use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::{App, FaultPlan, LinkSpec, NodeApi, Sim, SimTime};
use planp_apps::cluster::{
    run_cluster, BackendSpec, BreakerConfig, ClusterConfig, ClusterGateway, GatewayConfig,
    CLUSTER_PORT,
};
use planp_runtime::Engine;
use std::time::Duration;

const REQUESTS: u64 = 200;

/// Sends one 25-byte gateway request every 2 ms: priority byte, request
/// id, a random key (the node RNG keeps it seeded), and the send time.
struct MiniClient {
    gw: u32,
    sent: u64,
}

impl App for MiniClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_millis(2), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.sent >= REQUESTS {
            return;
        }
        self.sent += 1;
        let mut payload = vec![0u8; 25];
        payload[0] = 255;
        payload[1..9].copy_from_slice(&self.sent.to_be_bytes());
        payload[9..17].copy_from_slice(&api.rand_below(u64::MAX).to_be_bytes());
        payload[17..25].copy_from_slice(&api.now().as_nanos().to_be_bytes());
        api.send(Packet::udp(
            api.addr(),
            self.gw,
            40_000,
            CLUSTER_PORT,
            Bytes::from(payload),
        ));
        api.set_timer(Duration::from_millis(2), 0);
    }
}

/// Echoes every request's id back as a response.
struct MiniBackend;

impl App for MiniBackend {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(udp) = pkt.udp_hdr() else { return };
        if udp.dport != CLUSTER_PORT || pkt.payload.len() < 25 {
            return;
        }
        let mut payload = vec![0u8; 18];
        payload[0] = 255;
        payload[1..9].copy_from_slice(&pkt.payload[1..9]);
        api.send(Packet::udp(
            api.addr(),
            pkt.ip.src,
            CLUSTER_PORT,
            udp.sport,
            Bytes::from(payload),
        ));
    }
}

/// One seeded mini-cluster run: (transition log, opens, probes,
/// responses, sent_while_broken).
fn run_mini(seed: u64) -> (String, u64, u64, u64, u64) {
    let mut sim = Sim::new(seed);
    let client = sim.add_host("client", addr(10, 0, 0, 1));
    let gw = sim.add_router("gw", addr(10, 0, 0, 253));
    let b0 = sim.add_host("b0", addr(10, 2, 0, 1));
    let b1 = sim.add_host("b1", addr(10, 2, 0, 2));
    sim.add_link(LinkSpec::ethernet_100(), &[client, gw]);
    sim.add_link(LinkSpec::ethernet_100(), &[gw, b0]);
    sim.add_link(LinkSpec::ethernet_100(), &[gw, b1]);
    sim.compute_routes();

    let specs = vec![
        BackendSpec {
            name: "b0".into(),
            addr: addr(10, 2, 0, 1),
            weight: 1,
        },
        BackendSpec {
            name: "b1".into(),
            addr: addr(10, 2, 0, 2),
            weight: 1,
        },
    ];
    let cfg = GatewayConfig {
        breaker: BreakerConfig {
            open_ns: 60_000_000,
            ..BreakerConfig::default()
        },
        ..GatewayConfig::default()
    };
    let gateway = ClusterGateway::new(cfg, specs, &mut sim.telemetry);
    let stats = gateway.stats.clone();
    sim.install_hook(gw, Box::new(gateway));

    sim.add_app(client, Box::new(MiniClient { gw: addr(10, 0, 0, 253), sent: 0 }));
    sim.add_app(b0, Box::new(MiniBackend));
    sim.add_app(b1, Box::new(MiniBackend));

    // The crash window sits inside the request trace, so the breaker
    // must open on timeouts and later re-close on a successful probe.
    sim.apply_fault_plan(FaultPlan::new().crash_restart(0.05, 0.15, b0));
    sim.run_until(SimTime::from_ms(600));

    let s = stats.borrow();
    (
        s.transitions_log(),
        s.opens,
        s.probes,
        s.responses,
        s.sent_while_broken,
    )
}

#[test]
fn breaker_lifecycle_over_200_requests_is_byte_stable() {
    for seed in [5u64, 23] {
        let (log, opens, probes, responses, sent_while_broken) = run_mini(seed);
        assert_eq!(opens, 1, "seed {seed}: exactly one open:\n{log}");
        assert!(log.contains("backend=b0 closed -> open"), "seed {seed}:\n{log}");
        assert!(log.contains("backend=b0 open -> half_open"), "seed {seed}:\n{log}");
        assert!(
            log.contains("backend=b0 half_open -> closed"),
            "seed {seed}: probe must re-close:\n{log}"
        );
        assert!(probes >= 1, "seed {seed}: half-open sent a probe");
        assert_eq!(
            sent_while_broken, probes,
            "seed {seed}: corpse traffic is probe-only"
        );
        assert!(responses > REQUESTS / 2, "seed {seed}: the cluster still serves");

        let rerun = run_mini(seed);
        assert_eq!(log, rerun.0, "seed {seed}: transition log drifted");
        assert_eq!(
            (opens, probes, responses, sent_while_broken),
            (rerun.1, rerun.2, rerun.3, rerun.4),
            "seed {seed}"
        );
    }
}

#[test]
fn cluster_breaker_and_brownout_logs_are_engine_invariant() {
    let run = |engine: Engine| {
        let mut cfg = ClusterConfig::smoke();
        cfg.engine = engine;
        run_cluster(&cfg)
    };
    let jit = run(Engine::Jit);
    let interp = run(Engine::Interp);
    assert!(!jit.transitions_log.is_empty(), "smoke must trip breakers");
    assert!(!jit.brownout_log.is_empty(), "smoke must brown out");
    assert_eq!(
        jit.transitions_log, interp.transitions_log,
        "engine choice shifted a breaker transition"
    );
    assert_eq!(
        jit.brownout_log, interp.brownout_log,
        "engine choice shifted a brownout step"
    );
    assert_eq!(jit.admitted, interp.admitted);
    assert_eq!(jit.completed, interp.completed);
    assert_eq!(jit.latency_p99_ns, interp.latency_p99_ns);
}
