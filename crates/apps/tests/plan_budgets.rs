//! Plan-budget soundness, observed end to end: the plan verifier's
//! statically composed per-packet path budget (`E008`'s quantity) must
//! dominate the costliest VM chain any traced packet actually accrues —
//! the maximum over root-to-leaf span chains of summed per-span
//! `vm_steps`. Checked for the chaos relay chain and the HTTP failover
//! cluster, under both execution engines.

use netsim::LinkFaults;
use planp_apps::chaos::{run_relay_chaos, RelayChaosConfig, RelayKind};
use planp_apps::http::{run_http_traced, ClusterMode, HttpConfig, HTTP_GATEWAY_FAILOVER_ASP};
use planp_apps::plans::verify_http_gateway;
use planp_runtime::Engine;
use planp_telemetry::{TraceConfig, TraceForest};

#[test]
fn chaos_plan_budget_dominates_traced_vm_cost_on_both_engines() {
    for engine in [Engine::Jit, Engine::Interp] {
        // The fragile relay under real chaos: every traced chain is a
        // sub-path of the plan's declared source → dst path, so the
        // composed budget bounds it by construction.
        let mut cfg = RelayChaosConfig::loss(RelayKind::Fragile, 0.10);
        cfg.engine = engine;
        cfg.trace = TraceConfig::all();
        let res = run_relay_chaos(&cfg);
        assert!(res.max_path_vm_steps > 0, "{engine:?}: no VM cost traced");
        assert!(
            res.plan_budget >= res.max_path_vm_steps,
            "{engine:?}: fragile composed budget {} < observed chain {}",
            res.plan_budget,
            res.max_path_vm_steps
        );

        // The reliable relay on clean links (no NACK control traffic,
        // which rides paths the plan does not declare): same property,
        // much pricier per-dispatch program.
        let mut cfg = RelayChaosConfig::new(RelayKind::Reliable, LinkFaults::default());
        cfg.engine = engine;
        cfg.trace = TraceConfig::all();
        let res = run_relay_chaos(&cfg);
        assert!(res.max_path_vm_steps > 0, "{engine:?}: no VM cost traced");
        assert!(
            res.plan_budget >= res.max_path_vm_steps,
            "{engine:?}: reliable composed budget {} < observed chain {}",
            res.plan_budget,
            res.max_path_vm_steps
        );
    }
}

#[test]
fn http_failover_plan_budget_dominates_traced_vm_cost_on_both_engines() {
    let image = verify_http_gateway(HTTP_GATEWAY_FAILOVER_ASP).expect("failover gateway verifies");
    let budget = image.report.max_budget();
    assert!(budget > 0, "composed budget is finite and positive");

    for mode in [ClusterMode::AspGateway, ClusterMode::InterpGateway] {
        let mut cfg = HttpConfig::new(mode, 4);
        cfg.duration_s = 10;
        cfg.warmup_s = 2.0;
        cfg.gateway_src = Some(HTTP_GATEWAY_FAILOVER_ASP);
        cfg.crash_server1_at_s = Some(4.0);
        let (_res, telemetry, _snap) = run_http_traced(&cfg, TraceConfig::all());
        let observed = TraceForest::from_log(&telemetry.trace).max_path_vm_steps();
        assert!(observed > 0, "{mode:?}: no VM cost traced");
        assert!(
            budget >= observed,
            "{mode:?}: composed budget {budget} < observed chain {observed}"
        );
    }
}
