//! The observability-at-scale experiment: a ≥1k-node grid of parallel
//! relay chains used to measure what deterministic head sampling,
//! rate limits, and kept-event budgets do to telemetry overhead — and
//! to prove that every trace the sampler keeps still reconstructs a
//! *complete* span tree.
//!
//! Topology: `chains` disjoint chains, each `source ── r0 … r(H-1) ──
//! dst` on 100 Mb/s links. Every relay runs the fragile (plain
//! forwarding) relay ASP through the JIT, so a sampled run exercises
//! the full event surface: spans, hops, link events, dispatches, VM
//! accounting, and deliveries. The default 128 × 6-relay grid is 1024
//! nodes — past the simulator's compact-metrics threshold, so the
//! snapshot also exercises the sharded `nodes.*`/`links.*` fold.

use crate::chaos::apps::{SeqCollector, SeqSource};
use crate::chaos::FRAGILE_RELAY_ASP;
use netsim::packet::addr;
use netsim::{LinkSpec, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, LayerConfig};
use planp_telemetry::{MetricsSnapshot, Telemetry, TraceConfig, TraceForest, TraceOverhead};
use std::time::Duration;

/// Configuration of one grid run.
#[derive(Debug, Clone, Copy)]
pub struct ObsGridConfig {
    /// Parallel relay chains.
    pub chains: usize,
    /// Relays per chain (each chain has `hops + 2` nodes).
    pub hops: usize,
    /// Datagrams each chain's source sends.
    pub packets: u64,
    /// Source pacing (milliseconds between datagrams).
    pub interval_ms: u64,
    /// Total simulated time (seconds).
    pub duration_s: u64,
    /// Simulation seed.
    pub seed: u64,
    /// Trace configuration under test (categories, sampling rate,
    /// rate limit, budget).
    pub trace: TraceConfig,
}

impl ObsGridConfig {
    /// The standard 1024-node grid (128 chains × 6 relays): 8 packets
    /// per chain at 2 ms spacing, 1 s of simulated time.
    pub fn new(trace: TraceConfig) -> Self {
        ObsGridConfig {
            chains: 128,
            hops: 6,
            packets: 8,
            interval_ms: 2,
            duration_s: 1,
            seed: 7,
            trace,
        }
    }

    /// Total node count of the grid.
    pub fn nodes(&self) -> usize {
        self.chains * (self.hops + 2)
    }
}

/// What one grid run produced.
#[derive(Debug)]
pub struct ObsGridResult {
    /// Nodes in the grid.
    pub nodes: usize,
    /// First transmissions expected (`chains × packets`).
    pub expected: u64,
    /// Distinct sequences delivered across every chain.
    pub unique: u64,
    /// The telemetry overhead meter at the end of the run.
    pub overhead: TraceOverhead,
    /// Root spans reconstructed from the kept events.
    pub roots: usize,
    /// Spans whose parent was never seen — must be zero for whole-
    /// lineage sampling (a kept trace is kept *completely*).
    pub orphans: usize,
    /// Total spans across the forest.
    pub spans: usize,
    /// The final (compact-layout) metrics snapshot.
    pub snapshot: MetricsSnapshot,
    /// The full telemetry state, for export determinism checks.
    pub telemetry: Telemetry,
}

/// Runs one grid experiment.
///
/// # Panics
///
/// Panics if the bundled fragile relay ASP fails to verify or install
/// (a build error, not a runtime condition).
pub fn run_obs_grid(cfg: &ObsGridConfig) -> ObsGridResult {
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(cfg.trace);

    let image = load(FRAGILE_RELAY_ASP, Policy::no_delivery()).expect("fragile relay verifies");
    let mut relays = Vec::new();
    let mut endpoints = Vec::new();
    for c in 0..cfg.chains {
        let src = sim.add_host(&format!("s{c}"), addr(10, c as u8, 0, 1));
        let mut prev = src;
        for h in 0..cfg.hops {
            let r = sim.add_router(&format!("c{c}r{h}"), addr(10, c as u8, h as u8 + 1, 254));
            sim.add_link(LinkSpec::ethernet_100(), &[prev, r]);
            relays.push(r);
            prev = r;
        }
        let dst_addr = addr(10, c as u8, cfg.hops as u8 + 1, 1);
        let dst = sim.add_host(&format!("d{c}"), dst_addr);
        sim.add_link(LinkSpec::ethernet_100(), &[prev, dst]);
        endpoints.push((src, dst, dst_addr));
    }
    sim.compute_routes();

    for &r in &relays {
        install_planp(&mut sim, r, &image, LayerConfig::default()).expect("install relay ASP");
    }
    let mut collectors = Vec::with_capacity(cfg.chains);
    for &(src, dst, dst_addr) in &endpoints {
        let src_app = SeqSource::new(
            dst_addr,
            cfg.packets,
            Duration::from_millis(cfg.interval_ms),
        );
        sim.add_app(src, Box::new(src_app));
        let col = SeqCollector::new();
        collectors.push(col.stats.clone());
        sim.add_app(dst, Box::new(col));
    }

    sim.run_until(SimTime::from_secs(cfg.duration_s));

    let snapshot = sim.metrics_snapshot();
    let overhead = sim.telemetry.trace.overhead();
    let forest = TraceForest::from_log(&sim.telemetry.trace);
    ObsGridResult {
        nodes: cfg.nodes(),
        expected: cfg.chains as u64 * cfg.packets,
        unique: collectors.iter().map(|s| s.borrow().unique).sum(),
        overhead,
        roots: forest.roots().len(),
        orphans: forest.orphans().len(),
        spans: forest.spans().count(),
        snapshot,
        telemetry: sim.telemetry,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use planp_telemetry::Category;

    fn small(trace: TraceConfig) -> ObsGridConfig {
        ObsGridConfig {
            chains: 8,
            hops: 3,
            packets: 4,
            ..ObsGridConfig::new(trace)
        }
    }

    #[test]
    fn grid_delivers_and_traces_completely() {
        let res = run_obs_grid(&small(TraceConfig::all()));
        assert_eq!(res.nodes, 40);
        assert_eq!(res.unique, res.expected, "clean grid delivers all");
        assert_eq!(res.orphans, 0, "full tracing: no orphan spans");
        assert!(res.roots as u64 >= res.expected, "one trace per datagram");
        assert_eq!(res.overhead.evicted, 0);
    }

    #[test]
    fn sampling_reduces_kept_events_and_keeps_trees_whole() {
        let full = run_obs_grid(&small(TraceConfig::all()));
        let sampled = run_obs_grid(&small(TraceConfig::sampled(4)));
        assert_eq!(
            sampled.unique, sampled.expected,
            "sampling never drops packets"
        );
        assert!(
            sampled.overhead.kept * 2 < full.overhead.kept,
            "1/4 sampling kept {} of {} events",
            sampled.overhead.kept,
            full.overhead.kept
        );
        assert!(sampled.overhead.sampled_out > 0);
        assert_eq!(sampled.orphans, 0, "kept traces stay complete");
        assert!(sampled.roots < full.roots);
    }

    #[test]
    fn compact_snapshot_used_past_threshold() {
        let mut cfg = small(TraceConfig {
            categories: Category::NONE,
            ..TraceConfig::default()
        });
        cfg.chains = 16;
        cfg.hops = 31; // 16 × 33 = 528 nodes > the 512 default threshold
        cfg.packets = 1;
        let res = run_obs_grid(&cfg);
        assert!(res.snapshot.counters.contains_key("nodes.count"));
        assert!(res.snapshot.counters.contains_key("links.tx_packets"));
        assert!(!res
            .snapshot
            .counters
            .keys()
            .any(|k| k.starts_with("node.s0.")));
    }
}
