//! The two PLAN-P programs of the audio-broadcasting experiment
//! (section 3.1): the **router ASP** that degrades audio quality when
//! the outgoing segment gets loaded, and the **client ASP** that
//! restores the original format so the unmodified audio application
//! keeps working.
//!
//! Audio packets are UDP datagrams to [`AUDIO_PORT`] whose payload is:
//!
//! ```text
//! byte 0      format: 0 = 16-bit stereo, 1 = 16-bit mono, 2 = 8-bit mono
//! bytes 1..9  frame sequence number (8-byte big-endian int)
//! bytes 9..   PCM samples (16-bit little-endian, interleaved if stereo)
//! ```

/// UDP destination port carrying the audio stream.
pub const AUDIO_PORT: u16 = 7777;

/// Wire format ids.
pub mod format {
    /// 16-bit stereo (176 kb/s in the paper's setup).
    pub const STEREO16: u8 = 0;
    /// 16-bit monaural (88 kb/s).
    pub const MONO16: u8 = 1;
    /// 8-bit monaural (44 kb/s).
    pub const MONO8: u8 = 2;
}

/// The router program: monitors the outgoing link's utilization and
/// degrades 16-bit-stereo frames to 16-bit or 8-bit mono (three quality
/// levels, as in the paper). Every path forwards, so the program passes
/// the strict verification policy.
pub const AUDIO_ROUTER_ASP: &str = r#"
-- Audio bandwidth adaptation in the router (paper section 3.1).
val audioPort : int = 7777
val hiThresh : int = 80   -- % utilization above which we send 8-bit mono
val loThresh : int = 50   -- % utilization above which we send 16-bit mono

fun targetQuality(util : int) : int =
  if util > hiThresh then 2
  else if util > loThresh then 1
  else 0

fun degrade(pcm : blob, q : int) : blob =
  if q = 2 then audio16to8(audioStereoToMono(pcm))
  else if q = 1 then audioStereoToMono(pcm)
  else pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
    -- Compute the (possibly degraded) outgoing packet; any failure
    -- falls back to the original. Keeping all the work inside this
    -- binding leaves exactly one send on every path, which is what the
    -- duplication analysis demands.
    val out : ip*udp*blob =
      (if udpDst(udph) = audioPort
          andalso blobLen(body) > 9
          andalso blobByte(body, 0) = 0 then
         let
           val util : int =
             (linkLoad(ipDst(iph)) * 100) div (linkCapacity(ipDst(iph)) + 1)
           val q : int = targetQuality(util)
           val hdr : blob = blobSetByte(blobSub(body, 0, 9), 0, q)
           val pcm : blob = degrade(blobSub(body, 9, blobLen(body) - 9), q)
         in
           if q = 0 then p else (iph, udph, blobCat(hdr, pcm))
         end
       else p)
      handle _ => p
  in
    (OnRemote(network, out); (ps, ss))
  end
"#;

/// The client program: transforms degraded frames back into the
/// original 16-bit-stereo format before delivery, so the audio
/// application does not need to change. The header's format byte keeps
/// the *wire* format so measurement tools can see what the link carried;
/// the PCM samples are always restored to 16-bit stereo.
pub const AUDIO_CLIENT_ASP: &str = r#"
-- Audio format restoration at the client (paper section 3.1).
val audioPort : int = 7777

channel network(ps : unit, ss : unit, p : ip*udp*blob) is
  (let
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udph) = audioPort andalso blobLen(body) > 9 then
      let
        val fmt : int = blobByte(body, 0)
        val hdr : blob = blobSub(body, 0, 9)
        val pcm : blob = blobSub(body, 9, blobLen(body) - 9)
        val full : blob =
          if fmt = 2 then audioMonoToStereo(audio8to16(pcm))
          else if fmt = 1 then audioMonoToStereo(pcm)
          else pcm
      in
        (deliver((#1 p, udph, blobCat(hdr, full))); (ps, ss))
      end
    else
      (deliver(p); (ps, ss))
  end)
  handle _ => (deliver(p); (ps, ss))
"#;

/// An alternative router policy: adapt on the outgoing queue length
/// instead of measured bandwidth — reacts to congestion *pressure*
/// rather than utilization. One of the "many other strategies" section
/// 3.1 invites; swapping it in is a one-line change for the operator.
pub const AUDIO_ROUTER_QUEUE_ASP: &str = r#"
-- Queue-length-driven audio adaptation.
val audioPort : int = 7777
val hiQueue : int = 24
val loQueue : int = 8

fun targetQuality(q : int) : int =
  if q > hiQueue then 2
  else if q > loQueue then 1
  else 0

fun degrade(pcm : blob, q : int) : blob =
  if q = 2 then audio16to8(audioStereoToMono(pcm))
  else if q = 1 then audioStereoToMono(pcm)
  else pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
    val out : ip*udp*blob =
      (if udpDst(udph) = audioPort
          andalso blobLen(body) > 9
          andalso blobByte(body, 0) = 0 then
         let
           val q : int = targetQuality(queueLen(ipDst(iph)))
           val hdr : blob = blobSetByte(blobSub(body, 0, 9), 0, q)
           val pcm : blob = degrade(blobSub(body, 9, blobLen(body) - 9), q)
         in
           if q = 0 then p else (iph, udph, blobCat(hdr, pcm))
         end
       else p)
      handle _ => p
  in
    (OnRemote(network, out); (ps, ss))
  end
"#;

/// A hysteresis policy: quality only *improves* when utilization falls
/// well below the degradation threshold, held in the protocol state.
/// Trades some bandwidth for stability — it suppresses the medium-load
/// format flapping visible in figure 6.
pub const AUDIO_ROUTER_HYSTERESIS_ASP: &str = r#"
-- Hysteresis audio adaptation: sticky quality transitions.
val audioPort : int = 7777
val hiThresh : int = 80
val loThresh : int = 50
val slack : int = 12      -- improve only when util < threshold - slack

fun rawQuality(util : int) : int =
  if util > hiThresh then 2
  else if util > loThresh then 1
  else 0

fun sticky(util : int, prev : int) : int =
  let val raw : int = rawQuality(util) in
    if raw >= prev then raw
    else
      -- improving: require the utilization to clear the band by `slack`
      if prev = 2 andalso util > hiThresh - slack then 2
      else if prev >= 1 andalso util > loThresh - slack then
        (if raw > 1 then raw else 1)
      else raw
  end

fun degrade(pcm : blob, q : int) : blob =
  if q = 2 then audio16to8(audioStereoToMono(pcm))
  else if q = 1 then audioStereoToMono(pcm)
  else pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udph) = audioPort
       andalso blobLen(body) > 9
       andalso (blobByte(body, 0) handle _ => 1) = 0 then
      let
        val util : int =
          ((linkLoad(ipDst(iph)) * 100) div (linkCapacity(ipDst(iph)) + 1))
          handle _ => 0
        val q : int = sticky(util, ps)
        val out : ip*udp*blob =
          (if q = 0 then p
           else
             let
               val hdr : blob = blobSetByte(blobSub(body, 0, 9), 0, q)
               val pcm : blob = degrade(blobSub(body, 9, blobLen(body) - 9), q)
             in (iph, udph, blobCat(hdr, pcm)) end)
          handle _ => p
      in
        (OnRemote(network, out); (q, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use planp_analysis::Policy;
    use planp_runtime::load;

    #[test]
    fn router_asp_passes_strict_verification() {
        let lp = load(AUDIO_ROUTER_ASP, Policy::strict())
            .unwrap_or_else(|e| panic!("router ASP rejected: {e}"));
        assert!(lp.report.termination.is_proved());
        assert!(lp.report.delivery.is_proved());
        assert!(lp.report.duplication.is_proved());
    }

    #[test]
    fn client_asp_passes_strict_verification() {
        let lp = load(AUDIO_CLIENT_ASP, Policy::strict())
            .unwrap_or_else(|e| panic!("client ASP rejected: {e}"));
        assert!(lp.report.accepted());
    }

    #[test]
    fn alternative_policies_verify() {
        for (name, src) in [
            ("queue", AUDIO_ROUTER_QUEUE_ASP),
            ("hysteresis", AUDIO_ROUTER_HYSTERESIS_ASP),
        ] {
            let lp = load(src, Policy::strict()).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            assert!(lp.report.accepted(), "{name}");
        }
    }

    #[test]
    fn line_counts_are_paper_scale() {
        // Paper figure 3: router 68 lines, client 28 lines. Ours should
        // be the same order of magnitude.
        let router = planp_lang::count_lines(AUDIO_ROUTER_ASP);
        let client = planp_lang::count_lines(AUDIO_CLIENT_ASP);
        assert!((25..=90).contains(&router), "router: {router} lines");
        assert!((15..=40).contains(&client), "client: {client} lines");
    }
}
