//! The audio-broadcasting experiment harness (figures 5–7 of the
//! paper).
//!
//! Topology (the paper's figure 5, collapsed to the measured path):
//!
//! ```text
//!   source ──100 Mb/s──▶ router ──10 Mb/s shared segment── {client, loadgen, sink}
//! ```
//!
//! The load generator and the audio client share the router's outgoing
//! Ethernet segment; the router's PLAN-P program watches that segment's
//! utilization and degrades the multicast audio per-segment, with no
//! end-to-end feedback loop.

use super::apps::{AudioClient, AudioClientStats, AudioSource, LoadGen, LoadPhase, NullSink};
use super::asp::{AUDIO_CLIENT_ASP, AUDIO_ROUTER_ASP};
use super::native::{NativeAudioClient, NativeAudioRouter};
use netsim::packet::addr;
use netsim::{FaultAction, FaultPlan, LinkFaults, LinkSpec, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, Engine, LayerConfig};
use planp_telemetry::{MetricsSnapshot, Telemetry, TraceConfig};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// How (or whether) adaptation runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adaptation {
    /// PLAN-P ASPs on router and client, executed by the JIT.
    AspJit,
    /// PLAN-P ASPs executed by the portable interpreter.
    AspInterp,
    /// The native ("built-in C") implementation.
    Native,
    /// No adaptation (the unmodified network).
    Off,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct AudioConfig {
    /// Adaptation mode.
    pub adaptation: Adaptation,
    /// Background load schedule.
    pub phases: Vec<LoadPhase>,
    /// Load jitter (percent, multiplicative per burst).
    pub jitter_pct: u64,
    /// Total simulated time (seconds).
    pub duration_s: u64,
    /// Random seed.
    pub seed: u64,
    /// Alternative router ASP source (defaults to the utilization-based
    /// policy of section 3.1). Only used by the ASP modes.
    pub router_src: Option<&'static str>,
    /// Add a second, quiet segment behind its own router (the paper's
    /// figure 5: "audio clients in IRISA may still receive high-quality
    /// audio" — adaptation is per segment).
    pub dual_segment: bool,
    /// Fault injection on the shared 10 Mb/s segment: impairments
    /// switched on at the given time (seconds). Seeded from the run
    /// seed, so the whole run stays deterministic.
    pub segment_faults: Option<(f64, LinkFaults)>,
}

impl AudioConfig {
    /// The paper's figure 6 schedule: no load, then a large load at
    /// t=100 s, a medium load at t=220 s, and a small load at t=340 s,
    /// for 460 s total.
    pub fn figure6(adaptation: Adaptation) -> Self {
        AudioConfig {
            adaptation,
            phases: vec![
                LoadPhase {
                    from_s: 100.0,
                    to_s: 220.0,
                    kbps: 9450,
                },
                LoadPhase {
                    from_s: 220.0,
                    to_s: 340.0,
                    kbps: 7750,
                },
                LoadPhase {
                    from_s: 340.0,
                    to_s: 460.0,
                    kbps: 6200,
                },
            ],
            jitter_pct: 6,
            duration_s: 460,
            seed: 7,
            router_src: None,
            dual_segment: false,
            segment_faults: None,
        }
    }

    /// A constant-load configuration (for the figure 7 sweep).
    pub fn constant_load(adaptation: Adaptation, kbps: u64, duration_s: u64) -> Self {
        AudioConfig {
            adaptation,
            phases: vec![LoadPhase {
                from_s: 5.0,
                to_s: duration_s as f64,
                kbps,
            }],
            jitter_pct: 6,
            duration_s,
            seed: 7,
            router_src: None,
            dual_segment: false,
            segment_faults: None,
        }
    }
}

/// Results of one audio run.
#[derive(Debug, Clone)]
pub struct AudioResult {
    /// Client-side audio bandwidth, one point per second (kb/s) — the
    /// figure 6 series.
    pub rx_kbps: Vec<(f64, f64)>,
    /// Client statistics (frames, gaps, per-format counts).
    pub stats: AudioClientStats,
    /// Packets dropped on the shared segment during the run.
    pub segment_drops: u64,
    /// The quiet second segment's client, when `dual_segment` is on.
    pub stats_b: Option<AudioClientStats>,
    /// Its bandwidth series (kb/s per second).
    pub rx_kbps_b: Vec<(f64, f64)>,
}

impl AudioResult {
    /// Mean received bandwidth over the half-open window `[t0, t1)`
    /// (kb/s). Single pass, no intermediate allocation.
    pub fn avg_kbps(&self, t0: f64, t1: f64) -> f64 {
        let (mut sum, mut n) = (0.0, 0u64);
        for &(t, v) in &self.rx_kbps {
            if t >= t0 && t < t1 {
                sum += v;
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }
}

/// Runs the audio experiment.
///
/// # Panics
///
/// Panics if the shipped ASPs fail verification (they must not).
pub fn run_audio(cfg: &AudioConfig) -> AudioResult {
    run_audio_traced(cfg, TraceConfig::default()).0
}

/// Like [`run_audio`], with event tracing enabled per `trace`. Also
/// returns the telemetry bundle (event log + raw metrics) and the final
/// metrics snapshot, both deterministic for a given seed.
pub fn run_audio_traced(
    cfg: &AudioConfig,
    trace: TraceConfig,
) -> (AudioResult, Telemetry, MetricsSnapshot) {
    let group = addr(224, 1, 2, 3);
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(trace);

    let source = sim.add_host("source", addr(10, 0, 0, 1));
    let router = sim.add_router("router", addr(10, 0, 0, 254));
    let client = sim.add_host("client", addr(10, 0, 1, 1));
    let loadgen = sim.add_host("loadgen", addr(10, 0, 1, 2));
    let sink = sim.add_host("sink", addr(10, 0, 1, 3));

    let segment = sim.add_link(
        LinkSpec {
            kbps: 10_000,
            delay: Duration::from_micros(100),
            queue_pkts: 200,
        },
        &[router, client, loadgen, sink],
    );
    sim.subscribe(client, group);
    sim.add_mcast_route(router, group, segment);

    // Figure 5's second branch: a quiet segment behind its own adapting
    // router. A plain fan-out router (the campus backbone) duplicates
    // the multicast stream toward both adapting routers; each of them
    // degrades — or not — based on its *own* segment.
    let quiet = if cfg.dual_segment {
        let fanout = sim.add_router("fanout", addr(10, 0, 3, 254));
        let router_b = sim.add_router("router_b", addr(10, 0, 2, 254));
        let client_b = sim.add_host("client_b", addr(10, 0, 2, 1));
        let uplink = sim.add_link(LinkSpec::ethernet_100(), &[source, fanout]);
        let trunk_a = sim.add_link(LinkSpec::ethernet_100(), &[fanout, router]);
        let trunk_b = sim.add_link(LinkSpec::ethernet_100(), &[fanout, router_b]);
        let segment_b = sim.add_link(
            LinkSpec {
                kbps: 10_000,
                delay: Duration::from_micros(100),
                queue_pkts: 200,
            },
            &[router_b, client_b],
        );
        sim.compute_routes();
        sim.add_mcast_route(source, group, uplink);
        sim.add_mcast_route(fanout, group, trunk_a);
        sim.add_mcast_route(fanout, group, trunk_b);
        sim.add_mcast_route(router_b, group, segment_b);
        sim.subscribe(client_b, group);
        Some((router_b, client_b))
    } else {
        let uplink = sim.add_link(LinkSpec::ethernet_100(), &[source, router]);
        sim.compute_routes();
        sim.add_mcast_route(source, group, uplink);
        None
    };

    match cfg.adaptation {
        Adaptation::AspJit | Adaptation::AspInterp => {
            let engine = if cfg.adaptation == Adaptation::AspJit {
                Engine::Jit
            } else {
                Engine::Interp
            };
            let router_asp = load(cfg.router_src.unwrap_or(AUDIO_ROUTER_ASP), Policy::strict())
                .expect("router ASP verifies");
            let client_asp = load(AUDIO_CLIENT_ASP, Policy::strict()).expect("client ASP verifies");
            let lc = LayerConfig {
                engine,
                ..LayerConfig::default()
            };
            install_planp(&mut sim, router, &router_asp, lc).expect("install router ASP");
            install_planp(&mut sim, client, &client_asp, lc).expect("install client ASP");
            if let Some((router_b, client_b)) = quiet {
                install_planp(&mut sim, router_b, &router_asp, lc).expect("install router_b ASP");
                install_planp(&mut sim, client_b, &client_asp, lc).expect("install client_b ASP");
            }
        }
        Adaptation::Native => {
            sim.install_hook(router, Box::new(NativeAudioRouter::new()));
            sim.install_hook(client, Box::new(NativeAudioClient));
            if let Some((router_b, client_b)) = quiet {
                sim.install_hook(router_b, Box::new(NativeAudioRouter::new()));
                sim.install_hook(client_b, Box::new(NativeAudioClient));
            }
        }
        Adaptation::Off => {}
    }

    let stats = Rc::new(RefCell::new(AudioClientStats::default()));
    sim.add_app(source, Box::new(AudioSource::new(group)));
    let expect_restored = cfg.adaptation != Adaptation::Off;
    sim.add_app(
        client,
        Box::new(AudioClient::new(stats.clone(), expect_restored)),
    );
    let stats_b = quiet.map(|(_, client_b)| {
        let sb = Rc::new(RefCell::new(AudioClientStats::default()));
        sim.add_app(
            client_b,
            Box::new(AudioClient::with_series(
                sb.clone(),
                expect_restored,
                "audio_rx_kbps_b",
            )),
        );
        sb
    });
    sim.add_app(
        loadgen,
        Box::new(LoadGen::new(
            addr(10, 0, 1, 3),
            cfg.phases.clone(),
            cfg.jitter_pct,
        )),
    );
    sim.add_app(sink, Box::new(NullSink));

    if let Some((from_s, faults)) = cfg.segment_faults {
        sim.apply_fault_plan(FaultPlan::new().at(
            from_s,
            FaultAction::SetLinkFaults {
                link: segment,
                faults,
            },
        ));
    }

    sim.run_until(SimTime::from_secs(cfg.duration_s));

    let rx_kbps = sim
        .series
        .get("audio_rx_kbps")
        .map(|s| s.points.clone())
        .unwrap_or_default();
    let rx_kbps_b = sim
        .series
        .get("audio_rx_kbps_b")
        .map(|s| s.points.clone())
        .unwrap_or_default();
    let segment_drops = sim.link(segment).drops;
    let stats = stats.borrow().clone();
    let stats_b = stats_b.map(|s| s.borrow().clone());
    let metrics = sim.metrics_snapshot();
    let telemetry = std::mem::take(&mut sim.telemetry);
    (
        AudioResult {
            rx_kbps,
            stats,
            segment_drops,
            stats_b,
            rx_kbps_b,
        },
        telemetry,
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Short-horizon adaptation check: full quality while idle, degraded
    /// under load, reacting within a couple of measurement windows.
    #[test]
    fn adaptation_reacts_to_load() {
        let cfg = AudioConfig {
            adaptation: Adaptation::AspJit,
            phases: vec![LoadPhase {
                from_s: 10.0,
                to_s: 30.0,
                kbps: 9450,
            }],
            jitter_pct: 0,
            duration_s: 30,
            seed: 3,
            router_src: None,
            dual_segment: false,
            segment_faults: None,
        };
        let r = run_audio(&cfg);
        let quiet = r.avg_kbps(3.0, 10.0);
        let loaded = r.avg_kbps(14.0, 30.0);
        // Full quality ≈ 176 kb/s + framing; degraded ≈ 44 kb/s of PCM.
        assert!(quiet > 150.0, "quiet bandwidth {quiet} kb/s");
        assert!(loaded < 90.0, "loaded bandwidth {loaded} kb/s");
        // Most frames during the loaded phase were carried as 8-bit mono.
        assert!(
            r.stats.by_format[2] > 150,
            "by_format {:?}",
            r.stats.by_format
        );
        // The quiet phase was carried at full quality.
        assert!(
            r.stats.by_format[0] > 100,
            "by_format {:?}",
            r.stats.by_format
        );
        assert!(r.stats.frames > 520, "frames {}", r.stats.frames);
    }

    /// Fault injection plugs into the audio harness: seeded Bernoulli
    /// loss on the shared segment turns into audible gaps at the client,
    /// and the same seed reproduces the same gap count.
    #[test]
    fn injected_segment_loss_causes_gaps() {
        let mut cfg = AudioConfig::constant_load(Adaptation::AspJit, 1000, 20);
        let clean = run_audio(&cfg);
        cfg.segment_faults = Some((1.0, LinkFaults::loss(0.10)));
        let lossy = run_audio(&cfg);
        let lossy2 = run_audio(&cfg);
        assert!(
            lossy.stats.frames < clean.stats.frames,
            "loss must eat frames: {} vs {}",
            lossy.stats.frames,
            clean.stats.frames
        );
        assert!(
            lossy.stats.gaps > clean.stats.gaps,
            "gaps: {} vs {}",
            lossy.stats.gaps,
            clean.stats.gaps
        );
        assert_eq!(lossy.stats.gaps, lossy2.stats.gaps, "seeded => repeatable");
    }

    #[test]
    fn native_and_asp_agree_on_behavior() {
        let mk = |adaptation| {
            let cfg = AudioConfig {
                adaptation,
                phases: vec![LoadPhase {
                    from_s: 5.0,
                    to_s: 20.0,
                    kbps: 9450,
                }],
                jitter_pct: 0,
                duration_s: 20,
                seed: 3,
                router_src: None,
                dual_segment: false,
                segment_faults: None,
            };
            run_audio(&cfg)
        };
        let asp = mk(Adaptation::AspJit);
        let native = mk(Adaptation::Native);
        let a = asp.avg_kbps(8.0, 20.0);
        let n = native.avg_kbps(8.0, 20.0);
        assert!((a - n).abs() < 15.0, "asp {a} vs native {n}");
    }

    #[test]
    fn no_adaptation_suffers_more_drops() {
        // Load chosen so that load + full-quality audio oversubscribes the
        // segment while load + degraded audio fits — the regime the
        // paper's experiment ran in.
        let mk = |adaptation| {
            run_audio(&AudioConfig {
                adaptation,
                phases: vec![LoadPhase {
                    from_s: 5.0,
                    to_s: 40.0,
                    kbps: 9560,
                }],
                jitter_pct: 0,
                duration_s: 40,
                seed: 7,
                router_src: None,
                dual_segment: false,
                segment_faults: None,
            })
        };
        let on = mk(Adaptation::AspJit);
        let off = mk(Adaptation::Off);
        assert!(
            off.stats.gaps > on.stats.gaps,
            "gaps with adaptation {} vs without {}",
            on.stats.gaps,
            off.stats.gaps
        );
        assert!(off.segment_drops > on.segment_drops);
    }

    #[test]
    fn hysteresis_policy_reduces_format_flapping() {
        let mk = |router_src| {
            run_audio(&AudioConfig {
                adaptation: Adaptation::AspJit,
                phases: vec![LoadPhase {
                    from_s: 5.0,
                    to_s: 60.0,
                    kbps: 7750,
                }],
                jitter_pct: 6,
                duration_s: 60,
                seed: 7,
                router_src,
                dual_segment: false,
                segment_faults: None,
            })
        };
        let default = mk(None);
        let hysteresis = mk(Some(crate::audio::AUDIO_ROUTER_HYSTERESIS_ASP));
        assert!(
            default.stats.format_changes > 3,
            "medium load should flap under the plain policy: {}",
            default.stats.format_changes
        );
        assert!(
            hysteresis.stats.format_changes * 2 < default.stats.format_changes,
            "hysteresis {} vs default {}",
            hysteresis.stats.format_changes,
            default.stats.format_changes
        );
    }

    #[test]
    fn per_segment_adaptation_protects_quiet_clients() {
        // Figure 5's claim: degradation happens per segment. The loaded
        // segment's client receives 8-bit mono while the quiet segment's
        // client keeps full 16-bit stereo.
        let r = run_audio(&AudioConfig {
            adaptation: Adaptation::AspJit,
            phases: vec![LoadPhase {
                from_s: 5.0,
                to_s: 30.0,
                kbps: 9450,
            }],
            jitter_pct: 0,
            duration_s: 30,
            seed: 3,
            router_src: None,
            dual_segment: true,
            segment_faults: None,
        });
        let loaded = r.avg_kbps(12.0, 30.0);
        let b = r.stats_b.expect("second client");
        let quiet_pts: Vec<f64> = r
            .rx_kbps_b
            .iter()
            .filter(|&&(t, _)| (12.0..30.0).contains(&t))
            .map(|&(_, v)| v)
            .collect();
        let quiet = quiet_pts.iter().sum::<f64>() / quiet_pts.len() as f64;
        assert!(loaded < 90.0, "loaded segment {loaded} kb/s");
        assert!(quiet > 160.0, "quiet segment {quiet} kb/s");
        assert!(
            b.by_format[0] > 400,
            "quiet client stays 16-bit stereo: {:?}",
            b.by_format
        );
        assert_eq!(b.gaps, 0);
    }

    #[test]
    fn queue_policy_also_adapts_under_load() {
        let r = run_audio(&AudioConfig {
            adaptation: Adaptation::AspJit,
            phases: vec![LoadPhase {
                from_s: 5.0,
                to_s: 30.0,
                kbps: 9560,
            }],
            jitter_pct: 0,
            duration_s: 30,
            seed: 7,
            router_src: Some(crate::audio::AUDIO_ROUTER_QUEUE_ASP),
            dual_segment: false,
            segment_faults: None,
        });
        // The queue policy degrades when the segment queue builds.
        assert!(
            r.stats.by_format[1] + r.stats.by_format[2] > 100,
            "queue policy never degraded: {:?}",
            r.stats.by_format
        );
    }

    #[test]
    fn interp_engine_produces_same_adaptation() {
        let jit = run_audio(&AudioConfig::constant_load(Adaptation::AspJit, 9450, 15));
        let interp = run_audio(&AudioConfig::constant_load(Adaptation::AspInterp, 9450, 15));
        let a = jit.avg_kbps(8.0, 15.0);
        let b = interp.avg_kbps(8.0, 15.0);
        assert!((a - b).abs() < 10.0, "jit {a} vs interp {b}");
    }
}
