//! Simulated applications for the audio experiment: the broadcaster,
//! the measuring client, and the competing load generator.

use super::asp::{format, AUDIO_PORT};
use bytes::{BufMut, Bytes, BytesMut};
use netsim::packet::Packet;
use netsim::{App, NodeApi};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Audio frame interval. With [`PCM_BYTES_PER_FRAME`] this gives the
/// paper's 176 kb/s for full-quality 16-bit stereo.
pub const FRAME_INTERVAL: Duration = Duration::from_millis(50);

/// PCM bytes per full-quality frame: 176 kb/s × 50 ms / 8 = 1100 B.
pub const PCM_BYTES_PER_FRAME: usize = 1100;

/// Builds one audio frame payload.
pub fn frame_payload(fmt: u8, seq: i64, pcm: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(9 + pcm.len());
    buf.put_u8(fmt);
    buf.put_i64(seq);
    buf.put_slice(pcm);
    buf.freeze()
}

/// The unmodified broadcasting application: sends CD-style audio frames
/// to a multicast group forever. It knows nothing about adaptation.
pub struct AudioSource {
    group: u32,
    seq: i64,
}

impl AudioSource {
    /// A source streaming to `group`.
    pub fn new(group: u32) -> Self {
        AudioSource { group, seq: 0 }
    }

    fn synth_pcm(&self) -> Vec<u8> {
        // Deterministic 16-bit stereo ramp; content is irrelevant to the
        // experiment but must survive the degradation primitives.
        let mut pcm = Vec::with_capacity(PCM_BYTES_PER_FRAME);
        let mut v = (self.seq as i16).wrapping_mul(31);
        while pcm.len() < PCM_BYTES_PER_FRAME {
            v = v.wrapping_add(257);
            pcm.extend_from_slice(&v.to_le_bytes());
        }
        pcm
    }
}

impl App for AudioSource {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(FRAME_INTERVAL, 0);
    }

    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        let pcm = self.synth_pcm();
        let payload = frame_payload(format::STEREO16, self.seq, &pcm);
        self.seq += 1;
        let pkt = Packet::udp(api.addr(), self.group, AUDIO_PORT, AUDIO_PORT, payload);
        api.send(pkt);
        api.set_timer(FRAME_INTERVAL, 0);
    }
}

/// What the measuring client observed.
#[derive(Debug, Default, Clone)]
pub struct AudioClientStats {
    /// Frames received.
    pub frames: u64,
    /// Total payload bytes received.
    pub bytes: u64,
    /// Silent periods: sequence gaps or stalls longer than three frame
    /// intervals (the paper's figure 7 metric).
    pub gaps: u64,
    /// Frames received at each quality level `[16s, 16m, 8m]`.
    pub by_format: [u64; 3],
    /// Number of wire-format transitions between consecutive frames
    /// (the "flapping" a hysteresis policy suppresses).
    pub format_changes: u64,
}

/// The audio client: receives frames (after the client ASP restored the
/// format), verifies the format, and measures bandwidth and silent
/// periods. Records the `audio_rx_kbps` series every second.
pub struct AudioClient {
    stats: Rc<RefCell<AudioClientStats>>,
    next_seq: i64,
    last_arrival_ms: u64,
    bytes_this_second: u64,
    expect_restored: bool,
    last_fmt: Option<u8>,
    series: &'static str,
}

impl AudioClient {
    /// A client sharing `stats` with the harness. `expect_restored` is
    /// true when a client ASP is installed (all delivered frames must be
    /// 16-bit stereo again).
    pub fn new(stats: Rc<RefCell<AudioClientStats>>, expect_restored: bool) -> Self {
        Self::with_series(stats, expect_restored, "audio_rx_kbps")
    }

    /// Like [`AudioClient::new`], recording bandwidth under a custom
    /// series name (for multi-client topologies).
    pub fn with_series(
        stats: Rc<RefCell<AudioClientStats>>,
        expect_restored: bool,
        series: &'static str,
    ) -> Self {
        AudioClient {
            stats,
            next_seq: -1,
            last_arrival_ms: 0,
            bytes_this_second: 0,
            expect_restored,
            last_fmt: None,
            series,
        }
    }
}

impl App for AudioClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_secs(1), 1);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(udp) = pkt.udp_hdr() else { return };
        if udp.dport != AUDIO_PORT || pkt.payload.len() < 9 {
            return; // competing traffic, not audio
        }
        let fmt = pkt.payload[0];
        let seq = i64::from_be_bytes(pkt.payload[1..9].try_into().expect("len checked"));
        let now_ms = api.now().as_ms();

        // The format byte reports what the *wire* carried; the client ASP
        // restored the PCM to full 16-bit stereo. Reconstruct the wire
        // footprint for the figure 6 bandwidth series.
        let pcm_len = (pkt.payload.len() - 9) as u64;
        let wire_len = 9 + match fmt {
            format::MONO8 => pcm_len / 4,
            format::MONO16 => pcm_len / 2,
            _ => pcm_len,
        };

        let mut st = self.stats.borrow_mut();
        st.frames += 1;
        st.bytes += wire_len;
        if (fmt as usize) < 3 {
            st.by_format[fmt as usize] += 1;
        }
        if let Some(prev) = self.last_fmt {
            if prev != fmt {
                st.format_changes += 1;
            }
        }
        self.last_fmt = Some(fmt);
        debug_assert!(
            !self.expect_restored || pcm_len as usize == PCM_BYTES_PER_FRAME,
            "client ASP should have restored the PCM to full size"
        );
        // Silent-period detection: missing frames or stalls.
        if self.next_seq >= 0 {
            let stalled =
                now_ms.saturating_sub(self.last_arrival_ms) > 3 * FRAME_INTERVAL.as_millis() as u64;
            if seq > self.next_seq || stalled {
                st.gaps += 1;
            }
        }
        drop(st);
        self.next_seq = seq + 1;
        self.last_arrival_ms = now_ms;
        self.bytes_this_second += wire_len;
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        let kbps = (self.bytes_this_second * 8) as f64 / 1000.0;
        api.record(self.series, kbps);
        self.bytes_this_second = 0;
        api.set_timer(Duration::from_secs(1), 1);
    }
}

/// One phase of background load.
#[derive(Debug, Clone, Copy)]
pub struct LoadPhase {
    /// Phase start (seconds).
    pub from_s: f64,
    /// Phase end (seconds).
    pub to_s: f64,
    /// Offered load during the phase (kb/s).
    pub kbps: u64,
}

/// Generates competing CBR traffic toward a sink on the shared segment,
/// following a phase schedule (none → large → medium → small in the
/// paper's figure 6). A small multiplicative jitter is applied per
/// burst so "medium" load hovers around the adaptation threshold.
pub struct LoadGen {
    target: u32,
    phases: Vec<LoadPhase>,
    jitter_pct: u64,
}

/// Interval between load bursts.
const BURST_INTERVAL: Duration = Duration::from_millis(10);

impl LoadGen {
    /// A generator sending to `target` following `phases`.
    pub fn new(target: u32, phases: Vec<LoadPhase>, jitter_pct: u64) -> Self {
        LoadGen {
            target,
            phases,
            jitter_pct,
        }
    }

    fn current_kbps(&self, t: f64) -> u64 {
        self.phases
            .iter()
            .find(|p| t >= p.from_s && t < p.to_s)
            .map(|p| p.kbps)
            .unwrap_or(0)
    }
}

impl App for LoadGen {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(BURST_INTERVAL, 0);
    }

    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        let t = api.now().as_secs_f64();
        let mut kbps = self.current_kbps(t);
        if kbps > 0 && self.jitter_pct > 0 {
            let span = kbps * self.jitter_pct / 100;
            kbps = kbps - span + api.rand_below(2 * span + 1);
        }
        // Bytes this burst, split into MTU-sized packets.
        let mut bytes = (kbps as usize * BURST_INTERVAL.as_millis() as usize) / 8;
        while bytes > 0 {
            let take = bytes.min(1250);
            let pkt = Packet::udp(
                api.addr(),
                self.target,
                9999,
                9999,
                Bytes::from(vec![0u8; take]),
            );
            api.send(pkt);
            bytes -= take;
        }
        api.set_timer(BURST_INTERVAL, 0);
    }
}

/// A do-nothing sink for generated load.
pub struct NullSink;

impl App for NullSink {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_payload_layout() {
        let p = frame_payload(format::MONO8, 42, &[1, 2, 3]);
        assert_eq!(p[0], 2);
        assert_eq!(i64::from_be_bytes(p[1..9].try_into().unwrap()), 42);
        assert_eq!(&p[9..], &[1, 2, 3]);
    }

    #[test]
    fn full_rate_matches_paper() {
        // 1100 B per 50 ms = 176 kb/s.
        let kbps = PCM_BYTES_PER_FRAME * 8 * (1000 / FRAME_INTERVAL.as_millis() as usize) / 1000;
        assert_eq!(kbps, 176);
    }

    #[test]
    fn load_phase_lookup() {
        let lg = LoadGen::new(
            1,
            vec![
                LoadPhase {
                    from_s: 0.0,
                    to_s: 10.0,
                    kbps: 0,
                },
                LoadPhase {
                    from_s: 10.0,
                    to_s: 20.0,
                    kbps: 9000,
                },
            ],
            0,
        );
        assert_eq!(lg.current_kbps(5.0), 0);
        assert_eq!(lg.current_kbps(15.0), 9000);
        assert_eq!(lg.current_kbps(25.0), 0);
    }
}
