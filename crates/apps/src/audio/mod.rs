//! The audio-broadcasting experiment (paper section 3.1): QoS
//! adaptation added to an unmodified multicast audio application by a
//! router ASP (bandwidth monitoring + quality degradation) and a client
//! ASP (format restoration).

pub mod apps;
pub mod asp;
pub mod native;
pub mod scenario;

pub use apps::{AudioClient, AudioClientStats, AudioSource, LoadGen, LoadPhase, NullSink};
pub use asp::{
    AUDIO_CLIENT_ASP, AUDIO_PORT, AUDIO_ROUTER_ASP, AUDIO_ROUTER_HYSTERESIS_ASP,
    AUDIO_ROUTER_QUEUE_ASP,
};
pub use native::{NativeAudioClient, NativeAudioRouter};
pub use scenario::{run_audio, run_audio_traced, Adaptation, AudioConfig, AudioResult};
