//! Native ("built-in C") baseline of the audio-adaptation router: the
//! same logic as `AUDIO_ROUTER_ASP`, hand-written against the hook API.
//! Used by the JIT-vs-native comparison (the paper's claim that a
//! PLAN-P ASP matches in-kernel C).

use super::asp::{format, AUDIO_PORT};
use bytes::{BufMut, BytesMut};
use netsim::packet::Packet;
use netsim::{ArrivalMeta, HookVerdict, NodeApi, PacketHook};
use planp_vm::audio;

/// Thresholds mirroring the ASP's `hiThresh`/`loThresh`.
const HI_THRESH: i64 = 80;
const LO_THRESH: i64 = 50;

/// The native router hook.
#[derive(Debug, Default)]
pub struct NativeAudioRouter {
    /// Frames degraded so far (diagnostics).
    pub degraded: u64,
}

impl NativeAudioRouter {
    /// A fresh router hook.
    pub fn new() -> Self {
        Self::default()
    }

    /// The quality level for a measured utilization percentage —
    /// identical to the ASP's `targetQuality`.
    pub fn target_quality(util: i64) -> u8 {
        if util > HI_THRESH {
            format::MONO8
        } else if util > LO_THRESH {
            format::MONO16
        } else {
            format::STEREO16
        }
    }
}

impl PacketHook for NativeAudioRouter {
    fn on_packet(
        &mut self,
        api: &mut NodeApi<'_>,
        mut pkt: Packet,
        meta: &ArrivalMeta,
    ) -> HookVerdict {
        if meta.overheard {
            return HookVerdict::Pass(pkt);
        }
        let is_audio = pkt.udp_hdr().is_some_and(|u| u.dport == AUDIO_PORT)
            && pkt.payload.len() > 9
            && pkt.payload[0] == format::STEREO16;
        if !is_audio {
            return HookVerdict::Pass(pkt);
        }
        let out = pkt.ip.dst;
        let util = api.measured_kbps_toward(out) * 100 / (api.capacity_kbps_toward(out) + 1);
        let q = Self::target_quality(util);
        if q == format::STEREO16 {
            return HookVerdict::Pass(pkt);
        }
        let pcm = &pkt.payload[9..];
        let degraded = match q {
            format::MONO8 => audio::pcm16_to_8(&audio::stereo_to_mono(pcm)),
            _ => audio::stereo_to_mono(pcm),
        };
        let mut buf = BytesMut::with_capacity(9 + degraded.len());
        buf.put_u8(q);
        buf.put_slice(&pkt.payload[1..9]);
        buf.put_slice(&degraded);
        pkt.payload = buf.freeze();
        self.degraded += 1;
        if pkt.ip.ttl <= 1 {
            return HookVerdict::Handled; // drop, as IP would
        }
        pkt.ip.ttl -= 1;
        api.send(pkt);
        HookVerdict::Handled
    }
}

/// Native client-side restoration (the counterpart of
/// `AUDIO_CLIENT_ASP`).
#[derive(Debug, Default)]
pub struct NativeAudioClient;

impl PacketHook for NativeAudioClient {
    fn on_packet(
        &mut self,
        api: &mut NodeApi<'_>,
        mut pkt: Packet,
        meta: &ArrivalMeta,
    ) -> HookVerdict {
        if meta.overheard {
            return HookVerdict::Pass(pkt);
        }
        let is_audio =
            pkt.udp_hdr().is_some_and(|u| u.dport == AUDIO_PORT) && pkt.payload.len() > 9;
        if !is_audio {
            return HookVerdict::Pass(pkt);
        }
        let fmt = pkt.payload[0];
        if fmt == format::STEREO16 {
            return HookVerdict::Pass(pkt);
        }
        let pcm = &pkt.payload[9..];
        let full = match fmt {
            format::MONO8 => audio::mono_to_stereo(&audio::pcm8_to_16(pcm)),
            _ => audio::mono_to_stereo(pcm),
        };
        let mut buf = BytesMut::with_capacity(9 + full.len());
        buf.put_u8(fmt); // keep the wire format visible to measurement
        buf.put_slice(&pkt.payload[1..9]);
        buf.put_slice(&full);
        pkt.payload = buf.freeze();
        api.deliver_local(pkt);
        HookVerdict::Handled
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quality_thresholds_match_asp() {
        assert_eq!(NativeAudioRouter::target_quality(10), format::STEREO16);
        assert_eq!(NativeAudioRouter::target_quality(50), format::STEREO16);
        assert_eq!(NativeAudioRouter::target_quality(51), format::MONO16);
        assert_eq!(NativeAudioRouter::target_quality(80), format::MONO16);
        assert_eq!(NativeAudioRouter::target_quality(81), format::MONO8);
        assert_eq!(NativeAudioRouter::target_quality(99), format::MONO8);
    }
}
