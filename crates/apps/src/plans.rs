//! The bundled deployment plans and the ASP name resolver that backs
//! them.
//!
//! Plans under `asps/plans/` name their ASPs abstractly (`forwarder`,
//! `reliable_relay`, `http_gateway`, …); [`resolve_asp`] maps each name
//! to its PLAN-P source and default download policy, drawing on the
//! checked-in `asps/` sources and the application crates' embedded
//! programs. [`load_bundled_plan`] ties the two together, and
//! [`verify_http_gateway`] lets the HTTP scenario statically verify
//! whichever gateway variant it is about to install — against the
//! canonical `http_cluster` topology — before the download happens.

use crate::chaos::{FRAGILE_RELAY_ASP, RELIABLE_RELAY_ASP};
use crate::http::HTTP_GATEWAY_ASP;
use planp_analysis::Policy;
use planp_runtime::{load_plan, PlanError, PlanImage};

/// `asps/plans/relay_pair.plan` — forwarder on the replay pair.
pub const RELAY_PAIR_PLAN: &str = include_str!("../../../asps/plans/relay_pair.plan");
/// `asps/plans/relay_chain_fragile.plan` — the chaos negative control.
pub const RELAY_CHAIN_FRAGILE_PLAN: &str =
    include_str!("../../../asps/plans/relay_chain_fragile.plan");
/// `asps/plans/relay_chain_reliable.plan` — the chaos headline relay.
pub const RELAY_CHAIN_RELIABLE_PLAN: &str =
    include_str!("../../../asps/plans/relay_chain_reliable.plan");
/// `asps/plans/http_cluster.plan` — the load-balancing gateway.
pub const HTTP_CLUSTER_PLAN: &str = include_str!("../../../asps/plans/http_cluster.plan");
/// `asps/plans/obs_grid.plan` — forwarders across the 1024-node grid.
pub const OBS_GRID_PLAN: &str = include_str!("../../../asps/plans/obs_grid.plan");
/// `asps/plans/buggy_bounce.plan` — rejected: dueling destination pins.
pub const BUGGY_BOUNCE_PLAN: &str = include_str!("../../../asps/plans/buggy_bounce.plan");
/// `asps/plans/buggy_shuttle.plan` — rejected: cross-channel shuttle.
pub const BUGGY_SHUTTLE_PLAN: &str = include_str!("../../../asps/plans/buggy_shuttle.plan");

const FORWARDER_ASP: &str = include_str!("../../../asps/forwarder.planp");
const BOUNCE_A_ASP: &str = include_str!("../../../asps/buggy/bounce_a.planp");
const BOUNCE_B_ASP: &str = include_str!("../../../asps/buggy/bounce_b.planp");
const SHUTTLE_A_ASP: &str = include_str!("../../../asps/buggy/shuttle_a.planp");
const SHUTTLE_B_ASP: &str = include_str!("../../../asps/buggy/shuttle_b.planp");

/// Every bundled plan as `(name, source)`, in a fixed report order.
pub fn bundled_plans() -> Vec<(&'static str, &'static str)> {
    vec![
        ("buggy_bounce", BUGGY_BOUNCE_PLAN),
        ("buggy_shuttle", BUGGY_SHUTTLE_PLAN),
        ("http_cluster", HTTP_CLUSTER_PLAN),
        ("obs_grid", OBS_GRID_PLAN),
        ("relay_chain_fragile", RELAY_CHAIN_FRAGILE_PLAN),
        ("relay_chain_reliable", RELAY_CHAIN_RELIABLE_PLAN),
        ("relay_pair", RELAY_PAIR_PLAN),
    ]
}

/// Maps a `deploy` line's ASP name to its source and default download
/// policy. Returns `None` for names no bundled plan uses.
pub fn resolve_asp(name: &str) -> Option<(String, Policy)> {
    let (src, policy) = match name {
        "forwarder" => (FORWARDER_ASP, Policy::strict()),
        "fragile_relay" => (FRAGILE_RELAY_ASP, Policy::no_delivery()),
        "reliable_relay" => (RELIABLE_RELAY_ASP, Policy::authenticated()),
        "http_gateway" => (HTTP_GATEWAY_ASP, Policy::strict()),
        "bounce_a" => (BOUNCE_A_ASP, Policy::strict()),
        "bounce_b" => (BOUNCE_B_ASP, Policy::strict()),
        "shuttle_a" => (SHUTTLE_A_ASP, Policy::strict()),
        "shuttle_b" => (SHUTTLE_B_ASP, Policy::strict()),
        _ => return None,
    };
    Some((src.to_string(), policy))
}

/// Loads and statically verifies one bundled plan by name.
///
/// # Errors
///
/// Propagates [`load_plan`] errors; unknown plan names surface as
/// [`PlanError::UnknownAsp`]-style misses only if a plan references
/// them, so this returns `None`-like failure via `UnknownTopology` for
/// genuinely unknown plans — callers should pick names from
/// [`bundled_plans`].
pub fn load_bundled_plan(name: &str) -> Result<PlanImage, PlanError> {
    let (_, src) = bundled_plans()
        .into_iter()
        .find(|(n, _)| *n == name)
        .ok_or_else(|| PlanError::UnknownTopology(format!("no bundled plan `{name}`")))?;
    load_plan(src, &resolve_asp)
}

/// Statically verifies a gateway ASP at plan scope before the HTTP
/// scenario installs it: loads [`HTTP_CLUSTER_PLAN`] with the
/// `http_gateway` deploy resolved to `gateway_src` (so every gateway
/// variant — round-robin, random, port-hash, failover — is checked
/// against the canonical cluster topology). Returns the rendered
/// report on rejection.
///
/// # Errors
///
/// Fails if the plan does not load or the verifier rejects it.
pub fn verify_http_gateway(gateway_src: &str) -> Result<PlanImage, String> {
    let resolver = |name: &str| -> Option<(String, Policy)> {
        if name == "http_gateway" {
            Some((gateway_src.to_string(), Policy::strict()))
        } else {
            resolve_asp(name)
        }
    };
    let image = load_plan(HTTP_CLUSTER_PLAN, &resolver).map_err(|e| e.to_string())?;
    if !image.report.accepted() {
        return Err(format!(
            "gateway rejected at plan scope:\n{}",
            image.report.render(HTTP_CLUSTER_PLAN)
        ));
    }
    Ok(image)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::{
        HTTP_GATEWAY_3SRV_ASP, HTTP_GATEWAY_FAILOVER_ASP, HTTP_GATEWAY_PORTHASH_ASP,
        HTTP_GATEWAY_RANDOM_ASP,
    };
    use planp_runtime::replay_plan;

    #[test]
    fn every_bundled_plan_loads() {
        for (name, src) in bundled_plans() {
            let image = load_plan(src, &resolve_asp).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert_eq!(image.name, name);
            assert!(
                image.report.max_budget() > 0,
                "{name}: no composed path budget"
            );
        }
    }

    #[test]
    fn single_asp_plans_prove_and_buggy_plans_reject() {
        for (name, src) in bundled_plans() {
            let image = load_plan(src, &resolve_asp).unwrap();
            if name.starts_with("buggy_") {
                assert!(!image.report.accepted(), "{name} should be rejected");
                assert!(
                    image.report.witnesses.iter().any(|w| w.code == "E007"),
                    "{name} should carry an E007 witness"
                );
            } else {
                assert!(
                    image.report.accepted(),
                    "{name} should be accepted:\n{}",
                    image.report.render(src)
                );
            }
        }
    }

    #[test]
    fn buggy_plan_witnesses_replay_as_real_loops() {
        for name in ["buggy_bounce", "buggy_shuttle"] {
            let image = load_bundled_plan(name).unwrap();
            assert!(!image.report.accepted());
            let replay = replay_plan(&image).unwrap_or_else(|e| panic!("{name}: {e}"));
            assert!(
                replay.confirmed_loop,
                "{name}: predicted joint loop did not reproduce: {replay:?}"
            );
        }
    }

    #[test]
    fn all_gateway_variants_verify_at_plan_scope() {
        for (tag, src) in [
            ("round_robin", HTTP_GATEWAY_ASP),
            ("3srv", HTTP_GATEWAY_3SRV_ASP),
            ("random", HTTP_GATEWAY_RANDOM_ASP),
            ("porthash", HTTP_GATEWAY_PORTHASH_ASP),
            ("failover", HTTP_GATEWAY_FAILOVER_ASP),
        ] {
            let image = verify_http_gateway(src).unwrap_or_else(|e| panic!("{tag}: {e}"));
            assert!(image.report.joint.is_proved(), "{tag} joint check");
        }
    }
}
