//! Rust traffic applications for the chaos experiments: a paced
//! sequence-stamped source that answers NACKs with retransmissions,
//! and a collector that counts unique and duplicated deliveries.
//!
//! Both apps mirror their headline counters into the shared metrics
//! registry (`chaos.sent`, `chaos.unique`) through pre-registered
//! [`CounterId`] handles, so windowed SLO rules (the delivery-floor
//! rule of the health monitor) can watch the stream live without any
//! per-event string hashing.

use super::asp::{DATA_PORT, NACK_PORT};
use bytes::Bytes;
use netsim::packet::Packet;
use netsim::{App, NodeApi};
use planp_telemetry::CounterId;
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;
use std::time::Duration;

/// Registry counter for first transmissions from the source.
pub const SENT_COUNTER: &str = "chaos.sent";
/// Registry counter for distinct sequences the collector received.
pub const UNIQUE_COUNTER: &str = "chaos.unique";

/// Bytes of filler after the 8-byte sequence number.
const FILLER: usize = 56;

/// The data packet for `seq` — deterministic, so the source can rebuild
/// any packet a NACK asks for.
pub fn data_packet(src: u32, dst: u32, seq: u64) -> Packet {
    let mut payload = Vec::with_capacity(8 + FILLER);
    payload.extend_from_slice(&seq.to_be_bytes());
    payload.extend(std::iter::repeat_n(seq as u8, FILLER));
    Packet::udp(src, dst, DATA_PORT, DATA_PORT, Bytes::from(payload))
}

/// Counters kept by [`SeqSource`].
#[derive(Debug, Default, Clone)]
pub struct SeqSourceStats {
    /// First transmissions (one per sequence number).
    pub sent: u64,
    /// Retransmissions triggered by NACKs that reached the source
    /// (i.e. that no relay on the path could answer from its buffer).
    pub retransmits: u64,
    /// Deliberate re-sends of the final sequence (tail protection).
    pub tail_resends: u64,
}

/// Sends `count` sequence-stamped datagrams at a fixed pace, then
/// re-sends the final datagram a few times (so a lost tail, which no
/// later arrival can reveal as a gap, still gets another chance).
/// NACKs delivered to the source are answered by rebuilding and
/// re-sending the requested sequence.
pub struct SeqSource {
    dst: u32,
    count: u64,
    interval: Duration,
    tail_resends: u32,
    next: u64,
    c_sent: Option<CounterId>,
    /// Shared counters.
    pub stats: Rc<RefCell<SeqSourceStats>>,
}

impl SeqSource {
    /// A source sending `count` packets to `dst`, one every `interval`.
    pub fn new(dst: u32, count: u64, interval: Duration) -> Self {
        SeqSource {
            dst,
            count,
            interval,
            tail_resends: 4,
            next: 0,
            c_sent: None,
            stats: Rc::new(RefCell::new(SeqSourceStats::default())),
        }
    }
}

impl App for SeqSource {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.c_sent = Some(api.telemetry().metrics.register_counter(SENT_COUNTER));
        api.set_timer(self.interval, 0);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let is_nack = pkt
            .udp_hdr()
            .is_some_and(|u| u.dport == NACK_PORT && pkt.payload.len() >= 8);
        if is_nack {
            let seq = u64::from_be_bytes(pkt.payload[..8].try_into().unwrap());
            if seq < self.count {
                self.stats.borrow_mut().retransmits += 1;
                api.send(data_packet(api.addr(), self.dst, seq));
            }
        }
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.next < self.count {
            api.send(data_packet(api.addr(), self.dst, self.next));
            self.next += 1;
            self.stats.borrow_mut().sent += 1;
            if let Some(id) = self.c_sent {
                api.telemetry().metrics.inc_id(id);
            }
            api.set_timer(self.interval, 0);
        } else if self.tail_resends > 0 && self.count > 0 {
            self.tail_resends -= 1;
            self.stats.borrow_mut().tail_resends += 1;
            api.send(data_packet(api.addr(), self.dst, self.count - 1));
            api.set_timer(self.interval, 0);
        }
    }

    fn on_restart(&mut self, api: &mut NodeApi<'_>) {
        // Timers are swallowed while a node is down; pick the pace back
        // up where the crash left it.
        api.set_timer(self.interval, 0);
    }
}

/// Counters kept by [`SeqCollector`].
#[derive(Debug, Default, Clone)]
pub struct SeqCollectorStats {
    /// Distinct sequence numbers delivered.
    pub unique: u64,
    /// Deliveries of an already-seen sequence number.
    pub duplicates: u64,
    /// Deliveries whose filler bytes did not match the sequence stamp
    /// (payload corruption that slipped through).
    pub mangled: u64,
}

/// Receives sequence-stamped datagrams and tallies unique deliveries,
/// duplicates, and corrupted payloads.
pub struct SeqCollector {
    seen: HashSet<u64>,
    c_unique: Option<CounterId>,
    /// Shared counters.
    pub stats: Rc<RefCell<SeqCollectorStats>>,
}

impl SeqCollector {
    /// An empty collector.
    pub fn new() -> Self {
        SeqCollector {
            seen: HashSet::new(),
            c_unique: None,
            stats: Rc::new(RefCell::new(SeqCollectorStats::default())),
        }
    }
}

impl Default for SeqCollector {
    fn default() -> Self {
        Self::new()
    }
}

impl App for SeqCollector {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        self.c_unique = Some(api.telemetry().metrics.register_counter(UNIQUE_COUNTER));
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let is_data = pkt
            .udp_hdr()
            .is_some_and(|u| u.dport == DATA_PORT && pkt.payload.len() >= 8);
        if !is_data {
            return;
        }
        let seq = u64::from_be_bytes(pkt.payload[..8].try_into().unwrap());
        let mut stats = self.stats.borrow_mut();
        if pkt.payload[8..].iter().any(|&b| b != seq as u8) {
            stats.mangled += 1;
        }
        if self.seen.insert(seq) {
            stats.unique += 1;
            drop(stats);
            if let Some(id) = self.c_unique {
                api.telemetry().metrics.inc_id(id);
            }
        } else {
            stats.duplicates += 1;
        }
    }
}
