//! The PLAN-P programs of the chaos experiments: a NACK-driven
//! reliable relay, its retransmission-free negative control, and a
//! corruption-hardened variant of the audio router.
//!
//! Data framing shared by the relay programs and the Rust traffic
//! apps: UDP datagrams to [`DATA_PORT`] whose payload starts with the
//! sequence number as an 8-byte big-endian integer; NACKs are UDP
//! datagrams to [`NACK_PORT`] carrying the requested sequence in the
//! same encoding.

/// UDP destination port carrying sequence-stamped data.
pub const DATA_PORT: u16 = 5555;

/// UDP destination port carrying NACKs (requests for a retransmission).
pub const NACK_PORT: u16 = 5556;

/// The reliable relay: relays buffer by sequence number and answer
/// NACKs with retransmissions; the receiver dedupes, NACKs gaps, and
/// keeps a timer armed until every gap closes. The retransmission
/// cycle defeats the conservative termination screen, so this program
/// loads under the `authenticated` policy (paper section 2.1).
pub const RELIABLE_RELAY_ASP: &str = r#"
-- Reliable relay: NACK-driven retransmission over lossy links.
--
-- One program, two roles, switched on `ipDst = thisHost()`:
--
--  * relay role (routers): every data packet is buffered by sequence
--    number in the protocol state before being forwarded. A `nack`
--    packet travelling back toward the source is intercepted; if the
--    requested sequence is buffered the relay retransmits it and
--    consumes the NACK, otherwise the NACK continues upstream.
--  * receiver role (the destination host): data packets are deduped by
--    sequence number and handed to the application; a gap (arrival
--    above the next expected sequence) triggers a NACK for the lowest
--    missing sequence and arms a timer that keeps re-NACKing until the
--    gap closes.
--
-- Data framing: UDP to `dataPort`, payload starts with the sequence
-- number as an 8-byte big-endian integer. NACKs: UDP to `nackPort`,
-- payload is the requested sequence in the same encoding.
--
-- The retransmission cycle (relay resends into the same channel) is
-- exactly the class of useful protocol the conservative termination
-- screen must reject, so this program loads under the `authenticated`
-- download policy — the paper's escape hatch for trusted sources
-- (section 2.1).

val dataPort : int = 5555
val nackPort : int = 5556
val nackDelayMs : int = 20
val timerKey : int = 1

-- The handler is unreachable (an 8-byte blob always has room for one
-- int at offset 0) but discharges the static OutOfRange obligation.
fun seqBlob(seq : int) : blob =
  (blobSetInt(mkBlob(8, 0), 0, seq) handle OutOfRange => blobFromString("00000000"))

-- Protocol state: (next expected seq, highest seen seq + 1,
-- data source host, seq -> packet table). The table is the
-- retransmission buffer on relays and the seen-set on the receiver.

channel network(ps : int * int * host * ((int, ip*udp*blob) hash_table),
                ss : unit,
                p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
  in
    if udpDst(udph) = dataPort andalso blobLen(body) >= 8 then
      let
        -- The guard above ensures 8 payload bytes; the handler only
        -- satisfies the static exception screen.
        val seq : int = (blobInt(body, 0) handle OutOfRange => 0 - 1)
        val buf : (int, ip*udp*blob) hash_table = #4 ps
      in
        if ipDst(iph) = thisHost() then
          -- Receiver role.
          if tblHas(buf, seq) then
            (ps, ss)  -- duplicate (retransmission overlap): consume
          else
            (tblSet(buf, seq, p);
             deliver(p);
             let
               val expected : int = #1 ps
               val upper : int = if seq + 1 > #2 ps then seq + 1 else #2 ps
               val expected2 : int =
                 if seq = expected then expected + 1 else expected
             in
               (if expected2 < upper then
                  -- A gap: NACK the lowest missing sequence at the
                  -- sender and keep a timer armed until it closes.
                  (OnRemote(nack, (ipDestSet(ipSrcSet(iph, thisHost()),
                                             ipSrc(iph)),
                                   udpSrcSet(udpDstSet(udph, nackPort),
                                             nackPort),
                                   seqBlob(expected2)));
                   setTimer(nackDelayMs, timerKey))
                else
                  ();
                ((expected2, upper, ipSrc(iph), buf), ss))
             end)
        else
          -- Relay role: keep a copy for retransmission, then forward.
          (tblSet(buf, seq, p); OnRemote(network, p); (ps, ss))
      end
    else
      (OnRemote(network, p); (ps, ss))
  end

channel nack(ps : int * int * host * ((int, ip*udp*blob) hash_table),
             ss : unit,
             p : ip*udp*blob) is
  if ipDst(#1 p) = thisHost() then
    -- Reached the original data source: the sending application
    -- handles retransmission from here (the NACK is delivered to it).
    (deliver(p); (ps, ss))
  else
    (let
       -- A truncated NACK decodes to -1, which no buffer contains, so
       -- it falls into the NotFound arm and travels on upstream.
       val cached : ip*udp*blob =
         tblGet(#4 ps, (blobInt(#3 p, 0) handle OutOfRange => 0 - 1))
     in
       -- We buffered that sequence: retransmit and absorb the NACK.
       (OnRemote(network, cached); (ps, ss))
     end
     handle NotFound =>
       -- Never saw it (lost upstream of us): pass the NACK along.
       (OnRemote(nack, p); (ps, ss)))

channel timer(ps : int * int * host * ((int, ip*udp*blob) hash_table),
              ss : unit,
              p : ip*udp*blob) is
  let
    val expected : int = #1 ps
    val upper : int = #2 ps
    val src : host = #3 ps
    val buf : (int, ip*udp*blob) hash_table = #4 ps
  in
    if expected < upper then
      if tblHas(buf, expected) then
        -- Already arrived out of order: advance one step per tick
        -- (PLAN-P has no loops) and tick again immediately.
        (setTimer(1, timerKey); ((expected + 1, upper, src, buf), ss))
      else
        -- Still missing: re-NACK it. The synthetic timer packet
        -- donates its headers (self-addressed UDP).
        (OnRemote(nack, (ipDestSet(ipSrcSet(#1 p, thisHost()), src),
                         udpSrcSet(udpDstSet(#2 p, nackPort), nackPort),
                         seqBlob(expected)));
         setTimer(nackDelayMs, timerKey);
         (ps, ss))
    else
      (ps, ss)
  end
"#;

/// The negative control: identical framing, no buffering, no NACKs.
/// Statically spotless (termination and delivery both prove) and
/// behaviorally fragile — its delivery ratio collapses under injected
/// loss.
pub const FRAGILE_RELAY_ASP: &str = r#"
-- Fragile relay: the retransmission-free twin of
-- `asps/reliable_relay.planp`, kept as a negative control for the
-- chaos experiments.
--
-- Same framing (UDP to `dataPort`, payload begins with an 8-byte
-- sequence number) and the same role switch, but the relay keeps no
-- buffer and nobody NACKs: whatever the lossy link eats is gone.
-- Statically this program is spotless — termination and delivery both
-- prove — which is exactly the point: the verifier guarantees say
-- nothing about robustness, so under 10% injected loss its delivery
-- ratio collapses while reliable_relay holds (see EXPERIMENTS.md).

val dataPort : int = 5555

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  if udpDst(#2 p) = dataPort andalso blobLen(#3 p) >= 8 then
    if ipDst(#1 p) = thisHost() then
      (deliver(p); (ps + 1, ss))
    else
      (OnRemote(network, p); (ps, ss))
  else
    (OnRemote(network, p); (ps, ss))
"#;

/// The corruption-hardened audio router: clamps corrupted quality
/// markers back into range, watches the outgoing queue as well as
/// utilization, and forwards anything it cannot parse verbatim.
pub const AUDIO_ROUTER_CHAOS_ASP: &str = r#"
-- Chaos-hardened audio bandwidth adaptation (section 3.1 under fault
-- injection).
--
-- The plain `audio_router.planp` trusts the quality marker in byte 0:
-- a corrupted marker makes it treat fresh stereo as already-degraded
-- and forward it untouched. This variant survives byte corruption:
--
--  * out-of-range quality markers are clamped back into `0..qMax` and
--    re-stamped, so one flipped byte cannot poison the downstream
--    client's decoder dispatch;
--  * besides link utilization it watches the outgoing queue, degrading
--    early during the retransmission storms that loss injection causes;
--  * every parse lives under a `handle _` fallback — a packet this
--    program cannot make sense of is forwarded verbatim, never dropped.
--
-- Every path still emits exactly one send, so termination and delivery
-- both prove and the program loads under the default no-delivery
-- policy.

val audioPort : int = 7777
val hiThresh : int = 80   -- % utilization above which we send 8-bit mono
val loThresh : int = 50   -- % utilization above which we send 16-bit mono
val hiQueue : int = 24    -- queued packets that force 8-bit mono
val loQueue : int = 8     -- queued packets that force 16-bit mono
val qMax : int = 2

fun clampQ(q : int) : int =
  if q < 0 then 0 else if q > qMax then qMax else q

fun targetQuality(util : int, qlen : int) : int =
  if util > hiThresh orelse qlen > hiQueue then 2
  else if util > loThresh orelse qlen > loQueue then 1
  else 0

fun degrade(pcm : blob, q : int) : blob =
  if q = 2 then audio16to8(audioStereoToMono(pcm))
  else if q = 1 then audioStereoToMono(pcm)
  else pcm

channel network(ps : int, ss : unit, p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val body : blob = #3 p
    val out : ip*udp*blob =
      (if udpDst(udph) = audioPort andalso blobLen(body) > 9 then
         let
           val q0 : int = clampQ(blobByte(body, 0))
         in
           if q0 = 0 then
             let
               val util : int =
                 (linkLoad(ipDst(iph)) * 100) div (linkCapacity(ipDst(iph)) + 1)
               val q : int = targetQuality(util, queueLen(ipDst(iph)))
               val hdr : blob = blobSetByte(blobSub(body, 0, 9), 0, q)
               val pcm : blob = degrade(blobSub(body, 9, blobLen(body) - 9), q)
             in
               if q = 0 then p else (iph, udph, blobCat(hdr, pcm))
             end
           else
             -- Marker claims the stream is already degraded (possibly a
             -- corrupted byte clamped into range): re-stamp the clamped
             -- marker and leave the samples alone.
             (iph, udph, blobSetByte(body, 0, q0))
         end
       else p)
      handle _ => p
  in
    (OnRemote(network, out); (ps, ss))
  end
"#;
