//! The chaos experiment harness: a relay chain under seeded fault
//! injection.
//!
//! Topology (per-link impairments apply to every hop):
//!
//! ```text
//!   source ── r1 ── r2 ── r3 ── r4 ── dst      (10 Mb/s links)
//! ```
//!
//! The chain is the registry's `relay_chain` [`TopoSpec`], and the ASP
//! reaches every forwarder through a verified **deployment plan**
//! (`asps/plans/relay_chain_*.plan`): [`planp_runtime::load_plan`] runs
//! the plan-level product check and composes the path CPU budget before
//! anything installs, and [`planp_runtime::install_plan`] wires one
//! [`RecoveryService`](planp_runtime::RecoveryService) per install
//! point whose preflight re-verifies the *plan* — so a crashed node
//! re-downloads, and the whole composition re-proves, when it restarts.
//! The program is either the NACK-driven
//! [`reliable relay`](super::asp::RELIABLE_RELAY_ASP) (loaded under the
//! `authenticated` policy, since its retransmission cycle defeats the
//! termination screen) or its statically spotless, retransmission-free
//! twin [`fragile relay`](super::asp::FRAGILE_RELAY_ASP) — the negative
//! control showing that verifier guarantees say nothing about
//! robustness.

use super::apps::{SeqCollector, SeqSource};
use super::asp::{FRAGILE_RELAY_ASP, RELIABLE_RELAY_ASP};
use crate::plans::{resolve_asp, RELAY_CHAIN_FRAGILE_PLAN, RELAY_CHAIN_RELIABLE_PLAN};
use netsim::{FaultAction, FaultPlan, FaultStats, LinkFaults, LinkId, Sim, SimTime, TopoSpec};
use planp_analysis::cost::cost_bounds;
use planp_analysis::Policy;
use planp_lang::compile_front;
use planp_runtime::{install_plan, load_plan, Engine, LayerConfig};
use planp_telemetry::{
    CounterSel, HealthMonitor, MetricsSnapshot, SloRule, TraceConfig, TraceForest,
};
use std::time::Duration;

/// Number of relays between the source and the destination.
const RELAYS: usize = 4;

/// Which relay program the chain runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RelayKind {
    /// `reliable_relay.planp`: per-hop buffering, NACK-driven
    /// retransmission, receiver-side dedup.
    Reliable,
    /// `buggy/fragile_relay.planp`: plain forwarding, no recovery.
    Fragile,
}

impl RelayKind {
    /// The program source.
    pub fn source(self) -> &'static str {
        match self {
            RelayKind::Reliable => RELIABLE_RELAY_ASP,
            RelayKind::Fragile => FRAGILE_RELAY_ASP,
        }
    }

    /// The download policy each node verifies the program under.
    /// The reliable relay needs the paper's authenticated-source escape
    /// hatch (its retransmission cycle is rejected by the conservative
    /// termination screen); the fragile one passes the default policy.
    pub fn policy(self) -> Policy {
        match self {
            RelayKind::Reliable => Policy::authenticated(),
            RelayKind::Fragile => Policy::no_delivery(),
        }
    }

    /// Short name for tables and JSON keys.
    pub fn name(self) -> &'static str {
        match self {
            RelayKind::Reliable => "reliable",
            RelayKind::Fragile => "fragile",
        }
    }

    /// The bundled deployment plan that carries this relay across the
    /// chain (see `asps/plans/`).
    pub fn plan(self) -> &'static str {
        match self {
            RelayKind::Reliable => RELAY_CHAIN_RELIABLE_PLAN,
            RelayKind::Fragile => RELAY_CHAIN_FRAGILE_PLAN,
        }
    }
}

/// One chaos run's configuration.
#[derive(Debug, Clone)]
pub struct RelayChaosConfig {
    /// Relay program under test.
    pub kind: RelayKind,
    /// Impairments applied to **every** link of the chain (loss
    /// compounds per hop).
    pub faults: LinkFaults,
    /// When the impairments switch on (seconds).
    pub fault_from_s: f64,
    /// Crash/restart schedule for the middle relay (`r2`), if any.
    pub crash_relay: Option<(f64, f64)>,
    /// Datagrams the source sends.
    pub packets: u64,
    /// Source pacing (milliseconds between datagrams).
    pub interval_ms: u64,
    /// Total simulated time (seconds) — leave room after the last send
    /// for NACK-driven repair to drain.
    pub duration_s: u64,
    /// Random seed (drives load jitter *and* every fault coin flip).
    pub seed: u64,
    /// Execution engine for every installed hook (JIT by default; the
    /// interpreter is the conservative fallback the budgets also cover).
    pub engine: Engine,
    /// Trace configuration (off by default; the health monitor and
    /// flight recorder do not depend on it).
    pub trace: TraceConfig,
    /// Health-monitor window in milliseconds. `Some(ms)` installs the
    /// standard SLO rule set ([`chaos_slo_rules`]) evaluated every `ms`
    /// of simulation time, with the middle relay's flight-recorder
    /// window frozen on the first breach.
    pub monitor_ms: Option<u64>,
}

impl RelayChaosConfig {
    /// The standard run: 400 packets at 2 ms spacing, impairments from
    /// t=0.01 s, 5 s total.
    pub fn new(kind: RelayKind, faults: LinkFaults) -> Self {
        RelayChaosConfig {
            kind,
            faults,
            fault_from_s: 0.01,
            crash_relay: None,
            packets: 400,
            interval_ms: 2,
            duration_s: 5,
            seed: 7,
            engine: Engine::Jit,
            trace: TraceConfig::default(),
            monitor_ms: None,
        }
    }

    /// The standard run with Bernoulli loss `p` on every link.
    pub fn loss(kind: RelayKind, p: f64) -> Self {
        RelayChaosConfig::new(kind, LinkFaults::loss(p))
    }
}

/// The standard chaos SLO rule set, windowed over the monitor interval:
///
/// * `delivery_floor` — distinct sequences reaching the collector per
///   first transmission must stay ≥ 95% per window (the PR 5 headline:
///   the reliable relay holds this under 5% per-link loss, the fragile
///   one violates it at 10%).
/// * `hop_p99` — 99th-percentile link hop latency (enqueue →
///   tx-complete) per window, capped at 50 ms.
/// * `queue_p99` — 99th-percentile link queue depth at enqueue, capped
///   at 48 packets (the chain's queues hold 64).
/// * `fault_drop_burst` — fault-injected link drops per window, capped
///   at 200 (a whole-window partition trips it; steady Bernoulli loss
///   does not).
pub fn chaos_slo_rules() -> Vec<SloRule> {
    vec![
        SloRule::RatioFloor {
            name: "delivery_floor".into(),
            num: CounterSel::exact(super::apps::UNIQUE_COUNTER),
            den: CounterSel::exact(super::apps::SENT_COUNTER),
            floor_ppm: 950_000,
            min_den: 20,
        },
        SloRule::QuantileCeiling {
            name: "hop_p99".into(),
            hist: "sim.hop_latency_ns".into(),
            q_pm: 990,
            ceiling: 50_000_000,
        },
        SloRule::QuantileCeiling {
            name: "queue_p99".into(),
            hist: "sim.queue_depth".into(),
            q_pm: 990,
            ceiling: 48,
        },
        SloRule::CounterCeiling {
            name: "fault_drop_burst".into(),
            sel: CounterSel::wildcard("link", ".fault_drops"),
            ceiling: 200,
        },
    ]
}

/// What the health monitor saw during a chaos run (present when
/// [`RelayChaosConfig::monitor_ms`] was set).
#[derive(Debug, Clone)]
pub struct ChaosHealth {
    /// The monitor's byte-stable windowed report.
    pub report: String,
    /// Breached windows across every rule.
    pub breaches: u64,
    /// Breached windows of the `delivery_floor` rule alone.
    pub delivery_breaches: u64,
    /// Whether the last judged delivery window was back above the
    /// floor — the recovery signal after an outage.
    pub delivery_recovered: Option<bool>,
    /// Flight-recorder dumps (crashes and the first SLO breach),
    /// rendered byte-stably.
    pub flight: String,
}

/// What one chaos run produced.
#[derive(Debug, Clone)]
pub struct RelayChaosResult {
    /// First transmissions from the source.
    pub sent: u64,
    /// Source retransmissions (NACKs that travelled all the way back).
    pub retransmits: u64,
    /// Deliberate source re-sends of the final sequence.
    pub tail_resends: u64,
    /// Distinct sequence numbers the destination application received.
    pub unique: u64,
    /// Duplicate deliveries seen by the destination application.
    pub duplicates: u64,
    /// Deliveries with corrupted filler bytes.
    pub mangled: u64,
    /// `unique / packets`.
    pub delivery_ratio: f64,
    /// Successful post-restart re-deployments across all nodes.
    pub redeploys: u64,
    /// Failed (re-)deployments across all nodes.
    pub recovery_failures: u64,
    /// Node crashes (from the fault schedule).
    pub crashes: u64,
    /// Crashes that discarded an installed protocol.
    pub state_lost: u64,
    /// Engine-wide fault counters.
    pub fault: FaultStats,
    /// Engine-wide drop total (congestion + fault).
    pub total_link_drops: u64,
    /// Σ per-link congestion drops.
    pub sum_link_drops: u64,
    /// Σ per-link fault-injected drops.
    pub sum_fault_drops: u64,
    /// Engine-wide node drop total (policy + CPU overflow + shed).
    pub total_node_drops: u64,
    /// Σ per-node `dropped + cpu_drops + shed`.
    pub sum_node_drops: u64,
    /// Static per-packet send bound of the program's data path — the
    /// linearity bound that caps duplicate amplification.
    pub sends_bound: u64,
    /// The plan verifier's composed worst-case per-packet VM budget
    /// over the chain's declared path (source → dst).
    pub plan_budget: u64,
    /// Costliest traced causal chain in VM steps (max root-to-leaf sum
    /// of per-span `vm_steps`; 0 when tracing was off). For plain
    /// forwarding this is bounded by the composed plan budget above by
    /// construction.
    pub max_path_vm_steps: u64,
    /// Final metrics snapshot (byte-stable for a given seed + plan).
    pub snapshot: MetricsSnapshot,
    /// Health-monitor outcome, when one was configured.
    pub health: Option<ChaosHealth>,
}

impl RelayChaosResult {
    /// The engine-wide drop-accounting identity: every drop is either a
    /// congestion drop or a fault drop, counted exactly once.
    pub fn drop_identity_holds(&self) -> bool {
        self.total_link_drops == self.sum_link_drops + self.sum_fault_drops
    }

    /// The node-side companion identity: every drop charged to a node is
    /// a policy drop, a CPU-queue overflow, or an admission shed at that
    /// node — counted once, never folded into the link accounting.
    pub fn node_drop_identity_holds(&self) -> bool {
        self.total_node_drops == self.sum_node_drops
    }

    /// The duplicate-amplification invariant: the program's data path
    /// executes at most `sends_bound` sends per packet (statically
    /// proved), so beyond the copies the *source itself* chose to
    /// re-send (tail protection and NACK-triggered retransmissions),
    /// the application can see at most `sends_bound` duplicate
    /// deliveries per in-flight duplication event — the network never
    /// amplifies on its own.
    pub fn duplicates_within_bound(&self) -> bool {
        let deliberate = self.tail_resends + self.retransmits;
        self.duplicates <= self.fault.duplicated * self.sends_bound + deliberate
    }
}

/// Runs one relay chaos experiment.
///
/// # Panics
///
/// Panics if the selected ASP fails to compile (the static send bound is
/// computed from its front-end output).
pub fn run_relay_chaos(cfg: &RelayChaosConfig) -> RelayChaosResult {
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(cfg.trace);

    // The chain is the registry's canonical `relay_chain` topology —
    // the same structure the deployment plan was verified over.
    let topo = TopoSpec::named("relay_chain").expect("registered topology");
    let ids = topo.build(&mut sim);
    let source = ids[0];
    let relays = &ids[1..=RELAYS];
    let dst = ids[RELAYS + 1];
    let dst_addr = topo.nodes[RELAYS + 1].addr;
    let link_count = topo.links.len();

    // The ASP reaches every forwarder through the verified deployment
    // plan: the plan-level product check and composed path budget ran
    // in `load_plan`, and each install point's recovery preflight
    // re-verifies the plan on crash/restart before re-downloading.
    let image = load_plan(cfg.kind.plan(), &resolve_asp).expect("bundled plan loads");
    let plan_budget = image.report.max_budget();
    let logs = install_plan(
        &mut sim,
        &image,
        &ids,
        LayerConfig {
            engine: cfg.engine,
            ..LayerConfig::default()
        },
    )
    .expect("verified plan installs");

    let src_app = SeqSource::new(
        dst_addr,
        cfg.packets,
        Duration::from_millis(cfg.interval_ms),
    );
    let src_stats = src_app.stats.clone();
    sim.add_app(source, Box::new(src_app));
    let collector = SeqCollector::new();
    let col_stats = collector.stats.clone();
    sim.add_app(dst, Box::new(collector));

    let mut plan = FaultPlan::new();
    if !cfg.faults.is_clean() {
        for l in 0..link_count {
            plan = plan.at(
                cfg.fault_from_s,
                FaultAction::SetLinkFaults {
                    link: LinkId(l),
                    faults: cfg.faults,
                },
            );
        }
    }
    if let Some((crash_s, restart_s)) = cfg.crash_relay {
        plan = plan.crash_restart(crash_s, restart_s, relays[RELAYS / 2]);
    }
    sim.apply_fault_plan(plan);

    if let Some(ms) = cfg.monitor_ms {
        let mut mon = HealthMonitor::new(ms.max(1) * 1_000_000);
        for rule in chaos_slo_rules() {
            mon = mon.rule(rule);
        }
        // The crash schedule targets the middle relay; freeze its
        // recent flight-recorder window on the first breached rule.
        mon.dump_on_breach = vec![relays[RELAYS / 2].0 as u32];
        sim.monitor = Some(mon);
    }

    sim.run_until(SimTime::from_secs(cfg.duration_s));

    let health = sim.monitor.take().map(|mon| ChaosHealth {
        report: mon.render_report(),
        breaches: mon.breaches(),
        delivery_breaches: mon.breaches_of("delivery_floor"),
        delivery_recovered: mon.last_ok("delivery_floor"),
        flight: sim.telemetry.flight.render_dumps(&sim.telemetry.nodes),
    });

    // Static linearity bound of the data path ("network" channel): the
    // cap on how far an injected duplicate can amplify.
    let prog = compile_front(cfg.kind.source()).expect("bundled relay ASP compiles");
    let costs = cost_bounds(&prog);
    let sends_bound = costs
        .channels
        .iter()
        .filter(|c| c.name == "network")
        .map(|c| c.bound.sends)
        .max()
        .unwrap_or(0);

    let (mut redeploys, mut recovery_failures) = (0, 0);
    for log in &logs {
        let log = log.borrow();
        redeploys += log.redeploys;
        recovery_failures += log.failures;
    }
    // Observed counterpart of the composed plan budget: the costliest
    // traced causal chain (0 when tracing was off).
    let max_path_vm_steps = TraceForest::from_log(&sim.telemetry.trace).max_path_vm_steps();

    let src_stats = src_stats.borrow();
    let col = col_stats.borrow();
    RelayChaosResult {
        sent: src_stats.sent,
        retransmits: src_stats.retransmits,
        tail_resends: src_stats.tail_resends,
        unique: col.unique,
        duplicates: col.duplicates,
        mangled: col.mangled,
        delivery_ratio: col.unique as f64 / cfg.packets.max(1) as f64,
        redeploys,
        recovery_failures,
        crashes: sim.nodes().map(|n| n.crashes).sum(),
        state_lost: sim.nodes().map(|n| n.state_lost).sum(),
        fault: sim.fault_stats,
        total_link_drops: sim.total_link_drops,
        sum_link_drops: sim.links().map(|l| l.drops).sum(),
        sum_fault_drops: sim.links().map(|l| l.fault_drops).sum(),
        total_node_drops: sim.total_node_drops,
        sum_node_drops: sim.nodes().map(|n| n.dropped + n.cpu_drops + n.shed).sum(),
        sends_bound,
        plan_budget,
        max_path_vm_steps,
        snapshot: sim.metrics_snapshot(),
        health,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::packet::addr;
    use netsim::LinkSpec;

    /// The headline robustness number: hop-by-hop NACK repair holds
    /// delivery at ≥ 99% even though raw loss compounds to ~23% across
    /// the five-link chain.
    #[test]
    fn reliable_relay_holds_under_five_percent_loss() {
        let res = run_relay_chaos(&RelayChaosConfig::loss(RelayKind::Reliable, 0.05));
        assert_eq!(res.sent, 400, "one first transmission per sequence");
        assert!(
            res.delivery_ratio >= 0.99,
            "reliable delivery collapsed: {res:?}"
        );
        assert!(res.fault.loss_drops > 0, "the plan must actually bite");
        assert_eq!(res.duplicates, 0, "receiver-side dedup");
        assert_eq!(res.recovery_failures, 0);
        assert!(res.drop_identity_holds(), "{res:?}");
        assert!(res.node_drop_identity_holds(), "{res:?}");
    }

    /// The negative control: a statically spotless program (termination
    /// and delivery both proved) loses a third of the stream under the
    /// same schedule at 10% per-link loss.
    #[test]
    fn fragile_relay_collapses_under_ten_percent_loss() {
        let res = run_relay_chaos(&RelayChaosConfig::loss(RelayKind::Fragile, 0.10));
        assert!(
            res.delivery_ratio < 0.7,
            "fragile relay should collapse: {res:?}"
        );
        assert!(res.delivery_ratio > 0.3, "sanity: the chain still works");
        assert_eq!(res.retransmits, 0, "nobody NACKs");
        assert!(res.drop_identity_holds(), "{res:?}");
        assert!(res.node_drop_identity_holds(), "{res:?}");
    }

    /// Injected duplication never amplifies beyond the statically proved
    /// per-packet send bound — for either program.
    #[test]
    fn duplicates_stay_within_static_linearity_bound() {
        for kind in [RelayKind::Reliable, RelayKind::Fragile] {
            let mut cfg = RelayChaosConfig::new(
                kind,
                LinkFaults {
                    duplicate: 0.05,
                    ..LinkFaults::default()
                },
            );
            cfg.faults.loss = 0.02;
            let res = run_relay_chaos(&cfg);
            assert!(res.fault.duplicated > 0, "{kind:?}: plan must bite");
            assert!(res.sends_bound >= 1, "{kind:?}: data path sends");
            assert!(res.duplicates_within_bound(), "{kind:?}: {res:?}");
            if kind == RelayKind::Reliable {
                assert_eq!(res.duplicates, 0, "dedup absorbs duplicates");
            }
        }
    }

    /// Crash the middle relay while the stream is in flight: the
    /// recovery service re-verifies and reinstalls the ASP, upstream
    /// buffers answer the receiver's NACKs for everything the dead node
    /// dropped, and the stream still completes.
    #[test]
    fn crash_recovery_redeploys_and_repairs() {
        let mut cfg = RelayChaosConfig::loss(RelayKind::Reliable, 0.02);
        cfg.crash_relay = Some((0.25, 0.55));
        let res = run_relay_chaos(&cfg);
        assert_eq!(res.crashes, 1);
        assert_eq!(res.state_lost, 1, "the crash discarded the hook");
        assert_eq!(res.redeploys, 1, "one re-verified redeploy: {res:?}");
        assert_eq!(res.recovery_failures, 0, "recovery never bypasses");
        assert!(res.retransmits > 0, "end-to-end NACKs reached the source");
        assert!(
            res.delivery_ratio >= 0.99,
            "repair should cover the outage: {res:?}"
        );
        assert!(res.drop_identity_holds(), "{res:?}");
        assert!(res.node_drop_identity_holds(), "{res:?}");
    }

    /// The chaos-hardened audio router clamps and re-stamps a poisoned
    /// quality marker, so one flipped byte can no longer smuggle an
    /// out-of-range format code to the client's decoder dispatch. The
    /// plain section-3.1 router forwards the poison verbatim.
    #[test]
    fn chaos_audio_router_clamps_poisoned_quality_markers() {
        use crate::audio::apps::frame_payload;
        use crate::audio::AUDIO_PORT;
        use netsim::packet::Packet;
        use netsim::{App, NodeApi};
        use planp_runtime::{install_planp, load};
        use std::cell::RefCell;
        use std::rc::Rc;

        struct PoisonSource {
            dst: u32,
        }
        impl App for PoisonSource {
            fn on_start(&mut self, api: &mut NodeApi<'_>) {
                api.set_timer(Duration::from_millis(10), 0);
            }
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
            fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
                let payload = frame_payload(200, 0, &[5u8; 40]);
                let pkt = Packet::udp(api.addr(), self.dst, AUDIO_PORT, AUDIO_PORT, payload);
                api.send(pkt);
            }
        }

        struct MarkerLog(Rc<RefCell<Vec<u8>>>);
        impl App for MarkerLog {
            fn on_packet(&mut self, _api: &mut NodeApi<'_>, pkt: Packet) {
                if pkt.udp_hdr().is_some_and(|u| u.dport == AUDIO_PORT) && !pkt.payload.is_empty() {
                    self.0.borrow_mut().push(pkt.payload[0]);
                }
            }
        }

        let run = |src: &'static str| {
            let mut sim = Sim::new(3);
            let s = sim.add_host("s", addr(10, 0, 0, 1));
            let r = sim.add_router("r", addr(10, 0, 0, 254));
            let c = sim.add_host("c", addr(10, 0, 1, 1));
            sim.add_link(LinkSpec::ethernet_10(), &[s, r]);
            sim.add_link(LinkSpec::ethernet_10(), &[r, c]);
            sim.compute_routes();
            let image = load(src, Policy::strict()).expect("router ASP verifies");
            install_planp(&mut sim, r, &image, LayerConfig::default()).expect("install");
            sim.add_app(
                s,
                Box::new(PoisonSource {
                    dst: addr(10, 0, 1, 1),
                }),
            );
            let markers = Rc::new(RefCell::new(Vec::new()));
            sim.add_app(c, Box::new(MarkerLog(markers.clone())));
            sim.run_until(SimTime::from_secs(1));
            let m = markers.borrow().clone();
            m
        };

        assert_eq!(run(crate::audio::AUDIO_ROUTER_ASP), vec![200]);
        assert_eq!(run(super::super::asp::AUDIO_ROUTER_CHAOS_ASP), vec![2]);
    }

    /// Byte-stability: the same seed and plan produce the identical
    /// metrics snapshot, with the fault counters included.
    #[test]
    fn chaos_run_is_deterministic() {
        let cfg = RelayChaosConfig::loss(RelayKind::Reliable, 0.05);
        let a = run_relay_chaos(&cfg);
        let b = run_relay_chaos(&cfg);
        assert_eq!(a.snapshot.render_table(), b.snapshot.render_table());
        assert_eq!(a.delivery_ratio, b.delivery_ratio);
        assert!(a.snapshot.counters.contains_key("sim.fault_loss_drops"));
    }
}
