//! Chaos experiments: the relay-chain robustness study under seeded
//! fault injection (link loss, corruption, duplication, jitter, node
//! crashes), contrasting a NACK-driven reliable relay with its
//! statically spotless but retransmission-free twin.

pub mod apps;
pub mod asp;
pub mod scenario;

pub use apps::{SeqCollector, SeqCollectorStats, SeqSource, SeqSourceStats};
pub use asp::{
    AUDIO_ROUTER_CHAOS_ASP, DATA_PORT, FRAGILE_RELAY_ASP, NACK_PORT, RELIABLE_RELAY_ASP,
};
pub use scenario::{
    chaos_slo_rules, run_relay_chaos, ChaosHealth, RelayChaosConfig, RelayChaosResult, RelayKind,
};
