//! The multipoint-MPEG experiment harness (paper section 3.3).
//!
//! Topology:
//!
//! ```text
//!   server ──100 Mb/s── router ──10 Mb/s segment── {monitor, client1…N}
//! ```
//!
//! With ASPs, the first client opens the only real connection; later
//! clients learn about it from the monitor and capture the stream off
//! the segment, so the server's egress stays at one stream. Without
//! ASPs every client opens its own connection.

use super::apps::{MpegClientApp, MpegClientStats, MpegServerApp, MpegServerStats};
use super::asp::{MPEG_CAPTURE_ASP, MPEG_MONITOR_ASP};
use netsim::packet::addr;
use netsim::{FaultAction, FaultPlan, LinkFaults, LinkSpec, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, LayerConfig};
use planp_telemetry::{MetricsSnapshot, Telemetry, TraceConfig};
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct MpegConfig {
    /// Number of clients requesting the same file.
    pub clients: usize,
    /// Install the monitor/capture ASPs (multipoint mode)?
    pub use_asps: bool,
    /// How long each stream runs.
    pub stream_len: Duration,
    /// Total run length.
    pub duration: Duration,
    /// Seed.
    pub seed: u64,
    /// Which file each viewer requests (index-aligned; missing entries
    /// repeat the first, default file 7).
    pub files: Vec<u8>,
    /// Fault injection on the shared viewer segment: impairments
    /// switched on at the given time (seconds).
    pub segment_faults: Option<(f64, LinkFaults)>,
}

impl MpegConfig {
    /// A standard run: `clients` viewers joining 1.5 s apart.
    pub fn new(clients: usize, use_asps: bool) -> Self {
        MpegConfig {
            clients,
            use_asps,
            stream_len: Duration::from_secs(20),
            duration: Duration::from_secs(22),
            seed: 5,
            files: vec![7],
            segment_faults: None,
        }
    }
}

/// What the run produced.
#[derive(Debug, Clone)]
pub struct MpegResult {
    /// Server-side statistics.
    pub server: MpegServerStats,
    /// Per-client statistics, in join order.
    pub clients: Vec<MpegClientStats>,
    /// Bytes that crossed the server's uplink.
    pub uplink_bytes: u64,
}

/// Runs the multipoint experiment.
///
/// # Panics
///
/// Panics if the shipped ASPs fail verification.
pub fn run_mpeg(cfg: &MpegConfig) -> MpegResult {
    run_mpeg_traced(cfg, TraceConfig::default()).0
}

/// Like [`run_mpeg`], with event tracing enabled per `trace`. Also
/// returns the telemetry bundle (event log + raw metrics) and the final
/// metrics snapshot, both deterministic for a given seed.
pub fn run_mpeg_traced(
    cfg: &MpegConfig,
    trace: TraceConfig,
) -> (MpegResult, Telemetry, MetricsSnapshot) {
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(trace);

    let server = sim.add_host("server", addr(10, 0, 0, 1));
    let router = sim.add_router("router", addr(10, 0, 0, 254));
    let monitor = sim.add_host("monitor", addr(10, 0, 1, 100));
    let mut clients = Vec::new();
    for i in 0..cfg.clients {
        clients.push(sim.add_host(&format!("viewer{i}"), addr(10, 0, 1, 10 + i as u8)));
    }

    let uplink = sim.add_link(LinkSpec::ethernet_100(), &[server, router]);
    let mut seg = vec![router, monitor];
    seg.extend(&clients);
    let segment = sim.add_link(
        LinkSpec {
            kbps: 10_000,
            delay: Duration::from_micros(100),
            queue_pkts: 128,
        },
        &seg,
    );
    sim.compute_routes();

    if cfg.use_asps {
        let monitor_asp =
            load(MPEG_MONITOR_ASP, Policy::no_delivery()).expect("monitor ASP verifies");
        let capture_asp =
            load(MPEG_CAPTURE_ASP, Policy::no_delivery()).expect("capture ASP verifies");
        let promiscuous = LayerConfig {
            process_overheard: true,
            ..LayerConfig::default()
        };
        install_planp(&mut sim, monitor, &monitor_asp, promiscuous).expect("install monitor");
        for &c in &clients {
            install_planp(&mut sim, c, &capture_asp, promiscuous).expect("install capture");
        }
    }

    let server_stats = Rc::new(RefCell::new(MpegServerStats::default()));
    sim.add_app(
        server,
        Box::new(MpegServerApp::new(server_stats.clone(), cfg.stream_len)),
    );

    let monitor_addr = cfg.use_asps.then_some(addr(10, 0, 1, 100));
    let mut client_stats = Vec::new();
    for (i, &c) in clients.iter().enumerate() {
        let stats = Rc::new(RefCell::new(MpegClientStats::default()));
        client_stats.push(stats.clone());
        let file = *cfg.files.get(i).or(cfg.files.first()).unwrap_or(&7);
        sim.add_app(
            c,
            Box::new(MpegClientApp::new(
                stats,
                addr(10, 0, 0, 1),
                monitor_addr,
                file,
                6000 + i as u16, // each viewer would use its own port
                Duration::from_millis(500 + 1500 * i as u64),
            )),
        );
    }

    if let Some((from_s, faults)) = cfg.segment_faults {
        sim.apply_fault_plan(FaultPlan::new().at(
            from_s,
            FaultAction::SetLinkFaults {
                link: segment,
                faults,
            },
        ));
    }

    sim.run_until(SimTime::ZERO + cfg.duration);

    let result = MpegResult {
        server: server_stats.borrow().clone(),
        clients: client_stats.iter().map(|s| s.borrow().clone()).collect(),
        uplink_bytes: sim.link(uplink).tx_bytes,
    };
    let metrics = sim.metrics_snapshot();
    let telemetry = std::mem::take(&mut sim.telemetry);
    (result, telemetry, metrics)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_asps_every_client_opens_a_stream() {
        let r = run_mpeg(&MpegConfig::new(3, false));
        assert_eq!(r.server.streams, 3);
        for c in &r.clients {
            assert!(c.direct);
            assert!(!c.shared);
            assert!(c.frames > 300, "frames {}", c.frames);
            assert_eq!(c.setup, "setup-7");
        }
    }

    #[test]
    fn with_asps_one_stream_is_shared() {
        let r = run_mpeg(&MpegConfig::new(3, true));
        assert_eq!(r.server.streams, 1, "server egress stays at one stream");
        assert!(r.clients[0].direct && !r.clients[0].shared);
        for c in &r.clients[1..] {
            assert!(c.shared, "later viewers share: {c:?}");
            assert!(!c.direct);
            assert!(c.frames > 200, "captured frames {}", c.frames);
            // Setup info came from the monitor, not the server.
            assert_eq!(c.setup, "setup-7");
        }
    }

    #[test]
    fn asps_cut_server_bandwidth_by_client_count() {
        let shared = run_mpeg(&MpegConfig::new(3, true));
        let direct = run_mpeg(&MpegConfig::new(3, false));
        let ratio = direct.server.video_bytes as f64 / shared.server.video_bytes as f64;
        assert!(
            ratio > 2.0,
            "server bytes: direct {} vs shared {} (ratio {ratio})",
            direct.server.video_bytes,
            shared.server.video_bytes
        );
        assert!(direct.uplink_bytes > 2 * shared.uplink_bytes);
    }

    #[test]
    fn different_files_are_not_shared() {
        // The monitor keys streams by file: a viewer of a *different*
        // file must get its own server connection.
        let mut cfg = MpegConfig::new(2, true);
        cfg.files = vec![7, 8];
        let r = run_mpeg(&cfg);
        assert_eq!(r.server.streams, 2, "distinct files need distinct streams");
        assert!(r.clients.iter().all(|c| c.direct));
        assert!(r.clients.iter().all(|c| c.frames > 300), "{:?}", r.clients);
        assert_eq!(r.clients[0].setup, "setup-7");
        assert_eq!(r.clients[1].setup, "setup-8");
    }

    #[test]
    fn single_client_behaves_identically_either_way() {
        let a = run_mpeg(&MpegConfig::new(1, true));
        let b = run_mpeg(&MpegConfig::new(1, false));
        assert_eq!(a.server.streams, 1);
        assert_eq!(b.server.streams, 1);
        let fa = a.clients[0].frames as f64;
        let fb = b.clients[0].frames as f64;
        assert!((fa - fb).abs() / fb < 0.05, "{fa} vs {fb}");
    }
}
