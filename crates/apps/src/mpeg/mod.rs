//! The multipoint MPEG service (paper section 3.3): ASPs turn a
//! point-to-point video server into a multipoint one by sharing a live
//! stream among clients on the same segment.

pub mod apps;
pub mod asp;
pub mod scenario;

pub use apps::{MpegClientApp, MpegClientStats, MpegServerApp, MpegServerStats};
pub use asp::{
    CAPTURE_CTL_PORT, MONITOR_QUERY_PORT, MPEG_CAPTURE_ASP, MPEG_CTL_PORT, MPEG_MONITOR_ASP,
};
pub use scenario::{run_mpeg, run_mpeg_traced, MpegConfig, MpegResult};
