//! The two PLAN-P programs of the multipoint-MPEG experiment (paper
//! section 3.3): the **monitor ASP** that tracks open connections to the
//! video server and answers client queries, and the **capture ASP** that
//! delivers a neighbor's video stream to the local client.
//!
//! Wire protocols:
//!
//! * control (TCP port 5555): `PLAY <file> <port>\n` from client;
//!   `OK <setup>\n` from server;
//! * monitor query (UDP port 5556): `Q <file>\n`; the monitor replies
//!   with a *typed* packet `ip*udp*host*int*string` = (stream host,
//!   stream port, setup info) — host `0.0.0.0` means "no open stream";
//! * capture control (UDP port 5557 to self): typed `ip*udp*host*int`
//!   naming the (host, port) stream to capture off the segment.

/// TCP control port of the video server.
pub const MPEG_CTL_PORT: u16 = 5555;
/// UDP port the monitor ASP answers queries on.
pub const MONITOR_QUERY_PORT: u16 = 5556;
/// UDP port for the local capture-configuration packet.
pub const CAPTURE_CTL_PORT: u16 = 5557;

/// The monitor program (the paper's biggest ASP: 161 lines). It runs on
/// one machine of the segment in promiscuous mode, watching the control
/// dialogue between clients and the server, and answers "is someone
/// already receiving file F?" queries from new clients.
pub const MPEG_MONITOR_ASP: &str = r#"
-- Connection monitor for the multipoint MPEG service (section 3.3).
val ctlPort : int = 5555
val queryPort : int = 5556

-- Protocol state: file -> (client host, video port, setup info).
-- The TCP channel's own state: client host -> (file, port) awaiting OK.

channel network(ps : (int, host*int*string) hash_table,
                ss : (host, int*int) hash_table,
                p : ip*tcp*blob)
initstate mkTable(64) is
  (let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val s : string = blobToString(#3 p)
  in
    if tcpDst(tcph) = ctlPort andalso strFind(s, "PLAY ") = 0 then
      -- request: "PLAY <file> <port>\n" — remember who asked for what
      let
        val rest : string = strSub(s, 5, strLen(s) - 5)
        val sp : int = strFind(rest, " ")
        val nl : int = strFind(rest, "\n")
        val f : int = strToInt(strSub(rest, 0, sp))
        val port : int = strToInt(strSub(rest, sp + 1, nl - sp - 1))
      in
        (tblSet(ss, ipSrc(iph), (f, port)); (ps, ss))
      end
    else if tcpSrc(tcph) = ctlPort andalso strFind(s, "OK ") = 0 then
      -- response: "OK <setup>\n" — the connection is now live
      let
        val nl : int = strFind(s, "\n")
        val setup : string = strSub(s, 3, nl - 3)
        val fp : int*int = tblGet(ss, ipDst(iph))
      in
        (tblSet(ps, #1 fp, (ipDst(iph), #2 fp, setup)); (ps, ss))
      end
    else
      (ps, ss)
  end)
  handle _ => (ps, ss)

-- Queries: "Q <file>\n" on UDP 5556; the reply is a typed packet.
channel network(ps : (int, host*int*string) hash_table,
                ss : unit,
                p : ip*udp*blob) is
  (let
    val iph : ip = #1 p
    val udph : udp = #2 p
    val s : string = blobToString(#3 p)
  in
    if udpDst(udph) = queryPort andalso strFind(s, "Q ") = 0 then
      let
        val nl : int = strFind(s, "\n")
        val f : int = strToInt(strSub(s, 2, nl - 2))
        val riph : ip = ipDestSet(ipSrcSet(iph, thisHost()), ipSrc(iph))
        val rudp : udp = udpDstSet(udpSrcSet(udph, queryPort), udpSrc(udph))
      in
        if tblHas(ps, f) then
          let val e : host*int*string = tblGet(ps, f) in
            (OnRemote(reply, (riph, rudp, #1 e, #2 e, #3 e)); (ps, ss))
          end
        else
          (OnRemote(reply, (riph, rudp, 0.0.0.0, 0, "")); (ps, ss))
      end
    else
      if ipDst(iph) = thisHost() then (deliver(p); (ps, ss)) else (ps, ss)
  end)
  handle _ => (ps, ss)

-- Replies travel on their own channel and are simply delivered at the
-- querying client (keeping the reply send out of any cycle).
channel reply(ps : (int, host*int*string) hash_table,
              ss : unit,
              p : ip*udp*host*int*string) is
  (deliver(p); (ps, ss))
"#;

/// The capture program installed on every client: a local control
/// packet (UDP 5557 to self, typed `host*int`) registers a stream to
/// capture; overheard packets of registered streams are delivered to
/// the local application.
pub const MPEG_CAPTURE_ASP: &str = r#"
-- Segment capture of a shared video stream (section 3.3).
val capPort : int = 5557

-- Protocol state: (stream host, stream port) -> 1 when captured.

channel network(ps : ((host*int), int) hash_table,
                ss : unit,
                p : ip*udp*host*int) is
  if udpDst(#2 p) = capPort andalso ipDst(#1 p) = thisHost() then
    -- local configuration: start capturing (host, port)
    (tblSet(ps, (#3 p, #4 p), 1); (ps, ss))
  else
    if ipDst(#1 p) = thisHost() then (deliver(p); (ps, ss)) else (ps, ss)

channel network(ps : ((host*int), int) hash_table,
                ss : unit,
                p : ip*udp*blob) is
  let
    val iph : ip = #1 p
    val udph : udp = #2 p
  in
    if ipDst(iph) = thisHost() then
      (deliver(p); (ps, ss))
    else
      if tblHas(ps, (ipDst(iph), udpDst(udph))) then
        -- a neighbor's stream we subscribed to: hand it to our client
        (deliver(p); (ps, ss))
      else
        (ps, ss)
  end
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use planp_analysis::Policy;
    use planp_runtime::load;

    #[test]
    fn monitor_asp_loads_without_delivery_requirement() {
        // The monitor intentionally observes without forwarding, so the
        // guaranteed-delivery property cannot hold; termination and
        // linear duplication are still proved.
        let lp = load(MPEG_MONITOR_ASP, Policy::no_delivery())
            .unwrap_or_else(|e| panic!("monitor rejected: {e}"));
        assert!(lp.report.termination.is_proved());
        assert!(lp.report.duplication.is_proved());
        assert!(!lp.report.delivery.is_proved());
        assert_eq!(lp.prog.channels.len(), 3);
    }

    #[test]
    fn capture_asp_loads_without_delivery_requirement() {
        let lp = load(MPEG_CAPTURE_ASP, Policy::no_delivery())
            .unwrap_or_else(|e| panic!("capture rejected: {e}"));
        assert!(lp.report.termination.is_proved());
        assert!(lp.report.duplication.is_proved());
    }

    #[test]
    fn line_counts_are_paper_scale() {
        // Paper figure 3: MPEG monitor 161 lines, MPEG client 53.
        let m = planp_lang::count_lines(MPEG_MONITOR_ASP);
        let c = planp_lang::count_lines(MPEG_CAPTURE_ASP);
        assert!((50..=170).contains(&m), "monitor: {m}");
        assert!((20..=60).contains(&c), "capture: {c}");
    }
}
