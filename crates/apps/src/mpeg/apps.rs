//! The point-to-point MPEG applications: the unmodified video server
//! and the (lightly modified, as in the paper) video client.
//!
//! Video frames are single UDP datagrams:
//!
//! ```text
//! byte 0      file id
//! bytes 1..9  frame sequence number (8-byte big-endian)
//! bytes 9..   frame data (I/P/B sizes following the GOP pattern)
//! ```

use super::asp::{CAPTURE_CTL_PORT, MONITOR_QUERY_PORT, MPEG_CTL_PORT};
use bytes::{BufMut, Bytes, BytesMut};
use netsim::packet::{Packet, UdpHdr};
use netsim::tcp::{ConnKey, TcpConfig, TcpEvents, TcpSocket};
use netsim::{App, NodeApi, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

/// Frame interval (25 fps).
pub const FRAME_INTERVAL: Duration = Duration::from_millis(40);

/// GOP pattern frame sizes (I B B P B B).
pub const GOP_SIZES: [usize; 6] = [1300, 500, 500, 900, 500, 500];

/// Server-side statistics shared with the harness.
#[derive(Debug, Default, Clone)]
pub struct MpegServerStats {
    /// Video payload bytes sent.
    pub video_bytes: u64,
    /// Video frames sent.
    pub frames_sent: u64,
    /// Streams opened.
    pub streams: u64,
}

struct StreamState {
    client: u32,
    port: u16,
    file: u8,
    seq: i64,
    until: SimTime,
}

/// The unmodified point-to-point MPEG server: TCP control on port 5555,
/// one UDP unicast stream per accepted `PLAY`.
pub struct MpegServerApp {
    stats: Rc<RefCell<MpegServerStats>>,
    stream_len: Duration,
    conns: HashMap<ConnKey, (TcpSocket, Vec<u8>)>,
    streams: Vec<StreamState>,
    ticking: bool,
}

const TICK_KEY: u64 = u64::MAX;
const FRAME_KEY: u64 = u64::MAX - 1;

impl MpegServerApp {
    /// A server whose streams run for `stream_len`.
    pub fn new(stats: Rc<RefCell<MpegServerStats>>, stream_len: Duration) -> Self {
        MpegServerApp {
            stats,
            stream_len,
            conns: HashMap::new(),
            streams: Vec::new(),
            ticking: false,
        }
    }

    fn flush(api: &mut NodeApi<'_>, ev: TcpEvents) {
        for pkt in ev.to_send {
            api.send(pkt);
        }
    }

    /// Builds the video frame for sequence number `seq`.
    pub fn frame(file: u8, seq: i64) -> Bytes {
        let size = GOP_SIZES[(seq as usize) % GOP_SIZES.len()];
        let mut buf = BytesMut::with_capacity(9 + size);
        buf.put_u8(file);
        buf.put_i64(seq);
        buf.resize(9 + size, 0xAB);
        buf.freeze()
    }
}

impl App for MpegServerApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_millis(50), TICK_KEY);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(hdr) = pkt.tcp_hdr().copied() else {
            return;
        };
        if hdr.dport != MPEG_CTL_PORT {
            return;
        }
        let Some(key) = ConnKey::of(&pkt) else { return };
        let now = api.now();
        let is_syn =
            hdr.has(netsim::packet::tcp_flags::SYN) && !hdr.has(netsim::packet::tcp_flags::ACK);
        if is_syn && !self.conns.contains_key(&key) {
            if let Some((sock, synack)) =
                TcpSocket::accept(TcpConfig::default(), (api.addr(), MPEG_CTL_PORT), &pkt, now)
            {
                self.conns.insert(key, (sock, Vec::new()));
                api.send(synack);
            }
            return;
        }
        let Some((sock, buf)) = self.conns.get_mut(&key) else {
            return;
        };
        let ev = sock.on_segment(&pkt, now);
        buf.extend_from_slice(&sock.take_received());
        // Parse "PLAY <file> <port>\n".
        let request = std::str::from_utf8(buf).ok().and_then(|s| {
            let s = s.strip_prefix("PLAY ")?;
            let end = s.find('\n')?;
            let mut it = s[..end].split(' ');
            let file: u8 = it.next()?.parse().ok()?;
            let port: u16 = it.next()?.parse().ok()?;
            Some((file, port))
        });
        Self::flush(api, ev);
        if let Some((file, port)) = request {
            buf.clear();
            let setup = format!("setup-{file}");
            let resp = format!("OK {setup}\n");
            if let Some((sock, _)) = self.conns.get_mut(&key) {
                let ev = sock.send(resp.as_bytes(), now);
                Self::flush(api, ev);
                let ev = sock.close(now);
                Self::flush(api, ev);
            }
            self.streams.push(StreamState {
                client: pkt.ip.src,
                port,
                file,
                seq: 0,
                until: now + self.stream_len,
            });
            self.stats.borrow_mut().streams += 1;
            if !self.ticking {
                self.ticking = true;
                api.set_timer(FRAME_INTERVAL, FRAME_KEY);
            }
        }
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        let now = api.now();
        if key == TICK_KEY {
            let mut outs = Vec::new();
            self.conns.retain(|_, (sock, _)| {
                let ev = sock.on_tick(now);
                let dead = ev.failed || sock.state == netsim::tcp::TcpState::Closed;
                outs.push(ev);
                !dead
            });
            for ev in outs {
                Self::flush(api, ev);
            }
            api.set_timer(Duration::from_millis(50), TICK_KEY);
            return;
        }
        // FRAME_KEY: emit the next frame of every active stream.
        let addr = api.addr();
        self.streams.retain(|s| s.until > now);
        for s in &mut self.streams {
            let payload = Self::frame(s.file, s.seq);
            s.seq += 1;
            let mut st = self.stats.borrow_mut();
            st.video_bytes += payload.len() as u64;
            st.frames_sent += 1;
            drop(st);
            let pkt = Packet {
                ip: netsim::packet::IpHdr::new(addr, s.client, netsim::packet::IpHdr::PROTO_UDP),
                transport: netsim::Transport::Udp(UdpHdr::new(MPEG_CTL_PORT, s.port)),
                payload,
                tag: None,
                id: 0,
                lineage: Default::default(),
            };
            api.send(pkt);
        }
        if self.streams.is_empty() {
            self.ticking = false;
        } else {
            api.set_timer(FRAME_INTERVAL, FRAME_KEY);
        }
    }
}

/// Client-side statistics shared with the harness.
#[derive(Debug, Default, Clone)]
pub struct MpegClientStats {
    /// Distinct frames received.
    pub frames: u64,
    /// Video payload bytes received.
    pub bytes: u64,
    /// True if the client shared an existing stream (capture path).
    pub shared: bool,
    /// True if the client opened its own connection.
    pub direct: bool,
    /// The setup info the client ended up with.
    pub setup: String,
}

#[derive(Debug, PartialEq)]
enum ClientPhase {
    Idle,
    Querying,
    Connecting,
    Watching,
}

/// The video client, modified as in the paper: before connecting it
/// asks the monitor ASP whether the file is already being streamed to
/// the segment; if so it captures that stream instead of opening a new
/// connection.
pub struct MpegClientApp {
    stats: Rc<RefCell<MpegClientStats>>,
    server: u32,
    monitor: Option<u32>,
    file: u8,
    video_port: u16,
    start_at: Duration,
    phase: ClientPhase,
    ctl: Option<TcpSocket>,
    ctl_buf: Vec<u8>,
    query_sent: SimTime,
    watched_seq: i64,
}

const START_KEY: u64 = 1;
const QUERY_TIMEOUT_KEY: u64 = 2;
const CLIENT_TICK_KEY: u64 = 3;

impl MpegClientApp {
    /// A client that starts at `start_at`, asking `monitor` first when
    /// one is configured (the with-ASPs mode).
    pub fn new(
        stats: Rc<RefCell<MpegClientStats>>,
        server: u32,
        monitor: Option<u32>,
        file: u8,
        video_port: u16,
        start_at: Duration,
    ) -> Self {
        MpegClientApp {
            stats,
            server,
            monitor,
            file,
            video_port,
            start_at,
            phase: ClientPhase::Idle,
            ctl: None,
            ctl_buf: Vec::new(),
            query_sent: SimTime::ZERO,
            watched_seq: -1,
        }
    }

    fn flush(api: &mut NodeApi<'_>, ev: TcpEvents) {
        for pkt in ev.to_send {
            api.send(pkt);
        }
    }

    fn connect_direct(&mut self, api: &mut NodeApi<'_>) {
        self.phase = ClientPhase::Connecting;
        let (sock, syn) = TcpSocket::connect(
            TcpConfig::default(),
            (api.addr(), 20_000 + self.video_port),
            (self.server, MPEG_CTL_PORT),
            api.now(),
        );
        self.ctl = Some(sock);
        api.send(syn);
        self.stats.borrow_mut().direct = true;
    }
}

impl App for MpegClientApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(self.start_at, START_KEY);
        api.set_timer(Duration::from_millis(50), CLIENT_TICK_KEY);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let now = api.now();
        // Monitor reply? (UDP from the query port, 14+ byte payload).
        if self.phase == ClientPhase::Querying {
            if let Some(u) = pkt.udp_hdr() {
                if u.sport == MONITOR_QUERY_PORT && pkt.payload.len() >= 14 {
                    let host = u32::from_be_bytes(pkt.payload[0..4].try_into().expect("len"));
                    let port =
                        i64::from_be_bytes(pkt.payload[4..12].try_into().expect("len")) as u16;
                    let slen =
                        u16::from_be_bytes(pkt.payload[12..14].try_into().expect("len")) as usize;
                    let setup = String::from_utf8_lossy(
                        &pkt.payload[14..14 + slen.min(pkt.payload.len() - 14)],
                    )
                    .into_owned();
                    if host == 0 {
                        self.connect_direct(api);
                    } else {
                        // Share the existing stream: configure the local
                        // capture ASP, then just watch.
                        let mut cap = BytesMut::with_capacity(12);
                        cap.put_u32(host);
                        cap.put_i64(port as i64);
                        let me = api.addr();
                        api.send(Packet::udp(
                            me,
                            me,
                            CAPTURE_CTL_PORT,
                            CAPTURE_CTL_PORT,
                            cap.freeze(),
                        ));
                        let mut st = self.stats.borrow_mut();
                        st.shared = true;
                        st.setup = setup;
                        drop(st);
                        self.phase = ClientPhase::Watching;
                    }
                    return;
                }
            }
        }
        // Control connection traffic.
        if self.phase == ClientPhase::Connecting {
            if let Some(hdr) = pkt.tcp_hdr().copied() {
                if let Some(sock) = self.ctl.as_mut() {
                    if (pkt.ip.src, hdr.sport) == sock.remote && hdr.dport == sock.local.1 {
                        let ev = sock.on_segment(&pkt, now);
                        let established = ev.established;
                        self.ctl_buf.extend_from_slice(&sock.take_received());
                        Self::flush(api, ev);
                        if established {
                            let req = format!("PLAY {} {}\n", self.file, self.video_port);
                            if let Some(sock) = self.ctl.as_mut() {
                                let ev = sock.send(req.as_bytes(), now);
                                Self::flush(api, ev);
                            }
                        }
                        if let Some(pos) = self.ctl_buf.iter().position(|&b| b == b'\n') {
                            let line = String::from_utf8_lossy(&self.ctl_buf[..pos]).into_owned();
                            if let Some(setup) = line.strip_prefix("OK ") {
                                self.stats.borrow_mut().setup = setup.to_string();
                                self.phase = ClientPhase::Watching;
                            }
                        }
                        return;
                    }
                }
            }
        }
        // Video frames (direct or captured): identified by the file id.
        if let Some(_u) = pkt.udp_hdr() {
            if pkt.payload.len() >= 9
                && pkt.payload[0] == self.file
                && self.phase == ClientPhase::Watching
            {
                let seq = i64::from_be_bytes(pkt.payload[1..9].try_into().expect("len"));
                if seq > self.watched_seq {
                    self.watched_seq = seq;
                    let mut st = self.stats.borrow_mut();
                    st.frames += 1;
                    st.bytes += pkt.payload.len() as u64;
                }
            }
        }
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        let now = api.now();
        match key {
            START_KEY => match self.monitor {
                Some(mon) => {
                    self.phase = ClientPhase::Querying;
                    self.query_sent = now;
                    let q = format!("Q {}\n", self.file);
                    api.send(Packet::udp(
                        api.addr(),
                        mon,
                        MONITOR_QUERY_PORT,
                        MONITOR_QUERY_PORT,
                        Bytes::from(q.into_bytes()),
                    ));
                    api.set_timer(Duration::from_millis(300), QUERY_TIMEOUT_KEY);
                }
                None => self.connect_direct(api),
            },
            QUERY_TIMEOUT_KEY if self.phase == ClientPhase::Querying => {
                // No monitor answer: fall back to a direct connection.
                self.connect_direct(api);
            }
            CLIENT_TICK_KEY => {
                if let Some(sock) = self.ctl.as_mut() {
                    let ev = sock.on_tick(now);
                    Self::flush(api, ev);
                }
                api.set_timer(Duration::from_millis(50), CLIENT_TICK_KEY);
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_layout_and_gop_sizes() {
        let f = MpegServerApp::frame(3, 0);
        assert_eq!(f[0], 3);
        assert_eq!(i64::from_be_bytes(f[1..9].try_into().unwrap()), 0);
        assert_eq!(f.len(), 9 + 1300); // I frame
        let b = MpegServerApp::frame(3, 1);
        assert_eq!(b.len(), 9 + 500); // B frame
        let p = MpegServerApp::frame(3, 3);
        assert_eq!(p.len(), 9 + 900); // P frame
    }

    #[test]
    fn gop_bitrate_is_paper_scale() {
        // Mean frame ≈ 700 B at 25 fps ≈ 140 kb/s — a plausible 1998
        // MPEG-1 rate for a LAN demo.
        let mean: usize = GOP_SIZES.iter().sum::<usize>() / GOP_SIZES.len();
        let kbps = mean * 25 * 8 / 1000;
        assert!((100..300).contains(&kbps), "{kbps} kb/s");
    }
}
