//! The bounded-load consistent-hash cluster gateway with per-backend
//! circuit breakers.
//!
//! A native [`PacketHook`] on the gateway router that spreads keyed
//! requests over tens of heterogeneous backends and keeps the cluster
//! *useful* under overload and rolling crashes:
//!
//! * **Consistent hashing** — each backend owns `vnodes × weight`
//!   points on a 64-bit hash ring; a request's key hashes to a ring
//!   position and walks clockwise. Backend churn (a breaker opening)
//!   only remaps the keys that hashed to the dead backend.
//! * **Bounded load** — every backend has an outstanding-request cap
//!   proportional to its weight (kept below its CPU queue, so admitted
//!   work is never tail-dropped by a healthy backend). A full backend
//!   is skipped and the walk continues; if *every* backend is full or
//!   broken the request is shed at the gateway
//!   ([`DropReason::Shed`]) instead of queueing toward a timeout.
//! * **Circuit breakers** — per-backend closed/open/half-open. A run
//!   of consecutive timeouts opens the breaker: the ring walk skips the
//!   corpse in O(1) RTT instead of hammering it. After a fixed open
//!   interval the breaker goes half-open and admits exactly **one**
//!   live request as a probe; success closes it, a probe timeout
//!   re-opens it. The probe schedule is deterministic — driven by the
//!   sweep timer and arriving packets, never by wall clocks.
//! * **Brownout + backpressure shedding** — priority classes below the
//!   current [`OverloadState::brownout_level`] are shed at the gateway,
//!   and when the gateway's *own* CPU queue passes ¾ occupancy it sheds
//!   sub-gold classes pre-emptively. Expired deadlines are dropped here
//!   too, before they burn backend capacity.
//!
//! Every decision reads only simulation time, packet bytes, and prior
//! deterministic state, so two runs shed, divert, and probe
//! byte-identically — breaker transitions are recorded (and emitted as
//! [`TraceEvent::Breaker`]) for exact cross-run and cross-engine
//! comparison.
//!
//! [`DropReason::Shed`]: planp_telemetry::DropReason
//! [`OverloadState::brownout_level`]: planp_telemetry::OverloadState

use netsim::packet::Packet;
use netsim::{ArrivalMeta, HookVerdict, NodeApi, PacketHook};
use planp_telemetry::{BreakerState, Category, CounterId, DropReason, Telemetry, TraceEvent};
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Duration;

/// One backend behind the gateway.
#[derive(Debug, Clone)]
pub struct BackendSpec {
    /// Name used in breaker telemetry (`gw.<name>.sent` etc.).
    pub name: String,
    /// The backend host's address (requests are NAT-rewritten to it).
    pub addr: u32,
    /// Relative capacity: ring vnodes and the outstanding cap scale
    /// with it.
    pub weight: u32,
}

/// Per-backend circuit-breaker policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerConfig {
    /// Consecutive timeouts that open a closed breaker.
    pub fail_threshold: u32,
    /// An outstanding request older than this has timed out.
    pub timeout_ns: u64,
    /// How long an open breaker waits before going half-open.
    pub open_ns: u64,
    /// Sweep-timer period: how often outstanding requests are checked
    /// for timeout (detection latency is `timeout_ns + sweep_ns` worst
    /// case).
    pub sweep_ns: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            fail_threshold: 3,
            timeout_ns: 100_000_000,
            open_ns: 400_000_000,
            sweep_ns: 25_000_000,
        }
    }
}

/// Gateway policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GatewayConfig {
    /// UDP port requests arrive on (responses carry it as sport).
    pub port: u16,
    /// Ring vnodes per unit of backend weight.
    pub vnodes: u32,
    /// Outstanding-request cap per unit of backend weight (bounded
    /// load). Keep `weight × this` below the backend's CPU queue so
    /// admitted work is never tail-dropped by a healthy backend.
    pub outstanding_per_weight: u32,
    /// Priority classes strictly below this are shed while the
    /// gateway's own CPU queue is ≥ ¾ full (0 disables backpressure
    /// shedding).
    pub queue_shed_below: u8,
    /// Breaker policy.
    pub breaker: BreakerConfig,
}

impl Default for GatewayConfig {
    fn default() -> Self {
        GatewayConfig {
            port: super::scenario::CLUSTER_PORT,
            vnodes: 16,
            outstanding_per_weight: 12,
            queue_shed_below: 2,
            breaker: BreakerConfig::default(),
        }
    }
}

/// What the gateway did, shared out via `Rc<RefCell<…>>`.
#[derive(Debug, Default)]
pub struct GatewayStats {
    /// Requests forwarded to a backend (the denominator of the
    /// admitted-delivery floor). Includes half-open probes.
    pub admitted: u64,
    /// Responses observed flowing back through the gateway.
    pub responses: u64,
    /// Requests shed because their class is below the brownout level.
    pub shed_brownout: u64,
    /// Requests shed because every backend was full or broken.
    pub shed_saturated: u64,
    /// Requests shed by gateway CPU-queue backpressure.
    pub shed_queue: u64,
    /// Requests dropped at the gateway with an already-expired deadline.
    pub expired: u64,
    /// Outstanding requests that timed out (crashed or absent backend).
    pub timeouts: u64,
    /// Half-open probe requests sent.
    pub probes: u64,
    /// Requests forwarded to a backend whose breaker was not closed —
    /// by construction exactly the half-open probes, which is the
    /// bench's "no corpse traffic" invariant.
    pub sent_while_broken: u64,
    /// Breaker transitions to [`BreakerState::Open`].
    pub opens: u64,
    /// Every breaker transition: `(t_ns, backend, from, to)`.
    pub transitions: Vec<(u64, Rc<str>, BreakerState, BreakerState)>,
}

impl GatewayStats {
    /// The transition history as byte-stable text — one line per
    /// transition — for cross-run and cross-engine equality checks.
    pub fn transitions_log(&self) -> String {
        let mut out = String::new();
        for (t_ns, backend, from, to) in &self.transitions {
            let _ = writeln!(
                out,
                "t_ns={t_ns} backend={backend} {} -> {}",
                from.name(),
                to.name()
            );
        }
        out
    }
}

/// An in-flight request the gateway is tracking.
#[derive(Debug, Clone, Copy)]
struct Pending {
    backend: u32,
    sent_ns: u64,
    probe: bool,
}

#[derive(Debug)]
struct BackendState {
    spec: BackendSpec,
    name: Rc<str>,
    state: BreakerState,
    consec_fails: u32,
    opened_at_ns: u64,
    outstanding: u32,
    probe_in_flight: bool,
    c_sent: CounterId,
}

impl BackendState {
    fn cap(&self, per_weight: u32) -> u32 {
        self.spec.weight.max(1) * per_weight
    }
}

/// SplitMix64 finalizer — the stateless mixer behind both the ring
/// points and the request-key hash.
fn mix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// The gateway hook. Install on the router fronting the backends.
pub struct ClusterGateway {
    cfg: GatewayConfig,
    backends: Vec<BackendState>,
    /// `(ring position, backend index)`, sorted by position.
    ring: Vec<(u64, u32)>,
    /// Outstanding requests by request id (`BTreeMap` so the timeout
    /// sweep visits them in deterministic order).
    pending: BTreeMap<u64, Pending>,
    sweep_armed: bool,
    /// Shared run statistics.
    pub stats: Rc<RefCell<GatewayStats>>,
    c_admitted: CounterId,
    c_responses: CounterId,
    c_shed_brownout: CounterId,
    c_shed_saturated: CounterId,
    c_shed_queue: CounterId,
    c_expired: CounterId,
    c_timeouts: CounterId,
    c_probes: CounterId,
}

impl ClusterGateway {
    /// Builds the gateway and registers its counters. Panics above 64
    /// backends (the ring walk tracks visited backends in a bitmask).
    pub fn new(cfg: GatewayConfig, backends: Vec<BackendSpec>, tel: &mut Telemetry) -> Self {
        assert!(
            !backends.is_empty() && backends.len() <= 64,
            "1..=64 backends"
        );
        let backends: Vec<BackendState> = backends
            .into_iter()
            .map(|spec| {
                let c_sent = tel.metrics.register_counter(&format!("gw.{}.sent", spec.name));
                BackendState {
                    name: Rc::from(spec.name.as_str()),
                    spec,
                    state: BreakerState::Closed,
                    consec_fails: 0,
                    opened_at_ns: 0,
                    outstanding: 0,
                    probe_in_flight: false,
                    c_sent,
                }
            })
            .collect();
        let mut ring = Vec::new();
        for (b, st) in backends.iter().enumerate() {
            for v in 0..cfg.vnodes * st.spec.weight.max(1) {
                ring.push((mix(mix(b as u64 + 1) ^ u64::from(v)), b as u32));
            }
        }
        ring.sort_unstable();
        ClusterGateway {
            cfg,
            backends,
            ring,
            pending: BTreeMap::new(),
            sweep_armed: false,
            stats: Rc::new(RefCell::new(GatewayStats::default())),
            c_admitted: tel.metrics.register_counter("gw.admitted"),
            c_responses: tel.metrics.register_counter("gw.responses"),
            c_shed_brownout: tel.metrics.register_counter("gw.shed_brownout"),
            c_shed_saturated: tel.metrics.register_counter("gw.shed_saturated"),
            c_shed_queue: tel.metrics.register_counter("gw.shed_queue"),
            c_expired: tel.metrics.register_counter("gw.expired"),
            c_timeouts: tel.metrics.register_counter("gw.timeouts"),
            c_probes: tel.metrics.register_counter("gw.probes"),
        }
    }

    /// Records a breaker transition: state, telemetry mirror, trace
    /// event, and the byte-stable transition log.
    fn transition(&mut self, api: &mut NodeApi<'_>, b: u32, to: BreakerState) {
        let node = api.node_id().0 as u32;
        let t_ns = api.now().as_nanos();
        let st = &mut self.backends[b as usize];
        let from = st.state;
        if from == to {
            return;
        }
        st.state = to;
        if to == BreakerState::Open {
            st.opened_at_ns = t_ns;
        }
        let name = st.name.clone();
        let tel = api.telemetry();
        tel.overload.set_breaker(&name, to);
        if tel.trace.wants(Category::HEALTH) {
            tel.trace.push(TraceEvent::Breaker {
                t_ns,
                node,
                backend: name.clone(),
                from,
                to,
            });
        }
        let mut stats = self.stats.borrow_mut();
        if to == BreakerState::Open {
            stats.opens += 1;
        }
        stats.transitions.push((t_ns, name, from, to));
    }

    /// Whether backend `b` can take one more request right now —
    /// promoting an open breaker whose cool-off has elapsed to
    /// half-open on the way.
    fn eligible(&mut self, api: &mut NodeApi<'_>, b: u32, now_ns: u64) -> bool {
        if self.backends[b as usize].state == BreakerState::Open
            && now_ns
                >= self.backends[b as usize]
                    .opened_at_ns
                    .saturating_add(self.cfg.breaker.open_ns)
        {
            self.transition(api, b, BreakerState::HalfOpen);
        }
        let st = &self.backends[b as usize];
        match st.state {
            BreakerState::Closed => st.outstanding < st.cap(self.cfg.outstanding_per_weight),
            BreakerState::Open => false,
            BreakerState::HalfOpen => !st.probe_in_flight,
        }
    }

    /// Bounded-load consistent-hash pick: walk the ring clockwise from
    /// the key's position, skipping full and broken backends.
    fn pick(&mut self, api: &mut NodeApi<'_>, key: u64, now_ns: u64) -> Option<u32> {
        let h = mix(key);
        let start = self.ring.partition_point(|&(p, _)| p < h) % self.ring.len();
        let mut tried = 0u64;
        for i in 0..self.ring.len() {
            let (_, b) = self.ring[(start + i) % self.ring.len()];
            if tried & (1 << b) != 0 {
                continue;
            }
            tried |= 1 << b;
            if self.eligible(api, b, now_ns) {
                return Some(b);
            }
        }
        None
    }

    /// Timeout sweep: every pending request older than the breaker
    /// timeout counts as a failure against its backend.
    fn sweep(&mut self, api: &mut NodeApi<'_>) {
        let now_ns = api.now().as_nanos();
        let timed_out: Vec<(u64, Pending)> = self
            .pending
            .iter()
            .filter(|(_, p)| now_ns >= p.sent_ns.saturating_add(self.cfg.breaker.timeout_ns))
            .map(|(&id, &p)| (id, p))
            .collect();
        for (id, p) in timed_out {
            self.pending.remove(&id);
            self.stats.borrow_mut().timeouts += 1;
            api.telemetry().metrics.inc_id(self.c_timeouts);
            let st = &mut self.backends[p.backend as usize];
            st.outstanding = st.outstanding.saturating_sub(1);
            st.consec_fails += 1;
            if p.probe {
                st.probe_in_flight = false;
                if st.state == BreakerState::HalfOpen {
                    self.transition(api, p.backend, BreakerState::Open);
                }
            } else if self.backends[p.backend as usize].state == BreakerState::Closed
                && self.backends[p.backend as usize].consec_fails
                    >= self.cfg.breaker.fail_threshold
            {
                self.transition(api, p.backend, BreakerState::Open);
            }
        }
    }
}

/// Reads a big-endian `u64` request id out of a request/response
/// payload (`payload[1..9]`).
fn req_id_of(payload: &[u8]) -> Option<u64> {
    let bytes: [u8; 8] = payload.get(1..9)?.try_into().ok()?;
    Some(u64::from_be_bytes(bytes))
}

impl PacketHook for ClusterGateway {
    fn on_packet(
        &mut self,
        api: &mut NodeApi<'_>,
        mut pkt: Packet,
        meta: &ArrivalMeta,
    ) -> HookVerdict {
        if meta.overheard {
            return HookVerdict::Pass(pkt);
        }
        let Some(hdr) = pkt.udp_hdr().copied() else {
            return HookVerdict::Pass(pkt);
        };
        let now_ns = api.now().as_nanos();

        // A response flowing back through: settle the pending entry and
        // let it route on to the client.
        if hdr.sport == self.cfg.port {
            if let Some(id) = req_id_of(&pkt.payload) {
                if let Some(p) = self.pending.remove(&id) {
                    self.stats.borrow_mut().responses += 1;
                    api.telemetry().metrics.inc_id(self.c_responses);
                    let st = &mut self.backends[p.backend as usize];
                    st.outstanding = st.outstanding.saturating_sub(1);
                    st.consec_fails = 0;
                    if p.probe {
                        st.probe_in_flight = false;
                        if st.state == BreakerState::HalfOpen {
                            self.transition(api, p.backend, BreakerState::Closed);
                        }
                    }
                }
            }
            return HookVerdict::Pass(pkt);
        }

        if hdr.dport != self.cfg.port || pkt.ip.dst != api.addr() {
            return HookVerdict::Pass(pkt);
        }
        if !self.sweep_armed {
            self.sweep_armed = true;
            api.set_hook_timer(Duration::from_nanos(self.cfg.breaker.sweep_ns), 0);
        }
        let (Some(&prio), Some(id), Some(key_bytes)) = (
            pkt.payload.first(),
            req_id_of(&pkt.payload),
            pkt.payload.get(9..17),
        ) else {
            return HookVerdict::Pass(pkt);
        };
        let key = u64::from_be_bytes(key_bytes.try_into().expect("8-byte slice"));

        // Ingress guards, cheapest first: expired deadline, brownout
        // class shed, own-queue backpressure.
        if pkt.lineage.deadline_ns != 0 && now_ns > pkt.lineage.deadline_ns {
            self.stats.borrow_mut().expired += 1;
            api.telemetry().metrics.inc_id(self.c_expired);
            api.node_drop(&pkt, DropReason::DeadlineExpired);
            return HookVerdict::Handled;
        }
        if u32::from(prio) < api.telemetry().overload.brownout_level {
            self.stats.borrow_mut().shed_brownout += 1;
            api.telemetry().metrics.inc_id(self.c_shed_brownout);
            api.node_drop(&pkt, DropReason::Shed);
            return HookVerdict::Handled;
        }
        let qcap = api.cpu_queue_cap();
        if qcap > 0 && api.cpu_queue_len() * 4 >= qcap * 3 && prio < self.cfg.queue_shed_below {
            self.stats.borrow_mut().shed_queue += 1;
            api.telemetry().metrics.inc_id(self.c_shed_queue);
            api.node_drop(&pkt, DropReason::Shed);
            return HookVerdict::Handled;
        }

        let Some(b) = self.pick(api, key, now_ns) else {
            self.stats.borrow_mut().shed_saturated += 1;
            api.telemetry().metrics.inc_id(self.c_shed_saturated);
            api.node_drop(&pkt, DropReason::Shed);
            return HookVerdict::Handled;
        };

        let st = &mut self.backends[b as usize];
        let probe = st.state == BreakerState::HalfOpen;
        if probe {
            st.probe_in_flight = true;
        }
        st.outstanding += 1;
        let dst = st.spec.addr;
        let c_sent = st.c_sent;
        let broken = st.state != BreakerState::Closed;
        {
            let mut stats = self.stats.borrow_mut();
            stats.admitted += 1;
            if probe {
                stats.probes += 1;
            }
            if broken {
                stats.sent_while_broken += 1;
            }
        }
        let tel = api.telemetry();
        tel.metrics.inc_id(self.c_admitted);
        tel.metrics.inc_id(c_sent);
        if probe {
            tel.metrics.inc_id(self.c_probes);
        }
        self.pending.insert(
            id,
            Pending {
                backend: b,
                sent_ns: now_ns,
                probe,
            },
        );
        pkt.ip.dst = dst;
        if pkt.ip.ttl <= 1 {
            return HookVerdict::Handled;
        }
        pkt.ip.ttl -= 1;
        api.send(pkt);
        HookVerdict::Handled
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        self.sweep(api);
        api.set_hook_timer(Duration::from_nanos(self.cfg.breaker.sweep_ns), 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn specs(n: usize) -> Vec<BackendSpec> {
        (0..n)
            .map(|i| BackendSpec {
                name: format!("b{i:02}"),
                addr: 100 + i as u32,
                weight: [1, 2, 4][i % 3],
            })
            .collect()
    }

    #[test]
    fn ring_covers_every_backend_proportionally() {
        let mut tel = Telemetry::default();
        let gw = ClusterGateway::new(GatewayConfig::default(), specs(6), &mut tel);
        let mut owned = vec![0u32; 6];
        for &(_, b) in &gw.ring {
            owned[b as usize] += 1;
        }
        // vnodes × weight each, and the ring is sorted.
        assert_eq!(owned, vec![16, 32, 64, 16, 32, 64]);
        assert!(gw.ring.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn same_key_hashes_to_the_same_backend() {
        let mut tel = Telemetry::default();
        let gw = ClusterGateway::new(GatewayConfig::default(), specs(12), &mut tel);
        let pos = |key: u64| {
            let h = mix(key);
            let i = gw.ring.partition_point(|&(p, _)| p < h) % gw.ring.len();
            gw.ring[i].1
        };
        let spread: std::collections::BTreeSet<u32> = (0..200u64).map(pos).collect();
        assert_eq!(pos(42), pos(42), "deterministic placement");
        assert!(spread.len() >= 8, "keys spread across backends: {spread:?}");
    }

    #[test]
    fn mixer_is_a_bijection_probe() {
        // Sanity: distinct inputs keep distinct hashes (no accidental
        // truncation in the ring build).
        let hashes: std::collections::BTreeSet<u64> = (0..10_000u64).map(mix).collect();
        assert_eq!(hashes.len(), 10_000);
    }
}
