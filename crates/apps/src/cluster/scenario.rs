//! The cluster overload experiment: a Zipf flash crowd over tens of
//! heterogeneous backends with rolling crashes.
//!
//! Topology:
//!
//! ```text
//!   c0..cN ── agg ══ gw ── b00..bM     (clients / forwarder / gateway / backends)
//! ```
//!
//! Open-loop clients send keyed, priority-classed, deadline-stamped
//! requests at a base rate, then a *flash crowd* window multiplies the
//! rate past the cluster's aggregate capacity while a PR 5 fault plan
//! rolls crash/restart cycles through the backends. Three layers defend
//! the admitted work:
//!
//! 1. the **agg** router runs a PLAN-P forwarder ASP under
//!    [`Admission`] — expired deadlines and browned-out priority
//!    classes are dropped at the first hop, before the VM runs;
//! 2. the **gw** router runs the [`ClusterGateway`]: bounded-load
//!    consistent hashing, per-backend circuit breakers, and
//!    backpressure shedding;
//! 3. the [`BrownoutController`], fed by the [`HealthMonitor`]'s
//!    windowed saturation rule, steps the degradation level that both
//!    of the above read — shed low classes first, restore
//!    hysteretically.
//!
//! The run is deterministic end to end: byte-identical metrics
//! snapshots, breaker transition logs, and brownout logs across
//! repeated runs (and identical transition logs across the interpreter
//! and the JIT, since engine choice never shifts simulated time).

use super::gateway::{BackendSpec, ClusterGateway, GatewayConfig};
use netsim::node::CpuModel;
use netsim::packet::{addr, Packet};
use netsim::{App, FaultPlan, LinkSpec, NodeApi, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, Admission, Engine, LayerConfig};
use planp_telemetry::{
    BrownoutConfig, BrownoutController, CounterSel, HealthMonitor, Histogram, MetricsSnapshot,
    SloRule, TraceConfig,
};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::Duration;

/// UDP port the cluster serves.
pub const CLUSTER_PORT: u16 = 8080;

/// The plain PLAN-P forwarder installed on the `agg` tier — admission
/// control runs in the layer before this dispatches.
const FORWARDER_ASP: &str = "channel network(ps : unit, ss : unit, p : ip*udp*blob) is
   (OnRemote(network, p); (ps, ss))";

/// One cluster run's configuration.
#[derive(Debug, Clone)]
pub struct ClusterConfig {
    /// Open-loop client hosts.
    pub clients: u32,
    /// Backend hosts (weights cycle 1, 2, 4; max 64).
    pub backends: u32,
    /// Requests each client sends.
    pub requests_per_client: u64,
    /// Inter-request spacing per client outside the flash window (µs).
    pub base_interval_us: u64,
    /// Inter-request spacing per client inside the flash window (µs).
    pub flash_interval_us: u64,
    /// Flash-crowd window (seconds).
    pub flash_from_s: f64,
    /// End of the flash-crowd window (seconds).
    pub flash_until_s: f64,
    /// Request deadline, stamped into each packet's lineage (ms).
    pub deadline_ms: u64,
    /// Zipf key universe size.
    pub zipf_keys: u32,
    /// Zipf skew exponent (≈1.1 ⇒ the hottest key takes several
    /// percent of all traffic — enough to need bounded-load diverts).
    pub zipf_s: f64,
    /// Rolling backend crashes (every 4th backend, staggered).
    pub crashes: u32,
    /// First crash time (seconds).
    pub crash_from_s: f64,
    /// Stagger between crashes (seconds).
    pub crash_every_s: f64,
    /// How long each crashed backend stays down (seconds).
    pub crash_down_s: f64,
    /// Total simulated time (seconds) — leave room to drain.
    pub duration_s: u64,
    /// Random seed.
    pub seed: u64,
    /// Execution engine for the forwarder ASP.
    pub engine: Engine,
    /// Trace configuration (off by default).
    pub trace: TraceConfig,
    /// Health-monitor window (ms); drives the brownout controller.
    pub monitor_ms: u64,
    /// Gateway saturation sheds per monitor window that count as a
    /// breach (the brownout controller's step-up signal).
    pub saturation_ceiling: u64,
    /// Gateway policy.
    pub gateway: GatewayConfig,
    /// Per-packet service time of a weight-1 backend (µs); a weight-w
    /// backend serves in `1/w` of this.
    pub backend_base_us: u64,
    /// Backend CPU queue capacity.
    pub backend_queue: usize,
}

impl ClusterConfig {
    /// The full bench shape: 1M requests from 8 clients over 24
    /// backends (aggregate capacity ≈ 140k rps), a 5 s flash crowd at
    /// 160k rps, and 6 rolling crashes inside it.
    pub fn standard() -> Self {
        ClusterConfig {
            clients: 8,
            backends: 24,
            requests_per_client: 125_000,
            base_interval_us: 200,
            flash_interval_us: 50,
            flash_from_s: 5.0,
            flash_until_s: 10.0,
            deadline_ms: 200,
            zipf_keys: 1024,
            zipf_s: 1.1,
            crashes: 6,
            crash_from_s: 6.0,
            crash_every_s: 0.7,
            crash_down_s: 1.0,
            duration_s: 12,
            seed: 11,
            engine: Engine::Jit,
            trace: TraceConfig::default(),
            monitor_ms: 100,
            saturation_ceiling: 50,
            gateway: GatewayConfig::default(),
            backend_base_us: 400,
            backend_queue: 64,
        }
    }

    /// A debug-friendly miniature with the same dynamics: 20k requests
    /// over 8 backends (capacity ≈ 42.5k rps), a flash crowd at ≈ 65k
    /// rps, 2 crashes inside it.
    pub fn smoke() -> Self {
        ClusterConfig {
            clients: 4,
            backends: 8,
            requests_per_client: 5_000,
            base_interval_us: 500,
            flash_interval_us: 60,
            flash_from_s: 0.3,
            flash_until_s: 0.9,
            deadline_ms: 150,
            zipf_keys: 256,
            zipf_s: 1.1,
            crashes: 2,
            crash_from_s: 0.35,
            crash_every_s: 0.2,
            crash_down_s: 0.35,
            duration_s: 3,
            seed: 7,
            engine: Engine::Jit,
            trace: TraceConfig::default(),
            monitor_ms: 50,
            saturation_ceiling: 10,
            gateway: GatewayConfig::default(),
            backend_base_us: 400,
            backend_queue: 64,
        }
    }
}

/// The cluster SLO rules: the saturation rule drives the brownout
/// controller; the hop-latency ceiling is the "network itself is
/// healthy" control.
pub fn cluster_slo_rules(saturation_ceiling: u64) -> Vec<SloRule> {
    vec![
        SloRule::CounterCeiling {
            name: "saturation".into(),
            sel: CounterSel::exact("gw.shed_saturated"),
            ceiling: saturation_ceiling,
        },
        SloRule::QuantileCeiling {
            name: "hop_p99".into(),
            hist: "sim.hop_latency_ns".into(),
            q_pm: 990,
            ceiling: 50_000_000,
        },
    ]
}

/// Scaled cumulative Zipf distribution over `n` keys.
fn zipf_cdf(n: u32, s: f64) -> Vec<u64> {
    let weights: Vec<f64> = (1..=n).map(|r| 1.0 / f64::from(r).powf(s)).collect();
    let total: f64 = weights.iter().sum();
    let mut acc = 0.0;
    let mut out: Vec<u64> = weights
        .iter()
        .map(|w| {
            acc += w;
            ((acc / total) * u64::MAX as f64) as u64
        })
        .collect();
    *out.last_mut().expect("n ≥ 1") = u64::MAX;
    out
}

/// What the clients saw, shared across all of them.
#[derive(Debug, Default)]
struct ClientStats {
    sent: u64,
    completed: u64,
    completed_by_class: [u64; 4],
    /// Request→response latency (ns).
    latency: Histogram,
}

/// Open-loop request source: priority classes cycle 0..4, keys are
/// Zipf-distributed, every request carries an absolute deadline.
struct ClusterClient {
    idx: u32,
    gw_addr: u32,
    total: u64,
    sent: u64,
    base_ns: u64,
    flash_ns: u64,
    flash_from_ns: u64,
    flash_until_ns: u64,
    deadline_ns: u64,
    cdf: Rc<Vec<u64>>,
    stats: Rc<RefCell<ClientStats>>,
}

impl App for ClusterClient {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Stagger the open loops so they never phase-lock.
        api.set_timer(Duration::from_micros(1 + u64::from(self.idx) * 7), 0);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(hdr) = pkt.udp_hdr() else { return };
        if hdr.sport != CLUSTER_PORT || pkt.payload.len() < 18 {
            return;
        }
        let t_send = u64::from_be_bytes(pkt.payload[9..17].try_into().expect("8 bytes"));
        let class = usize::from(pkt.payload[17]).min(3);
        let mut s = self.stats.borrow_mut();
        s.completed += 1;
        s.completed_by_class[class] += 1;
        s.latency
            .observe(api.now().as_nanos().saturating_sub(t_send));
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.sent >= self.total {
            return;
        }
        let now_ns = api.now().as_nanos();
        let prio = (self.sent % 4) as u8;
        let req_id = (u64::from(self.idx) << 40) | self.sent;
        let u = api.rand_below(u64::MAX);
        let key = self.cdf.partition_point(|&c| c <= u) as u64;

        let mut payload = Vec::with_capacity(25);
        payload.push(prio);
        payload.extend_from_slice(&req_id.to_be_bytes());
        payload.extend_from_slice(&key.to_be_bytes());
        payload.extend_from_slice(&now_ns.to_be_bytes());
        let mut pkt = Packet::udp(
            api.addr(),
            self.gw_addr,
            40_000 + self.idx as u16,
            CLUSTER_PORT,
            payload.into(),
        );
        pkt.lineage.deadline_ns = now_ns + self.deadline_ns;
        api.send(pkt);
        self.sent += 1;
        self.stats.borrow_mut().sent += 1;

        let interval = if now_ns >= self.flash_from_ns && now_ns < self.flash_until_ns {
            self.flash_ns
        } else {
            self.base_ns
        };
        let jitter = api.rand_below(interval / 16 + 1);
        api.set_timer(Duration::from_nanos(interval + jitter), 0);
    }
}

/// Stateless responder: echoes the request id and send timestamp back
/// to the requester. The response's priority byte is forced to gold
/// (255) so admission control never sheds the second half of work the
/// cluster already paid for.
struct ClusterBackend;

impl App for ClusterBackend {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(hdr) = pkt.udp_hdr().copied() else { return };
        if hdr.dport != CLUSTER_PORT || pkt.payload.len() < 25 {
            return;
        }
        let mut resp = Vec::with_capacity(18);
        resp.push(255);
        resp.extend_from_slice(&pkt.payload[1..9]);
        resp.extend_from_slice(&pkt.payload[17..25]);
        resp.push(pkt.payload[0]);
        let out = Packet::udp(api.addr(), pkt.ip.src, CLUSTER_PORT, hdr.sport, resp.into());
        api.send(out);
    }
}

/// What one cluster run produced.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Requests the clients sent.
    pub sent: u64,
    /// Requests the gateway forwarded to a backend.
    pub admitted: u64,
    /// Responses that made it back to a client.
    pub completed: u64,
    /// Completions by priority class (0 = shed first).
    pub completed_by_class: [u64; 4],
    /// `completed / admitted` — the floor is over *admitted* work; shed
    /// requests were refused, not lost.
    pub delivery_admitted: f64,
    /// Brownout/deadline sheds at the agg forwarder tier (pre-VM).
    pub agg_shed: u64,
    /// Deadline-expired drops at the agg forwarder tier.
    pub agg_expired: u64,
    /// Gateway brownout-class sheds.
    pub shed_brownout: u64,
    /// Gateway sheds with every backend full or broken.
    pub shed_saturated: u64,
    /// Gateway CPU-backpressure sheds.
    pub shed_queue: u64,
    /// Deadline-expired drops at the gateway.
    pub gw_expired: u64,
    /// Outstanding-request timeouts at the gateway.
    pub timeouts: u64,
    /// Half-open probes sent.
    pub probes: u64,
    /// Breaker transitions to open.
    pub opens: u64,
    /// Requests forwarded while a breaker was not closed (must equal
    /// `probes`: corpse traffic is probe-only by construction).
    pub sent_while_broken: u64,
    /// Byte-stable breaker transition log.
    pub transitions_log: String,
    /// Byte-stable brownout transition log.
    pub brownout_log: String,
    /// Highest brownout level reached.
    pub max_brownout: u32,
    /// Brownout level when the run ended (0 = fully restored).
    pub final_brownout: u32,
    /// Client-observed latency quantiles (ns).
    pub latency_p50_ns: u64,
    /// 99th percentile client latency (ns).
    pub latency_p99_ns: u64,
    /// 99.9th percentile client latency (ns).
    pub latency_p999_ns: u64,
    /// Packets dropped at crashed backends while they were down — the
    /// "corpse traffic" the breakers exist to eliminate.
    pub corpse_drops: u64,
    /// Node crashes from the fault schedule.
    pub crashes: u64,
    /// Engine-wide node-drop total.
    pub total_node_drops: u64,
    /// Σ per-node `dropped + cpu_drops + shed`.
    pub sum_node_drops: u64,
    /// Engine-wide link-drop total.
    pub total_link_drops: u64,
    /// Σ per-link congestion drops.
    pub sum_link_drops: u64,
    /// Σ per-link fault-injected drops.
    pub sum_fault_drops: u64,
    /// Breached monitor windows.
    pub breaches: u64,
    /// The monitor's byte-stable windowed report.
    pub health_report: String,
    /// Flight-recorder dumps (crashes + first breach), with overload
    /// posture stamped into each header.
    pub flight: String,
    /// Final metrics snapshot (byte-stable for a given seed).
    pub snapshot: MetricsSnapshot,
}

impl ClusterResult {
    /// Node-level companion of the link drop identity: every node drop
    /// is a routing drop, a CPU overflow, or a deliberate shed —
    /// counted exactly once.
    pub fn node_drop_identity_holds(&self) -> bool {
        self.total_node_drops == self.sum_node_drops
    }

    /// The PR 5 link-level drop identity.
    pub fn link_drop_identity_holds(&self) -> bool {
        self.total_link_drops == self.sum_link_drops + self.sum_fault_drops
    }

    /// Corpse traffic is probe-only: while a breaker is open the only
    /// packets toward that backend are half-open probes.
    pub fn corpse_traffic_probe_only(&self) -> bool {
        self.sent_while_broken == self.probes
    }
}

/// Runs one cluster overload experiment.
///
/// # Panics
///
/// Panics if the forwarder ASP fails to verify or install (it is a
/// bundled constant, so this means the toolchain itself is broken).
pub fn run_cluster(cfg: &ClusterConfig) -> ClusterResult {
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(cfg.trace);

    let agg = sim.add_router("agg", addr(10, 0, 0, 254));
    let gw = sim.add_router("gw", addr(10, 0, 0, 253));
    let gw_addr = addr(10, 0, 0, 253);
    sim.add_link(
        LinkSpec {
            kbps: 1_000_000,
            delay: Duration::from_micros(20),
            queue_pkts: 512,
        },
        &[agg, gw],
    );
    sim.set_cpu(
        gw,
        CpuModel {
            per_packet: Duration::from_micros(2),
            queue_cap: 1024,
        },
    );

    let client_stats = Rc::new(RefCell::new(ClientStats::default()));
    let cdf = Rc::new(zipf_cdf(cfg.zipf_keys.max(1), cfg.zipf_s));
    let mut client_ids = Vec::new();
    for i in 0..cfg.clients {
        let c = sim.add_host(&format!("c{i}"), addr(10, 1, 0, (i + 1) as u8));
        sim.add_link(LinkSpec::ethernet_100(), &[c, agg]);
        client_ids.push(c);
    }

    let mut backend_ids = Vec::new();
    let mut specs = Vec::new();
    for i in 0..cfg.backends {
        let name = format!("b{i:02}");
        let a = addr(10, 2, 0, (i + 1) as u8);
        let b = sim.add_host(&name, a);
        sim.add_link(LinkSpec::ethernet_100(), &[gw, b]);
        let weight = [1u32, 2, 4][(i % 3) as usize];
        sim.set_cpu(
            b,
            CpuModel {
                per_packet: Duration::from_nanos(cfg.backend_base_us * 1_000 / u64::from(weight)),
                queue_cap: cfg.backend_queue,
            },
        );
        sim.add_app(b, Box::new(ClusterBackend));
        specs.push(BackendSpec {
            name,
            addr: a,
            weight,
        });
        backend_ids.push(b);
    }
    sim.compute_routes();

    // Tier 1: the PLAN-P forwarder under admission control — deadline
    // and brownout enforcement at the first hop, before the VM runs.
    let image = load(FORWARDER_ASP, Policy::strict()).expect("forwarder ASP verifies");
    let handle = install_planp(
        &mut sim,
        agg,
        &image,
        LayerConfig {
            engine: cfg.engine,
            admission: Some(Admission {
                max_in_flight: 0,
                window_ns: 0,
                priority_byte: Some(0),
                enforce_deadline: true,
            }),
            ..LayerConfig::default()
        },
    )
    .expect("forwarder installs");

    // Tier 2: the bounded-load consistent-hash gateway with breakers.
    let gateway = ClusterGateway::new(cfg.gateway, specs, &mut sim.telemetry);
    let gw_stats = gateway.stats.clone();
    sim.install_hook(gw, Box::new(gateway));

    for (i, &c) in client_ids.iter().enumerate() {
        sim.add_app(
            c,
            Box::new(ClusterClient {
                idx: i as u32,
                gw_addr,
                total: cfg.requests_per_client,
                sent: 0,
                base_ns: cfg.base_interval_us * 1_000,
                flash_ns: cfg.flash_interval_us * 1_000,
                flash_from_ns: (cfg.flash_from_s * 1e9) as u64,
                flash_until_ns: (cfg.flash_until_s * 1e9) as u64,
                deadline_ns: cfg.deadline_ms * 1_000_000,
                cdf: cdf.clone(),
                stats: client_stats.clone(),
            }),
        );
    }

    // Tier 3: rolling crashes + the monitor-driven brownout controller.
    let mut plan = FaultPlan::new();
    let mut crash_targets = Vec::new();
    for i in 0..cfg.crashes {
        let idx = (i as usize * 4) % backend_ids.len();
        let t = cfg.crash_from_s + f64::from(i) * cfg.crash_every_s;
        plan = plan.crash_restart(t, t + cfg.crash_down_s, backend_ids[idx]);
        crash_targets.push(backend_ids[idx].0);
    }
    sim.apply_fault_plan(plan);

    let mut mon = HealthMonitor::new(cfg.monitor_ms.max(1) * 1_000_000);
    for rule in cluster_slo_rules(cfg.saturation_ceiling) {
        mon = mon.rule(rule);
    }
    mon.dump_on_breach = vec![gw.0 as u32];
    sim.monitor = Some(mon);
    sim.brownout = Some(BrownoutController::new(BrownoutConfig::default()));

    sim.run_until(SimTime::from_secs(cfg.duration_s));

    let brownout = sim.brownout.take().expect("installed above");
    let mut brownout_log = String::new();
    let mut max_brownout = 0;
    for (t_ns, from, to, rule) in brownout.transitions() {
        max_brownout = max_brownout.max(*to);
        let _ = writeln!(brownout_log, "t_ns={t_ns} {from} -> {to} rule={rule}");
    }
    let mon = sim.monitor.take().expect("installed above");
    let corpse_drops = sim
        .nodes()
        .enumerate()
        .filter(|(i, _)| crash_targets.contains(i))
        .map(|(_, n)| n.dropped)
        .sum();

    let g = gw_stats.borrow();
    let c = client_stats.borrow();
    let layer = handle.stats.borrow();
    ClusterResult {
        sent: c.sent,
        admitted: g.admitted,
        completed: c.completed,
        completed_by_class: c.completed_by_class,
        delivery_admitted: c.completed as f64 / g.admitted.max(1) as f64,
        agg_shed: layer.shed,
        agg_expired: layer.deadline_expired,
        shed_brownout: g.shed_brownout,
        shed_saturated: g.shed_saturated,
        shed_queue: g.shed_queue,
        gw_expired: g.expired,
        timeouts: g.timeouts,
        probes: g.probes,
        opens: g.opens,
        sent_while_broken: g.sent_while_broken,
        transitions_log: g.transitions_log(),
        brownout_log,
        max_brownout,
        final_brownout: brownout.level(),
        latency_p50_ns: c.latency.percentile(50),
        latency_p99_ns: c.latency.percentile(99),
        latency_p999_ns: c.latency.percentile_permille(999),
        corpse_drops,
        crashes: sim.nodes().map(|n| n.crashes).sum(),
        total_node_drops: sim.total_node_drops,
        sum_node_drops: sim.nodes().map(|n| n.dropped + n.cpu_drops + n.shed).sum(),
        total_link_drops: sim.total_link_drops,
        sum_link_drops: sim.links().map(|l| l.drops).sum(),
        sum_fault_drops: sim.links().map(|l| l.fault_drops).sum(),
        breaches: mon.breaches(),
        health_report: mon.render_report(),
        flight: sim.telemetry.flight.render_dumps(&sim.telemetry.nodes),
        snapshot: sim.metrics_snapshot(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_cluster_protects_admitted_work() {
        let res = run_cluster(&ClusterConfig::smoke());
        assert_eq!(res.sent, 20_000);
        assert!(res.admitted > 0 && res.completed > 0);
        assert!(
            res.delivery_admitted >= 0.99,
            "admitted work must be served: {res:?}"
        );
        assert_eq!(res.crashes, 2);
        assert!(res.opens >= 1, "crashes must open breakers: {res:?}");
        assert!(res.corpse_traffic_probe_only(), "{res:?}");
        assert!(res.node_drop_identity_holds(), "{res:?}");
        assert!(res.link_drop_identity_holds(), "{res:?}");
        // Every crash dump carries the overload state alongside the
        // frozen event window: the brownout level and any non-closed
        // breakers at the instant of the dump.
        assert!(
            res.flight.contains("cause=crash") && res.flight.contains("state=brownout="),
            "crash dumps must carry the overload state:\n{}",
            res.flight
        );
    }

    #[test]
    fn smoke_cluster_brownout_engages_and_recovers() {
        let res = run_cluster(&ClusterConfig::smoke());
        assert!(
            res.max_brownout >= 1,
            "the flash crowd must trip the controller: {}",
            res.health_report
        );
        assert_eq!(
            res.final_brownout, 0,
            "service must be fully restored: {}",
            res.brownout_log
        );
        // Degradation is ordered: gold (class 3) completes at least as
        // often as the shed-first class 0.
        assert!(res.completed_by_class[3] >= res.completed_by_class[0]);
    }

    #[test]
    fn smoke_cluster_is_deterministic() {
        let a = run_cluster(&ClusterConfig::smoke());
        let b = run_cluster(&ClusterConfig::smoke());
        assert_eq!(a.snapshot.render_table(), b.snapshot.render_table());
        assert_eq!(a.transitions_log, b.transitions_log);
        assert_eq!(a.brownout_log, b.brownout_log);
        assert_eq!(a.latency_p99_ns, b.latency_p99_ns);
        assert_eq!(a.flight, b.flight);
    }
}
