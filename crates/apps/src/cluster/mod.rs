//! The production-shape HTTP cluster: tens of heterogeneous backends
//! behind a bounded-load consistent-hash gateway with per-backend
//! circuit breakers, driven by a Zipf flash-crowd trace under rolling
//! backend crashes (ROADMAP item 3 combined with the PR 5 fault plans).
//!
//! The pieces:
//!
//! * [`gateway`] — the [`ClusterGateway`] packet hook: consistent-hash
//!   ring with per-backend outstanding bounds (bounded-load fallback),
//!   closed/open/half-open circuit breakers with deterministic probe
//!   schedules, brownout-priority shedding, and deadline enforcement;
//! * [`scenario`] — the end-to-end harness: open-loop Zipf clients with
//!   request deadlines and priority classes, a PLAN-P forwarder tier
//!   under admission control, heterogeneous CPU-modelled backends,
//!   rolling crash fault plans, and the SLO-monitor-driven brownout
//!   controller.
//!
//! Everything is deterministic: the whole run — breaker transitions,
//! brownout steps, shed sets, the final snapshot — is byte-identical
//! across repeated runs with the same seed (asserted by `planp_cluster`
//! and CI).

pub mod gateway;
pub mod scenario;

pub use gateway::{BackendSpec, BreakerConfig, ClusterGateway, GatewayConfig, GatewayStats};
pub use scenario::{run_cluster, ClusterConfig, ClusterResult, CLUSTER_PORT};
