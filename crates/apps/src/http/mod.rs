//! The extensible HTTP server with load balancing (paper section 3.2):
//! a gateway ASP turns two stock web servers into one scalable virtual
//! server by rewriting connections, without touching server or client.

pub mod asp;
pub mod client;
pub mod native;
pub mod scenario;
pub mod server;
pub mod trace;

pub use asp::{
    HTTP_GATEWAY_3SRV_ASP, HTTP_GATEWAY_ASP, HTTP_GATEWAY_FAILOVER_ASP, HTTP_GATEWAY_PORTHASH_ASP,
    HTTP_GATEWAY_RANDOM_ASP, SERVER0_ADDR, SERVER1_ADDR, SERVER2_ADDR, VIRTUAL_ADDR,
};
pub use client::HttpClientApp;
pub use native::NativeHttpGateway;
pub use scenario::{run_http, run_http_traced, ClusterMode, HttpConfig, HttpResult};
pub use server::{HttpServerApp, ServerCfg, HTTP_PORT};
pub use trace::{Trace, TraceSpec};
