//! The HTTP cluster experiment harness (figure 8 of the paper).
//!
//! Topology:
//!
//! ```text
//!   clients (≤8 hosts) ──10 Mb/s shared segment── gateway ══100 Mb/s══ {server0, server1}
//! ```
//!
//! Four configurations reproduce the paper's curves: one physical
//! server, the ASP-based gateway over two servers, the built-in ("C")
//! gateway over two servers, and two servers with disjoint client sets
//! (the no-gateway upper bound).
//!
//! The gateway is modeled as a single-CPU queueing station
//! ([`netsim::CpuModel`]): per-packet processing is the *contention
//! point* the paper identifies as the reason the cluster reaches 85% of
//! two servers' capacity. The hooked gateway's per-packet cost is
//! calibrated once (see EXPERIMENTS.md); the ASP and native gateways
//! share it because the JIT-vs-native microbenchmark shows the compiled
//! ASP matches native code.

use super::asp::{HTTP_GATEWAY_ASP, SERVER0_ADDR, SERVER1_ADDR, SERVER2_ADDR, VIRTUAL_ADDR};
use super::client::HttpClientApp;
use super::native::NativeHttpGateway;
use super::server::{HttpServerApp, ServerCfg};
use super::trace::{Trace, TraceSpec};
use netsim::packet::addr;
use netsim::{CpuModel, FaultAction, FaultPlan, LinkSpec, Sim, SimTime};
use planp_analysis::Policy;
use planp_runtime::{install_planp, load, Engine, LayerConfig};
use planp_telemetry::{MetricsSnapshot, Telemetry, TraceConfig};
use std::time::Duration;

/// Which cluster configuration to run (the figure 8 curves).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClusterMode {
    /// One physical server, no balancing (curve a).
    Single,
    /// ASP gateway (JIT) over two servers (curve b).
    AspGateway,
    /// Built-in native gateway over two servers (curve c).
    NativeGateway,
    /// ASP gateway run by the *interpreter* — the ablation quantifying
    /// why the JIT matters.
    InterpGateway,
    /// Two servers with disjoint client sets (curve d, the upper bound).
    Disjoint,
}

/// Experiment configuration.
#[derive(Debug, Clone)]
pub struct HttpConfig {
    /// Cluster configuration.
    pub mode: ClusterMode,
    /// Number of concurrent closed-loop clients.
    pub clients: usize,
    /// Run length (seconds).
    pub duration_s: u64,
    /// Measurements before this time are discarded.
    pub warmup_s: f64,
    /// Seed.
    pub seed: u64,
    /// Per-packet CPU time of a *rewriting* gateway (µs).
    pub gw_cpu_us: u64,
    /// Per-packet CPU time of plain IP forwarding (µs).
    pub plain_cpu_us: u64,
    /// CPU multiplier when the gateway ASP runs interpreted.
    pub interp_slowdown: f64,
    /// Server model.
    pub server: ServerCfg,
    /// Trace parameters.
    pub trace: TraceSpec,
    /// Alternative gateway ASP source (defaults to the paper's modulo
    /// strategy). Only used by the ASP gateway modes.
    pub gateway_src: Option<&'static str>,
    /// In-band redeployment: at the given time an operator host deploys
    /// this gateway source over the running one (section 3.2
    /// reconfigurability; section 5 "ASP deployment").
    pub redeploy_at: Option<(f64, &'static str)>,
    /// Crash server 1 at this time (fault injection).
    pub fail_server1_at_s: Option<f64>,
    /// Crash server 1 at this time through the seeded fault plan
    /// ([`netsim::FaultAction::CrashNode`]): unlike `fail_server1_at_s`
    /// the crash also flushes the server's CPU queue and is counted in
    /// the `sim.fault_*` / `node.server1.crashes` telemetry.
    pub crash_server1_at_s: Option<f64>,
}

impl HttpConfig {
    /// Defaults calibrated for the figure 8 shape.
    pub fn new(mode: ClusterMode, clients: usize) -> Self {
        HttpConfig {
            mode,
            clients,
            duration_s: 30,
            warmup_s: 5.0,
            seed: 11,
            gw_cpu_us: 380,
            plain_cpu_us: 100,
            interp_slowdown: 6.0,
            server: ServerCfg::default(),
            trace: TraceSpec::default(),
            gateway_src: None,
            redeploy_at: None,
            fail_server1_at_s: None,
            crash_server1_at_s: None,
        }
    }
}

/// Results of one cluster run.
#[derive(Debug, Clone)]
pub struct HttpResult {
    /// Completed requests per second in the measurement window.
    pub req_per_sec: f64,
    /// Total completed requests (whole run).
    pub completed: u64,
    /// Mean response latency (ms) in the measurement window.
    pub mean_latency_ms: f64,
    /// Median response latency (ms).
    pub p50_latency_ms: f64,
    /// 95th-percentile response latency (ms).
    pub p95_latency_ms: f64,
    /// Requests abandoned (timeout/reset).
    pub failed: u64,
    /// Packets dropped at the gateway CPU queue.
    pub gw_cpu_drops: u64,
    /// Requests served per physical server (measurement window).
    pub per_server: Vec<(String, f64)>,
}

/// Runs the cluster experiment.
///
/// # Panics
///
/// Panics if the shipped gateway ASP fails verification.
pub fn run_http(cfg: &HttpConfig) -> HttpResult {
    run_http_traced(cfg, TraceConfig::default()).0
}

/// Like [`run_http`], with event tracing enabled per `trace`. Also
/// returns the telemetry bundle (event log + raw metrics) and the final
/// metrics snapshot, both deterministic for a given seed.
pub fn run_http_traced(
    cfg: &HttpConfig,
    trace: TraceConfig,
) -> (HttpResult, Telemetry, MetricsSnapshot) {
    let mut sim = Sim::new(cfg.seed);
    sim.telemetry.trace.configure(trace);

    let n_hosts = cfg.clients.clamp(1, 8);
    let mut client_hosts = Vec::with_capacity(n_hosts);
    for i in 0..n_hosts {
        client_hosts.push(sim.add_host(&format!("client{i}"), addr(10, 0, 1, 10 + i as u8)));
    }
    let gw = sim.add_router("gateway", addr(10, 0, 1, 254));
    let s0 = sim.add_host("server0", SERVER0_ADDR);
    let s1 = sim.add_host("server1", SERVER1_ADDR);
    let s2 = sim.add_host("server2", SERVER2_ADDR);

    let mut seg_nodes = client_hosts.clone();
    seg_nodes.push(gw);
    sim.add_link(
        LinkSpec {
            kbps: 10_000,
            delay: Duration::from_micros(100),
            queue_pkts: 128,
        },
        &seg_nodes,
    );
    sim.add_link(LinkSpec::ethernet_100(), &[gw, s0]);
    sim.add_link(LinkSpec::ethernet_100(), &[gw, s1]);
    sim.add_link(LinkSpec::ethernet_100(), &[gw, s2]);
    sim.compute_routes();
    for &c in &client_hosts {
        sim.add_route(c, VIRTUAL_ADDR, gw);
    }

    // Gateway CPU model.
    let hooked = matches!(
        cfg.mode,
        ClusterMode::AspGateway | ClusterMode::NativeGateway | ClusterMode::InterpGateway
    );
    let per_packet = match cfg.mode {
        ClusterMode::InterpGateway => {
            Duration::from_nanos((cfg.gw_cpu_us as f64 * cfg.interp_slowdown * 1000.0) as u64)
        }
        _ if hooked => Duration::from_micros(cfg.gw_cpu_us),
        _ => Duration::from_micros(cfg.plain_cpu_us),
    };
    sim.set_cpu(
        gw,
        CpuModel {
            per_packet,
            queue_cap: 256,
        },
    );

    match cfg.mode {
        ClusterMode::AspGateway | ClusterMode::InterpGateway => {
            let src = cfg.gateway_src.unwrap_or(HTTP_GATEWAY_ASP);
            // Plan-scope gate: the gateway must verify as a deployment
            // over the canonical `http_cluster` topology (cross-ASP
            // product check, composed path budgets, plan lints) before
            // the per-program download below even starts.
            crate::plans::verify_http_gateway(src).expect("gateway verifies at plan scope");
            let image = load(src, Policy::strict()).expect("gateway ASP verifies");
            let engine = if cfg.mode == ClusterMode::AspGateway {
                Engine::Jit
            } else {
                Engine::Interp
            };
            install_planp(
                &mut sim,
                gw,
                &image,
                LayerConfig {
                    engine,
                    ..LayerConfig::default()
                },
            )
            .expect("install gateway ASP");
        }
        ClusterMode::NativeGateway => {
            sim.install_hook(gw, Box::new(NativeHttpGateway::new()));
        }
        ClusterMode::Single | ClusterMode::Disjoint => {}
    }

    // Servers: the paper replicates the web content on all machines.
    let trace = Trace::generate(&cfg.trace, cfg.seed);
    sim.add_app(s0, Box::new(HttpServerApp::new(cfg.server, trace.clone())));
    if cfg.mode != ClusterMode::Single {
        sim.add_app(s1, Box::new(HttpServerApp::new(cfg.server, trace.clone())));
        sim.add_app(s2, Box::new(HttpServerApp::new(cfg.server, trace.clone())));
    }

    // In-band redeployment: a management service on the gateway and a
    // timed operator on the first client host.
    if let Some((at, src)) = cfg.redeploy_at {
        sim.add_app(
            gw,
            Box::new(planp_runtime::DeployService::new(
                Policy::strict(),
                LayerConfig::default(),
            )),
        );
        struct RedeployOperator {
            at: Duration,
            target: u32,
            src: &'static str,
        }
        impl netsim::App for RedeployOperator {
            fn on_start(&mut self, api: &mut netsim::NodeApi<'_>) {
                api.set_timer(self.at, 0);
            }
            fn on_packet(&mut self, _api: &mut netsim::NodeApi<'_>, _pkt: netsim::Packet) {}
            fn on_timer(&mut self, api: &mut netsim::NodeApi<'_>, _key: u64) {
                for pkt in planp_runtime::deploy_packets(api.addr(), self.target, 7, self.src) {
                    api.send(pkt);
                }
            }
        }
        sim.add_app(
            client_hosts[0],
            Box::new(RedeployOperator {
                at: Duration::from_secs_f64(at),
                target: addr(10, 0, 1, 254),
                src,
            }),
        );
    }

    // Clients.
    for j in 0..cfg.clients {
        let host = client_hosts[j % n_hosts];
        let port_base = 10_000 + (j / n_hosts) as u16 * 1000;
        let target = match cfg.mode {
            ClusterMode::Single => SERVER0_ADDR,
            ClusterMode::Disjoint => {
                if j % 2 == 0 {
                    SERVER0_ADDR
                } else {
                    SERVER1_ADDR
                }
            }
            _ => VIRTUAL_ADDR,
        };
        sim.add_app(
            host,
            Box::new(HttpClientApp::new(target, trace.clone(), port_base)),
        );
    }

    if let Some(at) = cfg.crash_server1_at_s {
        sim.apply_fault_plan(FaultPlan::new().at(at, FaultAction::CrashNode { node: s1 }));
    }

    match cfg.fail_server1_at_s {
        Some(at) => {
            sim.run_until(SimTime::ZERO + Duration::from_secs_f64(at));
            sim.set_down(s1, true);
            sim.run_until(SimTime::from_secs(cfg.duration_s));
        }
        None => sim.run_until(SimTime::from_secs(cfg.duration_s)),
    }

    let horizon = cfg.duration_s as f64;
    let window = horizon - cfg.warmup_s;
    let (completed, in_window) = match sim.series.get("http_done") {
        Some(s) => (s.sum() as u64, s.sum_between(cfg.warmup_s, horizon)),
        None => (0, 0.0),
    };
    let lat = sim.series.get("http_latency_ms");
    let mean_latency_ms = lat
        .and_then(|s| s.avg_between(cfg.warmup_s, horizon))
        .unwrap_or(0.0);
    let p50_latency_ms = lat
        .and_then(|s| s.percentile_between(cfg.warmup_s, horizon, 0.5))
        .unwrap_or(0.0);
    let p95_latency_ms = lat
        .and_then(|s| s.percentile_between(cfg.warmup_s, horizon, 0.95))
        .unwrap_or(0.0);
    let per_server = [SERVER0_ADDR, SERVER1_ADDR, SERVER2_ADDR]
        .iter()
        .map(|&a| {
            let label = netsim::packet::addr_to_string(a);
            let count = sim
                .series
                .get(&format!("served_{label}"))
                .map(|s| s.sum_between(cfg.warmup_s, horizon))
                .unwrap_or(0.0);
            (label, count)
        })
        .collect();
    let metrics = sim.metrics_snapshot();
    let telemetry = std::mem::take(&mut sim.telemetry);
    (
        HttpResult {
            req_per_sec: in_window / window,
            completed,
            mean_latency_ms,
            p50_latency_ms,
            p95_latency_ms,
            failed: 0,
            gw_cpu_drops: sim.node(gw).cpu_drops,
            per_server,
        },
        telemetry,
        metrics,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mode: ClusterMode, clients: usize) -> HttpResult {
        let mut cfg = HttpConfig::new(mode, clients);
        cfg.duration_s = 12;
        cfg.warmup_s = 4.0;
        run_http(&cfg)
    }

    #[test]
    fn single_server_saturates_at_its_capacity() {
        let r = quick(ClusterMode::Single, 16);
        // Capacity ≈ children / service_time ≈ 6 / 42.5 ms ≈ 140 req/s.
        assert!(
            (90.0..190.0).contains(&r.req_per_sec),
            "single server: {} req/s",
            r.req_per_sec
        );
    }

    #[test]
    fn asp_gateway_scales_beyond_one_server() {
        let single = quick(ClusterMode::Single, 16);
        let cluster = quick(ClusterMode::AspGateway, 16);
        let ratio = cluster.req_per_sec / single.req_per_sec;
        assert!(
            (1.3..2.1).contains(&ratio),
            "cluster/single ratio {ratio} (cluster {} vs single {})",
            cluster.req_per_sec,
            single.req_per_sec
        );
    }

    #[test]
    fn asp_matches_native_gateway() {
        let asp = quick(ClusterMode::AspGateway, 16);
        let native = quick(ClusterMode::NativeGateway, 16);
        let rel = (asp.req_per_sec - native.req_per_sec).abs() / native.req_per_sec;
        assert!(
            rel < 0.10,
            "asp {} vs native {} ({}%)",
            asp.req_per_sec,
            native.req_per_sec,
            rel * 100.0
        );
    }

    #[test]
    fn gateway_is_a_contention_point() {
        let cluster = quick(ClusterMode::AspGateway, 16);
        let disjoint = quick(ClusterMode::Disjoint, 16);
        let ratio = cluster.req_per_sec / disjoint.req_per_sec;
        assert!(
            (0.6..1.0).contains(&ratio),
            "gateway/disjoint ratio {ratio} (cluster {} vs disjoint {})",
            cluster.req_per_sec,
            disjoint.req_per_sec
        );
    }

    #[test]
    fn alternative_strategies_balance_load() {
        for (name, src) in [
            ("random", crate::http::HTTP_GATEWAY_RANDOM_ASP),
            ("porthash", crate::http::HTTP_GATEWAY_PORTHASH_ASP),
        ] {
            let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 12);
            cfg.duration_s = 12;
            cfg.warmup_s = 4.0;
            cfg.gateway_src = Some(src);
            let r = run_http(&cfg);
            let s0 = r.per_server[0].1;
            let s1 = r.per_server[1].1;
            assert!(r.req_per_sec > 100.0, "{name}: {} req/s", r.req_per_sec);
            assert!(
                s0 > 0.0 && s1 > 0.0,
                "{name}: both servers used: {:?}",
                r.per_server
            );
            let skew = (s0 - s1).abs() / (s0 + s1);
            assert!(
                skew < 0.35,
                "{name}: distribution skew {skew} ({:?})",
                r.per_server
            );
        }
    }

    #[test]
    fn cluster_grows_in_band_mid_run() {
        // Start with the two-server gateway; at t=8 s the operator
        // deploys the three-server program in band. Server 2 starts
        // taking connections without any restart.
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
        cfg.duration_s = 20;
        cfg.warmup_s = 4.0;
        cfg.redeploy_at = Some((8.0, crate::http::HTTP_GATEWAY_3SRV_ASP));
        let r = run_http(&cfg);
        let s2 = r.per_server[2].1;
        assert!(
            s2 > 20.0,
            "server2 should serve after growth: {:?}",
            r.per_server
        );
        // Throughput did not collapse across the swap.
        assert!(r.req_per_sec > 150.0, "{} req/s", r.req_per_sec);

        // Without growth the third server is idle.
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
        cfg.duration_s = 12;
        cfg.warmup_s = 4.0;
        let r = run_http(&cfg);
        assert_eq!(r.per_server[2].1, 0.0);
    }

    #[test]
    fn failover_redeploy_recovers_from_server_crash() {
        // Server 1 crashes at t=6 s. Without intervention half the new
        // connections hit the dead server and burn retransmission
        // timeouts; at t=10 s the operator deploys the failover gateway
        // in band and throughput recovers to single-server level.
        let mut repaired = HttpConfig::new(ClusterMode::AspGateway, 16);
        repaired.duration_s = 26;
        repaired.warmup_s = 4.0;
        repaired.fail_server1_at_s = Some(6.0);
        repaired.redeploy_at = Some((10.0, crate::http::HTTP_GATEWAY_FAILOVER_ASP));
        let r = run_http(&repaired);

        let mut abandoned = HttpConfig::new(ClusterMode::AspGateway, 16);
        abandoned.duration_s = 26;
        abandoned.warmup_s = 4.0;
        abandoned.fail_server1_at_s = Some(6.0);
        let a = run_http(&abandoned);

        assert!(
            r.req_per_sec > a.req_per_sec * 1.2,
            "repair {} vs no repair {}",
            r.req_per_sec,
            a.req_per_sec
        );
        // After repair, only server 0 serves.
        assert!(r.per_server[0].1 > 0.0);
        // The failed server served nothing once it was down (its count
        // in the window only includes pre-crash completions).
        assert!(r.per_server[0].1 > 4.0 * r.per_server[1].1.max(1.0));
    }

    #[test]
    fn failover_gateway_drains_to_fallback_after_backend_crash() {
        // The failover gateway is active from the start; one backend is
        // crashed mid-run by the fault plan. Every request must drain to
        // the surviving server, and the dead backend must never be
        // offered a packet after the failover program is in charge.
        let mut cfg = HttpConfig::new(ClusterMode::AspGateway, 16);
        cfg.duration_s = 20;
        cfg.warmup_s = 4.0;
        cfg.gateway_src = Some(crate::http::HTTP_GATEWAY_FAILOVER_ASP);
        cfg.crash_server1_at_s = Some(6.0);
        let (r, _t, snap) = run_http_traced(&cfg, TraceConfig::default());
        assert_eq!(snap.counters["node.server1.crashes"], 1);
        assert_eq!(
            snap.counters["node.server1.dropped"], 0,
            "zero post-failover drops at the crashed backend"
        );
        assert!(
            r.per_server[0].1 > 100.0 && r.per_server[1].1 == 0.0,
            "requests drain to the fallback: {:?}",
            r.per_server
        );
        assert!(r.req_per_sec > 100.0, "{} req/s", r.req_per_sec);

        // Contrast: the modulo gateway keeps offering connections to the
        // dead server, which shows up as drops there.
        let mut naive = HttpConfig::new(ClusterMode::AspGateway, 16);
        naive.duration_s = 20;
        naive.warmup_s = 4.0;
        naive.crash_server1_at_s = Some(6.0);
        let (_r, _t, snap) = run_http_traced(&naive, TraceConfig::default());
        assert!(
            snap.counters["node.server1.dropped"] > 0,
            "the naive gateway hammers the corpse"
        );
    }

    #[test]
    fn interpreted_gateway_is_slower() {
        let jit = quick(ClusterMode::AspGateway, 16);
        let interp = quick(ClusterMode::InterpGateway, 16);
        assert!(
            interp.req_per_sec < jit.req_per_sec * 0.8,
            "interp {} vs jit {}",
            interp.req_per_sec,
            jit.req_per_sec
        );
    }
}
