//! The built-in ("C") version of the load-balancing gateway — the
//! baseline the paper compares the ASP against in figure 8.

use super::asp::{SERVER0_ADDR, SERVER1_ADDR, VIRTUAL_ADDR};
use netsim::packet::Packet;
use netsim::{ArrivalMeta, HookVerdict, NodeApi, PacketHook};
use std::collections::HashMap;

/// Native gateway hook: identical balancing logic, hand-written.
#[derive(Debug)]
pub struct NativeHttpGateway {
    virt: u32,
    servers: [u32; 2],
    conns: HashMap<(u32, u16), u32>,
    next: u64,
    /// Connections assigned so far.
    pub assigned: u64,
}

impl Default for NativeHttpGateway {
    fn default() -> Self {
        Self::new()
    }
}

impl NativeHttpGateway {
    /// A gateway for the default virtual/physical address plan.
    pub fn new() -> Self {
        NativeHttpGateway {
            virt: VIRTUAL_ADDR,
            servers: [SERVER0_ADDR, SERVER1_ADDR],
            conns: HashMap::new(),
            next: 0,
            assigned: 0,
        }
    }
}

impl PacketHook for NativeHttpGateway {
    fn on_packet(
        &mut self,
        api: &mut NodeApi<'_>,
        mut pkt: Packet,
        meta: &ArrivalMeta,
    ) -> HookVerdict {
        if meta.overheard {
            return HookVerdict::Pass(pkt);
        }
        let Some(hdr) = pkt.tcp_hdr().copied() else {
            return HookVerdict::Pass(pkt);
        };
        if hdr.dport == 80 && pkt.ip.dst == self.virt {
            let key = (pkt.ip.src, hdr.sport);
            let chosen = *self.conns.entry(key).or_insert_with(|| {
                let c = self.servers[(self.next % 2) as usize];
                self.next += 1;
                self.assigned += 1;
                c
            });
            pkt.ip.dst = chosen;
            if pkt.ip.ttl <= 1 {
                return HookVerdict::Handled;
            }
            pkt.ip.ttl -= 1;
            api.send(pkt);
            return HookVerdict::Handled;
        }
        if hdr.sport == 80 && self.servers.contains(&pkt.ip.src) {
            pkt.ip.src = self.virt;
            if pkt.ip.ttl <= 1 {
                return HookVerdict::Handled;
            }
            pkt.ip.ttl -= 1;
            api.send(pkt);
            return HookVerdict::Handled;
        }
        HookVerdict::Pass(pkt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alternates_servers_per_connection() {
        let mut gw = NativeHttpGateway::new();
        // Exercise the assignment logic directly.
        let k1 = (1u32, 10u16);
        let k2 = (1u32, 11u16);
        let c1 = *gw.conns.entry(k1).or_insert(gw.servers[0]);
        gw.next += 1;
        let c2 = *gw.conns.entry(k2).or_insert(gw.servers[1]);
        assert_ne!(c1, c2);
        // Same connection sticks.
        assert_eq!(gw.conns[&k1], c1);
    }
}
