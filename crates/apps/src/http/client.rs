//! The closed-loop HTTP client: issues requests continuously (the
//! paper's "clients continuously issue requests so as to measure the
//! maximum load the clustered server can handle").
//!
//! Each client runs one request at a time: connect → `GET /doc/<id>` →
//! read `LEN n` + n body bytes → record completion → next request.
//! Completions land in the `http_done` series and latencies in
//! `http_latency_ms`.

use super::server::HTTP_PORT;
use super::trace::Trace;
use netsim::packet::Packet;
use netsim::tcp::{TcpConfig, TcpEvents, TcpSocket};
use netsim::{App, NodeApi, SimTime};
use std::rc::Rc;
use std::time::Duration;

/// Per-request timeout before the client gives up and moves on.
const REQUEST_TIMEOUT: Duration = Duration::from_secs(10);
const TICK: Duration = Duration::from_millis(50);

/// A closed-loop request generator.
pub struct HttpClientApp {
    /// Where requests go (the virtual server address under a gateway,
    /// or a physical server directly).
    server: u32,
    trace: Rc<Trace>,
    tcp: TcpConfig,
    port_base: u16,
    port_next: u16,
    sock: Option<TcpSocket>,
    expected: Option<usize>,
    buf: Vec<u8>,
    sent_request: bool,
    started: SimTime,
    /// Completed requests (diagnostics; the series is authoritative).
    pub completed: u64,
    /// Requests abandoned on timeout or reset.
    pub failed: u64,
}

impl HttpClientApp {
    /// A client addressing `server`, drawing requests from the shared
    /// trace. `port_base` must be unique per client on a host.
    pub fn new(server: u32, trace: Rc<Trace>, port_base: u16) -> Self {
        HttpClientApp {
            server,
            trace,
            tcp: TcpConfig::default(),
            port_base,
            port_next: 0,
            sock: None,
            expected: None,
            buf: Vec::new(),
            sent_request: false,
            started: SimTime::ZERO,
            completed: 0,
            failed: 0,
        }
    }

    fn flush(api: &mut NodeApi<'_>, ev: TcpEvents) {
        for pkt in ev.to_send {
            api.send(pkt);
        }
    }

    fn start_request(&mut self, api: &mut NodeApi<'_>) {
        let port = self.port_base + self.port_next % 1000;
        self.port_next = self.port_next.wrapping_add(1);
        let (sock, syn) = TcpSocket::connect(
            self.tcp,
            (api.addr(), port),
            (self.server, HTTP_PORT),
            api.now(),
        );
        self.sock = Some(sock);
        self.expected = None;
        self.buf.clear();
        self.sent_request = false;
        self.started = api.now();
        api.send(syn);
    }

    fn finish(&mut self, api: &mut NodeApi<'_>, ok: bool) {
        if ok {
            self.completed += 1;
            let latency_ms = api.now().saturating_sub(self.started).as_secs_f64() * 1000.0;
            api.record("http_done", 1.0);
            api.record("http_latency_ms", latency_ms);
        } else {
            self.failed += 1;
        }
        self.sock = None;
        self.start_request(api);
    }

    /// Checks the receive buffer against the `LEN n` framing.
    fn response_complete(&mut self) -> bool {
        if self.expected.is_none() {
            if let Some(pos) = self.buf.iter().position(|&b| b == b'\n') {
                if let Ok(head) = std::str::from_utf8(&self.buf[..pos]) {
                    if let Some(n) = head.strip_prefix("LEN ").and_then(|s| s.parse().ok()) {
                        self.expected = Some(n);
                        self.buf.drain(..pos + 1);
                    }
                }
            }
        }
        matches!(self.expected, Some(n) if self.buf.len() >= n)
    }
}

impl App for HttpClientApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        // Stagger start a little so clients do not synchronize.
        let jitter = Duration::from_micros(api.rand_below(20_000));
        api.set_timer(TICK + jitter, 0);
        self.start_request(api);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(hdr) = pkt.tcp_hdr().copied() else {
            return;
        };
        let current = self
            .sock
            .as_ref()
            .is_some_and(|s| (pkt.ip.src, hdr.sport) == s.remote && hdr.dport == s.local.1);
        if !current {
            // A segment for a connection we already finished with —
            // typically the server's FIN arriving just after the last
            // data byte. ACK it statelessly so the server's child is
            // released immediately instead of retrying until timeout.
            if hdr.has(netsim::packet::tcp_flags::FIN) {
                let ack_no = hdr
                    .seq
                    .wrapping_add(pkt.payload.len() as u32)
                    .wrapping_add(1);
                let reply = netsim::packet::TcpHdr {
                    sport: hdr.dport,
                    dport: hdr.sport,
                    seq: hdr.ack,
                    ack: ack_no,
                    flags: netsim::packet::tcp_flags::ACK,
                    wnd: 0,
                };
                api.send(Packet::tcp(
                    api.addr(),
                    pkt.ip.src,
                    reply,
                    bytes::Bytes::new(),
                ));
            }
            return;
        }
        let Some(sock) = self.sock.as_mut() else {
            return;
        };
        let now = api.now();
        let ev = sock.on_segment(&pkt, now);
        let established = ev.established;
        let peer_closed = ev.closed;
        let failed = ev.failed;
        let data = sock.take_received();
        self.buf.extend_from_slice(&data);
        Self::flush(api, ev);

        if failed {
            self.finish(api, false);
            return;
        }
        if established && !self.sent_request {
            self.sent_request = true;
            let doc = self.trace.next_request();
            let req = format!("GET /doc/{doc}\n").into_bytes();
            if let Some(sock) = self.sock.as_mut() {
                let ev = sock.send(&req, now);
                Self::flush(api, ev);
            }
            return;
        }
        if self.response_complete() {
            self.finish(api, true);
        } else if peer_closed {
            // Server closed before the framing completed: failure.
            self.finish(api, false);
        }
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        let now = api.now();
        if let Some(sock) = self.sock.as_mut() {
            let ev = sock.on_tick(now);
            let failed = ev.failed;
            Self::flush(api, ev);
            if failed || now.saturating_sub(self.started) > REQUEST_TIMEOUT {
                self.finish(api, false);
            }
        }
        api.set_timer(TICK, 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::http::trace::TraceSpec;

    #[test]
    fn framing_parser_handles_split_arrivals() {
        let trace = Trace::generate(&TraceSpec::default(), 1);
        let mut c = HttpClientApp::new(1, trace, 10_000);
        c.buf.extend_from_slice(b"LEN ");
        assert!(!c.response_complete());
        c.buf.extend_from_slice(b"5\nab");
        assert!(!c.response_complete());
        c.buf.extend_from_slice(b"cde");
        assert!(c.response_complete());
    }

    #[test]
    fn framing_rejects_garbage_header() {
        let trace = Trace::generate(&TraceSpec::default(), 1);
        let mut c = HttpClientApp::new(1, trace, 10_000);
        c.buf.extend_from_slice(b"HELLO\nxxxxx");
        assert!(!c.response_complete());
    }
}
