//! The Apache-like HTTP server model.
//!
//! The paper runs Apache 1.2.6 with 5–10 child processes; the model is a
//! finite-capacity queueing station: at most `children` requests are in
//! service, each holding a child for `base + size/byte_rate` before the
//! response bytes go out over mini-TCP. Requests beyond the child limit
//! queue (the listen backlog).
//!
//! Protocol (HTTP/1.0-like, one request per connection):
//!
//! ```text
//! client → server   GET /doc/<id>\n
//! server → client   LEN <bytes>\n  followed by <bytes> body bytes, then FIN
//! ```

use super::trace::Trace;
use netsim::packet::Packet;
use netsim::tcp::{ConnKey, TcpConfig, TcpEvents, TcpSocket};
use netsim::{App, NodeApi};
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;
use std::time::Duration;

/// Server tuning.
#[derive(Debug, Clone, Copy)]
pub struct ServerCfg {
    /// Concurrent children (the paper's 5–10 Apache processes).
    pub children: usize,
    /// Fixed per-request service time.
    pub base: Duration,
    /// Additional service time per response byte (disk/CPU), bytes/sec.
    pub byte_rate: f64,
    /// TCP parameters.
    pub tcp: TcpConfig,
}

impl Default for ServerCfg {
    fn default() -> Self {
        ServerCfg {
            children: 6,
            base: Duration::from_millis(40),
            byte_rate: 1_000_000.0,
            tcp: TcpConfig::default(),
        }
    }
}

/// The server's listening port.
pub const HTTP_PORT: u16 = 80;

#[derive(Debug, PartialEq)]
enum ConnState {
    /// Waiting for the request line.
    Receiving,
    /// Parsed; waiting for a free child.
    Queued(u32),
    /// A child is working on it.
    Serving,
    /// Response handed to TCP; draining.
    Sending,
}

struct Conn {
    sock: TcpSocket,
    state: ConnState,
    buf: Vec<u8>,
}

/// The HTTP server application.
pub struct HttpServerApp {
    cfg: ServerCfg,
    trace: Rc<Trace>,
    conns: HashMap<ConnKey, Conn>,
    backlog: VecDeque<ConnKey>,
    active: usize,
    next_token: u64,
    tokens: HashMap<u64, ConnKey>,
    /// Requests fully served (diagnostics).
    pub served: u64,
}

/// Timer key for the periodic TCP tick.
const TICK_KEY: u64 = u64::MAX;
const TICK: Duration = Duration::from_millis(50);

impl HttpServerApp {
    /// A server using `trace` for document sizes.
    pub fn new(cfg: ServerCfg, trace: Rc<Trace>) -> Self {
        HttpServerApp {
            cfg,
            trace,
            conns: HashMap::new(),
            backlog: VecDeque::new(),
            active: 0,
            next_token: 0,
            tokens: HashMap::new(),
            served: 0,
        }
    }

    fn flush(api: &mut NodeApi<'_>, ev: TcpEvents) {
        for pkt in ev.to_send {
            api.send(pkt);
        }
    }

    /// Starts queued requests while children are free.
    fn schedule(&mut self, api: &mut NodeApi<'_>) {
        while self.active < self.cfg.children {
            let Some(key) = self.backlog.pop_front() else {
                break;
            };
            let Some(conn) = self.conns.get_mut(&key) else {
                continue;
            };
            let ConnState::Queued(doc) = conn.state else {
                continue;
            };
            conn.state = ConnState::Serving;
            self.active += 1;
            let size = self.trace.doc_size(doc);
            let service = self.cfg.base + Duration::from_secs_f64(size as f64 / self.cfg.byte_rate);
            let token = self.next_token;
            self.next_token += 1;
            self.tokens.insert(token, key);
            api.set_timer(service, token);
        }
    }

    fn parse_request(buf: &[u8]) -> Option<u32> {
        let line = std::str::from_utf8(buf).ok()?;
        let line = line.strip_prefix("GET /doc/")?;
        let end = line.find('\n')?;
        line[..end].trim().parse().ok()
    }
}

impl App for HttpServerApp {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(TICK, TICK_KEY);
    }

    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet) {
        let Some(hdr) = pkt.tcp_hdr() else { return };
        if hdr.dport != HTTP_PORT {
            return;
        }
        let Some(key) = ConnKey::of(&pkt) else { return };
        let now = api.now();

        // New (or replacing a dead) connection on SYN.
        let is_syn =
            hdr.has(netsim::packet::tcp_flags::SYN) && !hdr.has(netsim::packet::tcp_flags::ACK);
        if is_syn {
            let fresh = !self.conns.contains_key(&key)
                || matches!(self.conns[&key].sock.state, netsim::tcp::TcpState::Closed);
            if fresh {
                if let Some((sock, synack)) =
                    TcpSocket::accept(self.cfg.tcp, (api.addr(), HTTP_PORT), &pkt, now)
                {
                    self.conns.insert(
                        key,
                        Conn {
                            sock,
                            state: ConnState::Receiving,
                            buf: Vec::new(),
                        },
                    );
                    api.send(synack);
                }
                return;
            }
        }

        let Some(conn) = self.conns.get_mut(&key) else {
            return;
        };
        let ev = conn.sock.on_segment(&pkt, now);
        let finished_sending =
            conn.state == ConnState::Sending && conn.sock.state == netsim::tcp::TcpState::Closed;
        let data = conn.sock.take_received();
        conn.buf.extend_from_slice(&data);
        if conn.state == ConnState::Receiving {
            if let Some(doc) = Self::parse_request(&conn.buf) {
                conn.state = ConnState::Queued(doc);
                self.backlog.push_back(key);
            }
        }
        Self::flush(api, ev);
        if finished_sending {
            self.conns.remove(&key);
            self.active -= 1;
            self.served += 1;
            let name = format!("served_{}", netsim::packet::addr_to_string(api.addr()));
            api.record(&name, 1.0);
        }
        self.schedule(api);
    }

    fn on_timer(&mut self, api: &mut NodeApi<'_>, key: u64) {
        if key == TICK_KEY {
            // Retransmission ticks + garbage collection.
            let now = api.now();
            let mut dead = Vec::new();
            let mut outs = Vec::new();
            for (k, conn) in self.conns.iter_mut() {
                let ev = conn.sock.on_tick(now);
                if ev.failed {
                    dead.push(*k);
                }
                outs.push(ev);
            }
            for ev in outs {
                Self::flush(api, ev);
            }
            for k in dead {
                if let Some(conn) = self.conns.remove(&k) {
                    if matches!(conn.state, ConnState::Serving | ConnState::Sending) {
                        self.active -= 1;
                    }
                }
            }
            self.schedule(api);
            api.set_timer(TICK, TICK_KEY);
            return;
        }
        // A child finished preparing a response.
        let Some(conn_key) = self.tokens.remove(&key) else {
            return;
        };
        let now = api.now();
        let Some(conn) = self.conns.get_mut(&conn_key) else {
            self.active -= 1;
            return;
        };
        let ConnState::Serving = conn.state else {
            return;
        };
        let doc = Self::parse_request(&conn.buf).unwrap_or(0);
        let size = self.trace.doc_size(doc);
        let mut resp = format!("LEN {size}\n").into_bytes();
        resp.resize(resp.len() + size, b'x');
        conn.state = ConnState::Sending;
        let ev = conn.sock.send(&resp, now);
        Self::flush(api, ev);
        let ev = conn.sock.close(now);
        Self::flush(api, ev);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_lines() {
        assert_eq!(HttpServerApp::parse_request(b"GET /doc/42\n"), Some(42));
        assert_eq!(HttpServerApp::parse_request(b"GET /doc/7\nextra"), Some(7));
        assert_eq!(HttpServerApp::parse_request(b"GET /doc/42"), None); // incomplete
        assert_eq!(HttpServerApp::parse_request(b"POST /x\n"), None);
        assert_eq!(HttpServerApp::parse_request(b"GET /doc/abc\n"), None);
    }
}
