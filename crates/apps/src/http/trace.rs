//! Synthetic web trace: the stand-in for the paper's replay of 80 000
//! accesses to the IRISA web server.
//!
//! Document popularity follows a Zipf distribution and document sizes a
//! log-normal — the standard empirical shape of 1990s web traffic — so
//! the trace defeats caching the same way a real trace does while
//! remaining seeded and reproducible.

use netsim::rng::SplitMix64;
use std::cell::Cell;
use std::rc::Rc;

/// The shared trace: per-document sizes and the request sequence.
#[derive(Debug)]
pub struct Trace {
    sizes: Vec<usize>,
    requests: Vec<u32>,
    cursor: Cell<usize>,
}

/// Parameters for trace generation.
#[derive(Debug, Clone, Copy)]
pub struct TraceSpec {
    /// Number of distinct documents.
    pub n_docs: usize,
    /// Number of requests (the paper replays 80 000).
    pub n_requests: usize,
    /// Median document size in bytes (log-normal location).
    pub median_size: f64,
    /// Log-normal shape (sigma).
    pub sigma: f64,
    /// Zipf skew.
    pub zipf_s: f64,
    /// Maximum document size (cap).
    pub max_size: usize,
}

impl Default for TraceSpec {
    fn default() -> Self {
        TraceSpec {
            n_docs: 2000,
            n_requests: 80_000,
            median_size: 1000.0,
            sigma: 0.9,
            zipf_s: 0.8,
            max_size: 64 * 1024,
        }
    }
}

impl Trace {
    /// Generates a trace from `spec` with the given seed.
    pub fn generate(spec: &TraceSpec, seed: u64) -> Rc<Trace> {
        let mut rng = SplitMix64::new(seed ^ 0xC0FFEE);
        // Log-normal sizes via Box–Muller.
        let mut sizes = Vec::with_capacity(spec.n_docs);
        for _ in 0..spec.n_docs {
            let u1 = rng.next_f64().max(1e-12);
            let u2 = rng.next_f64();
            let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
            let size = (spec.median_size * (spec.sigma * z).exp()) as usize;
            sizes.push(size.clamp(128, spec.max_size));
        }
        // Zipf CDF over documents (rank = index).
        let weights: Vec<f64> = (1..=spec.n_docs)
            .map(|r| 1.0 / (r as f64).powf(spec.zipf_s))
            .collect();
        let total: f64 = weights.iter().sum();
        let mut cdf = Vec::with_capacity(spec.n_docs);
        let mut acc = 0.0;
        for w in &weights {
            acc += w / total;
            cdf.push(acc);
        }
        let mut requests = Vec::with_capacity(spec.n_requests);
        for _ in 0..spec.n_requests {
            let u = rng.next_f64();
            let idx = cdf.partition_point(|&c| c < u).min(spec.n_docs - 1);
            requests.push(idx as u32);
        }
        Rc::new(Trace {
            sizes,
            requests,
            cursor: Cell::new(0),
        })
    }

    /// Size of document `id` (bytes).
    pub fn doc_size(&self, id: u32) -> usize {
        self.sizes.get(id as usize).copied().unwrap_or(1024)
    }

    /// The next request in the shared replay (wraps around).
    pub fn next_request(&self) -> u32 {
        let i = self.cursor.get();
        self.cursor.set((i + 1) % self.requests.len());
        self.requests[i]
    }

    /// Number of distinct documents.
    pub fn n_docs(&self) -> usize {
        self.sizes.len()
    }

    /// Number of requests in one replay pass.
    pub fn len(&self) -> usize {
        self.requests.len()
    }

    /// True if the request list is empty (never, for generated traces).
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty()
    }

    /// Mean transferred size per request (weighting sizes by actual
    /// request frequency).
    pub fn mean_transfer(&self) -> f64 {
        let total: u64 = self
            .requests
            .iter()
            .map(|&r| self.sizes[r as usize] as u64)
            .sum();
        total as f64 / self.requests.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_and_sized() {
        let spec = TraceSpec::default();
        let a = Trace::generate(&spec, 42);
        let b = Trace::generate(&spec, 42);
        assert_eq!(a.len(), 80_000);
        assert_eq!(a.n_docs(), 2000);
        assert_eq!(a.requests, b.requests);
        assert_eq!(a.sizes, b.sizes);
    }

    #[test]
    fn sizes_bounded_and_plausible() {
        let spec = TraceSpec::default();
        let t = Trace::generate(&spec, 1);
        for id in 0..t.n_docs() as u32 {
            let s = t.doc_size(id);
            assert!((128..=spec.max_size).contains(&s));
        }
        let mean = t.mean_transfer();
        assert!(
            (1000.0..6000.0).contains(&mean),
            "mean transfer {mean} outside the calibrated band"
        );
    }

    #[test]
    fn popularity_is_skewed() {
        let t = Trace::generate(&TraceSpec::default(), 7);
        // Rank-0 document should be requested far more often than a
        // mid-rank one.
        let count = |id: u32| t.requests.iter().filter(|&&r| r == id).count();
        assert!(count(0) > 10 * count(1000).max(1));
    }

    #[test]
    fn cursor_wraps() {
        let spec = TraceSpec {
            n_requests: 3,
            ..TraceSpec::default()
        };
        let t = Trace::generate(&spec, 1);
        let seq: Vec<u32> = (0..7).map(|_| t.next_request()).collect();
        assert_eq!(seq[0], seq[3]);
        assert_eq!(seq[1], seq[4]);
    }
}
