//! The extensible-HTTP-server gateway ASP (paper section 3.2, built on
//! the figure 2 fragment): a *virtual server* address whose TCP port-80
//! connections are balanced over two physical servers, with result
//! traffic rewritten back so clients only ever see the virtual server.
//!
//! Compared to figure 2, the program is altered the way section 2.1
//! anticipates ("it is sometimes possible to alter the protocol such
//! that it will pass the analyses"): rewritten requests are re-sent on a
//! dedicated `relay` channel instead of `network`, so the
//! destination-changing send cannot re-enter the rewriting channel and
//! the global-termination proof goes through.

use netsim::packet::addr;

/// The virtual server address clients connect to.
pub const VIRTUAL_ADDR: u32 = addr(10, 9, 9, 9);
/// Physical server 0 (the paper's 131.254.60.81 stands in a /24 we own).
pub const SERVER0_ADDR: u32 = addr(10, 0, 2, 1);
/// Physical server 1 (the paper's 131.254.60.109).
pub const SERVER1_ADDR: u32 = addr(10, 0, 3, 1);

/// The load-balancing gateway program. Strategy: "modulo on the number
/// of requests" (the paper's), keyed per connection so all packets of
/// one TCP connection reach the same physical server.
pub const HTTP_GATEWAY_ASP: &str = r#"
-- Load-balancing gateway for a virtual HTTP server (paper section 3.2).
val virt : host = 10.9.9.9
val srv0 : host = 10.0.2.1
val srv1 : host = 10.0.3.1

-- Rewritten requests travel on their own channel: it only ever forwards
-- toward the (already rewritten) destination, which keeps the
-- destination-changing send out of any cycle and makes the
-- global-termination proof go through.
channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : ((host*int), host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 andalso ipDst(iph) = virt then
      -- incoming HTTP traffic for the virtual server
      let val con : host*int = (ipSrc(iph), tcpSrc(tcph)) in
        if tblHas(ss, con) then
          let val chosen : host = tblGet(ss, con) handle NotFound => srv0 in
            (OnRemote(relay, (ipDestSet(iph, chosen), tcph, body)); (ps, ss))
          end
        else
          -- new connection: modulo on the number of connections
          let val chosen : host = if ps mod 2 = 0 then srv0 else srv1 in
            (tblSet(ss, con, chosen);
             OnRemote(relay, (ipDestSet(iph, chosen), tcph, body));
             (ps + 1, ss))
          end
      end
    else
      if tcpSrc(tcph) = 80
         andalso (ipSrc(iph) = srv0 orelse ipSrc(iph) = srv1) then
        -- result traffic: replace the physical server by the virtual one
        (OnRemote(network, (ipSrcSet(iph, virt), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"#;

/// Physical server 2, used by [`HTTP_GATEWAY_3SRV_ASP`] when the
/// cluster is grown at run time (section 3.2: "ASPs can be easily
/// modified to reflect a change in the number of physical servers").
pub const SERVER2_ADDR: u32 = addr(10, 0, 4, 1);

/// Round-robin over **three** servers — the reconfiguration target for
/// the grow-the-cluster demo: deploy this over a running two-server
/// gateway and the third machine starts taking connections.
pub const HTTP_GATEWAY_3SRV_ASP: &str = r#"
-- Load-balancing gateway, grown to three physical servers.
val virt : host = 10.9.9.9
val srv0 : host = 10.0.2.1
val srv1 : host = 10.0.3.1
val srv2 : host = 10.0.4.1

channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : ((host*int), host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 andalso ipDst(iph) = virt then
      let val con : host*int = (ipSrc(iph), tcpSrc(tcph)) in
        if tblHas(ss, con) then
          let val chosen : host = tblGet(ss, con) handle NotFound => srv0 in
            (OnRemote(relay, (ipDestSet(iph, chosen), tcph, body)); (ps, ss))
          end
        else
          let
            val chosen : host =
              if ps mod 3 = 0 then srv0
              else if ps mod 3 = 1 then srv1
              else srv2
          in
            (tblSet(ss, con, chosen);
             OnRemote(relay, (ipDestSet(iph, chosen), tcph, body));
             (ps + 1, ss))
          end
      end
    else
      if tcpSrc(tcph) = 80
         andalso (ipSrc(iph) = srv0 orelse ipSrc(iph) = srv1 orelse ipSrc(iph) = srv2) then
        (OnRemote(network, (ipSrcSet(iph, virt), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"#;

/// Random per-connection assignment (sticky via the connection table) —
/// one of the alternative strategies section 3.2 says the administrator
/// can evaluate by just swapping the gateway ASP.
pub const HTTP_GATEWAY_RANDOM_ASP: &str = r#"
-- Load-balancing gateway: random sticky assignment.
val virt : host = 10.9.9.9
val srv0 : host = 10.0.2.1
val srv1 : host = 10.0.3.1

channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : ((host*int), host) hash_table, p : ip*tcp*blob)
initstate mkTable(256) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 andalso ipDst(iph) = virt then
      let val con : host*int = (ipSrc(iph), tcpSrc(tcph)) in
        if tblHas(ss, con) then
          let val chosen : host = tblGet(ss, con) handle NotFound => srv0 in
            (OnRemote(relay, (ipDestSet(iph, chosen), tcph, body)); (ps, ss))
          end
        else
          let val chosen : host = if randInt(2) = 0 then srv0 else srv1 in
            (tblSet(ss, con, chosen);
             OnRemote(relay, (ipDestSet(iph, chosen), tcph, body));
             (ps + 1, ss))
          end
      end
    else
      if tcpSrc(tcph) = 80
         andalso (ipSrc(iph) = srv0 orelse ipSrc(iph) = srv1) then
        (OnRemote(network, (ipSrcSet(iph, virt), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"#;

/// Stateless port-parity assignment — no connection table at all: a
/// connection's client port decides its server, so stickiness is free.
pub const HTTP_GATEWAY_PORTHASH_ASP: &str = r#"
-- Load-balancing gateway: stateless port-parity assignment.
val virt : host = 10.9.9.9
val srv0 : host = 10.0.2.1
val srv1 : host = 10.0.3.1

channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 andalso ipDst(iph) = virt then
      let val chosen : host = if tcpSrc(tcph) mod 2 = 0 then srv0 else srv1 in
        (OnRemote(relay, (ipDestSet(iph, chosen), tcph, body)); (ps + 1, ss))
      end
    else
      if tcpSrc(tcph) = 80
         andalso (ipSrc(iph) = srv0 orelse ipSrc(iph) = srv1) then
        (OnRemote(network, (ipSrcSet(iph, virt), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"#;

/// Emergency failover gateway: pins every virtual-server connection to
/// server 0. Deployed in band when server 1 fails — the fault-tolerance
/// direction the paper lists as future work for the cluster (§5),
/// realized with nothing but an ASP swap.
pub const HTTP_GATEWAY_FAILOVER_ASP: &str = r#"
-- Failover gateway: all traffic to the surviving server.
val virt : host = 10.9.9.9
val srv0 : host = 10.0.2.1
val srv1 : host = 10.0.3.1

channel relay(ps : int, ss : unit, p : ip*tcp*blob) is
  (OnRemote(relay, p); (ps, ss))

channel network(ps : int, ss : unit, p : ip*tcp*blob) is
  let
    val iph : ip = #1 p
    val tcph : tcp = #2 p
    val body : blob = #3 p
  in
    if tcpDst(tcph) = 80 andalso ipDst(iph) = virt then
      (OnRemote(relay, (ipDestSet(iph, srv0), tcph, body)); (ps + 1, ss))
    else
      if tcpSrc(tcph) = 80
         andalso (ipSrc(iph) = srv0 orelse ipSrc(iph) = srv1) then
        (OnRemote(network, (ipSrcSet(iph, virt), tcph, body)); (ps, ss))
      else
        (OnRemote(network, p); (ps, ss))
  end
"#;

#[cfg(test)]
mod tests {
    use super::*;
    use planp_analysis::Policy;
    use planp_runtime::load;

    #[test]
    fn gateway_asp_passes_strict_verification() {
        let lp = load(HTTP_GATEWAY_ASP, Policy::strict())
            .unwrap_or_else(|e| panic!("gateway ASP rejected: {e}"));
        assert!(lp.report.termination.is_proved());
        assert!(lp.report.delivery.is_proved());
        assert!(lp.report.duplication.is_proved());
    }

    #[test]
    fn alternative_strategies_verify() {
        for (name, src) in [
            ("3srv", HTTP_GATEWAY_3SRV_ASP),
            ("random", HTTP_GATEWAY_RANDOM_ASP),
            ("porthash", HTTP_GATEWAY_PORTHASH_ASP),
            ("failover", HTTP_GATEWAY_FAILOVER_ASP),
        ] {
            let lp = load(src, Policy::strict()).unwrap_or_else(|e| panic!("{name} rejected: {e}"));
            assert!(lp.report.accepted(), "{name}");
        }
    }

    #[test]
    fn line_count_is_paper_scale() {
        // Paper figure 3: the extensible web server is 91 lines.
        let n = planp_lang::count_lines(HTTP_GATEWAY_ASP);
        assert!((30..=110).contains(&n), "{n} lines");
    }

    #[test]
    fn figure2_unaltered_version_needs_authentication() {
        // The figure-2 shape (re-sending rewritten requests on `network`)
        // is NOT provable — the paper's own fragment would need an
        // authenticated download.
        let fig2 =
            HTTP_GATEWAY_ASP.replace("OnRemote(relay, (ipDestSet", "OnRemote(network, (ipDestSet");
        let fig2 = fig2.replace(
            "channel relay(ps : int, ss : unit, p : ip*tcp*blob) is\n  (OnRemote(relay, p); (ps, ss))",
            "",
        );
        assert!(load(&fig2, Policy::strict()).is_err());
        assert!(load(&fig2, Policy::authenticated()).is_ok());
    }
}
