//! # planp-apps — the paper's three ASP applications
//!
//! Each of the experiments of section 3, complete with the PLAN-P
//! sources, the simulated legacy applications they adapt, native
//! ("built-in C") baselines, and scenario harnesses:
//!
//! * [`audio`] — audio broadcasting with bandwidth adaptation in
//!   routers (section 3.1, figures 5–7);
//! * [`http`] — an extensible HTTP server with load balancing over a
//!   cluster (section 3.2, figure 8);
//! * [`mpeg`] — a multipoint MPEG service derived from a point-to-point
//!   server (section 3.3).
//!
//! Plus the robustness study that stresses all of it:
//!
//! * [`chaos`] — a relay chain under seeded fault injection, comparing
//!   a NACK-driven reliable relay against a retransmission-free control;
//! * [`cluster`] — the overload-robust HTTP cluster: a bounded-load
//!   consistent-hash gateway with per-backend circuit breakers and a
//!   brownout controller, under a Zipf flash crowd with rolling crashes;
//! * [`obs`] — a ≥1k-node grid of parallel relay chains for measuring
//!   telemetry overhead under deterministic trace sampling and budgets;
//! * [`plans`] — the bundled deployment plans (`asps/plans/`) plus the
//!   ASP resolver mapping plan-level names onto the embedded sources.

#![warn(missing_docs)]

pub mod audio;
pub mod chaos;
pub mod cluster;
pub mod http;
pub mod mpeg;
pub mod obs;
pub mod plans;
