//! Property tests over the simulator core: conservation, determinism,
//! and mini-TCP integrity under arbitrary loss patterns.
//!
//! Cases are generated from fixed seeds with the simulator's own
//! deterministic RNG, so a failing case is reproducible from its index.

use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::rng::SplitMix64;
use netsim::tcp::{TcpConfig, TcpSocket};
use netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

struct Counter {
    got: Rc<RefCell<u64>>,
}
impl App for Counter {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

struct Blaster {
    dst: u32,
    n: u32,
    size: usize,
    gap_us: u64,
}
impl App for Blaster {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.n == 0 {
            return;
        }
        self.n -= 1;
        api.send(Packet::udp(
            api.addr(),
            self.dst,
            1,
            2,
            Bytes::from(vec![0u8; self.size]),
        ));
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
}

/// Every packet sent is either delivered, dropped at a queue, or
/// dropped at a node — never duplicated, never lost silently.
#[test]
fn packet_conservation_on_a_chain() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_0000 + case);
        let n = 1 + rng.next_below(119) as u32;
        let size = 16 + rng.next_below(1384) as usize;
        let gap_us = 50 + rng.next_below(4950);
        let kbps = 200 + rng.next_below(19_800);
        let queue = 2 + rng.next_below(30) as usize;
        let hops = 1 + rng.next_below(3) as usize;

        let mut sim = Sim::new(42);
        let src = sim.add_host("src", addr(10, 0, 0, 1));
        let mut prev = src;
        for h in 0..hops {
            let r = sim.add_router(&format!("r{h}"), addr(10, 0, 1, h as u8 + 1));
            sim.add_link(
                LinkSpec {
                    kbps,
                    delay: Duration::from_micros(100),
                    queue_pkts: queue,
                },
                &[prev, r],
            );
            prev = r;
        }
        let dst = sim.add_host("dst", addr(10, 0, 2, 1));
        sim.add_link(
            LinkSpec {
                kbps,
                delay: Duration::from_micros(100),
                queue_pkts: queue,
            },
            &[prev, dst],
        );
        sim.compute_routes();
        let got = Rc::new(RefCell::new(0u64));
        sim.add_app(dst, Box::new(Counter { got: got.clone() }));
        sim.add_app(
            src,
            Box::new(Blaster {
                dst: addr(10, 0, 2, 1),
                n,
                size,
                gap_us,
            }),
        );
        sim.run_until(SimTime::from_secs(600));

        let node_drops: u64 = (0..hops + 2)
            .map(|i| sim.node(netsim::NodeId(i)).dropped)
            .sum();
        let delivered = *got.borrow();
        assert_eq!(
            delivered + sim.total_link_drops + node_drops,
            u64::from(n),
            "case {case}: delivered {} + link drops {} + node drops {} != sent {}",
            delivered,
            sim.total_link_drops,
            node_drops,
            n
        );
    }
}

/// Identical seeds and parameters give identical outcomes.
#[test]
fn determinism() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_1000 + case);
        let seed = rng.next_u64();
        let n = 1 + rng.next_below(59) as u32;
        let run = || {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a", 1);
            let b = sim.add_host("b", 2);
            sim.add_link(
                LinkSpec {
                    kbps: 900,
                    delay: Duration::from_millis(1),
                    queue_pkts: 4,
                },
                &[a, b],
            );
            sim.compute_routes();
            let got = Rc::new(RefCell::new(0u64));
            sim.add_app(b, Box::new(Counter { got: got.clone() }));
            sim.add_app(
                a,
                Box::new(Blaster {
                    dst: 2,
                    n,
                    size: 700,
                    gap_us: 300,
                }),
            );
            sim.run_until(SimTime::from_secs(60));
            let delivered = *got.borrow();
            (delivered, sim.total_link_drops)
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

/// Mini-TCP delivers the exact byte stream whatever subset of segments
/// the wire drops (as long as it is finite).
#[test]
fn tcp_survives_arbitrary_loss() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_2000 + case);
        let len = 1 + rng.next_below(19_999) as usize;
        let drops: BTreeSet<usize> = (0..rng.next_below(12))
            .map(|_| 1 + rng.next_below(199) as usize)
            .collect();

        let mut now = SimTime::ZERO;
        let cfg = TcpConfig {
            max_retries: 50,
            ..TcpConfig::default()
        };
        let (mut c, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (mut s, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        let ev = c.on_segment(&synack, now);
        let mut wire: Vec<(bool, Packet)> = ev.to_send.into_iter().map(|p| (true, p)).collect();

        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let ev = c.send(&data, now);
        wire.extend(ev.to_send.into_iter().map(|p| (true, p)));

        let mut received = Vec::new();
        let mut count = 0usize;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 100_000, "case {case}: did not converge");
            if let Some((to_s, pkt)) = wire.first().cloned() {
                wire.remove(0);
                count += 1;
                if drops.contains(&count) {
                    continue; // eaten by the wire
                }
                let ev = if to_s {
                    let ev = s.on_segment(&pkt, now);
                    received.extend(s.take_received());
                    ev
                } else {
                    c.on_segment(&pkt, now)
                };
                wire.extend(ev.to_send.into_iter().map(|p| (!to_s, p)));
            } else {
                if received.len() >= data.len() && c.in_flight() == 0 {
                    break;
                }
                now += Duration::from_millis(250);
                let e1 = c.on_tick(now);
                let e2 = s.on_tick(now);
                assert!(!e1.failed && !e2.failed, "case {case}: connection died");
                wire.extend(e1.to_send.into_iter().map(|p| (true, p)));
                wire.extend(e2.to_send.into_iter().map(|p| (false, p)));
            }
        }
        assert_eq!(received, data, "case {case}");
    }
}
