//! Property tests over the simulator core: conservation, determinism,
//! and mini-TCP integrity under arbitrary loss patterns.

use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::tcp::{TcpConfig, TcpSocket};
use netsim::{App, LinkSpec, NodeApi, Sim, SimTime};
use proptest::prelude::*;
use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

struct Counter {
    got: Rc<RefCell<u64>>,
}
impl App for Counter {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

struct Blaster {
    dst: u32,
    n: u32,
    size: usize,
    gap_us: u64,
}
impl App for Blaster {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.n == 0 {
            return;
        }
        self.n -= 1;
        api.send(Packet::udp(
            api.addr(),
            self.dst,
            1,
            2,
            Bytes::from(vec![0u8; self.size]),
        ));
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every packet sent is either delivered, dropped at a queue, or
    /// dropped at a node — never duplicated, never lost silently.
    #[test]
    fn packet_conservation_on_a_chain(
        n in 1u32..120,
        size in 16usize..1400,
        gap_us in 50u64..5000,
        kbps in 200u64..20_000,
        queue in 2usize..32,
        hops in 1usize..4,
    ) {
        let mut sim = Sim::new(42);
        let src = sim.add_host("src", addr(10, 0, 0, 1));
        let mut prev = src;
        for h in 0..hops {
            let r = sim.add_router(&format!("r{h}"), addr(10, 0, 1, h as u8 + 1));
            sim.add_link(
                LinkSpec { kbps, delay: Duration::from_micros(100), queue_pkts: queue },
                &[prev, r],
            );
            prev = r;
        }
        let dst = sim.add_host("dst", addr(10, 0, 2, 1));
        sim.add_link(
            LinkSpec { kbps, delay: Duration::from_micros(100), queue_pkts: queue },
            &[prev, dst],
        );
        sim.compute_routes();
        let got = Rc::new(RefCell::new(0u64));
        sim.add_app(dst, Box::new(Counter { got: got.clone() }));
        sim.add_app(src, Box::new(Blaster { dst: addr(10, 0, 2, 1), n, size, gap_us }));
        sim.run_until(SimTime::from_secs(600));

        let node_drops: u64 = (0..hops + 2)
            .map(|i| sim.node(netsim::NodeId(i)).dropped)
            .sum();
        let delivered = *got.borrow();
        prop_assert_eq!(
            delivered + sim.total_link_drops + node_drops,
            n as u64,
            "delivered {} + link drops {} + node drops {} != sent {}",
            delivered, sim.total_link_drops, node_drops, n
        );
    }

    /// Identical seeds and parameters give identical outcomes.
    #[test]
    fn determinism(seed in any::<u64>(), n in 1u32..60) {
        let run = || {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a", 1);
            let b = sim.add_host("b", 2);
            sim.add_link(
                LinkSpec { kbps: 900, delay: Duration::from_millis(1), queue_pkts: 4 },
                &[a, b],
            );
            sim.compute_routes();
            let got = Rc::new(RefCell::new(0u64));
            sim.add_app(b, Box::new(Counter { got: got.clone() }));
            sim.add_app(a, Box::new(Blaster { dst: 2, n, size: 700, gap_us: 300 }));
            sim.run_until(SimTime::from_secs(60));
            let delivered = *got.borrow();
            (delivered, sim.total_link_drops)
        };
        prop_assert_eq!(run(), run());
    }

    /// Mini-TCP delivers the exact byte stream whatever subset of
    /// segments the wire drops (as long as it is finite).
    #[test]
    fn tcp_survives_arbitrary_loss(
        len in 1usize..20_000,
        drops in proptest::collection::btree_set(1usize..200, 0..12),
    ) {
        let mut now = SimTime::ZERO;
        let cfg = TcpConfig { max_retries: 50, ..TcpConfig::default() };
        let (mut c, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (mut s, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        let ev = c.on_segment(&synack, now);
        let mut wire: Vec<(bool, Packet)> = ev.to_send.into_iter().map(|p| (true, p)).collect();

        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let ev = c.send(&data, now);
        wire.extend(ev.to_send.into_iter().map(|p| (true, p)));

        let mut received = Vec::new();
        let mut count = 0usize;
        let mut steps = 0;
        loop {
            steps += 1;
            prop_assert!(steps < 100_000, "did not converge");
            if let Some((to_s, pkt)) = wire.first().cloned() {
                wire.remove(0);
                count += 1;
                if drops.contains(&count) {
                    continue; // eaten by the wire
                }
                let ev = if to_s {
                    let ev = s.on_segment(&pkt, now);
                    received.extend(s.take_received());
                    ev
                } else {
                    c.on_segment(&pkt, now)
                };
                wire.extend(ev.to_send.into_iter().map(|p| (!to_s, p)));
            } else {
                if received.len() >= data.len() && c.in_flight() == 0 {
                    break;
                }
                now += Duration::from_millis(250);
                let e1 = c.on_tick(now);
                let e2 = s.on_tick(now);
                prop_assert!(!e1.failed && !e2.failed, "connection died");
                wire.extend(e1.to_send.into_iter().map(|p| (true, p)));
                wire.extend(e2.to_send.into_iter().map(|p| (false, p)));
            }
        }
        prop_assert_eq!(received, data);
    }
}
