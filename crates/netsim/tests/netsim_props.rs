//! Property tests over the simulator core: conservation, determinism,
//! and mini-TCP integrity under arbitrary loss patterns.
//!
//! Cases are generated from fixed seeds with the simulator's own
//! deterministic RNG, so a failing case is reproducible from its index.

use bytes::Bytes;
use netsim::packet::{addr, Packet};
use netsim::rng::SplitMix64;
use netsim::tcp::{TcpConfig, TcpSocket};
use netsim::{App, ArrivalMeta, CpuModel, HookVerdict, LinkSpec, NodeApi, PacketHook, Sim, SimTime};
use planp_telemetry::DropReason;
use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

struct Counter {
    got: Rc<RefCell<u64>>,
}
impl App for Counter {
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {
        *self.got.borrow_mut() += 1;
    }
}

struct Blaster {
    dst: u32,
    n: u32,
    size: usize,
    gap_us: u64,
}
impl App for Blaster {
    fn on_start(&mut self, api: &mut NodeApi<'_>) {
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
    fn on_packet(&mut self, _api: &mut NodeApi<'_>, _pkt: Packet) {}
    fn on_timer(&mut self, api: &mut NodeApi<'_>, _key: u64) {
        if self.n == 0 {
            return;
        }
        self.n -= 1;
        api.send(Packet::udp(
            api.addr(),
            self.dst,
            1,
            2,
            Bytes::from(vec![0u8; self.size]),
        ));
        api.set_timer(Duration::from_micros(self.gap_us), 0);
    }
}

/// Every packet sent is either delivered, dropped at a queue, or
/// dropped at a node — never duplicated, never lost silently.
#[test]
fn packet_conservation_on_a_chain() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_0000 + case);
        let n = 1 + rng.next_below(119) as u32;
        let size = 16 + rng.next_below(1384) as usize;
        let gap_us = 50 + rng.next_below(4950);
        let kbps = 200 + rng.next_below(19_800);
        let queue = 2 + rng.next_below(30) as usize;
        let hops = 1 + rng.next_below(3) as usize;

        let mut sim = Sim::new(42);
        let src = sim.add_host("src", addr(10, 0, 0, 1));
        let mut prev = src;
        for h in 0..hops {
            let r = sim.add_router(&format!("r{h}"), addr(10, 0, 1, h as u8 + 1));
            sim.add_link(
                LinkSpec {
                    kbps,
                    delay: Duration::from_micros(100),
                    queue_pkts: queue,
                },
                &[prev, r],
            );
            prev = r;
        }
        let dst = sim.add_host("dst", addr(10, 0, 2, 1));
        sim.add_link(
            LinkSpec {
                kbps,
                delay: Duration::from_micros(100),
                queue_pkts: queue,
            },
            &[prev, dst],
        );
        sim.compute_routes();
        let got = Rc::new(RefCell::new(0u64));
        sim.add_app(dst, Box::new(Counter { got: got.clone() }));
        sim.add_app(
            src,
            Box::new(Blaster {
                dst: addr(10, 0, 2, 1),
                n,
                size,
                gap_us,
            }),
        );
        sim.run_until(SimTime::from_secs(600));

        let node_drops: u64 = (0..hops + 2)
            .map(|i| sim.node(netsim::NodeId(i)).dropped)
            .sum();
        let delivered = *got.borrow();
        assert_eq!(
            delivered + sim.total_link_drops + node_drops,
            u64::from(n),
            "case {case}: delivered {} + link drops {} + node drops {} != sent {}",
            delivered,
            sim.total_link_drops,
            node_drops,
            n
        );
    }
}

/// A hook that sheds a deterministic subset of the packets it sees:
/// every `shed_mod`-th as an admission [`DropReason::Shed`], every
/// `expire_mod`-th as [`DropReason::DeadlineExpired`].
struct Shedder {
    seen: u64,
    shed_mod: u64,
    expire_mod: u64,
}
impl PacketHook for Shedder {
    fn on_packet(&mut self, api: &mut NodeApi<'_>, pkt: Packet, meta: &ArrivalMeta) -> HookVerdict {
        if meta.overheard {
            return HookVerdict::Pass(pkt);
        }
        self.seen += 1;
        if self.seen % self.shed_mod == 0 {
            api.node_drop(&pkt, DropReason::Shed);
            return HookVerdict::Handled;
        }
        if self.seen % self.expire_mod == 0 {
            api.node_drop(&pkt, DropReason::DeadlineExpired);
            return HookVerdict::Handled;
        }
        HookVerdict::Pass(pkt)
    }
}

/// The node-level drop-accounting identity: every drop charged to a
/// node lands in exactly one of its three buckets — policy drops
/// (`dropped`), CPU-queue overflows (`cpu_drops`), or admission sheds
/// (`shed`) — and the engine-wide total is their sum. Each case forces
/// all three kinds at once: a slow router CPU with a tiny queue
/// overflows, its hook sheds and expires a deterministic subset, and a
/// second flow aims at an unroutable address.
#[test]
fn node_drop_identity_across_all_buckets() {
    for case in 0..16u64 {
        let mut rng = SplitMix64::new(0xC0DE_3000 + case);
        let n = 80 + rng.next_below(120) as u32;
        let gap_us = 30 + rng.next_below(120);
        let queue_cap = 1 + rng.next_below(3) as usize;
        let shed_mod = 2 + rng.next_below(4);
        let expire_mod = 3 + rng.next_below(4);

        let mut sim = Sim::new(0xBADD + case);
        let src = sim.add_host("src", addr(10, 0, 0, 1));
        let r = sim.add_router("r", addr(10, 0, 1, 1));
        let dst = sim.add_host("dst", addr(10, 0, 2, 1));
        for ends in [[src, r], [r, dst]] {
            sim.add_link(
                LinkSpec {
                    kbps: 100_000,
                    delay: Duration::from_micros(100),
                    queue_pkts: 256,
                },
                &ends,
            );
        }
        sim.compute_routes();
        sim.set_cpu(
            r,
            CpuModel {
                per_packet: Duration::from_micros(200),
                queue_cap,
            },
        );
        sim.install_hook(
            r,
            Box::new(Shedder {
                seen: 0,
                shed_mod,
                expire_mod,
            }),
        );
        let got = Rc::new(RefCell::new(0u64));
        sim.add_app(dst, Box::new(Counter { got: got.clone() }));
        sim.add_app(
            src,
            Box::new(Blaster {
                dst: addr(10, 0, 2, 1),
                n,
                size: 64,
                gap_us,
            }),
        );
        // A second flow into the void: no route, so every send is a
        // policy drop at the source.
        sim.add_app(
            src,
            Box::new(Blaster {
                dst: addr(10, 9, 9, 9),
                n: 8,
                size: 64,
                gap_us: 500,
            }),
        );
        sim.run_until(SimTime::from_secs(60));

        let nodes = [src, r, dst];
        let policy: u64 = nodes.iter().map(|&i| sim.node(i).dropped).sum();
        let cpu: u64 = nodes.iter().map(|&i| sim.node(i).cpu_drops).sum();
        let shed: u64 = nodes.iter().map(|&i| sim.node(i).shed).sum();
        assert_eq!(policy, 8, "case {case}: exactly the unroutable flow");
        assert!(cpu > 0, "case {case}: the router CPU queue must overflow");
        assert!(shed > 0, "case {case}: the hook must shed");
        assert_eq!(
            sim.total_node_drops,
            policy + cpu + shed,
            "case {case}: total {} != policy {policy} + cpu {cpu} + shed {shed}",
            sim.total_node_drops
        );
        // Conservation still closes for the routable flow: every
        // datagram was delivered or charged to exactly one bucket.
        assert_eq!(
            *got.borrow() + sim.total_link_drops + cpu + shed,
            u64::from(n),
            "case {case}: conservation"
        );
    }
}

/// Identical seeds and parameters give identical outcomes.
#[test]
fn determinism() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_1000 + case);
        let seed = rng.next_u64();
        let n = 1 + rng.next_below(59) as u32;
        let run = || {
            let mut sim = Sim::new(seed);
            let a = sim.add_host("a", 1);
            let b = sim.add_host("b", 2);
            sim.add_link(
                LinkSpec {
                    kbps: 900,
                    delay: Duration::from_millis(1),
                    queue_pkts: 4,
                },
                &[a, b],
            );
            sim.compute_routes();
            let got = Rc::new(RefCell::new(0u64));
            sim.add_app(b, Box::new(Counter { got: got.clone() }));
            sim.add_app(
                a,
                Box::new(Blaster {
                    dst: 2,
                    n,
                    size: 700,
                    gap_us: 300,
                }),
            );
            sim.run_until(SimTime::from_secs(60));
            let delivered = *got.borrow();
            (delivered, sim.total_link_drops)
        };
        assert_eq!(run(), run(), "case {case}");
    }
}

/// Mini-TCP delivers the exact byte stream whatever subset of segments
/// the wire drops (as long as it is finite).
#[test]
fn tcp_survives_arbitrary_loss() {
    for case in 0..32u64 {
        let mut rng = SplitMix64::new(0xC0DE_2000 + case);
        let len = 1 + rng.next_below(19_999) as usize;
        let drops: BTreeSet<usize> = (0..rng.next_below(12))
            .map(|_| 1 + rng.next_below(199) as usize)
            .collect();

        let mut now = SimTime::ZERO;
        let cfg = TcpConfig {
            max_retries: 50,
            ..TcpConfig::default()
        };
        let (mut c, syn) = TcpSocket::connect(cfg, (1, 5000), (2, 80), now);
        let (mut s, synack) = TcpSocket::accept(cfg, (2, 80), &syn, now).unwrap();
        let ev = c.on_segment(&synack, now);
        let mut wire: Vec<(bool, Packet)> = ev.to_send.into_iter().map(|p| (true, p)).collect();

        let data: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
        let ev = c.send(&data, now);
        wire.extend(ev.to_send.into_iter().map(|p| (true, p)));

        let mut received = Vec::new();
        let mut count = 0usize;
        let mut steps = 0;
        loop {
            steps += 1;
            assert!(steps < 100_000, "case {case}: did not converge");
            if let Some((to_s, pkt)) = wire.first().cloned() {
                wire.remove(0);
                count += 1;
                if drops.contains(&count) {
                    continue; // eaten by the wire
                }
                let ev = if to_s {
                    let ev = s.on_segment(&pkt, now);
                    received.extend(s.take_received());
                    ev
                } else {
                    c.on_segment(&pkt, now)
                };
                wire.extend(ev.to_send.into_iter().map(|p| (!to_s, p)));
            } else {
                if received.len() >= data.len() && c.in_flight() == 0 {
                    break;
                }
                now += Duration::from_millis(250);
                let e1 = c.on_tick(now);
                let e2 = s.on_tick(now);
                assert!(!e1.failed && !e2.failed, "case {case}: connection died");
                wire.extend(e1.to_send.into_iter().map(|p| (true, p)));
                wire.extend(e2.to_send.into_iter().map(|p| (false, p)));
            }
        }
        assert_eq!(received, data, "case {case}");
    }
}
